"""E1 — Table 1: comparison with related language designs (§9.5).

Regenerates the capability matrix by running the probe programs under each
checker profile, prints it, and benchmarks the probe-checking work.
"""

from repro.baselines import compare_with_paper, render_table
from repro.baselines.profiles import AFFINE, FEARLESS, GLOBAL_DOMINATION
from repro.baselines.table1 import DLL_PROBE, SLL_PROBE
from repro.core.checker import Checker
from repro.core.errors import TypeError_
from repro.lang import parse_program


def _run_matrix():
    results = {}
    for profile in (FEARLESS, AFFINE, GLOBAL_DOMINATION):
        for probe_name, probe in (("sll", SLL_PROBE), ("dll", DLL_PROBE)):
            try:
                Checker(parse_program(probe), profile).check_program()
                verdict = True
            except TypeError_:
                verdict = False
            results[(profile.name, probe_name)] = verdict
    return results


def test_table1_matches_paper(benchmark):
    results = benchmark(_run_matrix)
    # The matrix rows derived from the probes:
    assert results[("fearless", "sll")] and results[("fearless", "dll")]
    assert results[("affine", "sll")] and not results[("affine", "dll")]
    assert not results[("global-domination", "sll")]
    assert results[("global-domination", "dll")]
    comparison = compare_with_paper()
    assert all(comparison.values()), comparison
    print()
    print(render_table())
