"""E2 — checker performance (§5): "capable of checking our most complex
examples in seconds".

Benchmarks type-checking (and prover+verifier round trips) on the corpus —
the red-black tree with its rotation shuffles is the paper's "most complex
example" — plus generated programs of growing size to expose the scaling
trend.
"""

import pytest

from repro.core.checker import Checker
from repro.corpus import corpus_names, load_program
from repro.lang import parse_program
from repro.verifier import Verifier


@pytest.mark.parametrize("name", corpus_names())
def test_check_corpus(benchmark, name):
    program = load_program(name)
    result = benchmark(lambda: Checker(program, record=False).check_program())
    assert result is not None


def test_check_and_verify_rbtree(benchmark):
    """The full prover → verifier round trip on the most complex example."""
    program = load_program("rbtree")

    def round_trip():
        derivation = Checker(program).check_program()
        return Verifier(program).verify_program(derivation)

    nodes = benchmark(round_trip)
    assert nodes > 400


def _generated_program(chain: int) -> str:
    """A function with `chain` sequential iso manipulations + branches —
    scales the number of variables and join points the checker handles."""
    lines = [
        "struct data { v : int; }",
        "struct box { iso inner : data?; }",
        "def fn(b : box, c : bool) : int {",
        "  let acc = 0;",
    ]
    for i in range(chain):
        lines.append(f"  let d{i} = new data(v = {i});")
        lines.append(f"  b.inner = some(d{i});")
        lines.append(
            f"  if (c) {{ let some(x{i}) = b.inner in {{ acc = acc + x{i}.v }}"
            f" else {{ acc = acc }} }} else {{ acc = acc + {i} }};"
        )
    lines.append("  acc")
    lines.append("}")
    return "\n".join(lines)


@pytest.mark.parametrize("chain", [5, 20, 50])
def test_check_generated_scaling(benchmark, chain):
    program = parse_program(_generated_program(chain))
    benchmark(lambda: Checker(program, record=False).check_program())


def _many_functions(count: int) -> str:
    """A program with `count` cross-calling functions manipulating iso
    structures — approximates a real project the checker must swallow."""
    parts = [
        "struct data { v : int; }",
        "struct box { iso inner : data?; }",
        "def seed() : box { new box() }",
    ]
    for i in range(count):
        callee = "seed()" if i == 0 else f"stage{i - 1}(b)"
        if i == 0:
            parts.append(
                f"def stage{i}(b : box) : int {{\n"
                f"  b.inner = some(new data(v = {i}));\n"
                f"  let some(d) = b.inner in {{ d.v }} else {{ 0 }}\n"
                f"}}"
            )
        else:
            parts.append(
                f"def stage{i}(b : box) : int {{\n"
                f"  let prior = stage{i - 1}(b);\n"
                f"  b.inner = some(new data(v = {i}));\n"
                f"  let some(d) = b.inner in {{ prior + d.v }} else {{ prior }}\n"
                f"}}"
            )
    parts.append(
        f"def main() : int {{ let b = seed(); stage{count - 1}(b) }}"
    )
    return "\n".join(parts)


@pytest.mark.parametrize("count", [50, 200])
def test_check_many_functions(benchmark, count):
    """§5's headline ("most complex examples in seconds") at project scale:
    hundreds of iso-manipulating functions."""
    program = parse_program(_many_functions(count))
    derivation = benchmark(
        lambda: Checker(program, record=False).check_program()
    )
    assert derivation is not None
