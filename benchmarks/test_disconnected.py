"""E3 — the `if disconnected` run-time check (§5.2, fig 5).

Claims reproduced:

* in the intended use (detaching a repointed tail), the efficient check
  touches O(1) objects *independent of list size*, while the naive
  reference traversal is O(region);
* in the "buggy" case (tail not repointed), the efficient check still
  terminates after a couple of objects;
* the worst case (genuinely entangled halves) degrades to a traversal.

Prints a size-sweep table of objects visited (the paper's "shape": flat
line for the efficient check vs linear growth for the naive one).
"""

import pytest

from repro.lang import parse_program
from repro.runtime.disconnect import efficient_disconnected, naive_disconnected
from repro.runtime.heap import Heap

STRUCTS = parse_program(
    """
struct data { v : int; }
struct dll_node { iso payload : data; next : dll_node; prev : dll_node; }
"""
)

SIZES = [4, 16, 64, 256, 1024, 4096]


def build_detached(n):
    """Circular dll of n nodes with the tail unspliced and self-looped
    (exactly fig 5's then-branch state)."""
    heap = Heap()
    nodes = []
    for i in range(n):
        payload = heap.alloc(STRUCTS.structs["data"], {"v": i})
        nodes.append(
            heap.alloc(STRUCTS.structs["dll_node"], {"payload": payload})
        )
    for i, node in enumerate(nodes):
        heap.write_field(node, "next", nodes[(i + 1) % n])
        heap.write_field(node, "prev", nodes[(i - 1) % n])
    tail, head = nodes[-1], nodes[0]
    heap.write_field(nodes[-2], "next", head)
    heap.write_field(head, "prev", nodes[-2])
    heap.write_field(tail, "next", tail)
    heap.write_field(tail, "prev", tail)
    return heap, tail, head


def build_buggy(n):
    """Tail excised from the spine but NOT repointed (§5.2's buggy case)."""
    heap, tail, head = build_detached(n)
    heap.write_field(tail, "next", head)  # forgot to repoint
    return heap, tail, head


@pytest.mark.parametrize("n", SIZES)
def test_efficient_intended_use(benchmark, n):
    heap, tail, head = build_detached(n)
    ok, stats = benchmark(lambda: efficient_disconnected(heap, tail, head))
    assert ok
    assert stats.objects_visited <= 4  # O(1), size-independent


@pytest.mark.parametrize("n", SIZES)
def test_naive_reference(benchmark, n):
    heap, tail, head = build_detached(n)
    ok, stats = benchmark(lambda: naive_disconnected(heap, tail, head))
    assert ok
    assert stats.objects_visited >= n  # O(region)


@pytest.mark.parametrize("n", [64, 1024])
def test_efficient_buggy_case(benchmark, n):
    heap, tail, head = build_buggy(n)
    ok, stats = benchmark(lambda: efficient_disconnected(heap, tail, head))
    assert not ok
    assert stats.objects_visited <= 6  # still nearly free (§5.2)


def test_shape_summary():
    """Regenerates the E3 series: visited counts vs list size."""
    print()
    print(f"{'n':>6s} {'efficient':>10s} {'naive':>8s} {'buggy-eff':>10s}")
    for n in SIZES:
        heap, tail, head = build_detached(n)
        _, eff = efficient_disconnected(heap, tail, head)
        _, nai = naive_disconnected(heap, tail, head)
        heap2, tail2, head2 = build_buggy(n)
        _, bug = efficient_disconnected(heap2, tail2, head2)
        print(
            f"{n:6d} {eff.objects_visited:10d} {nai.objects_visited:8d} "
            f"{bug.objects_visited:10d}"
        )
        assert eff.objects_visited <= 4
        assert nai.objects_visited >= n
