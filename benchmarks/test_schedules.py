"""Exhaustive schedule exploration performance (supplement to E7).

The explorer enumerates every rendezvous ordering by deterministic replay;
the schedule count grows combinatorially with competing senders
(C(2n, n) interleavings for two n-message producers), which bounds the
instance sizes worth model-checking exhaustively.
"""

import math

import pytest

from repro.analysis.schedules import explore_all_schedules
from repro.lang import parse_program

SRC = """
struct data { v : int; }
def producer(v : int, n : int) : unit {
  while (n > 0) { let d = new data(v = v); send(d); n = n - 1 }
}
def consumer(n : int) : int {
  let total = 0;
  while (n > 0) { let d = recv(data); total = total + d.v; n = n - 1 };
  total
}
"""


@pytest.mark.parametrize("n", [1, 2, 3])
def test_explore_two_producers(benchmark, n):
    program = parse_program(SRC)

    def run():
        return explore_all_schedules(
            program,
            [("producer", [1, n]), ("producer", [100, n]), ("consumer", [2 * n])],
        )

    report = benchmark(run)
    assert report.schedules_explored == math.comb(2 * n, n)
    assert not report.violations
    total = {r[-1] for r in report.distinct_results()}
    assert total == {n * (1 + 100)}


def test_schedule_count_shape():
    """Regenerates the combinatorial blow-up series."""
    program = parse_program(SRC)
    print()
    print(f"{'msgs/producer':>14s} {'schedules':>10s}")
    for n in (1, 2, 3, 4):
        report = explore_all_schedules(
            program,
            [("producer", [1, n]), ("producer", [100, n]), ("consumer", [2 * n])],
        )
        print(f"{n:14d} {report.schedules_explored:10d}")
        assert report.schedules_explored == math.comb(2 * n, n)
        assert report.all_agree()
