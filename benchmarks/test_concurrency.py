"""E7 — fearless concurrency end to end (§6–§7, fig 15).

Runs the three-stage message-queue pipeline across many random schedules
and verifies zero reservation violations plus pairwise-disjoint
reservations throughout — the executable form of the soundness theorem.
Also benchmarks pipeline throughput and the cost of the send live-set
transfer.
"""

import pytest

from repro.analysis import check_refcounts, check_reservations_disjoint
from repro.corpus import load_program
from repro.runtime.machine import Machine


def _pipeline(n, seed, preemptive=True):
    program = load_program("queue")
    machine = Machine(program, seed=seed, preemptive=preemptive)
    machine.spawn("source", [n])
    machine.spawn("relay", [n])
    sink = machine.spawn("sink", [n])
    machine.run()
    return machine, sink


@pytest.mark.parametrize("n", [8, 32, 128])
def test_pipeline_throughput(benchmark, n):
    machine, sink = benchmark(lambda: _pipeline(n, seed=42))
    assert sink.result == n * (n + 1) // 2


def test_many_random_schedules():
    """The E7 sweep: 50 random schedules, all race-free, all agreeing."""
    expected = 10 * 11 // 2
    for seed in range(50):
        machine, sink = _pipeline(10, seed=seed)
        assert sink.result == expected
        check_reservations_disjoint([t.reservation for t in machine.threads])
        check_refcounts(machine.heap)


@pytest.mark.parametrize("threads", [2, 4, 8])
def test_fanout_scaling(benchmark, threads):
    """One producer per consumer, `threads` pairs sharing the machine."""
    from repro.lang import parse_program

    program = parse_program(
        """
struct data { v : int; }
def producer(n : int) : unit {
  while (n > 0) { let d = new data(v = n); send(d); n = n - 1 }
}
def consumer(n : int) : int {
  let total = 0;
  while (n > 0) { let d = recv(data); total = total + d.v; n = n - 1 };
  total
}
"""
    )

    def run():
        machine = Machine(program, seed=threads)
        consumers = []
        for _ in range(threads):
            machine.spawn("producer", [10])
            consumers.append(machine.spawn("consumer", [10]))
        machine.run()
        return sum(c.result for c in consumers)

    total = benchmark(run)
    assert total == threads * 55
