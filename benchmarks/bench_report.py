#!/usr/bin/env python3
"""Generate the PR-level speed report (``BENCH_PR2.json``).

Runs the :mod:`repro.bench` harness (plain ``time.perf_counter``, no
pytest-benchmark), validates the document against
``benchmarks/bench.schema.json`` (schema ``repro-bench/1``), prints the
human-readable table, and writes the JSON report to the repo root.

    python benchmarks/bench_report.py [--out PATH] [--small]

``run_experiments.py`` invokes this as its BENCH step, so a report that
fails to generate or validate shows up in the experiment failure
accounting like any broken experiment.
"""

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.setrecursionlimit(100_000)
sys.path.insert(0, str(ROOT))
sys.path.insert(0, str(ROOT / "src"))

SCHEMA_PATH = ROOT / "benchmarks" / "bench.schema.json"
DEFAULT_OUT = ROOT / "BENCH_PR2.json"


def generate(out: Path = DEFAULT_OUT, small: bool = False) -> dict:
    """Collect, validate, print, and write the bench report."""
    from repro import bench, telemetry

    doc = bench.collect(small=small)
    schema = json.loads(SCHEMA_PATH.read_text())
    telemetry.validate(doc, schema)  # raises SchemaError on drift
    print(bench.render_table(doc))
    out.write_text(json.dumps(doc, indent=1) + "\n")
    print(f"\nwrote bench report to {out}", file=sys.stderr)
    return doc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--small",
        action="store_true",
        help="small corpus / fewer repeats (CI smoke)",
    )
    args = parser.parse_args(argv)
    generate(out=args.out, small=args.small)
    return 0


if __name__ == "__main__":
    sys.exit(main())
