"""E5 — erasability of dynamic reservation checks (§3.2).

The paper proves that well-typed programs never fail a reservation check,
"hence, a real implementation has no need to track the reservation or to
perform such checks at run time".  We measure the interpreter with and
without the checks on the same workloads: identical results, with the
checked mode paying pure overhead.
"""

import pytest

from repro.corpus import load_program
from repro.runtime.heap import Heap
from repro.runtime.machine import run_function

WORKLOADS = {
    "sll-traverse": ("sll", "sum", 200),
    "dll-walk": ("dll", "dll_length", 200),
}


def _run(name, checks):
    corpus, fn, n = WORKLOADS[name]
    program = load_program(corpus)
    heap = Heap()
    maker = "make_list" if corpus == "sll" else "make_dll"
    lst, _ = run_function(
        program, maker, [n], heap=heap, check_reservations=checks
    )
    result, _ = run_function(
        program, fn, [lst], heap=heap, check_reservations=checks
    )
    return result


@pytest.mark.parametrize("name", sorted(WORKLOADS))
@pytest.mark.parametrize("checks", [True, False], ids=["checked", "erased"])
def test_interpreter_overhead(benchmark, name, checks):
    result = benchmark(lambda: _run(name, checks))
    assert result == _run(name, not checks)  # erasure preserves semantics


def test_erasure_preserves_all_corpus_results():
    """Functional equivalence across the corpus drivers."""
    cases = [
        ("sll", "make_list", "sum", 50),
        ("dll", "make_dll", "dll_sum", 50),
    ]
    for corpus, maker, fn, n in cases:
        results = []
        for checks in (True, False):
            program = load_program(corpus)
            heap = Heap()
            lst, _ = run_function(
                program, maker, [n], heap=heap, check_reservations=checks
            )
            value, _ = run_function(
                program, fn, [lst], heap=heap, check_reservations=checks
            )
            results.append(value)
        assert results[0] == results[1]
