"""E4 — decidability of virtual transformations (§4.6, §5.1).

The greedy checker with the liveness oracle unifies branches in polynomial
time; the naive fallback is a backtracking search whose state space grows
exponentially with the number of in-scope variables.  This benchmark pits
the two against each other on branch-unification instances of growing
width, reproducing the "common-case polynomial, worst-case exponential"
shape.
"""

import pytest

from repro.core.contexts import StaticContext
from repro.core.regions import RegionSupply
from repro.core.unify import match_contexts, search_unify
from repro.lang import ast

NODE = ast.StructType("node")


def _branch_pair(width: int):
    """Two branch outputs over `width` variables: side A focused+explored
    each variable, side B left everything untracked; unification must
    dismantle all of A's tracking."""
    a = StaticContext(RegionSupply())
    for i in range(width):
        region = a.fresh_region()
        a.bind(f"v{i}", NODE, region)
    b = a.clone()
    for i in range(width):
        a.focus(f"v{i}")
        a.explore(f"v{i}", "f")
    live = frozenset(f"v{i}" for i in range(width))
    return a, b, live


@pytest.mark.parametrize("width", [2, 4, 8, 16])
def test_greedy_with_liveness_oracle(benchmark, width):
    def run():
        a, b, live = _branch_pair(width)
        return match_contexts(a, b, live)

    benchmark(run)


@pytest.mark.parametrize("width", [2, 3, 4])
def test_backtracking_search(benchmark, width):
    # The exponential fallback: already at width 4 the frontier blows up.
    def run():
        a, b, live = _branch_pair(width)
        return search_unify(a, b, live, max_depth=2 * width + 1)

    benchmark(run)


def test_search_state_blowup_shape():
    """The E4 series: states explored by the search vs variables in scope —
    exponential, versus the linear work of the oracle-guided path."""
    import time

    print()
    print(f"{'width':>6s} {'greedy (ms)':>12s} {'search (ms)':>12s}")
    for width in (1, 2, 3, 4):
        a, b, live = _branch_pair(width)
        t0 = time.perf_counter()
        match_contexts(a.clone(), b.clone(), live)
        greedy = (time.perf_counter() - t0) * 1000

        t0 = time.perf_counter()
        search_unify(a, b, live, max_depth=2 * width + 1)
        search = (time.perf_counter() - t0) * 1000
        print(f"{width:6d} {greedy:12.2f} {search:12.2f}")
