"""Implementation comparison: big-step generator interpreter vs the fig 7
small-step machine, plus step-throughput of the small-step semantics.

Not a paper experiment per se; an engineering ablation showing both
runtimes agree while trading convenience (generators) against fidelity and
stack behaviour (explicit continuations, constant Python stack).
"""

import pytest

from repro.corpus import load_program
from repro.runtime.heap import Heap
from repro.runtime.machine import run_function
from repro.runtime.smallstep import run_function_smallstep

WORKLOADS = {
    "sll-sum": ("sll", "make_list", "sum", 120),
    "rbtree-build": ("rbtree", None, None, 0),
}


@pytest.mark.parametrize("semantics", ["bigstep", "smallstep"])
def test_list_traversal(benchmark, semantics):
    program = load_program("sll")
    runner = run_function if semantics == "bigstep" else run_function_smallstep

    def run():
        heap = Heap()
        lst, _ = runner(program, "make_list", [100], heap=heap)
        return runner(program, "sum", [lst], heap=heap)[0]

    assert benchmark(run) == 100 * 101 // 2


@pytest.mark.parametrize("semantics", ["bigstep", "smallstep"])
def test_rbtree_build(benchmark, semantics):
    program = load_program("rbtree")
    runner = run_function if semantics == "bigstep" else run_function_smallstep

    def run():
        heap = Heap()
        tree, _ = runner(program, "build_tree", [80, 5], heap=heap)
        return runner(program, "tree_size", [tree], heap=heap)[0]

    assert benchmark(run) > 0


def test_step_throughput(benchmark):
    """Raw small-step transitions per second (fib workload)."""
    from repro.lang import parse_program
    from repro.runtime.smallstep import Config

    program = parse_program(
        "def fib(n : int) : int { if (n < 2) { n } else { fib(n-1) + fib(n-2) } }"
    )

    def run():
        config = Config(program, Heap(), set(), "fib", [15])
        result = config.run()
        return result, config.steps

    result, steps = benchmark(run)
    assert result == 610
    assert steps > 10_000
