#!/usr/bin/env python3
"""Regenerate every table/figure-level result (the EXPERIMENTS.md data).

Runs the E1–E8 experiment series directly (no pytest) and prints the
tables; `python benchmarks/run_experiments.py`.

Every experiment runs inside a fresh telemetry registry and writes its
metrics as structured JSON (`E1_metrics.json`, ...) to ``--metrics-dir``
(default: ``benchmarks/metrics/``); the documents follow
``benchmarks/metrics.schema.json``.  A failing experiment no longer takes
the others down: failures are collected, reported, and turn into a
nonzero exit status.

    python benchmarks/run_experiments.py [--only E2,E4] [--metrics-dir DIR]
"""

import argparse
import sys
import time
import traceback
from pathlib import Path

sys.setrecursionlimit(100_000)
sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def e1_table1():
    from repro.baselines import compare_with_paper, render_table

    print("=" * 70)
    print("E1 — Table 1: comparison with related language designs")
    print("=" * 70)
    print(render_table())
    matches = compare_with_paper()
    print(f"rows matching the paper: {sum(matches.values())}/{len(matches)}")
    print()


def e2_checker_speed():
    from repro.core.checker import Checker
    from repro.corpus import corpus_names, load_program
    from repro.verifier import Verifier

    print("=" * 70)
    print("E2 — checker performance (§5: 'checks our most complex examples "
          "in seconds')")
    print("=" * 70)
    print(f"{'program':>8s} {'functions':>10s} {'check (ms)':>11s} "
          f"{'verify (ms)':>12s} {'deriv nodes':>12s}")
    for name in corpus_names():
        program = load_program(name)
        t0 = time.perf_counter()
        derivation = Checker(program).check_program()
        check_ms = (time.perf_counter() - t0) * 1000
        t0 = time.perf_counter()
        nodes = Verifier(program).verify_program(derivation)
        verify_ms = (time.perf_counter() - t0) * 1000
        print(
            f"{name:>8s} {len(program.funcs):10d} {check_ms:11.1f} "
            f"{verify_ms:12.1f} {nodes:12d}"
        )
    print()


def e3_disconnected():
    from benchmarks.test_disconnected import (
        SIZES,
        build_buggy,
        build_detached,
    )
    from repro.runtime.disconnect import (
        efficient_disconnected,
        naive_disconnected,
    )

    print("=" * 70)
    print("E3 — `if disconnected` cost (objects visited; §5.2)")
    print("=" * 70)
    print(f"{'n':>6s} {'efficient':>10s} {'naive':>8s} {'buggy-eff':>10s}")
    for n in SIZES:
        heap, tail, head = build_detached(n)
        ok, eff = efficient_disconnected(heap, tail, head)
        assert ok
        _, nai = naive_disconnected(heap, tail, head)
        heap2, tail2, head2 = build_buggy(n)
        notok, bug = efficient_disconnected(heap2, tail2, head2)
        assert not notok
        print(
            f"{n:6d} {eff.objects_visited:10d} {nai.objects_visited:8d} "
            f"{bug.objects_visited:10d}"
        )
    print()


def e4_search():
    from benchmarks.test_search import _branch_pair
    from repro.core.unify import match_contexts, search_unify

    print("=" * 70)
    print("E4 — greedy + liveness oracle vs backtracking search (§4.6, §5.1)")
    print("=" * 70)
    print(f"{'width':>6s} {'greedy (ms)':>12s} {'search (ms)':>12s}")
    for width in (1, 2, 3, 4):
        a, b, live = _branch_pair(width)
        t0 = time.perf_counter()
        match_contexts(a.clone(), b.clone(), live)
        greedy = (time.perf_counter() - t0) * 1000
        t0 = time.perf_counter()
        search_unify(a, b, live, max_depth=2 * width + 1)
        search = (time.perf_counter() - t0) * 1000
        print(f"{width:6d} {greedy:12.2f} {search:12.2f}")
    # Show the oracle keeps scaling where the search cannot go at all.
    for width in (8, 16):
        a, b, live = _branch_pair(width)
        t0 = time.perf_counter()
        match_contexts(a, b, live)
        greedy = (time.perf_counter() - t0) * 1000
        print(f"{width:6d} {greedy:12.2f} {'(intractable)':>12s}")
    print()


def e5_reservation_overhead():
    from repro.corpus import load_program
    from repro.runtime.heap import Heap
    from repro.runtime.machine import run_function

    print("=" * 70)
    print("E5 — dynamic reservation checks are erasable (§3.2)")
    print("=" * 70)
    print(f"{'workload':>14s} {'checked (ms)':>13s} {'erased (ms)':>12s} "
          f"{'overhead':>9s}")
    for label, corpus, maker, fn, n in (
        ("sll-traverse", "sll", "make_list", "sum", 150),
        ("dll-walk", "dll", "make_dll", "dll_length", 300),
    ):
        times = {}
        for checks in (True, False):
            program = load_program(corpus)
            best = float("inf")
            for _ in range(5):
                heap = Heap()
                lst, _ = run_function(
                    program, maker, [n], heap=heap, check_reservations=checks
                )
                t0 = time.perf_counter()
                run_function(
                    program, fn, [lst], heap=heap, check_reservations=checks
                )
                best = min(best, (time.perf_counter() - t0) * 1000)
            times[checks] = best
        overhead = (times[True] / times[False] - 1) * 100
        print(
            f"{label:>14s} {times[True]:13.2f} {times[False]:12.2f} "
            f"{overhead:8.0f}%"
        )
    print()


def e6_writes():
    from repro.baselines import destructive_remove_tail, fearless_remove_tail
    from repro.corpus import load_program
    from repro.runtime.heap import Heap
    from repro.runtime.machine import run_function

    print("=" * 70)
    print("E6 — remove_tail heap writes: fearless vs destructive reads (§1)")
    print("=" * 70)
    print(f"{'n':>6s} {'fearless':>9s} {'destructive':>12s}")
    for n in (4, 16, 64, 256, 1024):
        program = load_program("sll")
        heap = Heap()
        lst, _ = run_function(program, "make_list", [n], heap=heap)
        head = heap.obj(lst).fields["hd"]
        fearless = fearless_remove_tail(heap, program, head)
        heap2 = Heap()
        lst2, _ = run_function(program, "make_list", [n], heap=heap2)
        head2 = heap2.obj(lst2).fields["hd"]
        destructive = destructive_remove_tail(heap2, head2)
        print(f"{n:6d} {fearless.writes:9d} {destructive.writes:12d}")
    print()


def e7_concurrency():
    from repro.analysis import check_refcounts, check_reservations_disjoint
    from repro.corpus import load_program
    from repro.runtime.machine import Machine

    print("=" * 70)
    print("E7 — fearless concurrency under random schedules (§6–§7)")
    print("=" * 70)
    program = load_program("queue")
    schedules = 50
    violations = 0
    for seed in range(schedules):
        machine = Machine(program, seed=seed)
        machine.spawn("source", [10])
        machine.spawn("relay", [10])
        sink = machine.spawn("sink", [10])
        machine.run()
        assert sink.result == 55
        check_reservations_disjoint([t.reservation for t in machine.threads])
        check_refcounts(machine.heap)
    print(
        f"{schedules} random schedules of the 3-thread queue pipeline: "
        f"{violations} reservation violations, all results identical, "
        "reservations pairwise disjoint, refcounts exact"
    )
    print()


def e8_semantics_agreement():
    from repro.corpus import load_program
    from repro.runtime.heap import Heap
    from repro.runtime.machine import run_function
    from repro.runtime.smallstep import run_function_smallstep

    print("=" * 70)
    print("E8 — ablation: big-step vs fig 7 small-step machine agreement")
    print("=" * 70)
    print(f"{'workload':>16s} {'big (ms)':>9s} {'small (ms)':>11s} "
          f"{'result/traffic':>15s}")
    for label, corpus, maker, n, fn in (
        ("sll sum", "sll", "make_list", 120, "sum"),
        ("rbtree build", "rbtree", None, 60, None),
        ("dll drain", "dll", "make_dll", 40, "dll_sum"),
    ):
        program = load_program(corpus)
        stats = {}
        for name, runner in (("big", run_function), ("small", run_function_smallstep)):
            heap = Heap()
            t0 = time.perf_counter()
            if corpus == "rbtree":
                tree, _ = runner(program, "build_tree", [n, 5], heap=heap)
                result, _ = runner(program, "tree_size", [tree], heap=heap)
            else:
                lst, _ = runner(program, maker, [n], heap=heap)
                result, _ = runner(program, fn, [lst], heap=heap)
            stats[name] = ((time.perf_counter() - t0) * 1000, result,
                           heap.reads, heap.writes)
        agree = (stats["big"][1:] == stats["small"][1:])
        print(f"{label:>16s} {stats['big'][0]:9.2f} {stats['small'][0]:11.2f} "
              f"{'identical' if agree else 'DIVERGED':>15s}")
        assert agree
    print()


def bench_speed_report():
    """The PR-level speed report (BENCH_PR2.json); a report that fails to
    generate or validate against bench.schema.json fails like any
    experiment."""
    import bench_report

    print("=" * 70)
    print("BENCH — PR speed report (copy-on-write + erasure)")
    print("=" * 70)
    bench_report.generate()
    print()


def fuzz_campaign():
    """A fixed-seed differential-fuzzing campaign; any oracle violation
    fails the experiment, and the report must validate against
    fuzz.schema.json."""
    import json

    from repro.fuzz import FuzzConfig, run_campaign
    from repro.telemetry import validate

    print("=" * 70)
    print("FUZZ — differential soundness fuzzing (checker vs verifier vs "
          "runtime vs erasure)")
    print("=" * 70)
    report = run_campaign(FuzzConfig(seed=0, budget=100, schedules=3))
    schema = json.loads(
        (Path(__file__).resolve().parent / "fuzz.schema.json").read_text()
    )
    validate(report, schema)
    cases = report["cases"]
    print(
        f"seed {report['seed']}: {cases['generated']} programs "
        f"({cases['accepted']} accepted), {cases['mutants']} mutants, "
        f"{report['schedules']['random']} random + "
        f"{report['schedules']['enumerated']} enumerated schedules"
    )
    coverage = " ".join(
        f"{rule}={count}" for rule, count in report["coverage"].items()
    )
    print(f"vt coverage: {coverage}")
    for violation in report["violations"]:
        print(f"VIOLATION [{violation['oracle']}]: {violation['detail']}")
    assert all(report["coverage"].values()), "V1–V5 coverage incomplete"
    assert report["clean"], f"{len(report['violations'])} oracle violations"
    print("0 oracle violations")
    print()


EXPERIMENTS = (
    ("E1", e1_table1),
    ("E2", e2_checker_speed),
    ("E3", e3_disconnected),
    ("E4", e4_search),
    ("E5", e5_reservation_overhead),
    ("E6", e6_writes),
    ("E7", e7_concurrency),
    ("E8", e8_semantics_agreement),
    ("FUZZ", fuzz_campaign),
    ("BENCH", bench_speed_report),
)


def main(argv=None) -> int:
    from repro import telemetry

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only",
        default=None,
        metavar="IDS",
        help="comma-separated experiment ids to run (e.g. E2,E4)",
    )
    parser.add_argument(
        "--metrics-dir",
        default=str(Path(__file__).resolve().parent / "metrics"),
        metavar="DIR",
        help="where to write the per-experiment *_metrics.json documents",
    )
    args = parser.parse_args(argv)

    selected = EXPERIMENTS
    if args.only:
        wanted = {ident.strip().upper() for ident in args.only.split(",")}
        unknown = wanted - {ident for ident, _fn in EXPERIMENTS}
        if unknown:
            parser.error(f"unknown experiment ids: {sorted(unknown)}")
        selected = [(i, fn) for i, fn in EXPERIMENTS if i in wanted]

    metrics_dir = Path(args.metrics_dir)
    metrics_dir.mkdir(parents=True, exist_ok=True)

    failures = []
    for ident, experiment in selected:
        # Fresh registry per experiment so each JSON document holds one
        # experiment's metrics only.
        reg = telemetry.enable()
        t0 = time.perf_counter()
        try:
            experiment()
        except Exception:
            failures.append(ident)
            print(f"!! {ident} FAILED:", file=sys.stderr)
            traceback.print_exc()
            print()
        finally:
            telemetry.disable()
            reg.counter("experiment.wall_ms").value = int(
                (time.perf_counter() - t0) * 1000
            )
            out = metrics_dir / f"{ident}_metrics.json"
            out.write_text(telemetry.export_json(reg))

    print(f"metrics written to {metrics_dir}/")
    if failures:
        print(f"FAILED experiments: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("all experiments regenerated")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
