"""E6 — heap writes for remove_tail: fearless vs destructive reads (§1, §9.1).

"[I]n these systems removing the tail of a recursively linear singly linked
list incurs a write to each list node traversed" — while fig 2's version
performs exactly one heap mutation.  Regenerates the write-count series and
benchmarks both.
"""

import pytest

from repro.baselines import destructive_remove_tail, fearless_remove_tail
from repro.corpus import load_program
from repro.runtime.heap import Heap
from repro.runtime.machine import run_function

SIZES = [4, 16, 64, 256, 1024]


def _fresh_list(n):
    program = load_program("sll")
    heap = Heap()
    lst, _ = run_function(program, "make_list", [n], heap=heap)
    head = heap.obj(lst).fields["hd"]
    return program, heap, head


@pytest.mark.parametrize("n", SIZES)
def test_fearless_writes(benchmark, n):
    def run():
        program, heap, head = _fresh_list(n)
        return fearless_remove_tail(heap, program, head)

    result = benchmark(run)
    assert result.writes == 1  # O(1) mutations regardless of n


@pytest.mark.parametrize("n", SIZES)
def test_destructive_writes(benchmark, n):
    def run():
        program, heap, head = _fresh_list(n)
        return destructive_remove_tail(heap, head)

    result = benchmark(run)
    assert result.writes >= 2 * (n - 2)  # a write per node, both directions


def test_write_count_series():
    """The E6 table: writes vs list size, both systems."""
    print()
    print(f"{'n':>6s} {'fearless':>9s} {'destructive':>12s} {'ratio':>7s}")
    for n in SIZES:
        program, heap, head = _fresh_list(n)
        fearless = fearless_remove_tail(heap, program, head)
        program, heap, head = _fresh_list(n)
        destructive = destructive_remove_tail(heap, head)
        ratio = destructive.writes / max(fearless.writes, 1)
        print(
            f"{n:6d} {fearless.writes:9d} {destructive.writes:12d} {ratio:7.0f}"
        )
        assert fearless.writes == 1
        assert destructive.writes >= 2 * (n - 2)
