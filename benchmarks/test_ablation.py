"""Ablations of the checker's design choices (DESIGN.md §5).

* **Liveness oracle vs search-only** (§5.1): with the oracle disabled every
  join runs the bounded backtracking search.  On the corpus this is not
  just slower on wide contexts — it is *incomplete*: fig 5's dll
  remove_tail stops type-checking because the search cannot find the
  branch unification the oracle derives directly.

* **Derivation recording**: context snapshots at every node cost real time;
  `record=False` measures the checker alone (what a production compiler
  would run), `record=True` the certifying prover.
"""

import pytest

from repro.baselines.profiles import SEARCH_ONLY
from repro.core.checker import Checker, DEFAULT_PROFILE
from repro.core.errors import TypeError_, UnificationError
from repro.corpus import corpus_names, load_program
from repro.lang import parse_program


class TestOracleAblation:
    def test_oracle_needed_for_completeness_on_fig5(self):
        # The dll corpus (fig 5's remove_tail) requires the liveness-guided
        # unifier; bounded search alone cannot join the if-disconnected
        # branches.
        program = load_program("dll")
        Checker(program, DEFAULT_PROFILE, record=False).check_program()
        with pytest.raises(UnificationError):
            Checker(program, SEARCH_ONLY, record=False).check_program()

    @pytest.mark.parametrize("name", ["sll", "queue", "rbtree", "algorithms"])
    def test_search_only_handles_small_joins(self, name):
        # Programs whose joins are narrow still check without the oracle
        # ("even a naive search suffices to obtain completeness", §4.6) —
        # within the bounded depth.
        program = load_program(name)
        Checker(program, SEARCH_ONLY, record=False).check_program()


@pytest.mark.parametrize("name", ["dll", "rbtree"])
@pytest.mark.parametrize("record", [True, False], ids=["certifying", "plain"])
def test_recording_overhead(benchmark, name, record):
    program = load_program(name)
    benchmark(
        lambda: Checker(program, DEFAULT_PROFILE, record=record).check_program()
    )


@pytest.mark.parametrize("impl", ["oracle", "search"])
def test_join_strategies(benchmark, impl):
    program = load_program("queue")
    profile = DEFAULT_PROFILE if impl == "oracle" else SEARCH_ONLY
    benchmark(lambda: Checker(program, profile, record=False).check_program())
