#!/usr/bin/env python3
"""The tale of two remove_tails (figs 3–5).

* fig 4's version is subtly broken: on a size-1 circular list, ``hd`` and
  ``hd.prev`` alias, so the "detached" payload is still reachable from the
  list.  The type system rejects it.
* fig 5's version adds the ``if disconnected`` dynamic check; it
  type-checks, works on every size, and the run-time check visits only a
  couple of objects (§5.2) — we print the traversal statistics.

Also draws the dynamic region graph of a list (fig 8).
"""

from repro import Checker, TypeError_, parse_program, run_function
from repro.analysis import build_region_graph, check_iso_domination, check_refcounts
from repro.corpus import load_program, load_source
from repro.runtime.heap import Heap

FIG4 = """
struct data { v : int; }
struct dll_node { iso payload : data; next : dll_node; prev : dll_node; }
struct dll { iso hd : dll_node?; }

def remove_tail(l : dll) : data? {
  let some(hd) = l.hd in {
    let tail = hd.prev;
    tail.prev.next = hd;
    hd.prev = tail.prev;
    some(tail.payload)
  } else { none }
}
"""


def main() -> None:
    print("fig 4 (broken removal):")
    try:
        Checker(parse_program(FIG4)).check_program()
        raise AssertionError("fig 4 must be rejected")
    except TypeError_ as exc:
        print(f"  rejected: {type(exc).__name__}")
        print(f"  ({str(exc).splitlines()[0][:100]}...)")

    print("\nfig 5 (fixed removal, from the corpus dll.fcl): type-checks.")
    program = load_program("dll")
    Checker(program).check_program()

    heap = Heap()
    lst, _ = run_function(program, "make_dll", [6], heap=heap)
    print(f"  built a circular dll of 6 nodes ({len(heap)} heap objects)")

    graph = build_region_graph(heap, [lst])
    spine = max(len(r) for r in graph.regions)
    print(
        f"  dynamic region graph (fig 8): {len(graph.regions)} regions, "
        f"spine region has {spine} nodes, iso edges form a tree: "
        f"{graph.is_tree()}"
    )

    for size_left in range(6, 0, -1):
        payload, interp = run_function(program, "remove_tail", [lst], heap=heap)
        stats = interp.stats.disconnect_checks[-1] if interp.stats.disconnect_checks else None
        value = heap.obj(payload).fields["v"] if payload is not None else None
        visited = stats.objects_visited if stats else "-"
        print(
            f"  remove_tail on size {size_left}: payload v={value}, "
            f"if-disconnected visited {visited} objects"
        )
        check_refcounts(heap)
        check_iso_domination(heap, [lst])

    print("  all removals done; refcounts and iso-domination audits passed")


if __name__ == "__main__":
    main()
