#!/usr/bin/env python3
"""The §8 red-black tree: rotations as ownership shuffles.

Builds a tree through the FCL implementation (corpus rbtree.fcl), checks
the red-black invariants *from inside the language* (black_height /
check_bst are FCL functions), audits the heap from outside, and finally
sends a detached subtree payload... er, the whole tree, to another thread.
"""

from repro import Checker, Machine, Verifier, parse_program, run_function
from repro.analysis import build_region_graph, check_iso_domination, check_refcounts
from repro.corpus import load_program, load_source
from repro.runtime.heap import Heap

LIMIT = 1 << 30


def main() -> None:
    program = load_program("rbtree")
    derivation = Checker(program).check_program()
    nodes = Verifier(program).verify_program(derivation)
    print(
        f"rbtree.fcl: {len(program.funcs)} functions type-check; "
        f"derivation of {nodes} nodes verified"
    )

    heap = Heap()
    tree, _ = run_function(program, "build_tree", [200, 31337], heap=heap)
    size, _ = run_function(program, "tree_size", [tree], heap=heap)
    valid, _ = run_function(program, "rb_valid", [tree, -1, LIMIT], heap=heap)
    print(f"built a tree of {size} distinct keys; rb_valid = {valid}")

    bh, _ = run_function(program, "black_height", [heap.obj(tree).fields["root"]], heap=heap)
    print(f"black height = {bh}")

    graph = build_region_graph(heap, [tree])
    print(
        f"dynamic regions: {len(graph.regions)} (every node is its own "
        f"region — children are iso); region graph is a tree: {graph.is_tree()}"
    )
    check_refcounts(heap)
    check_iso_domination(heap, [tree])
    print("refcount and iso-domination audits passed")

    # Fearless hand-off: one thread grows a tree, then sends the whole
    # structure to a second thread that queries it.
    concurrent = parse_program(
        load_source("rbtree")
        + """
def grower(n : int, seed : int) : unit {
  let t = build_tree(n, seed);
  send(t)
}

def querier(k : int) : bool {
  let t = recv(rbtree);
  rb_contains(t, k)
}
"""
    )
    Checker(concurrent).check_program()
    machine = Machine(concurrent, seed=99)
    machine.spawn("grower", [50, 4242])
    probe_key = (4242 * 75 + 74) % 65537  # first inserted key
    querier = machine.spawn("querier", [probe_key])
    machine.run()
    print(
        f"sent a 50-key tree across threads; querier found key "
        f"{probe_key}: {querier.result}"
    )


if __name__ == "__main__":
    main()
