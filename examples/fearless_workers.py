#!/usr/bin/env python3
"""A fearless worker pool: whole data structures handed between threads.

A coordinator thread builds red-black trees and ships each one — the
entire object graph, spine and payload — to a worker thread with a single
``send``.  Workers query their trees and return integer summaries boxed in
result records.  No locks, no copies, no races: each tree's region simply
changes hands.

Runs on the *small-step* machine (the fig 7 semantics with an explicit
continuation stack), interleaving all threads one transition at a time
while auditing reservation disjointness.
"""

from repro import Checker, parse_program
from repro.analysis import check_refcounts
from repro.corpus import load_source
from repro.runtime.smallstep import SmallStepMachine

WORKERS = 4
KEYS_PER_TREE = 40

SOURCE = (
    load_source("rbtree")
    + """
struct report { total : int; found : int; }

def coordinator(workers : int, n : int) : unit {
  let i = 0;
  while (i < workers) {
    let t = build_tree(n, 1000 + i);
    send(t);
    i = i + 1
  }
}

def worker(n : int) : unit {
  let t = recv(rbtree);
  let r = new report();
  r.total = tree_size(t);
  r.found = count_range(t, 0, 65537);
  send(r)
}

def count_range(t : rbtree, lo : int, hi : int) : int {
  count_node(t.root, lo, hi)
}

def count_node(n : rbnode?, lo : int, hi : int) : int {
  let some(node) = n in {
    let here = if (node.key >= lo && node.key < hi) { 1 } else { 0 };
    here + count_node(node.left, lo, hi) + count_node(node.right, lo, hi)
  } else { 0 }
}

def collector(workers : int) : int {
  let total = 0;
  while (workers > 0) {
    let r = recv(report);
    total = total + r.total;
    workers = workers - 1
  };
  total
}
"""
)


def main() -> None:
    program = parse_program(SOURCE)
    Checker(program).check_program()
    print(
        f"worker-pool program type-checks ({len(program.funcs)} functions); "
        "trees may cross thread boundaries freely"
    )

    machine = SmallStepMachine(program, seed=7)
    machine.spawn("coordinator", [WORKERS, KEYS_PER_TREE])
    for _ in range(WORKERS):
        machine.spawn("worker", [KEYS_PER_TREE])
    collector = machine.spawn("collector", [WORKERS])
    machine.run()

    total_steps = sum(c.steps for c in machine.configs)
    print(
        f"{WORKERS} workers each received a {KEYS_PER_TREE}-key tree; "
        f"collector saw {collector.result} keys total "
        f"(expected {WORKERS * KEYS_PER_TREE})"
    )
    print(
        f"{total_steps} small-step transitions, reservations disjoint: "
        f"{machine.reservations_disjoint()}"
    )
    check_refcounts(machine.heap)
    print("stored reference counts exact after all transfers")


if __name__ == "__main__":
    main()
