#!/usr/bin/env python3
"""Fearless concurrency: the intro's message-queue workload, live.

Three threads — a source, a relay that buffers items in a linked list, and
a sink — exchange heap objects through typed ``send``/``recv`` rendezvous.
Elements pushed onto the relay's list *arrived from another thread*;
elements popped off it are *immediately sent onward*: the exact pattern the
paper's introduction motivates, with zero locks and zero data races.

The demo then runs a deliberately racy variant and shows it being rejected
statically by the type system *and* caught dynamically by the reservation
semantics when forced to run anyway.
"""

from repro import Checker, Machine, ReservationViolation, TypeError_, parse_program
from repro.corpus import load_source
from repro.analysis import check_refcounts, check_reservations_disjoint


def main() -> None:
    program = parse_program(load_source("queue"))
    Checker(program).check_program()
    print("queue.fcl type-checks: threads can exchange the list payloads")

    n = 50
    machine = Machine(program, seed=2022)
    machine.spawn("source", [n])
    machine.spawn("relay", [n])
    sink = machine.spawn("sink", [n])
    machine.run()
    expected = n * (n + 1) // 2
    print(f"sink received total = {sink.result} (expected {expected})")

    check_reservations_disjoint([t.reservation for t in machine.threads])
    check_refcounts(machine.heap)
    print("invariants hold: reservations disjoint, refcounts exact")

    # -- the racy variant ---------------------------------------------------
    racy = """
    struct data { v : int; }

    def bad_producer() : unit {
      let d = new data(v = 1);
      send(d);
      d.v = 99                 // use after send: a destructive race
    }

    def bad_consumer() : int {
      let d = recv(data);
      d.v
    }
    """
    racy_program = parse_program(racy)
    try:
        Checker(racy_program).check_program()
        raise AssertionError("the racy program must not type-check")
    except TypeError_ as exc:
        print(f"\nracy variant rejected statically: {type(exc).__name__}: {exc}")

    machine = Machine(racy_program, seed=7)
    machine.spawn("bad_producer")
    machine.spawn("bad_consumer")
    try:
        machine.run()
        raise AssertionError("the dynamic reservation check must fire")
    except ReservationViolation as exc:
        print(f"and caught dynamically when run unchecked-by-types: {exc}")


if __name__ == "__main__":
    main()
