#!/usr/bin/env python3
"""A guided tour of the type system's moving parts, on the core API.

Walks the machinery of §4 directly — no surface language — showing how the
tracking contexts evolve under the virtual transformations V1–V5, why the
focus invariant ("one tracked variable per region") matters, how ⊥ fields
arise and are repaired, and what branch unification does.  Then replays
the same story at the surface level with the checker's derivation output.
"""

from repro.core.checker import Checker
from repro.core.contexts import ContextError, StaticContext
from repro.core.regions import RegionSupply
from repro.core.unify import match_contexts
from repro.lang import ast, parse_program


def show(title: str, ctx: StaticContext) -> None:
    print(f"  {title:42s} {ctx}")


def main() -> None:
    node = ast.StructType("node")

    print("1. Regions and the virtual transformations (fig 11)")
    ctx = StaticContext(RegionSupply())
    r = ctx.fresh_region()
    ctx.bind("x", node, r)
    show("bind x in a fresh region:", ctx)

    ctx.focus("x")  # V1
    show("V1 Focus x:", ctx)

    target = ctx.explore("x", "next")  # V3
    show("V3 Explore x.next (fresh target region):", ctx)

    ctx.bind("y", node, target)
    show("bind y into the explored region:", ctx)

    print("\n2. The focus invariant (§4.2): aliases cannot both be tracked")
    ctx.bind("x2", node, r)  # an alias of x (same region)
    try:
        ctx.focus("x2")
    except ContextError as exc:
        print(f"  focus x2 rejected: {exc}")

    print("\n3. Retract (V4) invalidates everything in the dropped region")
    ctx.drop_var("y")
    ctx.retract("x", "next")
    show("V4 Retract x.next (region gone, y dead):", ctx)
    ctx.unfocus("x")  # V2
    show("V2 Unfocus x:", ctx)

    print("\n4. Attach (V5) merges regions and substitutes everywhere")
    other = ctx.fresh_region()
    ctx.bind("z", node, other)
    show("z in its own region:", ctx)
    ctx.attach(other, r)
    show("V5 Attach z's region into x's:", ctx)

    print("\n5. ⊥ — invalidated tracked fields (fig 5's l.hd)")
    ctx2 = StaticContext(RegionSupply(10))
    r2 = ctx2.fresh_region()
    ctx2.bind("l", node, r2)
    ctx2.focus("l")
    spine = ctx2.explore("l", "hd")
    show("l focused with hd tracked:", ctx2)
    ctx2.invalidate_field("l", "hd")
    show("hd invalidated (⊥) by a region split:", ctx2)
    try:
        ctx2.retract("l", "hd")
    except ContextError as exc:
        print(f"  retract of a ⊥ field rejected: {exc}")
    fresh = ctx2.fresh_region()
    ctx2.set_field_target("l", "hd", fresh)
    show("repaired by assignment (T7):", ctx2)

    print("\n6. Branch unification (the §5.1 oracle at work)")
    a = StaticContext(RegionSupply(100))
    ra = a.fresh_region()
    a.bind("v", node, ra)
    b = a.clone()
    a.focus("v")
    a.explore("v", "next")
    print(f"  then-branch: {a}")
    print(f"  else-branch: {b}")
    _renaming, steps_a, steps_b = match_contexts(a, b, frozenset({"v"}))
    print(f"  unified    : {a}")
    print(f"  steps applied to the richer side: "
          f"{', '.join(str(s) for s in steps_a) or '(none)'}")

    print("\n7. The same story at the surface: a derivation with TS1 steps")
    program = parse_program(
        """
struct data { v : int; }
struct box { iso inner : data?; }

def peek(b : box) : int {
  let some(d) = b.inner in { d.v } else { 0 }
}
"""
    )
    derivation = Checker(program).check_program()
    print(derivation.funcs["peek"].body.render())


if __name__ == "__main__":
    main()
