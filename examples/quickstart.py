#!/usr/bin/env python3
"""Quickstart: parse, type-check, verify, and run an FCL program.

Walks through the full pipeline of the reproduction:

1. parse FCL source (the fig 1/fig 2 singly linked list);
2. type-check it with the tempered-domination checker (the prover);
3. independently verify the emitted typing derivation (the verifier);
4. execute it on the reservation-checked runtime.
"""

from repro import Checker, Verifier, parse_program, run_function
from repro.runtime.heap import Heap

SOURCE = """
struct data { v : int; }

struct sll_node {
  iso payload : data;       // fig 1: iso payloads ...
  iso next : sll_node?;     // ... and a recursively linear spine
}

struct sll { iso hd : sll_node?; }

// A non-iso container: `kept` lives in the box's own region, so storing
// into it merges the payload's region with the box's (V5-Attach).
struct box { kept : data?; }

def make_list(n : int) : sll {
  let l = new sll();
  while (n > 0) {
    let d = new data(v = n);
    let node = new sll_node(payload = d, next = l.hd);
    l.hd = some(node);
    n = n - 1
  };
  l
}

// fig 2: remove the final element.  The returned payload is a dominating
// reference, fully detached from the list — the caller could send it to
// another thread immediately.
def remove_tail(n : sll_node) : data? {
  let some(next) = n.next in {
    if (is_none(next.next)) {
      n.next = none;
      some(next.payload)
    } else { remove_tail(next) }
  } else { none }
}

def demo() : int {
  let l = make_list(5);
  let b = new box();
  let some(h) = l.hd in {
    let some(d) = remove_tail(h) in {
      b.kept = some(d);               // attach d's region into b's
      let some(k) = b.kept in { k.v } else { 0 - 3 }
    } else { 0 - 1 }
  } else { 0 - 2 }
}
"""


def main() -> None:
    print("1. parsing ...")
    program = parse_program(SOURCE)
    print(f"   structs: {sorted(program.structs)}")
    print(f"   functions: {sorted(program.funcs)}")

    print("2. type checking (the prover) ...")
    derivation = Checker(program).check_program()
    print(f"   accepted; derivation has {derivation.node_count()} nodes")

    print("3. verifying the derivation (the independent verifier) ...")
    nodes = Verifier(program).verify_program(derivation)
    print(f"   verified {nodes} nodes")

    print("4. running on the reservation-checked machine ...")
    heap = Heap()
    result, interp = run_function(program, "demo", heap=heap)
    print(f"   demo() = {result}   (the detached tail payload; expected 5)")
    print(
        f"   heap traffic: {heap.reads} reads, {heap.writes} writes; "
        f"0 reservation violations by construction"
    )

    print("\nA peek at the remove_tail derivation:")
    print(derivation.funcs["remove_tail"].body.render()[:1200])


if __name__ == "__main__":
    main()
