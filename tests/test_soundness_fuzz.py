"""The soundness theorem, fuzzed.

Programs are generated from a grammar that mixes safe statements with
deliberately dangerous ones (use-after-send, aliasing, asymmetric branch
consumption, iso cycles).  For every generated program:

* if the checker **accepts**, the derivation must verify and the program
  must run to completion under full dynamic reservation checking, with
  exact refcounts afterwards — no accepted program may get stuck
  (progress + preservation, executably);
* if the checker **rejects**, the error must be a well-formed
  :class:`TypeError_` (the checker never crashes).

The run also reports (via hypothesis `note`) how many programs were
accepted vs rejected so the mix stays meaningful.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, note, settings

from repro.analysis import check_refcounts
from repro.core.checker import Checker
from repro.core.errors import TypeError_
from repro.lang import parse_program
from repro.runtime.heap import Heap
from repro.runtime.machine import ReservationViolation, run_function
from repro.verifier import Verifier

HEADER = """
struct data { v : int; }
struct box { iso inner : data?; tag : int; }
struct cell { other : cell; tag : int; }

def sink(d : data) : unit consumes d { send(d) }
def reader(d : data) : int { d.v }
def pair(a, b : data) : int { a.v + b.v }
"""


@st.composite
def wild_programs(draw):
    names_data = []
    names_box = []
    lines = []

    names_cell = []

    def stmt(depth):
        kind = draw(
            st.sampled_from(
                [
                    "new_data",
                    "new_box",
                    "new_cell",
                    "fill",
                    "read",
                    "send_var",       # may be a use-after-send setup
                    "use_var",        # may use a consumed variable
                    "alias_call",     # may alias arguments
                    "reader_call",
                    "branchy",
                    "iso_cycleish",
                    "link_cells",     # region merges
                    "disconnected",   # region splits (T15)
                ]
            )
        )
        pad = "  " * (depth + 1)
        if kind == "new_data":
            name = f"d{len(names_data)}"
            names_data.append(name)
            lines.append(f"{pad}let {name} = new data(v = {len(names_data)});")
        elif kind == "new_box":
            name = f"b{len(names_box)}"
            names_box.append(name)
            lines.append(f"{pad}let {name} = new box();")
        elif kind == "fill" and names_box and names_data:
            box = draw(st.sampled_from(names_box))
            d = draw(st.sampled_from(names_data))
            lines.append(f"{pad}{box}.inner = some({d});")
        elif kind == "read" and names_box:
            box = draw(st.sampled_from(names_box))
            lines.append(
                f"{pad}acc = acc + (let some(x) = {box}.inner in {{ x.v }} "
                f"else {{ 0 }});"
            )
        elif kind == "send_var" and names_data:
            d = draw(st.sampled_from(names_data))
            lines.append(f"{pad}sink({d});")
        elif kind == "use_var" and names_data:
            d = draw(st.sampled_from(names_data))
            lines.append(f"{pad}acc = acc + {d}.v;")
        elif kind == "alias_call" and names_data:
            a = draw(st.sampled_from(names_data))
            b = draw(st.sampled_from(names_data))
            lines.append(f"{pad}acc = acc + pair({a}, {b});")
        elif kind == "reader_call" and names_data:
            d = draw(st.sampled_from(names_data))
            lines.append(f"{pad}acc = acc + reader({d});")
        elif kind == "branchy" and depth < 1:
            lines.append(f"{pad}if (acc > 2) {{")
            stmt(depth + 1)
            lines.append(f"{pad}}} else {{")
            stmt(depth + 1)
            lines.append(f"{pad}}};")
        elif kind == "iso_cycleish" and names_box and names_data:
            box = draw(st.sampled_from(names_box))
            lines.append(f"{pad}{box}.inner = none;")
        elif kind == "new_cell":
            name = f"c{len(names_cell)}"
            names_cell.append(name)
            lines.append(f"{pad}let {name} = new cell();")
        elif kind == "link_cells" and len(names_cell) >= 2:
            a = draw(st.sampled_from(names_cell))
            b = draw(st.sampled_from(names_cell))
            lines.append(f"{pad}{a}.other = {b};")
        elif kind == "disconnected" and len(names_cell) >= 2 and depth < 1:
            a = draw(st.sampled_from(names_cell))
            b = draw(st.sampled_from(names_cell))
            # May or may not share a region (depending on earlier links):
            # the checker must reject cross-region uses and accept
            # same-region ones; dynamically either branch may run.
            lines.append(f"{pad}if disconnected({a}, {b}) {{")
            lines.append(f"{pad}  acc = acc + 1;")
            lines.append(f"{pad}}} else {{")
            lines.append(f"{pad}  acc = acc + 2;")
            lines.append(f"{pad}}};")
        else:
            lines.append(f"{pad}();")

    count = draw(st.integers(min_value=2, max_value=12))
    lines.append("  let acc = 0;")
    for _ in range(count):
        stmt(0)
    lines.append("  acc")
    return HEADER + "def main() : int {\n" + "\n".join(lines) + "\n}\n"


ACCEPTED = {"count": 0}
REJECTED = {"count": 0}


@given(wild_programs())
@settings(max_examples=250, deadline=None)
def test_accepted_implies_safe_rejected_implies_typeerror(source):
    program = parse_program(source)
    try:
        derivation = Checker(program).check_program()
    except TypeError_:
        REJECTED["count"] += 1
        return  # a proper, typed rejection
    ACCEPTED["count"] += 1
    note(f"accepted so far: {ACCEPTED['count']}, rejected: {REJECTED['count']}")
    # Accepted ⇒ verifiable and dynamically safe.
    Verifier(program).verify_program(derivation)
    heap = Heap()
    result, _ = run_function(program, "main", heap=heap, sink_sends=True)
    assert isinstance(result, int)
    check_refcounts(heap)


def test_fuzzer_produced_a_meaningful_mix():
    # Runs after the fuzz test in file order: both outcomes must occur.
    assert ACCEPTED["count"] > 0
    assert REJECTED["count"] > 0
