"""The §1 headline on the *doubly linked* list: "added elements may have
been received from remote threads and removed elements may be immediately
sent to a new thread, all without additional dynamic concurrency control".

No prior system can express this (Table 1); here it is, running.
"""

import pytest

from repro.analysis import check_refcounts
from repro.core.checker import Checker
from repro.corpus import load_source
from repro.lang import parse_program
from repro.runtime.machine import Machine
from repro.runtime.smallstep import SmallStepMachine

SOURCE = (
    load_source("dll")
    + """
struct packet { iso payload : data; }

def producer(n : int) : unit {
  while (n > 0) {
    let d = new data(v = n);
    send(d);
    n = n - 1
  }
}

// Buffer received payloads in a circular dll, then drain it via the fig 5
// remove_tail, forwarding each detached payload onward.
def dll_relay(n : int) : unit {
  let l = new dll();
  let i = n;
  while (i > 0) {
    let d = recv(data);
    push_front(l, d);
    i = i - 1
  };
  let j = n;
  while (j > 0) {
    let some(d) = remove_tail(l) in {
      let p = new packet(payload = d);
      send(p)
    } else { () };
    j = j - 1
  }
}

def collector(n : int) : int {
  let total = 0;
  while (n > 0) {
    let p = recv(packet);
    let d = p.payload;
    total = total + d.v;
    n = n - 1
  };
  total
}
"""
)


@pytest.fixture(scope="module")
def program():
    program = parse_program(SOURCE)
    Checker(program).check_program()
    return program


class TestFearlessDll:
    def test_typechecks(self, program):
        pass  # the fixture did the work

    @pytest.mark.parametrize("machine_cls", [Machine, SmallStepMachine])
    @pytest.mark.parametrize("seed", [0, 7, 99])
    def test_pipeline(self, program, machine_cls, seed):
        n = 8
        machine = machine_cls(program, seed=seed)
        machine.spawn("producer", [n])
        machine.spawn("dll_relay", [n])
        collector = machine.spawn("collector", [n])
        machine.run()
        assert collector.result == n * (n + 1) // 2
        assert machine.reservations_disjoint()
        check_refcounts(machine.heap)

    def test_remove_tail_drains_fifo(self, program):
        # push_front + remove_tail is a queue: payloads arrive in exactly
        # the order they were produced (n, n-1, ..., 1 from the producer,
        # pushed to the front, removed from the tail).
        n = 5
        machine = Machine(program, seed=3)
        machine.spawn("producer", [n])
        machine.spawn("dll_relay", [n])
        collector = machine.spawn("collector", [n])
        machine.run()
        assert collector.result == 15
