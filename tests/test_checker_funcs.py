"""Checker tests for function application: separation, consumes, after (§4.8–§4.9)."""

import pytest

from repro.core.checker import check_source
from repro.core.errors import (
    SeparationError,
    TypeError_,
    UnificationError,
)

STRUCTS = """
struct data { v : int; }
struct box { iso inner : data?; }
struct node { iso payload : data; iso next : node?; }
"""


def accept(src):
    check_source(STRUCTS + src)


def reject(exc, src):
    with pytest.raises(exc):
        accept(src)


class TestSeparation:
    def test_same_var_to_distinct_params_rejected(self):
        # T9 requires arguments for distinct parameter regions to be
        # provably separate.
        reject(
            SeparationError,
            """
            def two(a, b : data) : unit { () }
            def f(d : data) : unit { two(d, d) }
            """,
        )

    def test_aliases_to_distinct_params_rejected(self):
        reject(
            SeparationError,
            """
            def two(a, b : data) : unit { () }
            def f(d : data) : unit { let e = d; two(d, e) }
            """,
        )

    def test_distinct_objects_fine(self):
        accept(
            """
            def two(a, b : data) : unit { () }
            def f() : unit {
              let d = new data(v = 1);
              let e = new data(v = 2);
              two(d, e)
            }
            """
        )

    def test_before_permits_shared_region(self):
        accept(
            """
            def two(a, b : data) : unit before: a ~ b { () }
            def f(d : data) : unit { let e = d; two(d, e) }
            """
        )

    def test_before_attaches_distinct_regions(self):
        # Arguments in different regions can be merged to satisfy a shared
        # input region (a sound weakening via V5 Attach).
        accept(
            """
            def two(a, b : data) : unit before: a ~ b { () }
            def f() : unit {
              let d = new data(v = 1);
              let e = new data(v = 2);
              two(d, e)
            }
            """
        )


class TestConsumes:
    def test_consuming_callee_must_lose_region(self):
        # A function declared `consumes` may drop, send, or retract its
        # argument — all satisfy the interface.
        accept("def eat(d : data) : unit consumes d { send(d) }")
        accept("def leak(d : data) : unit consumes d { () }")
        accept(
            """
            def stash(b : box, d : data) : unit consumes d {
              b.inner = some(d)
            }
            """
        )

    def test_non_consuming_function_cannot_send_param(self):
        reject(
            TypeError_,
            "def keep(d : data) : unit { send(d) }",
        )

    def test_non_consuming_function_cannot_stash_param(self):
        # Retracting d into b without declaring `consumes d` breaks the
        # default output interface (d must remain in its own region).
        reject(
            TypeError_,
            """
            def stash(b : box, d : data) : unit {
              b.inner = some(d)
            }
            """,
        )

    def test_caller_loses_consumed_arg(self):
        reject(
            TypeError_,
            """
            def eat(d : data) : unit consumes d { send(d) }
            def f() : int {
              let d = new data(v = 1);
              eat(d);
              d.v
            }
            """,
        )

    def test_consume_with_live_alias_rejected(self):
        reject(
            TypeError_,
            """
            def eat(d : data) : unit consumes d { send(d) }
            def f() : int {
              let d = new data(v = 1);
              let alias = d;
              eat(d);
              alias.v
            }
            """,
        )


class TestAfterAtCallSites:
    def test_result_region_linked_to_field(self):
        # After the call, n.payload and the result share a region, so
        # sending the result must invalidate... reading the field again is
        # still fine (same region, still present).
        accept(
            """
            def take(b : box) : data? after: b.inner ~ result { b.inner }
            def f(b : box) : int {
              let some(d) = take(b) in { d.v } else { 0 }
            }
            """
        )

    def test_sending_linked_result_blocks_field(self):
        # d shares b.inner's region; sending d consumes the region, so
        # b.inner may not be read until reassigned.
        reject(
            TypeError_,
            """
            def take(b : box) : data? after: b.inner ~ result { b.inner }
            def f(b : box) : int {
              let some(d) = take(b) in {
                send(d);
                let some(e) = b.inner in { e.v } else { 0 }
              } else { 0 }
            }
            """,
        )

    def test_sending_linked_result_ok_after_reassign(self):
        accept(
            """
            def take(b : box) : data? after: b.inner ~ result { b.inner }
            def f(b : box) : unit {
              let some(d) = take(b) in {
                send(d);
                b.inner = none
              } else { () }
            }
            """
        )


class TestInterfaces:
    def test_body_weaker_than_interface_rejected(self):
        # Claims to return a detached result but keeps it reachable.
        reject(
            TypeError_,
            "def bad(b : box) : data? { b.inner }",
        )

    def test_after_is_a_may_share_coarsening(self):
        # `after: p ~ q` claims the regions *coincide* — an over-
        # approximation of aliasing, which is the safe direction.  A body
        # that actually returns a fresh, separate object satisfies the
        # interface via V5 Attach (merging the regions), so this checks.
        accept(
            """
            def weaker(b : box) : data? after: b.inner ~ result {
              let d = new data(v = 1);
              some(d)
            }
            """
        )
        # And the caller is then conservatively prevented from sending the
        # result while b.inner remains unreassigned.
        reject(
            TypeError_,
            """
            def weaker(b : box) : data? after: b.inner ~ result {
              let d = new data(v = 1);
              some(d)
            }
            def f(b : box) : int {
              let some(d) = weaker(b) in {
                send(d);
                let some(e) = b.inner in { e.v } else { 0 }
              } else { 0 }
            }
            """,
        )

    def test_chained_calls(self):
        accept(
            """
            def mk() : data { new data(v = 7) }
            def get(d : data) : int { d.v }
            def f() : int { get(mk()) }
            """
        )

    def test_call_in_loop(self):
        accept(
            """
            def bump(d : data) : unit { d.v = d.v + 1 }
            def f() : int {
              let d = new data(v = 0);
              let i = 10;
              while (i > 0) { bump(d); i = i - 1 };
              d.v
            }
            """
        )

    def test_mutual_recursion(self):
        accept(
            """
            def even(n : int) : bool { if (n == 0) { true } else { odd(n - 1) } }
            def odd(n : int) : bool { if (n == 0) { false } else { even(n - 1) } }
            """
        )
