"""Baseline tests: the regenerated Table 1 matches the paper, and the
destructive-read model shows the O(n)-writes behaviour (§1, §9.1)."""

import pytest

from repro.baselines import (
    build_table,
    compare_with_paper,
    destructive_remove_tail,
    fearless_remove_tail,
    render_table,
)
from repro.baselines.table1 import PAPER_TABLE, annotation_count
from repro.corpus import load_program
from repro.runtime.heap import Heap
from repro.runtime.machine import run_function
from repro.runtime.values import NONE


class TestTable1:
    def test_every_row_matches_the_paper(self):
        comparison = compare_with_paper()
        assert all(comparison.values()), comparison

    def test_all_languages_covered(self):
        rows = {row.language for row in build_table()}
        assert rows == set(PAPER_TABLE)

    def test_this_paper_row_fully_capable(self):
        row = next(r for r in build_table() if r.language == "This paper")
        assert row.sll == "yes" and row.dll_repr == "yes"
        assert row.mechanical

    def test_mechanical_rows(self):
        mechanical = {r.language for r in build_table() if r.mechanical}
        assert {"Rust", "Unique", "LaCasa", "OwnerJ", "M#", "This paper"} <= mechanical

    def test_annotation_budget(self):
        # §4.9: the complete sll needs `consumes` in exactly two places.
        assert annotation_count() == 2

    def test_render(self):
        text = render_table()
        assert "This paper" in text and "✓" in text


class TestDestructiveBaseline:
    def _setup(self, n):
        program = load_program("sll")
        heap = Heap()
        lst, _ = run_function(program, "make_list", [n], heap=heap)
        head = heap.obj(lst).fields["hd"]
        return program, heap, lst, head

    def test_destructive_detaches_tail(self):
        program, heap, lst, head = self._setup(5)
        result = destructive_remove_tail(heap, head)
        assert result.payload is not None
        assert heap.obj(result.payload).fields["v"] == 5
        assert result.payload not in heap.live_set(lst)

    def test_destructive_preserves_list(self):
        program, heap, lst, head = self._setup(5)
        destructive_remove_tail(heap, head)
        assert run_function(program, "list_length", [lst], heap=heap)[0] == 4
        assert run_function(program, "sum", [lst], heap=heap)[0] == 1 + 2 + 3 + 4

    @pytest.mark.parametrize("n", [4, 16, 64])
    def test_write_counts_scale_linearly(self, n):
        # §1: destructive-read systems incur a write per node traversed.
        program, heap, lst, head = self._setup(n)
        result = destructive_remove_tail(heap, head)
        assert result.writes >= 2 * (n - 2)

    @pytest.mark.parametrize("n", [4, 16, 64])
    def test_fearless_writes_constant(self, n):
        program, heap, lst, head = self._setup(n)
        result = fearless_remove_tail(heap, program, head)
        assert result.writes == 1  # just `n.next = none`

    def test_equivalent_results(self):
        for n in (3, 7, 12):
            program, heap_a, lst_a, head_a = self._setup(n)
            _, heap_b, lst_b, head_b = self._setup(n)
            a = destructive_remove_tail(heap_a, head_a)
            b = fearless_remove_tail(heap_b, program, head_b)
            va = heap_a.obj(a.payload).fields["v"]
            vb = heap_b.obj(b.payload).fields["v"]
            assert va == vb == n
