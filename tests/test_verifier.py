"""Verifier tests: valid derivations pass; tampered ones are rejected.

The tampering tests are the point of the prover–verifier architecture: the
verifier must not trust anything the prover claims.
"""

import copy

import pytest

from repro.core.checker import Checker
from repro.core.derivation import Derivation
from repro.core.regions import Region
from repro.core.unify import Step
from repro.corpus import corpus_names, load_program
from repro.lang import parse_program
from repro.verifier import VerificationError, Verifier, context_from_snapshot

SRC = """
struct data { v : int; }
struct box { iso inner : data?; }

def stash(b : box) : unit {
  let d = new data(v = 7);
  b.inner = some(d)
}

def grab(b : box) : int {
  let some(d) = b.inner in { d.v } else { 0 }
}
"""


def checked(src=SRC):
    program = parse_program(src)
    derivation = Checker(program).check_program()
    return program, derivation


def find_node(deriv: Derivation, rule: str) -> Derivation:
    if deriv.rule == rule:
        return deriv
    for child in deriv.children:
        try:
            return find_node(child, rule)
        except KeyError:
            continue
    raise KeyError(rule)


class TestAcceptance:
    def test_valid_derivations_verify(self):
        program, derivation = checked()
        assert Verifier(program).verify_program(derivation) > 0

    @pytest.mark.parametrize("name", corpus_names())
    def test_corpus_verifies(self, name):
        program = load_program(name)
        derivation = Checker(program).check_program()
        Verifier(program).verify_program(derivation)

    def test_snapshot_roundtrip(self):
        program, derivation = checked()
        node = derivation.funcs["grab"].body
        ctx = context_from_snapshot(node.pre)
        assert ctx.snapshot() == node.pre


class TestTampering:
    def _expect_rejection(self, program, derivation):
        with pytest.raises(VerificationError):
            Verifier(program).verify_program(derivation)

    def test_missing_function(self):
        program, derivation = checked()
        del derivation.funcs["grab"]
        self._expect_rejection(program, derivation)

    def test_changed_result_type(self):
        program, derivation = checked()
        derivation.funcs["grab"].body.children[0].type_ = "bool"
        self._expect_rejection(program, derivation)

    def test_forged_variable_region(self):
        # Claim a variable reference produced a different region.
        program, derivation = checked()
        node = find_node(derivation.funcs["grab"].body, "T2-Variable-Ref")
        node.region = 424242
        self._expect_rejection(program, derivation)

    def test_forged_iso_read_region(self):
        program, derivation = checked()
        node = find_node(
            derivation.funcs["grab"].body, "T5-Isolated-Field-Reference"
        )
        node.region = 424242
        self._expect_rejection(program, derivation)

    def test_dropped_focus_step(self):
        # Remove the V1-Focus step: the explore replay must then fail.
        program, derivation = checked()
        node = find_node(
            derivation.funcs["grab"].body, "T5-Isolated-Field-Reference"
        )
        node.steps = tuple(s for s in node.steps if s.rule != "V1-Focus")
        self._expect_rejection(program, derivation)

    def test_injected_capability(self):
        # Add a region capability to a node's post context out of thin air.
        program, derivation = checked()
        node = find_node(derivation.funcs["grab"].body, "T2-Variable-Ref")
        heap, gamma = node.post
        node.post = (heap + ((424242, False, ()),), gamma)
        self._expect_rejection(program, derivation)

    def test_broken_child_chain(self):
        program, derivation = checked()
        node = find_node(derivation.funcs["stash"].body, "T3-Sequence")
        heap, gamma = node.children[0].post
        node.children[0].post = (heap + ((424242, False, ()),), gamma)
        self._expect_rejection(program, derivation)

    def test_send_without_consume_step(self):
        src = (
            "struct data { v : int; }\n"
            "def f() : unit { let d = new data(v = 1); send(d) }"
        )
        program, derivation = checked(src)
        node = find_node(derivation.funcs["f"].body, "T16-Send")
        node.steps = tuple(
            s for s in node.steps if s.rule != "T16-ConsumeRegion"
        )
        self._expect_rejection(program, derivation)

    def test_interface_forgery(self):
        # Swap a consumed-away parameter back into the output snapshot.
        src = (
            "struct data { v : int; }\n"
            "def eat(d : data) : unit consumes d { send(d) }"
        )
        program, derivation = checked(src)
        fd = derivation.funcs["eat"]
        heap, gamma = fd.output_snap
        fd.output_snap = (
            heap + ((424242, False, ()),),
            gamma + (("d", "data", 424242),),
        )
        fd.body.post = fd.output_snap
        self._expect_rejection(program, derivation)

    def test_unknown_rule_rejected(self):
        program, derivation = checked()
        node = derivation.funcs["grab"].body.children[0]
        node.rule = "T99-Fabricated"
        self._expect_rejection(program, derivation)

    def test_iso_assign_mislabeled_as_plain(self):
        # Claiming an iso-field assignment was a plain T6 assignment must
        # fail the iso check.
        program, derivation = checked()
        node = find_node(
            derivation.funcs["stash"].body, "T7-Isolated-Field-Assignment"
        )
        node.rule = "T6-Field-Assignment"
        self._expect_rejection(program, derivation)
