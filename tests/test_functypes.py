"""Function-type elaboration from the surface syntax (§4.9)."""

import pytest

from repro.core.errors import AnnotationError
from repro.core.functypes import elaborate
from repro.lang import parse_program

STRUCTS = """
struct data { v : int; }
struct node { iso payload : data; iso next : node?; plain : node; }
"""


def ftype_of(sig_and_body: str):
    program = parse_program(STRUCTS + sig_and_body)
    name = next(iter(program.funcs))
    return elaborate(program.funcs[name], program)


class TestDefaults:
    def test_distinct_input_regions(self):
        ft = ftype_of("def f(a, b : node, k : int) : unit { () }")
        assert ft.input_region["a"] != ft.input_region["b"]
        assert ft.input_region["k"] is None

    def test_params_keep_regions_at_output(self):
        ft = ftype_of("def f(a : node) : unit { () }")
        assert ft.output_region["a"] == ft.input_region["a"]

    def test_result_gets_own_region(self):
        ft = ftype_of("def f(a : node) : node? { none }")
        assert ft.result_region is not None
        assert ft.result_region != ft.input_region["a"]

    def test_prim_result_has_no_region(self):
        ft = ftype_of("def f(a : node) : int { 0 }")
        assert ft.result_region is None

    def test_maybe_param_is_regioned(self):
        ft = ftype_of("def f(a : node?) : unit consumes a { () }")
        assert ft.input_region["a"] is not None


class TestConsumes:
    def test_consumed_param_absent_at_output(self):
        ft = ftype_of("def f(a, b : node) : unit consumes b { () }")
        assert "b" not in ft.output_region
        assert "b" in ft.consumes

    def test_consumes_unknown_param(self):
        with pytest.raises(AnnotationError):
            ftype_of("def f(a : node) : unit consumes z { () }")

    def test_consumes_primitive_rejected(self):
        with pytest.raises(AnnotationError):
            ftype_of("def f(k : int) : unit consumes k { () }")


class TestBefore:
    def test_before_merges_input_regions(self):
        ft = ftype_of("def f(a, b : node) : unit before: a ~ b { () }")
        assert ft.input_region["a"] == ft.input_region["b"]

    def test_before_with_field_path_rejected(self):
        with pytest.raises(AnnotationError):
            ftype_of("def f(a : node) : unit before: a.next ~ a { () }")

    def test_before_on_primitive_rejected(self):
        with pytest.raises(AnnotationError):
            ftype_of("def f(a : node, k : int) : unit before: a ~ k { () }")


class TestAfter:
    def test_result_ties_to_field(self):
        ft = ftype_of(
            "def f(l : node) : node? after: l.next ~ result { none }"
        )
        assert len(ft.output_tracking) == 1
        entry = ft.output_tracking[0]
        assert entry.var == "l" and entry.fieldname == "next"
        assert entry.target == ft.result_region

    def test_param_region_merge_at_output(self):
        ft = ftype_of("def f(a, b : node) : unit after: a ~ b { () }")
        assert ft.output_region["a"] == ft.output_region["b"]
        assert ft.input_region["a"] != ft.input_region["b"]

    def test_after_on_non_iso_field_rejected(self):
        # Non-iso fields share their owner's region: nothing to relate.
        with pytest.raises(AnnotationError):
            ftype_of("def f(l : node) : node? after: l.plain ~ result { none }")

    def test_after_deep_path_rejected(self):
        with pytest.raises(AnnotationError):
            ftype_of(
                "def f(l : node) : node? after: l.next.next ~ result { none }"
            )

    def test_after_with_consumed_param_rejected(self):
        with pytest.raises(AnnotationError):
            ftype_of(
                "def f(a, b : node) : unit consumes b after: b ~ a { () }"
            )

    def test_after_result_on_prim_return_rejected(self):
        with pytest.raises(AnnotationError):
            ftype_of("def f(a : node) : int after: a ~ result { 0 }")

    def test_after_unknown_field_rejected(self):
        with pytest.raises(AnnotationError):
            ftype_of("def f(l : node) : node? after: l.zzz ~ result { none }")


class TestEndToEnd:
    def test_get_nth_shape(self):
        # fig 14's annotation produces exactly one output-tracking entry
        # whose target is the result region.
        program = parse_program(
            STRUCTS
            + "def g(l : node, pos : int) : node? after: l.next ~ result { none }"
        )
        ft = elaborate(program.funcs["g"], program)
        assert ft.output_region["l"] == ft.input_region["l"]
        assert ft.output_tracking[0].target == ft.result_region
        assert ft.result_region in ft.output_region_vars
