"""The HTTP/JSON gateway (``repro serve --http PORT``).

The contract: ``POST /v1/<method>`` is the same request the socket
protocol carries, through the same admission path, with error codes
mapped onto retryable HTTP statuses.  Tests drive it with raw
``http.client`` so no request-shaping library hides framing mistakes.
"""

import http.client
import json
import tempfile
import threading

import pytest

from repro import api
from repro.server import Server, ServerConfig, ServerThread, Service
from repro.server.fleet import FleetConfig, FleetThread

GOOD = """
struct data { v : int; }
def add(a : int, b : int) : int { a + b }
"""

BAD = """
struct data { v : int; }
def leak(d : data) : int { consumed }
"""


@pytest.fixture(scope="module")
def gateway():
    config = ServerConfig(
        host=None,
        unix_path=tempfile.mktemp(suffix=".sock"),
        http_host="127.0.0.1",
        http_port=0,
    )
    with ServerThread(config) as handle:
        yield handle.server.http_address


def _request(address, verb, path, body=None, raw=None):
    conn = http.client.HTTPConnection(*address, timeout=30)
    try:
        payload = raw if raw is not None else (
            json.dumps(body).encode() if body is not None else None
        )
        conn.request(
            verb,
            path,
            body=payload,
            headers={"Content-Type": "application/json"} if payload else {},
        )
        response = conn.getresponse()
        data = response.read()
        return response, json.loads(data) if data else None
    finally:
        conn.close()


class TestRoutes:
    def test_ping(self, gateway):
        response, doc = _request(gateway, "GET", "/v1/ping")
        assert response.status == 200
        assert doc["pong"] is True

    def test_check_matches_api(self, gateway):
        response, doc = _request(
            gateway, "POST", "/v1/check", {"source": GOOD}
        )
        assert response.status == 200
        assert doc == api.check(GOOD, filename="<rpc>").to_dict()

    def test_verify(self, gateway):
        response, doc = _request(
            gateway, "POST", "/v1/verify", {"source": GOOD}
        )
        assert response.status == 200
        assert doc["ok"] and doc["verified"] > 0

    def test_run(self, gateway):
        response, doc = _request(
            gateway,
            "POST",
            "/v1/run",
            {"source": GOOD, "function": "add", "args": [40, 2]},
        )
        assert response.status == 200
        assert doc["value"] == "42"

    def test_rejected_program_is_200(self, gateway):
        # A type error is a *successful* check whose verdict is no —
        # only protocol-level failures map onto HTTP error statuses.
        response, doc = _request(gateway, "POST", "/v1/check", {"source": BAD})
        assert response.status == 200
        assert doc["ok"] is False

    def test_stats_and_metrics(self, gateway):
        response, doc = _request(gateway, "GET", "/v1/stats")
        assert response.status == 200
        assert "requests" in doc
        response, doc = _request(gateway, "GET", "/v1/metrics")
        assert response.status == 200
        assert doc["schema"].startswith("repro-telemetry/")


class TestErrorMapping:
    def test_unknown_route_404(self, gateway):
        response, doc = _request(gateway, "POST", "/v1/nope", {})
        assert response.status == 404
        assert doc["error"]["code"] == "unknown-method"

    def test_non_v1_path_404(self, gateway):
        response, doc = _request(gateway, "GET", "/healthz")
        assert response.status == 404

    def test_invalid_params_400(self, gateway):
        response, doc = _request(gateway, "POST", "/v1/check", {"source": 9})
        assert response.status == 400
        assert doc["error"]["code"] == "invalid-request"

    def test_non_json_body_400(self, gateway):
        response, doc = _request(
            gateway, "POST", "/v1/check", raw=b"not json at all"
        )
        assert response.status == 400

    def test_non_object_body_400(self, gateway):
        response, doc = _request(gateway, "POST", "/v1/check", raw=b'[1,2]')
        assert response.status == 400

    def test_get_on_data_plane_404(self, gateway):
        response, _ = _request(gateway, "GET", "/v1/check")
        assert response.status == 404

    def test_delete_405(self, gateway):
        response, _ = _request(gateway, "DELETE", "/v1/check")
        assert response.status == 405

    def test_overload_503_with_retry_after(self):
        # Same BlockingService trick the socket tests use: park the only
        # queue slot, then watch HTTP callers bounce with 503.
        from tests.test_server import BlockingService

        service = BlockingService()
        config = ServerConfig(
            host=None,
            unix_path=tempfile.mktemp(suffix=".sock"),
            http_host="127.0.0.1",
            http_port=0,
            max_queue=1,
        )
        with ServerThread(config, service=service) as handle:
            address = handle.server.http_address
            blocker = threading.Thread(
                target=lambda: _request(
                    address, "POST", "/v1/check", {"source": GOOD}
                )
            )
            blocker.start()
            assert service.entered.wait(timeout=30)
            response, doc = _request(
                address, "POST", "/v1/check", {"source": GOOD}
            )
            assert response.status == 503
            assert doc["error"]["code"] == "overloaded"
            assert response.getheader("Retry-After") == "1"
            service.release.set()
            blocker.join(timeout=30)


class TestGatewayOnFleet:
    def test_http_and_socket_share_admission(self):
        """The gateway rides the fleet server unchanged: same results,
        same shared worker pool."""
        config = ServerConfig(
            host=None,
            unix_path=tempfile.mktemp(suffix=".sock"),
            http_host="127.0.0.1",
            http_port=0,
        )
        with FleetThread(
            config=config, fleet_config=FleetConfig(workers=2)
        ) as handle:
            address = handle.server.http_address
            response, doc = _request(
                address, "POST", "/v1/verify", {"source": GOOD}
            )
            assert response.status == 200
            assert doc["ok"] is True
            response, stats = _request(address, "GET", "/v1/stats")
            assert stats["fleet"]["workers"] == 2
