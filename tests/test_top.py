"""``repro top`` rendering tests — :func:`repro.top.render_top` is a
pure function over a stats payload and two metrics documents, so the
dashboard is tested without a terminal or a server."""

from repro.telemetry import Registry, registry_to_doc
from repro.top import render_top


def _doc(checks_ok=0, checks_err=0, latencies=(), queue_depth=0.0):
    reg = Registry()
    if checks_ok:
        reg.inc("server.requests.check.ok", checks_ok)
    if checks_err:
        reg.inc("server.requests.check.overloaded", checks_err)
    for ms in latencies:
        reg.observe("server.latency_ms", ms)
        reg.observe("server.latency_ms.check", ms)
    reg.set_gauge("server.queue_depth", queue_depth)
    return registry_to_doc(reg)


def _stats(**service):
    return {
        "uptime_ms": 12_000,
        "inflight": 1,
        "draining": False,
        "service": service,
    }


class TestRenderTop:
    def test_first_frame_shows_dash_rates(self):
        text = render_top(_stats(), _doc(checks_ok=3), None, 2.0, "sock")
        assert "repro top — sock" in text
        assert "uptime 12.0s" in text
        assert "requests 3   rate -" in text
        check_row = next(l for l in text.splitlines() if l.startswith("check"))
        assert "-" in check_row  # no previous frame: no rate

    def test_rates_come_from_counter_deltas(self):
        prev = _doc(checks_ok=10)
        now = _doc(checks_ok=30)
        text = render_top(_stats(), now, prev, 2.0)
        assert "rate 10.0/s" in text  # (30 - 10) / 2s
        check_row = next(l for l in text.splitlines() if l.startswith("check"))
        assert "10.0" in check_row

    def test_latency_quantiles_render(self):
        doc = _doc(checks_ok=4, latencies=[10.0, 20.0, 30.0, 400.0])
        text = render_top(_stats(), doc, None, 2.0)
        check_row = next(l for l in text.splitlines() if l.startswith("check"))
        # p50/p99/mean columns populated (not "-").
        assert check_row.count("-") == 1  # only the rate column
        assert "latency (all) n=4" in text

    def test_error_counts_are_separate_column(self):
        doc = _doc(checks_ok=5, checks_err=2)
        text = render_top(_stats(), doc, None, 2.0)
        check_row = next(l for l in text.splitlines() if l.startswith("check"))
        columns = check_row.split()
        assert columns[1] == "5" and columns[2] == "2"

    def test_memo_and_queue_lines(self):
        stats = _stats(
            memo_hits=3, memo_misses=1, sessions=2, memo_entries=4,
            cache_dir="/tmp/c",
        )
        text = render_top(stats, _doc(queue_depth=7.0), None, 2.0)
        assert "queue depth 7" in text
        assert "memo 3 hits / 1 misses (75.0% hit)" in text
        assert "sessions 2" in text
        assert "cache /tmp/c" in text

    def test_zero_traffic_renders_placeholders(self):
        text = render_top(_stats(), _doc(), None, 2.0)
        assert "requests 0" in text
        assert "memo 0 hits / 0 misses (- hit)" in text

    def test_fleet_line_renders_for_fleet_stats(self):
        stats = _stats()
        stats["fleet"] = {
            "workers": 2, "alive": 2, "restarts": 1,
            "pids": [11, 22], "inflight": [1, 0],
        }
        text = render_top(stats, _doc(), None, 2.0)
        assert "fleet 2/2 workers alive   restarts 1" in text
        assert "inflight 1/0" in text
        assert "pids 11,22" in text
        # Non-fleet stats: no fleet line at all.
        assert "fleet" not in render_top(_stats(), _doc(), None, 2.0)

    def test_cert_store_line_from_cache_counters(self):
        reg = Registry()
        reg.inc("cache.hits", 9)
        reg.inc("cache.misses", 1)
        reg.inc("cache.evictions", 4)
        reg.set_gauge("cache.entries", 5.0)
        reg.set_gauge("cache.bytes", 2048.0)
        doc = registry_to_doc(reg)
        text = render_top(_stats(), doc, None, 2.0)
        assert "cert store 9 hits / 1 misses (90.0% hit)" in text
        assert "evictions 4" in text
        assert "entries 5" in text
        assert "bytes 2048" in text
        # No cache traffic: line absent.
        assert "cert store" not in render_top(_stats(), _doc(), None, 2.0)
