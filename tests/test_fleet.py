"""The pre-forked worker fleet (``repro serve --workers N``).

The properties under test are the module contract of
:mod:`repro.server.fleet`:

* the wire behavior is indistinguishable from the single-process daemon
  (same results, same error envelopes, same admission semantics);
* the ``metrics`` RPC merges worker-process registries, so fleet-wide
  checker/cache counters survive the process boundary;
* a killed worker fails only its in-flight requests and is respawned —
  the fleet keeps serving;
* drain answers everything admitted before exiting.

Slow-request tests use a ``while`` spin and poll the control-plane
``stats`` RPC (answered inline on the loop) for ``inflight == 1``, so
the overload/drain assertions are ordered by observed server state, not
sleeps.
"""

import os
import signal
import tempfile
import threading
import time

import pytest

from repro import api
from repro.client import Client, RemoteError
from repro.server import ServerConfig
from repro.server.fleet import FleetConfig, FleetThread

GOOD = """
struct data { v : int; }
def add(a : int, b : int) : int { a + b }
"""

SPIN = """
def spin(n : int) : int {
  let x = 0;
  while (n > 0) {
    x = x + 1;
    n = n - 1
  };
  x
}
"""

BAD = """
struct data { v : int; }
def leak(d : data) : int { consumed }
"""


def _fleet(workers=2, cache_dir=None, **server_kwargs):
    config = ServerConfig(
        host=None, unix_path=tempfile.mktemp(suffix=".sock"), **server_kwargs
    )
    return FleetThread(
        config=config,
        fleet_config=FleetConfig(workers=workers, cache_dir=cache_dir),
    )


def _wait_for(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.fixture(scope="module")
def fleet_pair():
    """One two-worker fleet shared by the read-only tests (forking
    processes per test would dominate the suite's runtime)."""
    with _fleet(workers=2, cache_dir=tempfile.mkdtemp()) as handle:
        with Client(handle.address) as client:
            yield handle, client


class TestFleetParity:
    def test_ping(self, fleet_pair):
        _, client = fleet_pair
        assert client.ping()["pong"] is True

    def test_check_matches_api(self, fleet_pair):
        _, client = fleet_pair
        assert client.check(GOOD).to_dict() == api.check(GOOD).to_dict()

    def test_verify_matches_api(self, fleet_pair):
        _, client = fleet_pair
        remote = client.verify(GOOD)
        local = api.verify(GOOD)
        assert remote.ok and remote.verified == local.verified

    def test_run(self, fleet_pair):
        _, client = fleet_pair
        assert client.run(GOOD, "add", [20, 22]).value == "42"

    def test_rejection_matches_api(self, fleet_pair):
        _, client = fleet_pair
        remote = client.check(BAD)
        assert not remote.ok
        assert remote.to_dict() == api.check(BAD, filename="<rpc>").to_dict()

    def test_invalid_params_error_envelope(self, fleet_pair):
        _, client = fleet_pair
        with pytest.raises(RemoteError) as excinfo:
            client.call("check", {"source": 17})
        assert excinfo.value.code == "invalid-request"

    def test_concurrent_load_spreads(self, fleet_pair):
        _, client = fleet_pair
        address = fleet_pair[0].address
        results = []

        def one(i):
            # Distinct sources defeat both memo layers, forcing real work.
            src = GOOD.replace("add", f"add_{i}")
            with Client(address) as c:
                results.append(c.verify(src).ok)

        threads = [threading.Thread(target=one, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert results == [True] * 8


class TestFleetIntrospection:
    def test_stats_has_fleet_shape(self, fleet_pair):
        _, client = fleet_pair
        stats = client.stats()
        fleet = stats["fleet"]
        assert fleet["workers"] == 2
        assert fleet["alive"] == 2
        assert len(fleet["pids"]) == 2
        assert all(isinstance(p, int) for p in fleet["pids"])
        # Aggregated worker service stats keep the single-process shape
        # (repro top renders this block unchanged).
        service = stats["service"]
        for key in ("sessions", "memo_entries", "memo_hits", "memo_misses"):
            assert isinstance(service[key], int)

    def test_metrics_merge_worker_registries(self, fleet_pair):
        _, client = fleet_pair
        client.verify(GOOD.replace("add", "add_metrics"))
        doc = client.metrics()
        counters = doc["counters"]
        # checker.* counters only ever increment inside worker processes;
        # seeing them proves the merge crossed the boundary.
        assert counters.get("checker.functions", 0) > 0
        assert counters.get("fleet.dispatched", 0) > 0
        assert doc["gauges"]["fleet.workers"] == 2

    def test_shared_store_hits_across_workers(self, tmp_path):
        # Worker A verifies and stores a certificate; worker B (the only
        # other worker) must replay it from the shared store.
        with _fleet(workers=2, cache_dir=str(tmp_path)) as handle:
            with Client(handle.address) as client:
                for i in range(6):
                    # Same source, fresh filename: busts the per-worker
                    # result memo (keyed on filename) but not the cert
                    # store (keyed on content alone).
                    assert client.verify(GOOD, filename=f"v{i}.fcl").ok
                counters = client.metrics()["counters"]
                assert counters.get("cache.hits", 0) >= 1
                assert counters.get("cache.misses", 0) >= 1


class TestFleetRobustness:
    def test_overload_refused_cleanly(self):
        with _fleet(workers=1, max_queue=1) as handle:
            with Client(handle.address, timeout=60) as blocker_conn:
                background = threading.Thread(
                    target=lambda: blocker_conn.run(SPIN, "spin", [300_000])
                )
                with Client(handle.address) as client:
                    background.start()
                    assert _wait_for(
                        lambda: client.stats()["inflight"] >= 1
                    ), "slow request never admitted"
                    with pytest.raises(RemoteError) as excinfo:
                        client.verify(GOOD)
                    assert excinfo.value.code == "overloaded"
                background.join(timeout=120)

    def test_worker_killed_midrequest_respawns(self):
        with _fleet(workers=1) as handle:
            with Client(handle.address) as probe:
                victim_pid = probe.stats()["fleet"]["pids"][0]
                failure = {}

                def slow():
                    try:
                        Client(handle.address, timeout=60).run(
                            SPIN, "spin", [300_000]
                        )
                    except RemoteError as exc:
                        failure["code"] = exc.code

                background = threading.Thread(target=slow)
                background.start()
                assert _wait_for(lambda: probe.stats()["inflight"] >= 1)
                os.kill(victim_pid, signal.SIGKILL)
                background.join(timeout=60)
                # The in-flight request failed loudly, not silently.
                assert failure.get("code") == "internal"
                # ... and the fleet healed: a respawned worker serves.
                assert _wait_for(
                    lambda: probe.stats()["fleet"]["alive"] >= 1
                ), "no respawn"
                assert probe.stats()["fleet"]["restarts"] >= 1
                assert probe.run(GOOD, "add", [1, 2]).value == "3"
                counters = probe.stats()["requests"]
                assert counters.get("server.worker.crashes", 0) >= 1

    def test_drain_completes_inflight_work(self):
        with _fleet(workers=1) as handle:
            address = handle.address
            outcome = {}

            def slow():
                try:
                    result = Client(address, timeout=60).run(
                        SPIN, "spin", [300_000]
                    )
                    outcome["value"] = result.value
                except Exception as exc:  # noqa: BLE001
                    outcome["error"] = repr(exc)

            with Client(address) as control:
                background = threading.Thread(target=slow)
                background.start()
                assert _wait_for(lambda: control.stats()["inflight"] >= 1)
                control.shutdown()
            background.join(timeout=120)
            handle.stop()
            assert outcome == {"value": "300000"}


class TestFleetCompileCache:
    def test_warm_repeats_stop_compiling(self):
        """Once every worker has compiled a source, further run requests
        (engine omitted — the warm-serving default is ir) hit the
        per-worker compile caches: the merged ``machine.engine.compiles``
        counter stays flat."""
        with _fleet(workers=2) as handle:
            with Client(handle.address) as client:
                for _ in range(6):
                    result = client.run(GOOD, "add", [20, 22])
                    assert result.ok and result.engine == "ir"
                warmed = client.metrics()["counters"]
                compiles = warmed.get("machine.engine.compiles", 0)
                # At most one compile per worker process, at least one
                # somewhere.
                assert 1 <= compiles <= 2
                for _ in range(6):
                    assert client.run(GOOD, "add", [1, 2]).ok
                again = client.metrics()["counters"]
                assert again.get("machine.engine.compiles", 0) == compiles
