"""CLI tests (`python -m repro ...`)."""

import sys
from pathlib import Path

import pytest

from repro.cli import main

CORPUS = Path(__file__).parent.parent / "src" / "repro" / "corpus"


@pytest.fixture()
def fcl_file(tmp_path):
    def write(source: str) -> str:
        path = tmp_path / "prog.fcl"
        path.write_text(source)
        return str(path)

    return write


GOOD = """
struct data { v : int; }
def add(a : int, b : int) : int { a + b }
def boxed() : data { new data(v = 9) }
"""

BAD = """
struct data { v : int; }
def f(d : data) : unit { send(d) }
"""


class TestCheck:
    def test_ok(self, fcl_file, capsys):
        assert main(["check", fcl_file(GOOD)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_type_error(self, fcl_file, capsys):
        assert main(["check", fcl_file(BAD)]) == 1
        assert "type error" in capsys.readouterr().err

    def test_syntax_error(self, fcl_file):
        with pytest.raises(SystemExit):
            main(["check", fcl_file("struct {")])

    def test_missing_file(self):
        with pytest.raises(SystemExit):
            main(["check", "/nonexistent/x.fcl"])


class TestVerify:
    def test_ok(self, fcl_file, capsys):
        assert main(["verify", fcl_file(GOOD)]) == 0
        assert "verified" in capsys.readouterr().out

    def test_corpus_files_verify(self, capsys):
        for name in ("sll.fcl", "dll.fcl"):
            assert main(["verify", str(CORPUS / name)]) == 0


class TestRun:
    def test_prim_result(self, fcl_file, capsys):
        assert main(["run", fcl_file(GOOD), "add", "20", "22"]) == 0
        assert capsys.readouterr().out.strip() == "42"

    def test_struct_result_rendered(self, fcl_file, capsys):
        assert main(["run", fcl_file(GOOD), "boxed"]) == 0
        out = capsys.readouterr().out
        assert "data{" in out and "v = 9" in out

    def test_bool_args(self, fcl_file, capsys):
        src = "def pick(c : bool) : int { if (c) { 1 } else { 2 } }"
        assert main(["run", fcl_file(src), "pick", "true"]) == 0
        assert capsys.readouterr().out.strip() == "1"

    def test_stats_flag(self, fcl_file, capsys):
        assert main(["run", fcl_file(GOOD), "add", "1", "2", "--stats"]) == 0
        assert "heap_reads" in capsys.readouterr().err

    def test_bad_arg(self, fcl_file):
        with pytest.raises(SystemExit):
            main(["run", fcl_file(GOOD), "add", "banana", "2"])

    def test_typechecked_by_default(self, fcl_file, capsys):
        assert main(["run", fcl_file(BAD), "f"]) == 1

    def test_unchecked_hits_runtime_guard(self, fcl_file, capsys):
        src = """
        struct data { v : int; }
        def f() : int {
          let d = new data(v = 1);
          send(d);
          d.v
        }
        """
        # Single-threaded run cannot even service send: runtime error path.
        assert main(["run", fcl_file(src), "f", "--unchecked"]) == 3
        assert "runtime error" in capsys.readouterr().err

    def test_corpus_run(self, capsys):
        assert (
            main(["run", str(CORPUS / "rbtree.fcl"), "build_tree", "20", "3"])
            == 0
        )
        assert "rbtree{" in capsys.readouterr().out


class TestOther:
    def test_derivation(self, fcl_file, capsys):
        assert main(["derivation", fcl_file(GOOD), "add"]) == 0
        out = capsys.readouterr().out
        assert "T0-Function-Definition" in out

    def test_derivation_unknown_function(self, fcl_file):
        assert main(["derivation", fcl_file(GOOD), "nosuch"]) == 1

    def test_regions(self, capsys):
        assert main(["regions", str(CORPUS / "dll.fcl"), "make_dll", "3"]) == 0
        out = capsys.readouterr().out
        assert "dynamic regions" in out
        assert "tree: True" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "This paper" in capsys.readouterr().out

    def test_corpus_command(self, capsys):
        assert main(["corpus"]) == 0
        out = capsys.readouterr().out
        assert "rbtree" in out and "verified" in out


class TestTraceFlag:
    def test_run_with_trace(self, capsys):
        from repro.cli import main

        assert (
            main(["run", str(CORPUS / "sll.fcl"), "make_list", "2", "--trace", "5"])
            == 0
        )
        captured = capsys.readouterr()
        assert "alloc" in captured.err or "write" in captured.err

    def test_trace_default_count(self, capsys):
        from repro.cli import main

        assert main(["run", str(CORPUS / "sll.fcl"), "make_list", "1", "--trace"]) == 0
        assert "#" in capsys.readouterr().err


class TestConsoleScript:
    def test_fcl_entry_point(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-c", "from repro.cli import main; raise SystemExit(main(['corpus']))"],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0
        assert "rbtree" in proc.stdout
