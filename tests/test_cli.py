"""CLI tests (`python -m repro ...`)."""

import sys
from pathlib import Path

import pytest

from repro.cli import main

CORPUS = Path(__file__).parent.parent / "src" / "repro" / "corpus"


@pytest.fixture()
def fcl_file(tmp_path):
    def write(source: str) -> str:
        path = tmp_path / "prog.fcl"
        path.write_text(source)
        return str(path)

    return write


GOOD = """
struct data { v : int; }
def add(a : int, b : int) : int { a + b }
def boxed() : data { new data(v = 9) }
"""

BAD = """
struct data { v : int; }
def f(d : data) : unit { send(d) }
"""


class TestCheck:
    def test_ok(self, fcl_file, capsys):
        assert main(["check", fcl_file(GOOD)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_type_error(self, fcl_file, capsys):
        assert main(["check", fcl_file(BAD)]) == 1
        assert "type error" in capsys.readouterr().err

    def test_syntax_error(self, fcl_file):
        with pytest.raises(SystemExit):
            main(["check", fcl_file("struct {")])

    def test_missing_file(self):
        with pytest.raises(SystemExit):
            main(["check", "/nonexistent/x.fcl"])


class TestVerify:
    def test_ok(self, fcl_file, capsys):
        assert main(["verify", fcl_file(GOOD)]) == 0
        assert "verified" in capsys.readouterr().out

    def test_corpus_files_verify(self, capsys):
        for name in ("sll.fcl", "dll.fcl"):
            assert main(["verify", str(CORPUS / name)]) == 0


class TestRun:
    def test_prim_result(self, fcl_file, capsys):
        assert main(["run", fcl_file(GOOD), "add", "20", "22"]) == 0
        assert capsys.readouterr().out.strip() == "42"

    def test_struct_result_rendered(self, fcl_file, capsys):
        assert main(["run", fcl_file(GOOD), "boxed"]) == 0
        out = capsys.readouterr().out
        assert "data{" in out and "v = 9" in out

    def test_bool_args(self, fcl_file, capsys):
        src = "def pick(c : bool) : int { if (c) { 1 } else { 2 } }"
        assert main(["run", fcl_file(src), "pick", "true"]) == 0
        assert capsys.readouterr().out.strip() == "1"

    def test_stats_flag(self, fcl_file, capsys):
        assert main(["run", fcl_file(GOOD), "add", "1", "2", "--stats"]) == 0
        assert "heap_reads" in capsys.readouterr().err

    def test_bad_arg(self, fcl_file):
        with pytest.raises(SystemExit):
            main(["run", fcl_file(GOOD), "add", "banana", "2"])

    def test_typechecked_by_default(self, fcl_file, capsys):
        assert main(["run", fcl_file(BAD), "f"]) == 1

    def test_unchecked_hits_runtime_guard(self, fcl_file, capsys):
        src = """
        struct data { v : int; }
        def f() : int {
          let d = new data(v = 1);
          send(d);
          d.v
        }
        """
        # Single-threaded run cannot even service send: runtime error path.
        assert main(["run", fcl_file(src), "f", "--unchecked"]) == 3
        assert "runtime error" in capsys.readouterr().err

    def test_corpus_run(self, capsys):
        assert (
            main(["run", str(CORPUS / "rbtree.fcl"), "build_tree", "20", "3"])
            == 0
        )
        assert "rbtree{" in capsys.readouterr().out


class TestOther:
    def test_derivation(self, fcl_file, capsys):
        assert main(["derivation", fcl_file(GOOD), "add"]) == 0
        out = capsys.readouterr().out
        assert "T0-Function-Definition" in out

    def test_derivation_unknown_function(self, fcl_file):
        assert main(["derivation", fcl_file(GOOD), "nosuch"]) == 1

    def test_regions(self, capsys):
        assert main(["regions", str(CORPUS / "dll.fcl"), "make_dll", "3"]) == 0
        out = capsys.readouterr().out
        assert "dynamic regions" in out
        assert "tree: True" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "This paper" in capsys.readouterr().out

    def test_corpus_command(self, capsys):
        assert main(["corpus"]) == 0
        out = capsys.readouterr().out
        assert "rbtree" in out and "verified" in out

    def test_disasm(self, capsys):
        rb = str(CORPUS / "rbtree.fcl")
        assert main(["disasm", rb, "contains_opt", "--erased"]) == 0
        out = capsys.readouterr().out
        assert "func contains_opt" in out
        assert "; pass tailcall: tail_calls_looped+2" in out
        assert main(["disasm", rb, "contains_opt", "--erased",
                     "--no-opt"]) == 0
        baseline = capsys.readouterr().out
        assert "; pass" not in baseline
        assert len(baseline.splitlines()) > len(out.splitlines())

    def test_disasm_whole_program_and_errors(self, fcl_file, capsys):
        assert main(["disasm", fcl_file(GOOD)]) == 0
        out = capsys.readouterr().out
        assert "func add" in out
        assert main(["disasm", fcl_file(GOOD), "nosuch"]) == 1


class TestTraceFlag:
    def test_run_with_trace(self, capsys):
        from repro.cli import main

        assert (
            main(["run", str(CORPUS / "sll.fcl"), "make_list", "2", "--trace", "5"])
            == 0
        )
        captured = capsys.readouterr()
        assert "alloc" in captured.err or "write" in captured.err

    def test_trace_default_count(self, capsys):
        from repro.cli import main

        assert main(["run", str(CORPUS / "sll.fcl"), "make_list", "1", "--trace"]) == 0
        assert "#" in capsys.readouterr().err


class TestStatsCommand:
    def test_stats_runs_everything(self, fcl_file, capsys):
        src = GOOD + "\ndef main() : int { add(1, 2) }\n"
        assert main(["stats", fcl_file(src)]) == 0
        out = capsys.readouterr().out
        assert "checked + verified" in out and "ran main()" in out
        assert "checker.rule.T0-Function-Definition" in out
        assert "machine.steps" in out
        assert "verifier.obligations" in out

    def test_stats_explicit_function_and_args(self, fcl_file, capsys):
        assert main(["stats", fcl_file(GOOD), "add", "1", "2"]) == 0
        assert "ran add()" in capsys.readouterr().out

    def test_stats_without_entry_still_reports(self, fcl_file, capsys):
        assert main(["stats", fcl_file(GOOD)]) == 0  # no zero-arg... boxed is
        out = capsys.readouterr().out
        assert "checked + verified" in out

    def test_stats_unknown_function(self, fcl_file, capsys):
        assert main(["stats", fcl_file(GOOD), "nosuch"]) == 1

    def test_stats_type_error(self, fcl_file, capsys):
        assert main(["stats", fcl_file(BAD)]) == 1

    def test_stats_on_quickstart_example(self, capsys):
        example = Path(__file__).parent.parent / "examples" / "quickstart.py"
        assert main(["stats", str(example)]) == 0
        out = capsys.readouterr().out
        assert "ran demo()" in out
        assert "checker.vt.V5-Attach" in out

    def test_stats_restores_disabled_registry(self, fcl_file, capsys):
        from repro import telemetry

        assert main(["stats", fcl_file(GOOD)]) == 0
        assert telemetry.registry().enabled is False


class TestMetricsJson:
    def _valid(self, path):
        import json

        from repro.telemetry import validate

        schema = json.loads(
            (
                Path(__file__).parent.parent / "benchmarks" / "metrics.schema.json"
            ).read_text()
        )
        doc = json.loads(Path(path).read_text())
        validate(doc, schema)
        return doc

    def test_check_metrics_json(self, fcl_file, tmp_path, capsys):
        out = tmp_path / "m.json"
        assert main(["check", fcl_file(GOOD), "--metrics-json", str(out)]) == 0
        doc = self._valid(out)
        assert doc["counters"]["checker.functions"] == 2

    def test_run_metrics_json(self, fcl_file, tmp_path, capsys):
        out = tmp_path / "m.json"
        args = ["run", fcl_file(GOOD), "add", "1", "2", "--metrics-json", str(out)]
        assert main(args) == 0
        doc = self._valid(out)
        assert doc["counters"]["machine.steps"] > 0

    def test_verify_metrics_json(self, fcl_file, tmp_path, capsys):
        out = tmp_path / "m.json"
        assert main(["verify", fcl_file(GOOD), "--metrics-json", str(out)]) == 0
        doc = self._valid(out)
        assert doc["counters"]["verifier.obligations"] > 0

    def test_stats_metrics_json_meets_acceptance(self, tmp_path, capsys):
        """The ISSUE acceptance check: nonzero T-rule, V1–V5, oracle-hit,
        machine-step, and reservation-check counters for quickstart."""
        example = Path(__file__).parent.parent / "examples" / "quickstart.py"
        out = tmp_path / "m.json"
        assert main(["stats", str(example), "--metrics-json", str(out)]) == 0
        counters = self._valid(out)["counters"]
        for name in (
            "checker.rule.T0-Function-Definition",
            "checker.vt.V1-Focus",
            "checker.vt.V2-Unfocus",
            "checker.vt.V3-Explore",
            "checker.vt.V4-Retract",
            "checker.vt.V5-Attach",
            "checker.oracle.hits",
            "machine.steps",
            "machine.reservation_checks",
        ):
            assert counters.get(name, 0) > 0, name


class TestTraceJson:
    def test_run_trace_json(self, fcl_file, tmp_path, capsys):
        import json

        out = tmp_path / "events.jsonl"
        args = ["run", fcl_file(GOOD), "boxed", "--trace-json", str(out)]
        assert main(args) == 0
        lines = out.read_text().splitlines()
        assert lines
        events = [json.loads(line) for line in lines]
        assert events[0]["kind"] == "alloc"
        assert all("seq" in e and "loc" in e for e in events)
        assert "trace events" in capsys.readouterr().err


class TestEmbeddedPythonSource:
    def test_py_file_without_source_literal(self, tmp_path):
        path = tmp_path / "nope.py"
        path.write_text("x = 1\n")
        with pytest.raises(SystemExit):
            main(["check", str(path)])

    def test_py_file_with_bad_python(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def oops(:\n")
        with pytest.raises(SystemExit):
            main(["check", str(path)])

    def test_check_accepts_embedded_source(self, tmp_path, capsys):
        path = tmp_path / "prog.py"
        path.write_text(f'SOURCE = """{GOOD}"""\n')
        assert main(["check", str(path)]) == 0
        assert "OK" in capsys.readouterr().out


class TestExitCodes:
    """The documented exit-code contract (README + `repro.api.ExitCode`)."""

    def test_ok_is_zero(self, fcl_file):
        assert main(["check", fcl_file(GOOD)]) == 0
        assert main(["verify", fcl_file(GOOD)]) == 0
        assert main(["run", fcl_file(GOOD), "add", "1", "2"]) == 0

    def test_check_reject_is_one(self, fcl_file, capsys):
        assert main(["check", fcl_file(BAD)]) == 1
        assert main(["verify", fcl_file(BAD)]) == 1
        capsys.readouterr()

    def test_syntax_error_is_one(self, fcl_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["check", fcl_file("struct {")])
        assert excinfo.value.code == 1
        capsys.readouterr()

    def test_runtime_error_is_three(self, fcl_file, capsys):
        racy = """
        struct data { v : int; }
        def f() : int { let d = new data(v = 1); send(d); d.v }
        """
        assert main(["run", "--unchecked", fcl_file(racy), "f"]) == 3
        capsys.readouterr()

    def test_step_budget_exhaustion_is_three(self, fcl_file, capsys):
        assert (
            main(["run", "--max-steps", "1", fcl_file(GOOD), "add", "1", "2"])
            == 3
        )
        assert "step budget" in capsys.readouterr().err

    def test_usage_error_is_sixty_four(self, fcl_file, capsys):
        # argparse-level: unknown subcommand and unknown flag.
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 64
        with pytest.raises(SystemExit) as excinfo:
            main(["check", "--no-such-flag", fcl_file(GOOD)])
        assert excinfo.value.code == 64
        # Hand-rolled validation: flag conflicts and bad values.
        with pytest.raises(SystemExit) as excinfo:
            main(["verify", "--trust-cache", fcl_file(GOOD)])
        assert excinfo.value.code == 64
        with pytest.raises(SystemExit) as excinfo:
            main(["run", fcl_file(GOOD), "add", "zzz"])
        assert excinfo.value.code == 64
        capsys.readouterr()


class TestConsoleScript:
    def test_fcl_entry_point(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-c", "from repro.cli import main; raise SystemExit(main(['corpus']))"],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0
        assert "rbtree" in proc.stdout
