"""Small-step machine tests: agreement with the big-step interpreter,
step-granular invariants, constant Python stack, fig 7 dynamic checks."""

import pytest

from repro.analysis import check_refcounts
from repro.corpus import load_program
from repro.lang import parse_program
from repro.runtime.heap import Heap
from repro.runtime.machine import (
    DeadlockError,
    Machine,
    MachineError,
    ReservationViolation,
    run_function,
)
from repro.runtime.smallstep import (
    BLOCKED_RECV,
    DONE,
    RUNNING,
    Config,
    SmallStepMachine,
    run_function_smallstep,
)
from repro.runtime.values import NONE, UNIT

STRUCTS = """
struct data { v : int; }
struct box { iso inner : data?; tag : int; }
struct cell { other : cell; tag : int; }
"""


def both(body, params="", args=(), ret="int"):
    """Run under both semantics; assert identical results and identical
    heap traffic; return the value."""
    program = parse_program(STRUCTS + f"def fn({params}) : {ret} {{ {body} }}")
    heap_big = Heap()
    big, _ = run_function(program, "fn", args, heap=heap_big)
    heap_small = Heap()
    small, _config = run_function_smallstep(program, "fn", args, heap=heap_small)
    assert big == small
    assert (heap_big.reads, heap_big.writes) == (heap_small.reads, heap_small.writes)
    return small


class TestAgreement:
    def test_arithmetic(self):
        assert both("1 + 2 * 3 - 4") == 3

    def test_logic_and_compare(self):
        assert both("(1 < 2) && !(3 == 4)", ret="bool") is True

    def test_let_blocks_assign(self):
        assert both("let x = 1; { let y = x + 1; x = y * 10 }; x") == 20

    def test_if(self):
        assert both("if (2 > 1) { 10 } else { 20 }") == 10

    def test_while(self):
        assert (
            both("let i = 6; let a = 0; while (i > 0) { a = a + i; i = i - 1 }; a")
            == 21
        )

    def test_heap_ops(self):
        assert (
            both(
                "let b = new box(); b.tag = 4; "
                "b.inner = some(new data(v = 5)); "
                "let some(d) = b.inner in { d.v + b.tag } else { 0 }"
            )
            == 9
        )

    def test_calls(self):
        program = parse_program(
            STRUCTS
            + """
def fib(n : int) : int {
  if (n < 2) { n } else { fib(n - 1) + fib(n - 2) }
}
"""
        )
        big, _ = run_function(program, "fib", [12])
        small, _ = run_function_smallstep(program, "fib", [12])
        assert big == small == 144

    def test_let_some_paths(self):
        assert (
            both(
                "let b = new box(); "
                "let a = let some(d) = b.inner in { 1 } else { 2 }; "
                "b.inner = some(new data(v = 0)); "
                "let c = let some(d) = b.inner in { 3 } else { 4 }; "
                "a * 10 + c"
            )
            == 23
        )

    def test_reference_equality(self):
        assert (
            both(
                "let a = new cell(); let b = a; "
                "if (a == b) { 1 } else { 0 }"
            )
            == 1
        )

    def test_if_disconnected_agreement(self):
        program = load_program("dll")
        for semantics in ("big", "small"):
            heap = Heap()
            runner = run_function if semantics == "big" else run_function_smallstep
            lst, _ = runner(program, "make_dll", [4], heap=heap)
            values = []
            for _ in range(4):
                payload, _ = runner(program, "remove_tail", [lst], heap=heap)
                values.append(heap.obj(payload).fields["v"])
            assert values == [4, 3, 2, 1]
            assert heap.obj(lst).fields["hd"] is NONE


class TestCorpusAgreement:
    def test_rbtree(self):
        program = load_program("rbtree")
        heap = Heap()
        tree, _ = run_function_smallstep(program, "build_tree", [60, 9], heap=heap)
        valid, _ = run_function_smallstep(
            program, "rb_valid", [tree, -1, 1 << 30], heap=heap
        )
        assert valid
        check_refcounts(heap)

    def test_mergesort(self):
        program = load_program("algorithms")
        heap = Heap()
        lst, _ = run_function_smallstep(
            program, "make_list_lcg", [40, 3], heap=heap
        )
        run_function_smallstep(program, "sort", [lst], heap=heap)
        ok, _ = run_function_smallstep(program, "list_is_sorted", [lst], heap=heap)
        assert ok


class TestConstantStack:
    def test_deep_recursion_without_python_recursion(self):
        # A 20,000-deep FCL recursion: impossible on the generator
        # interpreter without an enormous recursion limit; trivial here.
        import sys

        program = parse_program(
            "def count(n : int) : int { if (n == 0) { 0 } else { 1 + count(n - 1) } }"
        )
        limit = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(256)
            result, config = run_function_smallstep(program, "count", [20_000])
        finally:
            sys.setrecursionlimit(limit)
        assert result == 20_000
        assert config.steps > 100_000

    def test_long_list_remove_tail(self):
        program = load_program("sll")
        heap = Heap()
        lst, _ = run_function_smallstep(program, "make_list", [5_000], heap=heap)
        head = heap.obj(lst).fields["hd"]
        payload, _ = run_function_smallstep(
            program, "remove_tail", [head], heap=heap
        )
        assert heap.obj(payload).fields["v"] == 5_000


class TestReservations:
    def test_out_of_reservation_var_use_sticks(self):
        program = parse_program(STRUCTS + "def f(d : data) : int { d.v }")
        heap = Heap()
        d = heap.alloc(program.structs["data"], {"v": 1})
        config = Config(program, heap, {d}, "f", [d])
        config.reservation.clear()  # simulate loss of the reservation
        with pytest.raises(ReservationViolation):
            config.run()

    def test_checks_erasable(self):
        program = parse_program(STRUCTS + "def f(d : data) : int { d.v }")
        heap = Heap()
        d = heap.alloc(program.structs["data"], {"v": 7})
        config = Config(program, heap, {d}, "f", [d], check_reservations=False)
        config.reservation.clear()
        assert config.run() == 7

    def test_step_statuses(self):
        program = parse_program("def f() : int { 1 + 2 }")
        config = Config(program, Heap(), set(), "f", [])
        statuses = []
        while config.status == RUNNING:
            statuses.append(config.step())
        assert statuses[-1] == DONE
        assert config.result == 3
        assert config.steps == len(statuses)


class TestConcurrent:
    def test_queue_pipeline(self):
        program = load_program("queue")
        machine = SmallStepMachine(program, seed=13)
        machine.spawn("source", [15])
        machine.spawn("relay", [15])
        sink = machine.spawn("sink", [15])
        machine.run()
        assert sink.result == 120
        assert machine.reservations_disjoint()

    def test_agreement_with_generator_machine(self):
        program = load_program("queue")
        results = []
        for make in (Machine, SmallStepMachine):
            machine = make(program, seed=4)
            machine.spawn("source", [9])
            machine.spawn("relay", [9])
            sink = machine.spawn("sink", [9])
            machine.run()
            results.append(sink.result)
        assert results[0] == results[1] == 45

    def test_deadlock_detection(self):
        program = parse_program(
            "struct data { v : int; } def r() : int { let d = recv(data); d.v }"
        )
        machine = SmallStepMachine(program, seed=0)
        machine.spawn("r")
        with pytest.raises(DeadlockError):
            machine.run()

    def test_use_after_send_stuck(self):
        program = parse_program(
            """
            struct data { v : int; }
            def bad() : int { let d = new data(v = 1); send(d); d.v }
            def ok() : int { let d = recv(data); d.v }
            """
        )
        machine = SmallStepMachine(program, seed=0)
        machine.spawn("bad")
        machine.spawn("ok")
        with pytest.raises(ReservationViolation):
            machine.run()

    def test_step_granular_disjointness(self):
        # I1 audited after *every* scheduler step.
        program = load_program("queue")
        machine = SmallStepMachine(program, seed=21)
        machine.spawn("source", [5])
        machine.spawn("relay", [5])
        sink = machine.spawn("sink", [5])
        for _ in range(2_000_000):
            machine._match_rendezvous()
            runnable = [c for c in machine.configs if c.status == RUNNING]
            if not runnable:
                blocked = [
                    c
                    for c in machine.configs
                    if c.status in ("blocked_send", "blocked_recv")
                ]
                if not blocked:
                    break
                continue
            machine.rng.choice(runnable).step()
            assert machine.reservations_disjoint()
        assert sink.result == 15


class TestAuditedRuns:
    def test_preservation_audits_pass(self):
        # The executable preservation theorem: invariants re-checked every
        # scheduler step across a whole concurrent run.
        program = load_program("queue")
        machine = SmallStepMachine(program, seed=17, audit_every=1)
        machine.spawn("source", [6])
        machine.spawn("relay", [6])
        sink = machine.spawn("sink", [6])
        machine.run()
        assert sink.result == 21
        assert machine.audits > 1_000

    def test_audits_catch_manufactured_overlap(self):
        from repro.analysis.invariants import InvariantViolation
        from repro.runtime.values import Loc

        program = load_program("queue")
        machine = SmallStepMachine(program, seed=17, audit_every=1)
        machine.spawn("source", [3])
        machine.spawn("relay", [3])
        machine.spawn("sink", [3])
        # Corrupt: force the same location into two reservations.
        bogus = Loc(999_999)
        machine.configs[0].reservation.add(bogus)
        machine.configs[1].reservation.add(bogus)
        with pytest.raises(InvariantViolation):
            machine.run()
