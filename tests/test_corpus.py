"""Integration tests over the full corpus: every program parses, checks,
verifies, and runs with the expected results."""

import pytest

from repro.core.checker import Checker
from repro.corpus import corpus_names, load_program
from repro.runtime.heap import Heap
from repro.runtime.machine import Machine, run_function
from repro.runtime.values import NONE
from repro.verifier import Verifier
from repro.analysis import (
    check_iso_domination,
    check_refcounts,
)


@pytest.mark.parametrize("name", corpus_names())
def test_corpus_checks_and_verifies(name):
    program = load_program(name)
    derivation = Checker(program).check_program()
    nodes = Verifier(program).verify_program(derivation)
    assert nodes > 0


class TestSllBehaviour:
    @pytest.fixture()
    def env(self):
        program = load_program("sll")
        return program, Heap()

    def test_make_and_sum(self, env):
        program, heap = env
        lst, _ = run_function(program, "make_list", [10], heap=heap)
        assert run_function(program, "sum", [lst], heap=heap)[0] == 55
        assert run_function(program, "list_length", [lst], heap=heap)[0] == 10

    def test_push_pop_lifo(self, env):
        program, heap = env
        lst, _ = run_function(program, "make_list", [0], heap=heap)
        for v in (1, 2, 3):
            d = heap.alloc(program.structs["data"], {"v": v})
            run_function(program, "push", [lst, d], heap=heap)
        got = []
        for _ in range(3):
            d, _ = run_function(program, "pop", [lst], heap=heap)
            got.append(heap.obj(d).fields["v"])
        assert got == [3, 2, 1]
        assert run_function(program, "pop", [lst], heap=heap)[0] is NONE

    def test_remove_tail_detaches(self, env):
        program, heap = env
        lst, _ = run_function(program, "make_list", [4], heap=heap)
        head = heap.obj(lst).fields["hd"]
        payload, _ = run_function(program, "remove_tail", [head], heap=heap)
        assert heap.obj(payload).fields["v"] == 4
        assert payload not in heap.live_set(lst)
        assert run_function(program, "list_length", [lst], heap=heap)[0] == 3

    def test_remove_tail_none_on_singleton(self, env):
        program, heap = env
        lst, _ = run_function(program, "make_list", [1], heap=heap)
        head = heap.obj(lst).fields["hd"]
        assert run_function(program, "remove_tail", [head], heap=heap)[0] is NONE

    def test_concat(self, env):
        program, heap = env
        l1, _ = run_function(program, "make_list", [3], heap=heap)
        l2, _ = run_function(program, "make_list", [2], heap=heap)
        h1 = heap.obj(l1).fields["hd"]
        h2 = heap.obj(l2).fields["hd"]
        run_function(program, "concat", [h1, h2], heap=heap)
        assert run_function(program, "length", [h1], heap=heap)[0] == 5
        assert run_function(program, "sum_node", [h1], heap=heap)[0] == 6 + 3

    def test_reverse(self, env):
        program, heap = env
        lst, _ = run_function(program, "make_list", [4], heap=heap)
        run_function(program, "reverse", [lst], heap=heap)
        head = heap.obj(lst).fields["hd"]
        values = [
            run_function(program, "nth_value", [head, i], heap=heap)[0]
            for i in range(4)
        ]
        assert values == [4, 3, 2, 1]

    def test_invariants_after_mutations(self, env):
        program, heap = env
        lst, _ = run_function(program, "make_list", [6], heap=heap)
        run_function(program, "reverse", [lst], heap=heap)
        head = heap.obj(lst).fields["hd"]
        run_function(program, "remove_tail", [head], heap=heap)
        check_refcounts(heap)
        check_iso_domination(heap, [lst])


class TestDllBehaviour:
    @pytest.fixture()
    def env(self):
        program = load_program("dll")
        return program, Heap()

    def test_build_and_measure(self, env):
        program, heap = env
        lst, _ = run_function(program, "make_dll", [5], heap=heap)
        assert run_function(program, "dll_length", [lst], heap=heap)[0] == 5
        assert run_function(program, "dll_sum", [lst], heap=heap)[0] == 15

    def test_circularity(self, env):
        program, heap = env
        lst, _ = run_function(program, "make_dll", [3], heap=heap)
        hd = heap.obj(lst).fields["hd"]
        # Walk next 3 times: back at head.  prev of head is the tail.
        cur = hd
        for _ in range(3):
            cur = heap.obj(cur).fields["next"]
        assert cur == hd

    def test_remove_tail_all_sizes(self, env):
        program, heap = env
        lst, _ = run_function(program, "make_dll", [4], heap=heap)
        values = []
        for _ in range(4):
            payload, _ = run_function(program, "remove_tail", [lst], heap=heap)
            values.append(heap.obj(payload).fields["v"])
        assert values == [4, 3, 2, 1]
        assert heap.obj(lst).fields["hd"] is NONE
        assert run_function(program, "remove_tail", [lst], heap=heap)[0] is NONE

    def test_removal_disconnects(self, env):
        program, heap = env
        lst, _ = run_function(program, "make_dll", [3], heap=heap)
        payload, _ = run_function(program, "remove_tail", [lst], heap=heap)
        assert payload not in heap.live_set(lst)
        check_refcounts(heap)
        check_iso_domination(heap, [lst])

    def test_get_nth_wraps_around(self, env):
        program, heap = env
        lst, _ = run_function(program, "make_dll", [3], heap=heap)
        n0, _ = run_function(program, "get_nth_node", [lst, 0], heap=heap)
        n3, _ = run_function(program, "get_nth_node", [lst, 3], heap=heap)
        assert n0 == n3  # wrap-around on a 3-element cycle

    def test_singleton(self, env):
        program, heap = env
        lst, _ = run_function(program, "singleton", [9], heap=heap)
        assert run_function(program, "dll_length", [lst], heap=heap)[0] == 1
        node = heap.obj(lst).fields["hd"]
        assert heap.obj(node).fields["next"] == node
        assert heap.obj(node).fields["prev"] == node


class TestRbtreeBehaviour:
    @pytest.fixture()
    def env(self):
        program = load_program("rbtree")
        return program, Heap()

    LIMIT = 1 << 30

    def test_insert_and_contains(self, env):
        program, heap = env
        tree, _ = run_function(program, "rb_new", [], heap=heap)
        keys = [5, 3, 8, 1, 4, 10, 7, 2, 9, 6]
        for k in keys:
            run_function(program, "rb_insert", [tree, k], heap=heap)
        for k in keys:
            assert run_function(program, "rb_contains", [tree, k], heap=heap)[0]
        assert not run_function(program, "rb_contains", [tree, 99], heap=heap)[0]

    def test_duplicate_inserts_ignored(self, env):
        program, heap = env
        tree, _ = run_function(program, "rb_new", [], heap=heap)
        for _ in range(3):
            run_function(program, "rb_insert", [tree, 7], heap=heap)
        assert run_function(program, "tree_size", [tree], heap=heap)[0] == 1

    @pytest.mark.parametrize("order", ["ascending", "descending", "random"])
    def test_invariants_hold(self, env, order):
        program, heap = env
        tree, _ = run_function(program, "rb_new", [], heap=heap)
        keys = list(range(1, 64))
        if order == "descending":
            keys.reverse()
        elif order == "random":
            import random

            random.Random(5).shuffle(keys)
        for k in keys:
            run_function(program, "rb_insert", [tree, k], heap=heap)
        assert run_function(
            program, "rb_valid", [tree, 0, self.LIMIT], heap=heap
        )[0]
        assert run_function(program, "tree_size", [tree], heap=heap)[0] == 63
        check_refcounts(heap)
        check_iso_domination(heap, [tree])

    def test_balancing_bounds_height(self, env):
        # 63 ascending inserts in a plain BST would make height 63; the
        # red-black tree's black height must be logarithmic.
        program, heap = env
        tree, _ = run_function(program, "rb_new", [], heap=heap)
        for k in range(1, 64):
            run_function(program, "rb_insert", [tree, k], heap=heap)
        root = heap.obj(tree).fields["root"]
        bh, _ = run_function(program, "black_height", [root], heap=heap)
        assert 0 < bh <= 6

    def test_build_tree_driver(self, env):
        program, heap = env
        tree, _ = run_function(program, "build_tree", [50, 777], heap=heap)
        assert run_function(
            program, "rb_valid", [tree, -1, self.LIMIT], heap=heap
        )[0]


class TestQueueBehaviour:
    def test_three_stage_pipeline(self):
        program = load_program("queue")
        n = 25
        machine = Machine(program, seed=11)
        machine.spawn("source", [n])
        machine.spawn("relay", [n])
        sink = machine.spawn("sink", [n])
        machine.run()
        assert sink.result == n * (n + 1) // 2
        assert machine.reservations_disjoint()

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_schedules_do_not_matter(self, seed):
        program = load_program("queue")
        machine = Machine(program, seed=seed)
        machine.spawn("source", [10])
        machine.spawn("relay", [10])
        sink = machine.spawn("sink", [10])
        machine.run()
        assert sink.result == 55


class TestShuffle:
    """§8's shuffle: seven nodes in, one fixed tree out — the signature is
    the specification."""

    def _nodes(self, program, heap, with_subtrees=False):
        nodes = []
        for i in range(7):
            inits = {"key": i}
            if with_subtrees:
                inits["left"] = heap.alloc(
                    program.structs["rbnode"], {"key": 100 + i}
                )
            nodes.append(heap.alloc(program.structs["rbnode"], inits))
        return nodes

    def _assert_shape(self, heap, root):
        def key(loc):
            return heap.obj(loc).fields["key"]

        def child(loc, side):
            return heap.obj(loc).fields[side]

        assert key(root) == 3
        b, f = child(root, "left"), child(root, "right")
        assert key(b) == 1 and key(f) == 5
        assert [key(child(b, "left")), key(child(b, "right"))] == [0, 2]
        assert [key(child(f, "left")), key(child(f, "right"))] == [4, 6]

    def test_plain_nodes(self):
        program = load_program("rbtree")
        heap = Heap()
        nodes = self._nodes(program, heap)
        root, _ = run_function(program, "shuffle", nodes, heap=heap)
        self._assert_shape(heap, root)

    def test_nodes_arriving_with_subtrees(self):
        # Incoming ownership structure is irrelevant: shuffle severs it.
        program = load_program("rbtree")
        heap = Heap()
        nodes = self._nodes(program, heap, with_subtrees=True)
        root, _ = run_function(program, "shuffle", nodes, heap=heap)
        self._assert_shape(heap, root)
        from repro.analysis import check_iso_domination, check_refcounts

        check_refcounts(heap)
        check_iso_domination(heap, [root])

    def test_shuffle_without_after_rejected(self):
        from repro.corpus import load_source
        from repro.core.errors import TypeError_
        from repro.lang import parse_program

        source = load_source("rbtree").replace(
            "    after: d ~ result {", "    {"
        )
        with pytest.raises(TypeError_):
            Checker(parse_program(source)).check_program()

    def test_aliased_shuffle_arguments_rejected(self):
        # Distinct parameters demand provably disjoint nodes.
        from repro.corpus import load_source
        from repro.core.errors import SeparationError
        from repro.lang import parse_program

        source = load_source("rbtree") + """
def bad(n : rbnode) : rbnode after: n ~ result {
  shuffle(n, n, n, n, n, n, n)
}
"""
        with pytest.raises(SeparationError):
            Checker(parse_program(source)).check_program()
