"""Figure-by-figure reproduction of the paper's examples (§2, fig 1–5, 14).

This is the acceptance matrix the paper's exposition promises:

* fig 1 structs are declarable;
* fig 2 (sll remove_tail) type-checks — it *violates global domination*
  mid-function, which is the whole point of tempered domination;
* fig 4 (broken dll removal) is rejected — the returned payload would not
  be a dominating reference on size-1 lists;
* fig 5 (fixed dll removal with ``if disconnected``) type-checks, and
  removing the `l.hd` reassignment in the then branch breaks it;
* fig 14 (concat with ``consumes``, get_nth_node with ``after``) check.
"""

import pytest

from repro.core.checker import Checker, check_source
from repro.core.errors import InvalidatedField, TypeError_
from repro.lang import parse_program
from repro.verifier import Verifier

DATA = "struct data { v : int; }\n"

FIG1_SLL = (
    DATA
    + """
struct sll_node {
  iso payload : data;
  iso next : sll_node?;
}
struct sll { iso hd : sll_node?; }
"""
)

FIG1_DLL = (
    DATA
    + """
struct dll_node {
  iso payload : data;
  next : dll_node;
  prev : dll_node;
}
struct dll { iso hd : dll_node?; }
"""
)

FIG2 = (
    FIG1_SLL
    + """
def remove_tail(n : sll_node) : data? {
  let some(next) = n.next in {
    if (is_none(next.next)) {
      n.next = none;
      some(next.payload)
    } else { remove_tail(next) }
  } else { none }
}
"""
)

FIG4 = (
    FIG1_DLL
    + """
def remove_tail(l : dll) : data? {
  let some(hd) = l.hd in {
    let tail = hd.prev;
    tail.prev.next = hd;
    hd.prev = tail.prev;
    some(tail.payload)
  } else { none }
}
"""
)

FIG5 = (
    FIG1_DLL
    + """
def remove_tail(l : dll) : data? {
  let some(hd) = l.hd in {
    let tail = hd.prev;
    tail.prev.next = hd;
    hd.prev = tail.prev;
    tail.next = tail;
    tail.prev = tail;
    if disconnected(tail, hd) {
      l.hd = some(hd);
      some(tail.payload)
    } else {
      l.hd = none;
      some(hd.payload)
    }
  } else { none }
}
"""
)

FIG5_WITHOUT_HD_REASSIGNMENT = (
    FIG1_DLL
    + """
def remove_tail(l : dll) : data? {
  let some(hd) = l.hd in {
    let tail = hd.prev;
    tail.prev.next = hd;
    hd.prev = tail.prev;
    tail.next = tail;
    tail.prev = tail;
    if disconnected(tail, hd) {
      some(tail.payload)
    } else {
      l.hd = none;
      some(hd.payload)
    }
  } else { none }
}
"""
)

FIG14_CONCAT = (
    FIG1_SLL
    + """
def concat(l1, l2 : sll_node) : unit consumes l2 {
  let some(l1_next) = l1.next in {
    concat(l1_next, l2)
  } else { l1.next = some(l2) }
}
"""
)

FIG14_GET_NTH = (
    FIG1_DLL
    + """
def get_nth_node(l : dll, pos : int) : dll_node? after: l.hd ~ result {
  let some(node) = l.hd in {
    while (pos > 0) {
      node = node.next;
      pos = pos - 1
    };
    some(node)
  } else { none }
}
"""
)


def checks(source: str) -> bool:
    try:
        check_source(source)
        return True
    except TypeError_:
        return False


def checks_and_verifies(source: str) -> None:
    program = parse_program(source)
    derivation = Checker(program).check_program()
    Verifier(program).verify_program(derivation)


class TestFigure1:
    def test_sll_structs_declare(self):
        check_source(FIG1_SLL)

    def test_dll_structs_declare(self):
        check_source(FIG1_DLL)


class TestFigure2:
    def test_accepted(self):
        checks_and_verifies(FIG2)

    def test_swap_free(self):
        # No destructive reads appear anywhere: the program has exactly one
        # heap mutation (`n.next = none`).
        program = parse_program(FIG2)
        from repro.lang import ast

        assigns = [
            node
            for node in ast.walk(program.funcs["remove_tail"].body)
            if isinstance(node, ast.Assign)
        ]
        assert len(assigns) == 1


class TestFigure4:
    def test_rejected(self):
        # "Sadly, this code contains an error" (§2.2): on size-1 lists the
        # returned payload is not a dominating reference.
        assert not checks(FIG4)

    def test_rejected_specifically_at_the_boundary(self):
        # The body itself is fine; the failure is that the result cannot be
        # separated from the list at the function boundary.
        from repro.core.errors import UnificationError

        with pytest.raises(UnificationError):
            check_source(FIG4)


class TestFigure5:
    def test_accepted_and_verified(self):
        checks_and_verifies(FIG5)

    def test_hd_reassignment_is_mandatory(self):
        # "l.hd invalid at branch start": dropping the reassignment in the
        # then branch must break the program.
        assert not checks(FIG5_WITHOUT_HD_REASSIGNMENT)


class TestFigure14:
    def test_concat_accepted(self):
        checks_and_verifies(FIG14_CONCAT)

    def test_concat_needs_consumes(self):
        without = FIG14_CONCAT.replace(" consumes l2", "")
        assert not checks(without)

    def test_get_nth_accepted(self):
        checks_and_verifies(FIG14_GET_NTH)

    def test_get_nth_needs_after(self):
        without = FIG14_GET_NTH.replace(" after: l.hd ~ result", "")
        assert not checks(without)


class TestRuntimeBehaviour:
    """The dynamic behaviours the figures describe."""

    def test_fig2_detaches_tail(self):
        from repro.runtime.heap import Heap
        from repro.runtime.machine import run_function
        from repro.runtime.values import NONE

        program = parse_program(
            FIG2
            + """
def build(n : int) : sll {
  let l = new sll();
  while (n > 0) {
    let d = new data(v = n);
    let node = new sll_node(payload = d, next = l.hd);
    l.hd = some(node);
    n = n - 1
  };
  l
}
"""
        )
        heap = Heap()
        lst, _ = run_function(program, "build", [3], heap=heap)
        head = heap.obj(lst).fields["hd"]
        payload, _ = run_function(program, "remove_tail", [head], heap=heap)
        assert heap.obj(payload).fields["v"] == 3
        # The payload is now disconnected from the list.
        assert payload not in heap.live_set(lst)

    def test_fig2_returns_none_on_singleton(self):
        from repro.runtime.heap import Heap
        from repro.runtime.machine import run_function
        from repro.runtime.values import NONE

        program = parse_program(FIG2)
        heap = Heap()
        data = heap.alloc(parse_program(FIG2).structs["data"], {"v": 1})
        node = heap.alloc(
            parse_program(FIG2).structs["sll_node"],
            {"payload": data, "next": NONE},
        )
        result, _ = run_function(program, "remove_tail", [node], heap=heap)
        assert result is NONE

    def test_fig5_size1_takes_else_branch(self):
        from repro.runtime.heap import Heap
        from repro.runtime.machine import run_function
        from repro.runtime.values import NONE

        program = parse_program(
            FIG5
            + """
def build1(v : int) : dll {
  let d = new data(v = v);
  let node = new dll_node(payload = d);
  let l = new dll();
  l.hd = some(node);
  l
}
"""
        )
        heap = Heap()
        lst, _ = run_function(program, "build1", [42], heap=heap)
        payload, interp = run_function(program, "remove_tail", [lst], heap=heap)
        assert heap.obj(payload).fields["v"] == 42
        assert heap.obj(lst).fields["hd"] is NONE  # else branch ran
        stats = interp.stats.disconnect_checks[0]
        # §5.2: the check terminates after touching only a couple objects.
        assert stats.objects_visited <= 2
