"""Garbage analysis tests — including the §5.2 precision interaction:
stale garbage references make `if disconnected` conservative; collecting
restores exactness."""

import pytest

from repro.analysis.gc import collect, garbage, reachable_from
from repro.analysis import check_refcounts
from repro.corpus import load_program
from repro.lang import parse_program
from repro.runtime.disconnect import efficient_disconnected, naive_disconnected
from repro.runtime.heap import Heap
from repro.runtime.machine import run_function

STRUCTS = parse_program(
    """
struct data { v : int; }
struct cell { other : cell; tag : int; }
"""
)


class TestReachability:
    def test_everything_reachable(self):
        heap = Heap()
        a = heap.alloc(STRUCTS.structs["cell"], {})
        b = heap.alloc(STRUCTS.structs["cell"], {})
        heap.write_field(a, "other", b)
        assert reachable_from(heap, [a]) == {a, b}
        assert garbage(heap, [a]) == set()

    def test_detached_is_garbage(self):
        heap = Heap()
        a = heap.alloc(STRUCTS.structs["cell"], {})
        b = heap.alloc(STRUCTS.structs["cell"], {})
        assert garbage(heap, [a]) == {b}

    def test_remove_tail_leaves_spine_garbage(self):
        # fig 2: the excised node is unreachable; its payload is returned.
        program = load_program("sll")
        heap = Heap()
        lst, _ = run_function(program, "make_list", [4], heap=heap)
        head = heap.obj(lst).fields["hd"]
        payload, _ = run_function(program, "remove_tail", [head], heap=heap)
        dead = garbage(heap, [lst, payload])
        assert len(dead) == 1  # exactly the detached sll_node
        node = next(iter(dead))
        assert heap.obj(node).struct.name == "sll_node"


class TestCollect:
    def test_collect_removes_garbage(self):
        program = load_program("sll")
        heap = Heap()
        lst, _ = run_function(program, "make_list", [6], heap=heap)
        head = heap.obj(lst).fields["hd"]
        payload, _ = run_function(program, "remove_tail", [head], heap=heap)
        before = len(heap)
        stats = collect(heap, [lst, payload])
        assert stats.collected == 1
        assert len(heap) == before - 1
        check_refcounts(heap)

    def test_collect_noop_on_fully_live(self):
        heap = Heap()
        a = heap.alloc(STRUCTS.structs["cell"], {})
        stats = collect(heap, [a])
        assert stats.collected == 0 and stats.live == 1

    def test_corrections_counted(self):
        heap = Heap()
        live = heap.alloc(STRUCTS.structs["cell"], {})
        dead = heap.alloc(STRUCTS.structs["cell"], {})
        heap.write_field(dead, "other", live)
        # live's count: its own self-reference default + dead.other.
        assert heap.obj(live).stored_refcount == 2
        stats = collect(heap, [live])
        assert stats.refcount_corrections == 1
        assert heap.obj(live).stored_refcount == 1  # the self reference
        check_refcounts(heap)


class TestDisconnectionPrecision:
    def test_garbage_makes_check_conservative_and_gc_restores_it(self):
        # Two genuinely disconnected cells; a garbage object still points
        # at one of them.  The naive (exact) check says disconnected; the
        # refcount check conservatively says connected — until the garbage
        # is collected.
        heap = Heap()
        a = heap.alloc(STRUCTS.structs["cell"], {})
        b = heap.alloc(STRUCTS.structs["cell"], {})
        stale = heap.alloc(STRUCTS.structs["cell"], {})
        heap.write_field(stale, "other", a)

        exact, _ = naive_disconnected(heap, a, b)
        assert exact  # truly disconnected

        conservative, _ = efficient_disconnected(heap, a, b)
        assert not conservative  # stale count blunts the check (§5.2)

        stats = collect(heap, [a, b])
        assert stats.collected == 1 and stats.refcount_corrections == 1

        precise, _ = efficient_disconnected(heap, a, b)
        assert precise  # precision restored
