"""REPL tests: the incremental checking session."""

import io

import pytest

from repro.core.errors import TypeError_
from repro.lang.parser import ParseError
from repro.repl import ReplError, Session, run_repl


@pytest.fixture()
def session():
    return Session()


class TestExpressions:
    def test_arithmetic(self, session):
        value, ty, shown = session.eval_expression("2 + 3")
        assert value == 5 and ty == "int" and shown == "5"

    def test_bindings_persist(self, session):
        session.eval_expression("let x = 10")
        value, _, _ = session.eval_expression("x * x")
        assert value == 100

    def test_heap_bindings_persist(self, session):
        session.eval_expression("let d = new data(v = 3)")
        value, ty, _ = session.eval_expression("d.v")
        assert value == 3 and ty == "int"

    def test_assignment_persists(self, session):
        session.eval_expression("let x = 1")
        session.eval_expression("x = 7")
        assert session.eval_expression("x")[0] == 7

    def test_type_errors_do_not_corrupt_session(self, session):
        session.eval_expression("let d = new data(v = 1)")
        with pytest.raises(TypeError_):
            session.eval_expression("d.v + true")
        # Session still intact.
        assert session.eval_expression("d.v")[0] == 1

    def test_shadowing_rejected(self, session):
        session.eval_expression("let x = 1")
        with pytest.raises(TypeError_):
            session.eval_expression("let x = 2")

    def test_parse_error(self, session):
        with pytest.raises(ParseError):
            session.eval_expression("1 +")


class TestDeclarations:
    def test_define_and_call(self, session):
        session.add_declarations("def double(n : int) : int { n * 2 }")
        assert session.eval_expression("double(21)")[0] == 42

    def test_define_struct_and_allocate(self, session):
        session.add_declarations("struct box { iso inner : data?; }")
        session.eval_expression("let b = new box()")
        session.eval_expression("b.inner = some(new data(v = 9))")
        value, _, _ = session.eval_expression(
            "let some(d) = b.inner in { d.v } else { 0 }"
        )
        assert value == 9

    def test_bad_declaration_rejected_atomically(self, session):
        with pytest.raises(TypeError_):
            session.add_declarations("def bad(d : data) : unit { send(d) }")
        # Program unchanged; follow-ups still work.
        session.add_declarations("def ok() : int { 1 }")
        assert session.eval_expression("ok()")[0] == 1


class TestTrackingAcrossInputs:
    def test_iso_tracking_persists(self, session):
        session.add_declarations("struct box { iso inner : data?; }")
        session.eval_expression("let b = new box()")
        session.eval_expression("let m = b.inner")
        # b is focused with inner tracked in the session context.
        tracked = session.ctx.tracked_var("b")
        assert tracked is not None and "inner" in tracked.fields

    def test_send_consumes_binding(self, session):
        session.eval_expression("let d = new data(v = 1)")
        session.eval_expression("send(d)")
        assert not session.ctx.has_var("d")
        assert "d" not in session.env
        with pytest.raises(TypeError_):
            session.eval_expression("d.v")

    def test_send_removes_objects_from_reservation(self, session):
        session.eval_expression("let d = new data(v = 1)")
        before = len(session.interp.reservation)
        session.eval_expression("send(d)")
        assert len(session.interp.reservation) == before - 1

    def test_recv_rejected(self, session):
        with pytest.raises(ReplError):
            session.eval_expression("let d = recv(data)")


class TestRenderings:
    def test_struct_rendering(self, session):
        _, _, shown = session.eval_expression("new data(v = 4)")
        assert shown.startswith("data{v = 4}")

    def test_show_context(self, session):
        session.eval_expression("let d = new data(v = 1)")
        assert "d: r" in session.show_context()

    def test_show_heap(self, session):
        session.eval_expression("let d = new data(v = 1)")
        assert "data{v = 1}" in session.show_heap()

    def test_show_regions(self, session):
        session.eval_expression("let d = new data(v = 1)")
        assert "dynamic region" in session.show_regions()


class TestDriver:
    def test_scripted_session(self):
        stdin = io.StringIO(
            "let d = new data(v = 20)\n"
            "d.v * 2 + 2\n"
            ":ctx\n"
            "bogus +\n"
            ":help\n"
            ":quit\n"
        )
        stdout = io.StringIO()
        assert run_repl(stdin=stdin, stdout=stdout) == 0
        out = stdout.getvalue()
        assert "42 : int" in out
        assert "Γ" in out
        assert "error:" in out
        assert ":regions" in out  # help text

    def test_multiline_declaration(self):
        stdin = io.StringIO(
            "def trip(n : int) : int {\n"
            "  n * 3\n"
            "}\n"
            "trip(5)\n"
            ":quit\n"
        )
        stdout = io.StringIO()
        run_repl(stdin=stdin, stdout=stdout)
        assert "15 : int" in stdout.getvalue()

    def test_eof_exits(self):
        stdout = io.StringIO()
        assert run_repl(stdin=io.StringIO(""), stdout=stdout) == 0
