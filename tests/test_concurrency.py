"""Concurrency tests (§7): rendezvous semantics, reservation transfer,
deadlock detection, and schedule-independence under random interleavings."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.analysis import check_refcounts, check_reservations_disjoint
from repro.corpus import load_program
from repro.lang import parse_program
from repro.runtime.machine import (
    DeadlockError,
    Machine,
    ReservationViolation,
)

PINGPONG = """
struct data { v : int; }
struct token { iso payload : data; }

def pinger(n : int) : int {
  let last = 0;
  while (n > 0) {
    let d = new data(v = n);
    let t = new token(payload = d);
    send(t);
    let back = recv(data);
    last = back.v;
    n = n - 1
  };
  last
}

def ponger(n : int) : unit {
  while (n > 0) {
    let t = recv(token);
    let d = t.payload;
    d.v = d.v * 2;
    t.payload = new data(v = 0);
    send(d);
    n = n - 1
  }
}
"""


class TestRendezvous:
    def test_ping_pong(self):
        program = parse_program(PINGPONG)
        from repro.core.checker import Checker

        Checker(program).check_program()
        machine = Machine(program, seed=3)
        pinger = machine.spawn("pinger", [5])
        machine.spawn("ponger", [5])
        machine.run()
        assert pinger.result == 2  # last round: v=1, doubled

    def test_reservation_transfer(self):
        program = parse_program(PINGPONG)
        machine = Machine(program, seed=0)
        pinger = machine.spawn("pinger", [1])
        ponger = machine.spawn("ponger", [1])
        machine.run()
        assert machine.reservations_disjoint()
        # Ponger kept the token shell; it owns some locations.
        assert ponger.reservation

    def test_typed_matching(self):
        # A token sender must not pair with a data receiver.
        src = """
        struct a { x : int; }
        struct b { x : int; }
        def send_a() : unit { let v = new a(x = 1); send(v) }
        def recv_b() : int { let v = recv(b); v.x }
        """
        program = parse_program(src)
        machine = Machine(program, seed=0)
        machine.spawn("send_a")
        machine.spawn("recv_b")
        with pytest.raises(DeadlockError):
            machine.run()

    def test_deadlock_all_receivers(self):
        program = parse_program(PINGPONG)
        machine = Machine(program, seed=0)
        machine.spawn("ponger", [1])
        machine.spawn("ponger", [1])
        with pytest.raises(DeadlockError):
            machine.run()

    def test_lone_thread_finishing(self):
        src = "def f() : int { 41 + 1 }"
        program = parse_program(src)
        machine = Machine(program, seed=0)
        t = machine.spawn("f")
        machine.run()
        assert t.result == 42

    def test_failed_thread_surfaces_error(self):
        src = "struct d { v : int; } def f() : int { 1 / 0 }"
        program = parse_program(src)
        machine = Machine(program, seed=0)
        machine.spawn("f")
        from repro.runtime.machine import MachineError

        with pytest.raises(MachineError):
            machine.run()


class TestReservationSafety:
    def test_use_after_send_caught(self):
        src = """
        struct data { v : int; }
        def bad() : int { let d = new data(v = 1); send(d); d.v }
        def ok() : int { let d = recv(data); d.v }
        """
        program = parse_program(src)
        machine = Machine(program, seed=1)
        machine.spawn("bad")
        machine.spawn("ok")
        with pytest.raises(ReservationViolation):
            machine.run()

    def test_interior_alias_after_send_caught(self):
        src = """
        struct data { v : int; }
        struct box { iso inner : data?; }
        def bad() : int {
          let b = new box();
          let d = new data(v = 5);
          b.inner = some(d);
          send(b);
          d.v
        }
        def ok() : int { let b = recv(box); 0 }
        """
        program = parse_program(src)
        machine = Machine(program, seed=1)
        machine.spawn("bad")
        machine.spawn("ok")
        with pytest.raises(ReservationViolation):
            machine.run()

    def test_checks_erasable_for_welltyped(self):
        # The same well-typed pipeline runs identically with checks off.
        program = load_program("queue")
        for check in (True, False):
            machine = Machine(program, seed=5, check_reservations=check)
            machine.spawn("source", [8])
            machine.spawn("relay", [8])
            sink = machine.spawn("sink", [8])
            machine.run()
            assert sink.result == 36


class TestScheduleIndependence:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_queue_pipeline_any_schedule(self, seed):
        # E7: random interleavings never violate reservations and always
        # produce the same functional result.
        program = load_program("queue")
        machine = Machine(program, seed=seed)
        machine.spawn("source", [6])
        machine.spawn("relay", [6])
        sink = machine.spawn("sink", [6])
        machine.run()
        assert sink.result == 21
        assert machine.reservations_disjoint()
        check_refcounts(machine.heap)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_ping_pong_any_schedule(self, seed):
        program = parse_program(PINGPONG)
        machine = Machine(program, seed=seed)
        pinger = machine.spawn("pinger", [3])
        machine.spawn("ponger", [3])
        machine.run()
        assert pinger.result == 2
        check_reservations_disjoint([t.reservation for t in machine.threads])
