"""Heap tracer tests."""

import json

from repro.corpus import load_program
from repro.runtime.heap import Heap
from repro.runtime.machine import Machine, run_function
from repro.runtime.trace import ALLOC, READ, RECV, SEND, WRITE, Tracer
from repro.runtime.values import Loc


def traced_run(n=3):
    tracer = Tracer(capacity=10_000)
    heap = Heap(tracer=tracer)
    program = load_program("sll")
    lst, _ = run_function(program, "make_list", [n], heap=heap)
    return program, heap, tracer, lst


class TestRecording:
    def test_allocs_recorded(self):
        _, heap, tracer, _ = traced_run(3)
        allocs = tracer.events(kind=ALLOC)
        # 1 sll + 3 nodes + 3 payloads
        assert len(allocs) == 7
        assert {e.struct for e in allocs} == {"sll", "sll_node", "data"}

    def test_reads_and_writes_match_counters(self):
        _, heap, tracer, _ = traced_run(4)
        assert len(tracer.events(kind=READ)) == heap.reads
        assert len(tracer.events(kind=WRITE)) == heap.writes

    def test_write_records_old_value(self):
        program, heap, tracer, lst = traced_run(2)
        writes = tracer.events(kind=WRITE, loc=lst, fieldname="hd")
        assert len(writes) == 2  # two pushes onto the front
        assert writes[1].old == writes[0].value

    def test_history_of_location(self):
        program, heap, tracer, lst = traced_run(2)
        head = heap.obj(lst).fields["hd"]
        history = tracer.history_of(head)
        kinds = [e.kind for e in history]
        assert kinds[0] == ALLOC  # its own birth
        assert WRITE in kinds  # stored into l.hd

    def test_filtering(self):
        _, _, tracer, lst = traced_run(2)
        only_hd = tracer.events(fieldname="hd")
        assert only_hd and all(e.fieldname == "hd" for e in only_hd)

    def test_combined_filters(self):
        _, _, tracer, lst = traced_run(2)
        hits = tracer.events(kind=WRITE, loc=lst, fieldname="hd")
        assert len(hits) == 2
        assert all(
            e.kind == WRITE and e.loc == lst and e.fieldname == "hd"
            for e in hits
        )
        assert tracer.events(kind=WRITE, fieldname="nosuch") == []

    def test_alloc_carries_initial_field_values(self):
        from repro.runtime.values import NONE

        program, heap, tracer, lst = traced_run(1)
        (alloc,) = tracer.events(kind=ALLOC, loc=lst)
        assert alloc.struct == "sll"
        assert alloc.fields == {"hd": NONE}

    def test_history_of_sees_alloc_init_references(self):
        # make_list allocates each node with payload/next passed as inits:
        # the payload's history must include the node's alloc event even
        # though no write ever stored the payload anywhere.
        program, heap, tracer, lst = traced_run(1)
        node_alloc = tracer.events(kind=ALLOC)[-1]  # the sll_node
        assert node_alloc.struct == "sll_node"
        payload = node_alloc.fields["payload"]
        assert isinstance(payload, Loc)
        history = tracer.history_of(payload)
        assert node_alloc in history
        assert history[0].kind == ALLOC and history[0].loc == payload


class TestThreadsAndMessages:
    def run_queue(self, seed=0):
        program = load_program("queue")
        machine = Machine(program, seed=seed)
        tracer = Tracer()
        machine.heap.tracer = tracer
        machine.spawn("source", [5])
        machine.spawn("relay", [5])
        sink = machine.spawn("sink", [5])
        machine.run()
        assert sink.result == 15
        return machine, tracer

    def test_send_recv_events_recorded(self):
        machine, tracer = self.run_queue()
        sends = tracer.events(kind=SEND)
        recvs = tracer.events(kind=RECV)
        assert len(sends) == machine.rendezvous
        assert len(recvs) == machine.rendezvous
        assert machine.rendezvous > 0

    def test_send_recv_carry_thread_ids(self):
        machine, tracer = self.run_queue()
        for send, recv in zip(tracer.events(kind=SEND), tracer.events(kind=RECV)):
            assert send.loc == recv.loc
            assert send.thread is not None and recv.thread is not None
            assert send.thread != recv.thread

    def test_heap_events_attributed_to_threads(self):
        machine, tracer = self.run_queue()
        writers = {e.thread for e in tracer.events(kind=WRITE)}
        assert writers and None not in writers
        # Per-thread filtering selects exactly that thread's events.
        some_thread = next(iter(writers))
        mine = tracer.events(thread=some_thread)
        assert mine and all(e.thread == some_thread for e in mine)

    def test_single_threaded_events_have_no_thread(self):
        _, _, tracer, _ = traced_run(1)
        assert all(e.thread is None for e in tracer.events())

    def test_render_marks_threads_and_messages(self):
        machine, tracer = self.run_queue()
        text = tracer.render()
        assert "send" in text and "recv" in text and "[t" in text


class TestJsonExport:
    def test_to_dicts_are_json_lines(self):
        machine, tracer = TestThreadsAndMessages().run_queue()
        dicts = tracer.to_dicts()
        assert len(dicts) == len(tracer)
        for entry in dicts:
            line = json.dumps(entry)  # must be JSON-able
            back = json.loads(line)
            assert back["kind"] in (ALLOC, READ, WRITE, SEND, RECV)
            assert isinstance(back["loc"], int)
            assert isinstance(back["seq"], int)

    def test_alloc_dict_shape(self):
        _, heap, tracer, lst = traced_run(1)
        (alloc,) = tracer.events(kind=ALLOC, loc=lst)
        entry = alloc.to_dict()
        assert entry["kind"] == ALLOC
        assert entry["struct"] == "sll"
        assert entry["thread"] is None
        assert "fields" in entry

    def test_write_dict_encodes_locations_and_none(self):
        _, heap, tracer, lst = traced_run(1)
        write = tracer.events(kind=WRITE, loc=lst, fieldname="hd")[0]
        entry = write.to_dict()
        assert entry["old"] == "none"
        assert isinstance(entry["value"], dict) and "loc" in entry["value"]


class TestRingBuffer:
    def test_capacity_bound(self):
        tracer = Tracer(capacity=5)
        heap = Heap(tracer=tracer)
        program = load_program("sll")
        run_function(program, "make_list", [10], heap=heap)
        assert len(tracer) == 5
        assert tracer.dropped > 0
        assert "earlier events dropped" in tracer.render()

    def test_render(self):
        _, _, tracer, _ = traced_run(1)
        text = tracer.render(last=3)
        assert text.count("\n") == 2
        assert "#" in text

    def test_empty_render(self):
        assert Tracer().render() == "(no heap events)"

    def test_exact_drop_accounting(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.record(READ, Loc(i), fieldname="f", value=i)
        assert len(tracer) == 4
        assert tracer.dropped == 6
        assert "(6 earlier events dropped)" in tracer.render()
        # Survivors are the newest events, sequence numbers keep counting.
        assert [e.seq for e in tracer.events()] == [6, 7, 8, 9]

    def test_no_drop_banner_below_capacity(self):
        tracer = Tracer(capacity=4)
        tracer.record(READ, Loc(0), fieldname="f", value=1)
        assert tracer.dropped == 0
        assert "dropped" not in tracer.render()
