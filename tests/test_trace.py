"""Heap tracer tests."""

from repro.corpus import load_program
from repro.runtime.heap import Heap
from repro.runtime.machine import run_function
from repro.runtime.trace import ALLOC, READ, WRITE, Tracer
from repro.runtime.values import Loc


def traced_run(n=3):
    tracer = Tracer(capacity=10_000)
    heap = Heap(tracer=tracer)
    program = load_program("sll")
    lst, _ = run_function(program, "make_list", [n], heap=heap)
    return program, heap, tracer, lst


class TestRecording:
    def test_allocs_recorded(self):
        _, heap, tracer, _ = traced_run(3)
        allocs = tracer.events(kind=ALLOC)
        # 1 sll + 3 nodes + 3 payloads
        assert len(allocs) == 7
        assert {e.struct for e in allocs} == {"sll", "sll_node", "data"}

    def test_reads_and_writes_match_counters(self):
        _, heap, tracer, _ = traced_run(4)
        assert len(tracer.events(kind=READ)) == heap.reads
        assert len(tracer.events(kind=WRITE)) == heap.writes

    def test_write_records_old_value(self):
        program, heap, tracer, lst = traced_run(2)
        writes = tracer.events(kind=WRITE, loc=lst, fieldname="hd")
        assert len(writes) == 2  # two pushes onto the front
        assert writes[1].old == writes[0].value

    def test_history_of_location(self):
        program, heap, tracer, lst = traced_run(2)
        head = heap.obj(lst).fields["hd"]
        history = tracer.history_of(head)
        kinds = [e.kind for e in history]
        assert kinds[0] == ALLOC  # its own birth
        assert WRITE in kinds  # stored into l.hd

    def test_filtering(self):
        _, _, tracer, lst = traced_run(2)
        only_hd = tracer.events(fieldname="hd")
        assert only_hd and all(e.fieldname == "hd" for e in only_hd)


class TestRingBuffer:
    def test_capacity_bound(self):
        tracer = Tracer(capacity=5)
        heap = Heap(tracer=tracer)
        program = load_program("sll")
        run_function(program, "make_list", [10], heap=heap)
        assert len(tracer) == 5
        assert tracer.dropped > 0
        assert "earlier events dropped" in tracer.render()

    def test_render(self):
        _, _, tracer, _ = traced_run(1)
        text = tracer.render(last=3)
        assert text.count("\n") == 2
        assert "#" in text

    def test_empty_render(self):
        assert Tracer().render() == "(no heap events)"
