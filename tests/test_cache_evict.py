"""PR-8 certificate-store behaviors: sharded LRU eviction, orphan-tmp
hygiene, stale-aware counting, and the multi-process atomicity claim.

The eviction tests control recency explicitly with ``os.utime`` so they
are immune to filesystem mtime granularity.
"""

import json
import multiprocessing
import os
import time

from repro import telemetry as tel
from repro.pipeline.cache import CacheEntry, CertCache, ENTRY_SCHEMA


def _entry(tag: str) -> CacheEntry:
    return CacheEntry(func=f"f_{tag}", nodes=1, verified=2, cert="{}" * 8)


def _key(i: int) -> str:
    # Distinct two-char prefixes spread entries over shards like real
    # SHA-256 keys do.
    return f"{i:02x}" + "ab" * 31


def _age(cache: CertCache, key: str, seconds_ago: float) -> None:
    past = time.time() - seconds_ago
    os.utime(cache.path_for(key), (past, past))


class TestEviction:
    def test_entry_cap_evicts_oldest(self, tmp_path):
        cache = CertCache(tmp_path, max_entries=4)
        for i in range(4):
            cache.put(_key(i), _entry(str(i)))
            _age(cache, _key(i), seconds_ago=100 - i)
        cache.put(_key(99), _entry("new"))
        assert len(cache) == 4
        # key 0 was the oldest; it is the one gone.
        assert cache.get(_key(0))[0] == "miss"
        assert cache.get(_key(99))[0] == "hit"

    def test_get_touch_protects_recently_used(self, tmp_path):
        cache = CertCache(tmp_path, max_entries=4)
        for i in range(4):
            cache.put(_key(i), _entry(str(i)))
            _age(cache, _key(i), seconds_ago=100 - i)
        # Touch the oldest via a hit: now key 1 is the LRU victim.
        assert cache.get(_key(0))[0] == "hit"
        cache.put(_key(99), _entry("new"))
        assert cache.get(_key(0))[0] == "hit"
        assert cache.get(_key(1))[0] == "miss"

    def test_byte_cap_evicts_until_under(self, tmp_path):
        # Size one entry, then cap the store at ~2.5 entries' worth.
        sizer = CertCache(tmp_path / "sizer")
        sizer.put(_key(0), _entry("0"))
        one = sizer.disk_stats()["bytes"]
        cache = CertCache(tmp_path / "store", max_bytes=int(one * 2.5))
        for i in range(5):
            cache.put(_key(i), _entry(str(i)))
            _age(cache, _key(i), seconds_ago=50 - i)
        stats = cache.disk_stats()
        assert stats["entries"] == 2
        assert stats["bytes"] <= one * 2.5
        # The survivors are the most recently written.
        assert cache.get(_key(4))[0] == "hit"
        assert cache.get(_key(0))[0] == "miss"

    def test_eviction_telemetry(self, tmp_path):
        reg = tel.Registry(enabled=True)
        cache = CertCache(tmp_path, max_entries=2, registry=reg)
        for i in range(5):
            cache.put(_key(i), _entry(str(i)))
            _age(cache, _key(i), seconds_ago=50 - i)
        assert reg.value("cache.evictions") == 3
        assert reg.gauge_value("cache.entries") <= 2
        assert reg.gauge_value("cache.bytes") > 0
        cache.get(_key(4))
        cache.get(_key(0))
        assert reg.value("cache.hits") == 1
        assert reg.value("cache.misses") == 1
        assert reg.histograms["cache.get_ms"].count == 2
        assert reg.histograms["cache.put_ms"].count == 5

    def test_uncapped_store_never_evicts(self, tmp_path):
        cache = CertCache(tmp_path)
        for i in range(20):
            cache.put(_key(i), _entry(str(i)))
        assert len(cache) == 20


class TestHygiene:
    def test_orphan_tmp_swept_on_open(self, tmp_path):
        cache = CertCache(tmp_path)
        cache.put(_key(1), _entry("keep"))
        shard = cache.path_for(_key(1)).parent
        orphan = shard / ".deadbeef.12345.tmp"
        orphan.write_text("half-written garbage")
        past = time.time() - 3600
        os.utime(orphan, (past, past))
        reopened = CertCache(tmp_path)
        assert not orphan.exists()
        assert reopened.get(_key(1))[0] == "hit"

    def test_young_tmp_left_alone(self, tmp_path):
        cache = CertCache(tmp_path)
        cache.put(_key(1), _entry("keep"))
        shard = cache.path_for(_key(1)).parent
        inflight = shard / ".cafecafe.999.tmp"
        inflight.write_text("a live writer's in-flight entry")
        CertCache(tmp_path)  # fresh open sweeps only expired litter
        assert inflight.exists()

    def test_tmp_swept_during_eviction_scan(self, tmp_path):
        reg = tel.Registry(enabled=True)
        cache = CertCache(tmp_path, max_entries=100, registry=reg)
        cache.put(_key(1), _entry("a"))
        shard = cache.path_for(_key(1)).parent
        orphan = shard / ".feedface.1.tmp"
        orphan.write_text("litter")
        past = time.time() - 3600
        os.utime(orphan, (past, past))
        cache.put(_key(2), _entry("b"))  # triggers a scan
        assert not orphan.exists()
        assert reg.value("cache.tmp_swept") == 1

    def test_len_ignores_stale_versions(self, tmp_path):
        cache = CertCache(tmp_path)
        cache.put(_key(1), _entry("current"))
        stale_path = cache.path_for(_key(2))
        stale_path.parent.mkdir(parents=True, exist_ok=True)
        stale_path.write_text(
            json.dumps(
                {
                    "schema": ENTRY_SCHEMA,
                    "version": "some-ancient-checker",
                    "func": "f",
                    "nodes": 1,
                    "verified": 1,
                    "cert": "{}",
                }
            )
        )
        corrupt_path = cache.path_for(_key(3))
        corrupt_path.parent.mkdir(parents=True, exist_ok=True)
        corrupt_path.write_text("{truncated")
        assert len(cache) == 1
        assert cache.get(_key(2))[0] == "stale"
        assert cache.get(_key(3))[0] == "stale"


def _hammer_put(root: str, key: str, tag: str, deadline: float) -> None:
    cache = CertCache(root)
    i = 0
    while time.time() < deadline:
        cache.put(key, CacheEntry(func=f"w{tag}", nodes=i, verified=i, cert="x" * 64))
        i += 1


class TestConcurrentWriters:
    def test_readers_only_see_whole_entries(self, tmp_path):
        """Two processes put() the same key in a tight loop while the
        parent reads: every observation must be a whole, valid entry —
        the module docstring's atomicity claim."""
        key = _key(7)
        deadline = time.time() + 1.5
        ctx = multiprocessing.get_context("spawn")
        writers = [
            ctx.Process(
                target=_hammer_put, args=(str(tmp_path), key, tag, deadline)
            )
            for tag in ("a", "b")
        ]
        for w in writers:
            w.start()
        cache = CertCache(tmp_path)
        observations = 0
        statuses = set()
        while time.time() < deadline:
            status, entry = cache.get(key)
            statuses.add(status)
            if status == "hit":
                observations += 1
                assert entry is not None
                assert entry.func in ("wa", "wb")
                assert entry.cert == "x" * 64
        for w in writers:
            w.join(timeout=30)
            assert w.exitcode == 0
        # "stale" would mean a torn/partial read; atomic replace forbids it.
        assert "stale" not in statuses
        assert observations > 0
