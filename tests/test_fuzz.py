"""The differential soundness fuzzer, tested on itself.

Covers the generator (determinism, acceptance of base cases), the three
oracles, bounded-exhaustive schedule enumeration, auto-shrinking, the
campaign report (schema-validated), and the injected-bug self-test that
proves the harness can actually catch a soundness hole.
"""

import json
import random
from pathlib import Path

import pytest

from repro import telemetry as tel
from repro.fuzz import (
    FuzzConfig,
    INJECTABLE_BUGS,
    OracleConfig,
    ProgramGen,
    SCHEMA,
    check_case,
    count_nodes,
    enumerate_schedules,
    mutate,
    run_campaign,
    shrink_source,
)
from repro.lang import parse_program
from repro.telemetry.schema import validate

FUZZ_SCHEMA = json.loads(
    (Path(__file__).parent.parent / "benchmarks" / "fuzz.schema.json").read_text()
)


def _cases(seed, n):
    gen = ProgramGen(random.Random(seed))
    return [gen.generate() for _ in range(n)]


class TestGenerator:
    def test_same_seed_same_stream(self):
        a = _cases(7, 12)
        b = _cases(7, 12)
        assert [c.source for c in a] == [c.source for c in b]
        assert [c.spawns for c in a] == [c.spawns for c in b]

    def test_different_seeds_differ(self):
        a = _cases(1, 8)
        b = _cases(2, 8)
        assert [c.source for c in a] != [c.source for c in b]

    def test_base_cases_parse_and_are_accepted(self):
        # The generator emits only well-typed programs; every base case
        # must clear all three oracles (a cheap schedule budget is enough).
        config = OracleConfig(schedules=1, enumerate_limit=20)
        for case in _cases(0, 10):
            outcome = check_case(case, config)
            assert outcome.accepted, case.source
            assert outcome.violation is None, outcome.violation

    def test_mutants_are_marked(self):
        rng = random.Random(3)
        mutants = [m for c in _cases(3, 20) if (m := mutate(c, rng))]
        assert mutants, "mutation engine produced nothing in 20 cases"
        for m in mutants:
            assert m.ident.endswith("-m")
            assert m.mutation is not None
            assert m.source != ""


class TestScheduleOracle:
    # An unchecked use-after-send: statically rejected, but we drive it
    # dynamically — every interleaving must trip ReservationViolation.
    RACY = """
    struct data { v : int; }
    def bad() : int { let d = new data(v = 1); send(d); d.v }
    def ok() : int { let d = recv(data); d.v }
    """

    def test_enumeration_finds_the_violation(self):
        program = parse_program(self.RACY)
        spawns = [("bad", []), ("ok", [])]
        report = enumerate_schedules(program, spawns, limit=50)
        assert report.schedules >= 1
        assert report.violations(), "no schedule tripped the guard"
        assert not report.truncated

    def test_clean_program_enumerates_clean(self):
        src = """
        struct data { v : int; }
        def src() : unit { let d = new data(v = 3); send(d) }
        def snk() : int { let d = recv(data); d.v }
        """
        program = parse_program(src)
        report = enumerate_schedules(program, [("src", []), ("snk", [])], limit=50)
        assert report.schedules >= 1
        assert not report.violations()
        assert not report.deadlocks()
        assert report.distinct_results() and len(report.distinct_results()) == 1


class TestShrink:
    def test_shrinks_to_minimal_use_after_send(self):
        # Pad a rejected program with dead weight; the shrinker must strip
        # it back down while preserving the rejection.
        src = """
        struct data { v : int; }
        struct box { iso inner : data?; }
        def noise(n : int) : int { let k = n * 2; k + 1 }
        def f() : int {
          let a = new data(v = 5);
          let t = a.v + 2;
          send(a);
          a.v
        }
        """
        from repro.core.checker import Checker
        from repro.core.errors import TypeError_

        def rejects(text):
            try:
                Checker(parse_program(text)).check_program()
                return False
            except TypeError_:
                return True

        assert rejects(src)
        result = shrink_source(src, rejects)
        assert result.reduced
        assert rejects(result.source)
        assert result.nodes < count_nodes(parse_program(src))
        assert "noise" not in result.source
        assert "box" not in result.source


class TestCampaign:
    def test_small_campaign_is_clean_and_validates(self):
        report = run_campaign(FuzzConfig(seed=0, budget=25, schedules=2))
        assert report["schema"] == SCHEMA
        assert report["clean"] is True
        assert report["violations"] == []
        assert report["cases"]["generated"] == 25
        assert report["cases"]["accepted"] == 25
        # All five V rules exercised — the coverage acceptance criterion.
        assert all(report["coverage"].values()), report["coverage"]
        validate(report, FUZZ_SCHEMA)  # raises on mismatch

    def test_campaign_is_deterministic(self):
        config = FuzzConfig(seed=11, budget=8, schedules=1)
        a = run_campaign(config)
        b = run_campaign(config)
        for key in ("cases", "schedules", "coverage", "violations"):
            assert a[key] == b[key]

    def test_campaign_leaves_telemetry_disabled(self):
        assert not tel.registry().enabled
        run_campaign(FuzzConfig(seed=0, budget=2, schedules=1))
        assert not tel.registry().enabled

    def test_unknown_injected_bug_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(FuzzConfig(inject_bug="no-such-bug"))


class TestInjectedBug:
    def test_seeded_soundness_bug_is_caught_and_shrunk(self):
        # The self-test from the issue: weaken the checker so send keeps
        # the region, and the verifier oracle must catch the first
        # accepted-but-unsound mutant and shrink it to <= 15 AST nodes.
        assert "send-keeps-region" in INJECTABLE_BUGS
        report = run_campaign(
            FuzzConfig(
                seed=0,
                budget=40,
                schedules=1,
                stop_after=1,
                inject_bug="send-keeps-region",
            )
        )
        assert report["injected_bug"] == "send-keeps-region"
        assert report["violations"], "injected bug escaped the fuzzer"
        first = report["violations"][0]
        assert first["oracle"] == "verifier"
        assert first["shrunk"] is not None
        assert first["shrunk"]["nodes"] <= 15
        # The shrunk program still reproduces: the weakened checker
        # accepts it, and the verifier refuses the bad derivation.
        from repro.core.checker import Checker
        from repro.verifier import VerificationError, Verifier

        program = parse_program(first["shrunk"]["source"])
        derivation = Checker(
            program, profile=INJECTABLE_BUGS["send-keeps-region"]
        ).check_program()
        with pytest.raises(VerificationError):
            Verifier(program).verify_program(derivation)
        validate(report, FUZZ_SCHEMA)


class TestCLI:
    def test_fuzz_json_report(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "fuzz.json"
        assert main(
            ["fuzz", "--seed", "0", "--budget", "5", "--schedules", "1",
             "--json", str(out)]
        ) == 0
        capsys.readouterr()
        report = json.loads(out.read_text())
        assert report["schema"] == SCHEMA
        validate(report, FUZZ_SCHEMA)

    def test_fuzz_inject_bug_exit_codes(self, capsys):
        from repro.cli import main

        code = main(
            ["fuzz", "--seed", "0", "--budget", "40", "--schedules", "1",
             "--stop-after", "1", "--inject-bug", "send-keeps-region"]
        )
        out = capsys.readouterr().out
        assert code == 0  # caught = success for the self-test
        assert "caught" in out
        assert main(["fuzz", "--inject-bug", "bogus"]) == 64  # usage error
        capsys.readouterr()
