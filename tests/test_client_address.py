"""Address parsing and connect-failure hygiene for :mod:`repro.client`.

The parse matrix covers every documented spelling — ``:PORT``,
``HOST:PORT``, ``[IPV6]:PORT``, bare IPv6, ``unix:PATH``, and plain
paths — and the connect test pins the PR-8 bugfix: a failed connect
must close the socket it created before raising :class:`ClientError`.
"""

import os
import socket
import tempfile

import pytest

from repro.client import Client, ClientError, parse_address


class TestParseAddress:
    @pytest.mark.parametrize(
        "spec,expected",
        [
            (":7621", ("127.0.0.1", 7621)),
            ("localhost:7621", ("localhost", 7621)),
            ("10.0.0.8:80", ("10.0.0.8", 80)),
            ("[::1]:7621", ("::1", 7621)),
            ("[fe80::2%eth0]:9", ("fe80::2%eth0", 9)),
            ("[2001:db8::1]:443", ("2001:db8::1", 443)),
            # Bare IPv6: ambiguous but parseable — last colon wins.
            ("::1:7621", ("::1", 7621)),
            ("unix:/run/repro.sock", "/run/repro.sock"),
            ("unix:relative.sock", "relative.sock"),
            ("/run/repro.sock", "/run/repro.sock"),
            ("./repro.sock", "./repro.sock"),
        ],
    )
    def test_matrix(self, spec, expected):
        assert parse_address(spec) == expected

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "localhost",
            "host:",
            "host:http",
            "[::1]",  # bracketed host but no port
            "[::1]:",  # empty port
            "[::1:7621",  # unbalanced bracket
        ],
    )
    def test_rejects(self, spec):
        with pytest.raises(ClientError):
            parse_address(spec)

    def test_brackets_never_leak_into_host(self):
        host, _port = parse_address("[::1]:7621")
        assert "[" not in host and "]" not in host


class _TrackingSocket(socket.socket):
    """Real socket that records whether close() ran."""

    instances = []

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.closed_by_client = False
        _TrackingSocket.instances.append(self)

    def close(self):
        self.closed_by_client = True
        super().close()


class TestConnectFailure:
    def test_unix_connect_failure_closes_socket(self, monkeypatch):
        _TrackingSocket.instances = []
        monkeypatch.setattr(socket, "socket", _TrackingSocket)
        missing = os.path.join(tempfile.mkdtemp(), "nobody-listens.sock")
        with pytest.raises(ClientError):
            Client("unix:" + missing, timeout=0.5)
        assert len(_TrackingSocket.instances) == 1
        assert _TrackingSocket.instances[0].closed_by_client

    def test_unix_refused_closes_socket(self, monkeypatch):
        # A socket file that exists but has no listener: connect raises
        # ECONNREFUSED rather than ENOENT — same hygiene required.
        _TrackingSocket.instances = []
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "stale.sock")
            stale = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            stale.bind(path)
            stale.close()  # bound but never listening
            monkeypatch.setattr(socket, "socket", _TrackingSocket)
            with pytest.raises(ClientError):
                Client(path, timeout=0.5)
        assert len(_TrackingSocket.instances) == 1
        assert _TrackingSocket.instances[0].closed_by_client

    def test_tcp_connect_failure_raises_client_error(self):
        # An unused ephemeral port: bind+close to find one, then connect.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ClientError):
            Client(("127.0.0.1", port), timeout=0.5)
