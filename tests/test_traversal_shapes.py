"""Traversal shapes and the tempered-domination invariant.

Why is fig 2 recursive?  An *iterative* cursor over the recursively-iso
singly linked list would need the entire chain of `next` fields between
the list head and the cursor to stay tracked — a tracking context that
grows with every iteration, so no finite loop invariant exists.  Each
recursive call frame instead holds exactly one tracking level.  The
implementation reproduces this boundary:

* recursive sll traversal: accepted (fig 2, corpus `length`/`sum_node`);
* iterative sll traversal with a cursor: rejected at the loop invariant;
* iterative dll traversal: accepted — the whole spine is one region, the
  cursor needs no tracking at all (fig 14's get_nth_node).
"""

import pytest

from repro.core.checker import check_source
from repro.core.errors import TypeError_, UnificationError

SLL = """
struct data { v : int; }
struct sll_node { iso payload : data; iso next : sll_node?; }
struct sll { iso hd : sll_node?; }
"""

DLL = """
struct data { v : int; }
struct dll_node { iso payload : data; next : dll_node; prev : dll_node; }
struct dll { iso hd : dll_node?; }
"""


class TestRecursiveIsoTraversal:
    def test_recursive_accepted(self):
        check_source(
            SLL
            + """
def total(n : sll_node) : int {
  let d = n.payload;
  let some(next) = n.next in { d.v + total(next) } else { d.v }
}
"""
        )

    def test_iterative_cursor_rejected(self):
        # The loop invariant would need unbounded tracking: every iteration
        # moves the cursor one dominated region deeper.
        with pytest.raises(TypeError_):
            check_source(
                SLL
                + """
def total(l : sll) : int {
  let acc = 0;
  let cur = l.hd;
  let going = is_some(cur);
  while (going) {
    let some(node) = cur in {
      let d = node.payload;
      acc = acc + d.v;
      cur = node.next;
      going = is_some(cur)
    } else { going = false }
  };
  acc
}
"""
            )

    def test_iterative_destructive_cursor_accepted(self):
        # The iterative form prior systems are forced into: consume the
        # list as you go (each node is detached from the spine before the
        # cursor advances).  This type-checks — but destroys the list,
        # which is exactly the §9.1 critique.
        check_source(
            SLL
            + """
def drain_total(l : sll) : int {
  let acc = 0;
  let going = true;
  while (going) {
    let some(node) = l.hd in {
      l.hd = node.next;
      let d = node.payload;
      acc = acc + d.v
    } else { going = false }
  };
  acc
}
"""
        )


class TestSingleRegionTraversal:
    def test_iterative_dll_cursor_accepted(self):
        # The dll spine is one region: the cursor is an ordinary intra-
        # region reference, no tracking needed, trivial loop invariant.
        check_source(
            DLL
            + """
def walk(l : dll, steps : int) : int {
  let some(node) = l.hd in {
    while (steps > 0) {
      node = node.next;
      steps = steps - 1
    };
    let d = node.payload;
    d.v
  } else { 0 }
}
"""
        )

    def test_iterative_dll_sum_with_refocusing(self):
        # Reading payloads while iterating: the focus hops from node to
        # node (unfocus the previous, focus the current) — finite invariant
        # because only ONE level of tracking is ever live.
        check_source(
            DLL
            + """
def total(l : dll) : int {
  let some(hd) = l.hd in {
    let d0 = hd.payload;
    let acc = d0.v;
    let cur = hd.next;
    while (cur != hd) {
      let d = cur.payload;
      acc = acc + d.v;
      cur = cur.next
    };
    acc
  } else { 0 }
}
"""
        )
