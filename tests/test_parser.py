"""Parser unit tests."""

import pytest

from repro.lang import ast, parse_expr, parse_program
from repro.lang.parser import ParseError


class TestStructs:
    def test_empty_struct(self):
        p = parse_program("struct s { }")
        assert p.structs["s"].fields == []

    def test_fields_and_iso(self):
        p = parse_program("struct s { iso a : data; b : int; c : s?; }")
        s = p.structs["s"]
        assert [f.name for f in s.fields] == ["a", "b", "c"]
        assert s.field_decl("a").is_iso
        assert not s.field_decl("b").is_iso
        assert s.field_decl("b").ty == ast.INT
        assert isinstance(s.field_decl("c").ty, ast.MaybeType)

    def test_duplicate_struct_rejected(self):
        with pytest.raises(ParseError):
            parse_program("struct s { } struct s { }")

    def test_duplicate_field_rejected(self):
        with pytest.raises(ParseError):
            parse_program("struct s { a : int; a : int; }")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_program("struct s { a : int }")


class TestTypes:
    def test_maybe_of_struct(self):
        p = parse_program("struct s { x : foo?; }")
        ty = p.structs["s"].field_decl("x").ty
        assert isinstance(ty, ast.MaybeType)
        assert ty.inner == ast.StructType("foo")

    def test_nested_maybe_rejected_by_constructor(self):
        with pytest.raises(ValueError):
            ast.MaybeType(ast.MaybeType(ast.INT))


class TestFunctions:
    def test_simple(self):
        p = parse_program("def f() : int { 1 }")
        f = p.funcs["f"]
        assert f.params == []
        assert f.return_type == ast.INT

    def test_default_return_type_is_unit(self):
        p = parse_program("def f() { 1 }")
        assert p.funcs["f"].return_type == ast.UNIT

    def test_grouped_params(self):
        # "l1, l2 : sll_node" declares two parameters of one type (fig 14).
        p = parse_program("def f(l1, l2 : node, k : int) : unit { () }")
        f = p.funcs["f"]
        assert [(q.name, str(q.ty)) for q in f.params] == [
            ("l1", "node"),
            ("l2", "node"),
            ("k", "int"),
        ]

    def test_consumes(self):
        p = parse_program("def f(a, b : node) : unit consumes b { () }")
        assert p.funcs["f"].consumes == ["b"]

    def test_consumes_multiple(self):
        p = parse_program("def f(a, b : node) : unit consumes a, b { () }")
        assert p.funcs["f"].consumes == ["a", "b"]

    def test_after_relation(self):
        p = parse_program(
            "def f(l : dll) : node? after: l.hd ~ result { none }"
        )
        assert p.funcs["f"].after == [(("l", "hd"), ("result",))]

    def test_before_relation(self):
        p = parse_program("def f(a, b : node) : unit before: a ~ b { () }")
        assert p.funcs["f"].before == [(("a",), ("b",))]

    def test_duplicate_function_rejected(self):
        with pytest.raises(ParseError):
            parse_program("def f() { () } def f() { () }")


class TestExpressions:
    def test_precedence_arith(self):
        e = parse_expr("1 + 2 * 3")
        assert isinstance(e, ast.Binop) and e.op == "+"
        assert isinstance(e.right, ast.Binop) and e.right.op == "*"

    def test_precedence_comparison_binds_looser(self):
        e = parse_expr("1 + 2 < 3 * 4")
        assert isinstance(e, ast.Binop) and e.op == "<"

    def test_logic_precedence(self):
        e = parse_expr("a && b || c")
        assert isinstance(e, ast.Binop) and e.op == "||"
        assert isinstance(e.left, ast.Binop) and e.left.op == "&&"

    def test_unary(self):
        e = parse_expr("!x")
        assert isinstance(e, ast.Unop) and e.op == "!"
        e = parse_expr("-5")
        assert isinstance(e, ast.Unop) and e.op == "-"

    def test_field_chain(self):
        e = parse_expr("a.b.c")
        assert isinstance(e, ast.FieldRef) and e.fieldname == "c"
        assert isinstance(e.base, ast.FieldRef) and e.base.fieldname == "b"

    def test_assignment_to_field_path(self):
        e = parse_expr("tail.prev.next = hd")
        assert isinstance(e, ast.Assign)
        assert isinstance(e.target, ast.FieldRef)
        assert e.target.fieldname == "next"

    def test_assignment_target_must_be_lvalue(self):
        with pytest.raises(ParseError):
            parse_expr("f() = 3")

    def test_some_with_and_without_parens(self):
        # The paper writes both `some(e)` and `some e` (fig 14).
        for text in ("some(x)", "some x"):
            e = parse_expr(text)
            assert isinstance(e, ast.SomeExpr)
            assert isinstance(e.inner, ast.VarRef)

    def test_some_without_parens_takes_postfix(self):
        e = parse_expr("some l2.next")
        assert isinstance(e, ast.SomeExpr)
        assert isinstance(e.inner, ast.FieldRef)

    def test_new_with_inits(self):
        e = parse_expr("new sll_node(payload = d, next = none)")
        assert isinstance(e, ast.New)
        assert set(e.inits) == {"payload", "next"}

    def test_new_duplicate_init_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("new t(a = 1, a = 2)")

    def test_call(self):
        e = parse_expr("f(x, 1 + 2)")
        assert isinstance(e, ast.Call) and len(e.args) == 2

    def test_unit_literal(self):
        assert isinstance(parse_expr("()"), ast.UnitLit)

    def test_parenthesized(self):
        e = parse_expr("(1 + 2) * 3")
        assert isinstance(e, ast.Binop) and e.op == "*"

    def test_send_recv(self):
        s = parse_expr("send(x)")
        assert isinstance(s, ast.Send)
        r = parse_expr("recv(data)")
        assert isinstance(r, ast.Recv)
        assert r.ty == ast.StructType("data")

    def test_recv_maybe_type(self):
        r = parse_expr("recv(data?)")
        assert isinstance(r.ty, ast.MaybeType)


class TestStatements:
    def test_let_binding(self):
        e = parse_expr("{ let x = 1; x }")
        assert isinstance(e, ast.Block)
        assert isinstance(e.body[0], ast.LetBind)

    def test_let_some(self):
        e = parse_expr("let some(x) = e in { x } else { y }")
        assert isinstance(e, ast.LetSome)
        assert e.name == "x"
        assert e.else_block is not None

    def test_let_some_without_else(self):
        e = parse_expr("let some(x) = e in { x }")
        assert isinstance(e, ast.LetSome)
        assert e.else_block is None

    def test_if_else(self):
        e = parse_expr("if (c) { 1 } else { 2 }")
        assert isinstance(e, ast.If)

    def test_if_disconnected(self):
        e = parse_expr("if disconnected(a, b) { 1 } else { 2 }")
        assert isinstance(e, ast.IfDisconnected)
        assert isinstance(e.left, ast.VarRef)

    def test_while(self):
        e = parse_expr("while (x > 0) { x = x - 1 }")
        assert isinstance(e, ast.While)

    def test_trailing_semicolon_allowed(self):
        e = parse_expr("{ 1; 2; }")
        assert isinstance(e, ast.Block) and len(e.body) == 2

    def test_empty_block(self):
        e = parse_expr("{ }")
        assert isinstance(e, ast.Block) and e.body == []


class TestProgramErrors:
    def test_garbage_toplevel(self):
        with pytest.raises(ParseError):
            parse_program("banana")

    def test_trailing_tokens_in_expr(self):
        with pytest.raises(ParseError):
            parse_expr("1 2")

    def test_figure_sources_parse(self):
        # Every corpus file parses (full-figure coverage lives in
        # test_figures / test_corpus).
        from repro.corpus import corpus_names, load_program

        for name in corpus_names():
            program = load_program(name)
            assert program.funcs
