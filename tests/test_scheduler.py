"""The pluggable scheduler: seeded reproducibility, fairness bounds,
scripted replay, and the deadlock diagnostics around them."""

import pytest

from repro import telemetry as tel
from repro.corpus import load_program
from repro.lang import parse_program
from repro.runtime.machine import (
    DeadlockError,
    FairRandomScheduler,
    Machine,
    MachineError,
    RandomScheduler,
    SchedulePoint,
    ScriptedScheduler,
    Thread,
    _describe_blocked,
    run_function,
)
from repro.runtime.trace import Tracer


def _pipeline(seed=None, scheduler=None, tracer=None, n=6):
    program = load_program("queue")
    machine = Machine(program, seed=seed, scheduler=scheduler, tracer=tracer)
    machine.spawn("source", [n])
    machine.spawn("relay", [n])
    sink = machine.spawn("sink", [n])
    machine.run()
    return machine, sink.result


class TestSeededReproducibility:
    def test_same_seed_same_trace(self):
        traces = []
        for _ in range(2):
            tracer = Tracer(capacity=100_000)
            _, result = _pipeline(seed=42, tracer=tracer)
            traces.append((result, tracer.to_dicts()))
        assert traces[0] == traces[1]
        assert traces[0][0] == 21  # sum over the 6 sent packets

    def test_different_seeds_may_interleave_differently(self):
        # Not guaranteed for any two seeds, but across a handful some
        # pair must schedule differently — else the seed is dead code.
        seen = set()
        for seed in range(6):
            tracer = Tracer(capacity=100_000)
            _pipeline(seed=seed, tracer=tracer)
            seen.add(tuple(e["thread"] for e in tracer.to_dicts()))
        assert len(seen) > 1

    def test_seed_threads_through_run_function(self):
        program = parse_program(
            "struct data { v : int; }\ndef f(n : int) : int { n * 2 }"
        )
        result, _ = run_function(program, "f", [21], seed=9)
        assert result == 42

    def test_machine_records_seed(self):
        machine, _ = _pipeline(seed=7)
        assert machine.seed == 7


class TestFairness:
    def test_bound_below_one_rejected(self):
        with pytest.raises(ValueError):
            FairRandomScheduler(seed=0, fairness_bound=0)

    def test_starvation_is_bounded(self):
        bound = 3
        machine, result = _pipeline(
            scheduler=FairRandomScheduler(seed=5, fairness_bound=bound), n=8
        )
        assert result == 36
        # A starved thread is picked the moment it crosses the bound, so
        # the observed maximum wait can only exceed it by the other
        # threads draining their own overdue picks first.
        assert machine.starvation_max_wait <= bound + len(machine.threads)

    def test_telemetry_gauges(self):
        reg = tel.enable()
        try:
            machine, _ = _pipeline(seed=13)
            assert reg.gauge_value("machine.seed") == 13
            assert (
                reg.gauge_value("machine.starvation_max_wait")
                >= machine.starvation_max_wait
            )
        finally:
            tel.disable()


class TestScriptedScheduler:
    def test_replay_of_taken_reproduces_run(self):
        tracer = Tracer(capacity=100_000)
        sched = ScriptedScheduler()
        _, result = _pipeline(scheduler=sched, tracer=tracer)
        assert sched.taken is not None
        replay_tracer = Tracer(capacity=100_000)
        _, replay_result = _pipeline(
            scheduler=ScriptedScheduler(sched.taken), tracer=replay_tracer
        )
        assert result == replay_result
        assert tracer.to_dicts() == replay_tracer.to_dicts()

    def test_single_option_consumes_no_decision(self):
        sched = ScriptedScheduler([1])
        program = parse_program("def f() : int { 1 + 2 }")
        machine = Machine(program, scheduler=sched, preemptive=False)
        thread = machine.spawn("f")
        machine.run()
        assert thread.result == 3
        assert sched.taken == []  # one thread -> never a real choice

    def test_out_of_range_decision_is_a_machine_error(self):
        program = load_program("queue")
        machine = Machine(
            program, scheduler=ScriptedScheduler([99]), preemptive=False
        )
        machine.spawn("source", [2])
        machine.spawn("relay", [2])
        machine.spawn("sink", [2])
        with pytest.raises(MachineError, match="out of range"):
            machine.run()

    def test_probe_raises_schedule_point(self):
        program = load_program("queue")
        machine = Machine(
            program, scheduler=ScriptedScheduler(probe=True), preemptive=False
        )
        machine.spawn("source", [2])
        machine.spawn("relay", [2])
        machine.spawn("sink", [2])
        with pytest.raises(SchedulePoint) as exc:
            machine.run()
        assert exc.value.options >= 2
        assert exc.value.prefix == ()


class TestDeadlockDiagnostics:
    def test_recv_only_machine_reports_blocked_state(self):
        program = parse_program(
            "struct data { v : int; }\ndef f() : int { let d = recv(data); d.v }"
        )
        machine = Machine(program, seed=0)
        machine.spawn("f")
        with pytest.raises(DeadlockError, match=r"thread 0: blocked_recv\(data\)"):
            machine.run()

    def test_describe_blocked_survives_missing_payload(self):
        # A thread observed mid-transition may have no pending payload;
        # the deadlock report must not crash on it.
        thread = Thread.__new__(Thread)
        thread.state = "blocked_recv"
        thread.pending = None
        assert _describe_blocked(thread) == "blocked_recv(?)"
        thread.pending = ("x",)
        assert _describe_blocked(thread) == "blocked_recv(?)"


class TestSchedulerPolicies:
    def test_random_scheduler_is_seed_deterministic(self):
        def picks(seed):
            sched = RandomScheduler(seed)
            fake = [Thread.__new__(Thread) for _ in range(4)]
            for i, t in enumerate(fake):
                t.ident = i
            return [sched.pick(fake, {}).ident for _ in range(20)]

        assert picks(3) == picks(3)
        assert picks(3) != picks(4)

    def test_fair_scheduler_prefers_most_starved(self):
        sched = FairRandomScheduler(seed=0, fairness_bound=2)
        fake = [Thread.__new__(Thread) for _ in range(3)]
        for i, t in enumerate(fake):
            t.ident = i
        # Thread 2 starved past the bound: must be picked regardless of rng.
        for _ in range(10):
            assert sched.pick(fake, {2: 5, 1: 1}).ident == 2
        # Two starved: longest wait wins, lowest ident breaks ties.
        assert sched.pick(fake, {0: 4, 2: 4}).ident == 0
