"""Event-level tracing tests: TraceContext wire round trips, the ring
buffer, sampling, span parent chains, ingest/stitching, the Chrome
export, the registry bridge, and the global enable/disable/use swap.

(``tests/test_trace.py`` covers the older heap-event tracer; this file
covers ``repro.telemetry.tracer``.)
"""

import json
import os
import threading
from pathlib import Path

import pytest

from repro import telemetry
from repro.telemetry import (
    Registry,
    TraceContext,
    Tracer,
    to_chrome,
    use_tracer,
    validate,
)
from repro.telemetry.tracer import current_context, current_wire


@pytest.fixture(autouse=True)
def _clean_globals():
    yield
    telemetry.disable_tracing()
    telemetry.disable()


class TestTraceContext:
    def test_wire_round_trip(self):
        ctx = TraceContext("aa" * 8, "bb" * 4, sampled=False)
        wire = ctx.to_wire()
        assert wire == {"id": "aa" * 8, "span": "bb" * 4, "sampled": False}
        assert TraceContext.from_wire(wire) == ctx

    def test_sampled_defaults_true_on_wire(self):
        ctx = TraceContext.from_wire({"id": "t", "span": "s"})
        assert ctx is not None and ctx.sampled is True

    @pytest.mark.parametrize(
        "data",
        [None, "text", 7, [], {}, {"id": "t"}, {"span": "s"},
         {"id": 1, "span": "s"}, {"id": "t", "span": None}],
    )
    def test_malformed_wire_degrades_to_none(self, data):
        assert TraceContext.from_wire(data) is None


class TestRingBuffer:
    def test_capacity_bounds_memory_and_counts_drops(self):
        tr = Tracer(capacity=3)
        for i in range(5):
            with tr.span(f"s{i}"):
                pass
        events = tr.events()
        assert len(events) == 3
        assert tr.dropped == 2
        assert [e["name"] for e in events] == ["s2", "s3", "s4"]

    def test_clear_resets_buffer_and_drop_count(self):
        tr = Tracer(capacity=1)
        with tr.span("a"):
            pass
        with tr.span("b"):
            pass
        tr.clear()
        assert tr.events() == [] and tr.dropped == 0

    def test_disabled_tracer_records_nothing(self):
        tr = Tracer(enabled=False)
        with tr.span("s") as ctx:
            tr.instant("i")
        assert tr.events() == []
        assert ctx is None  # no ambient context minted


class TestSampling:
    def test_unsampled_root_records_nothing_but_propagates_ids(self):
        tr = Tracer(sample=0.0)
        with tr.span("root") as ctx:
            assert ctx is not None and ctx.sampled is False
            assert current_wire()["sampled"] is False
            with tr.span("child"):
                tr.instant("i")
        assert tr.events() == []

    def test_children_inherit_the_root_decision(self):
        tr = Tracer(sample=0.0)
        # An explicitly sampled remote parent wins over local sample=0.
        parent = TraceContext("t" * 16, "p" * 8, sampled=True)
        with tr.span("child", parent=parent):
            pass
        assert len(tr.events()) == 1

    def test_sample_one_records_everything(self):
        tr = Tracer(sample=1.0)
        with tr.span("root"):
            pass
        assert len(tr.events()) == 1


class TestSpanChains:
    def test_nested_spans_link_parent_ids(self):
        tr = Tracer()
        with tr.span("outer") as outer_ctx:
            with tr.span("inner") as inner_ctx:
                pass
        assert inner_ctx.trace_id == outer_ctx.trace_id
        inner, outer = tr.events()  # inner completes first
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert outer["args"]["parent_id"] is None
        assert inner["args"]["parent_id"] == outer_ctx.span_id
        assert inner["args"]["trace_id"] == outer["args"]["trace_id"]

    def test_explicit_parent_stitches_remote_context(self):
        tr = Tracer()
        remote = TraceContext("cafe" * 4, "beef" * 2)
        with tr.span("server.check", parent=remote) as ctx:
            pass
        assert ctx.trace_id == remote.trace_id
        event = tr.events()[0]
        assert event["args"]["parent_id"] == remote.span_id
        assert event["args"]["trace_id"] == remote.trace_id

    def test_parent_none_forces_new_root(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("fresh", parent=None) as ctx:
                pass
            assert ctx.trace_id != current_context().trace_id
        fresh = tr.events()[0]
        assert fresh["args"]["parent_id"] is None

    def test_ambient_context_restored_after_span(self):
        tr = Tracer()
        assert current_context() is None
        with tr.span("s"):
            assert current_context() is not None
        assert current_context() is None

    def test_instant_tags_ambient_context(self):
        tr = Tracer()
        with tr.span("s") as ctx:
            tr.instant("marker", args={"k": "v"})
        instant = next(e for e in tr.events() if e["ph"] == "i")
        assert instant["args"]["trace_id"] == ctx.trace_id
        assert instant["args"]["span_id"] == ctx.span_id
        assert instant["args"]["k"] == "v"


class TestIngest:
    def test_ingest_accepts_events_and_skips_malformed(self):
        tr = Tracer()
        good = {"name": "w", "ph": "X", "ts": 1.0, "dur": 2.0,
                "pid": 42, "tid": 1, "args": {}}
        accepted = tr.ingest([good, {"ph": "X"}, "junk", None, {"name": "x"}])
        assert accepted == 1
        assert tr.events()[0]["name"] == "w"

    def test_ingested_events_interleave_in_chrome_export(self):
        tr = Tracer()
        with tr.span("local"):
            pass
        tr.ingest([{"name": "remote", "ph": "X", "ts": 0.0, "dur": 1.0,
                    "pid": 999, "tid": 1, "args": {}}])
        doc = to_chrome(tr)
        # Sorted by timestamp: the epoch-0 remote event leads.
        assert [e["name"] for e in doc["traceEvents"]] == ["remote", "local"]


class TestChromeExport:
    def _schema(self):
        path = Path(__file__).parent.parent / "benchmarks" / "trace.schema.json"
        return json.loads(path.read_text())

    def test_document_shape_and_schema_validity(self):
        tr = Tracer(capacity=2)
        for i in range(3):
            with tr.span(f"s{i}", cat="test"):
                tr.instant("tick")
        doc = to_chrome(tr)
        assert doc["displayTimeUnit"] == "ms"
        # 3 spans + 3 instants into a 2-slot ring: 4 dropped.
        assert doc["otherData"] == {"schema": "repro-trace/1", "dropped": 4}
        assert all(e["pid"] == os.getpid() for e in doc["traceEvents"])
        validate(doc, self._schema())
        json.dumps(doc)  # JSON-serializable end to end

    def test_empty_tracer_exports_valid_document(self):
        doc = to_chrome(Tracer())
        assert doc["traceEvents"] == []
        validate(doc, self._schema())


class TestRegistryBridge:
    def test_registry_spans_emit_trace_events_when_tracing(self):
        reg = Registry()
        tr = Tracer()
        with use_tracer(tr):
            with reg.span("check.program"):
                with reg.span("check.fn.main"):
                    pass
        names = [e["name"] for e in tr.events()]
        assert names == ["check.fn.main", "check.program"]
        assert all(e["cat"] == "registry" for e in tr.events())
        inner = tr.events()[0]
        outer = tr.events()[1]
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]
        # Registry aggregation unaffected by the bridge.
        assert reg.spans[("check.fn.main", "check.program")].count == 1

    def test_registry_spans_free_when_tracing_disabled(self):
        reg = Registry()
        with reg.span("s"):
            pass
        assert telemetry.tracer().events() == []
        assert reg.spans[("s", None)].count == 1


class TestGlobalSwap:
    def test_default_global_tracer_is_disabled(self):
        assert telemetry.tracer().enabled is False

    def test_enable_disable(self):
        tr = telemetry.enable_tracing(capacity=16, sample=0.5)
        assert telemetry.tracer() is tr
        assert tr.capacity == 16 and tr.sample == 0.5
        telemetry.disable_tracing()
        assert telemetry.tracer().enabled is False

    def test_use_tracer_restores_previous(self):
        mine = Tracer()
        with use_tracer(mine):
            assert telemetry.tracer() is mine
        assert telemetry.tracer().enabled is False

    def test_emit_is_thread_safe(self):
        tr = Tracer(capacity=10_000)
        n_threads, n_iter = 8, 200

        def work():
            for _ in range(n_iter):
                with tr.span("s"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tr.events()) == n_threads * n_iter
        assert tr.dropped == 0
