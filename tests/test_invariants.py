"""Invariant audit tests (§6): the audits pass on sound heaps and catch
manufactured violations."""

import pytest

from repro.analysis import (
    InvariantViolation,
    check_iso_domination,
    check_refcounts,
    check_reservation_closed,
    check_reservations_disjoint,
)
from repro.lang import parse_program
from repro.runtime.heap import Heap
from repro.runtime.values import Loc

STRUCTS = parse_program(
    """
struct data { v : int; }
struct box { iso inner : data?; }
struct cell { other : cell; }
"""
)


class TestRefcountAudit:
    def test_clean_heap_passes(self):
        heap = Heap()
        a = heap.alloc(STRUCTS.structs["cell"], {})
        b = heap.alloc(STRUCTS.structs["cell"], {})
        heap.write_field(a, "other", b)
        check_refcounts(heap)

    def test_corrupted_count_detected(self):
        heap = Heap()
        a = heap.alloc(STRUCTS.structs["cell"], {})
        heap.obj(a).stored_refcount += 1
        with pytest.raises(InvariantViolation):
            check_refcounts(heap)


class TestDisjointness:
    def test_disjoint_passes(self):
        check_reservations_disjoint([{Loc(1)}, {Loc(2)}, set()])

    def test_overlap_detected(self):
        with pytest.raises(InvariantViolation):
            check_reservations_disjoint([{Loc(1)}, {Loc(1)}])


class TestClosure:
    def test_closed_reservation_passes(self):
        heap = Heap()
        b = heap.alloc(STRUCTS.structs["box"], {})
        d = heap.alloc(STRUCTS.structs["data"], {"v": 1})
        heap.write_field(b, "inner", d)
        check_reservation_closed(heap, {b, d}, [b])

    def test_escape_detected(self):
        heap = Heap()
        b = heap.alloc(STRUCTS.structs["box"], {})
        d = heap.alloc(STRUCTS.structs["data"], {"v": 1})
        heap.write_field(b, "inner", d)
        with pytest.raises(InvariantViolation):
            check_reservation_closed(heap, {b}, [b])


class TestIsoDomination:
    def test_dominating_iso_passes(self):
        heap = Heap()
        b = heap.alloc(STRUCTS.structs["box"], {})
        d = heap.alloc(STRUCTS.structs["data"], {"v": 1})
        heap.write_field(b, "inner", d)
        check_iso_domination(heap, [b])

    def test_second_path_detected(self):
        # Two boxes isolating the *same* data: neither iso edge dominates.
        heap = Heap()
        b1 = heap.alloc(STRUCTS.structs["box"], {})
        b2 = heap.alloc(STRUCTS.structs["box"], {})
        d = heap.alloc(STRUCTS.structs["data"], {"v": 1})
        heap.write_field(b1, "inner", d)
        heap.write_field(b2, "inner", d)
        with pytest.raises(InvariantViolation):
            check_iso_domination(heap, [b1, b2])

    def test_unreachable_violation_exempt(self):
        # Violations among unreachable (dropped-region) objects do not
        # matter — I2 only constrains paths from live roots.
        heap = Heap()
        b1 = heap.alloc(STRUCTS.structs["box"], {})
        b2 = heap.alloc(STRUCTS.structs["box"], {})
        d = heap.alloc(STRUCTS.structs["data"], {"v": 1})
        heap.write_field(b1, "inner", d)
        heap.write_field(b2, "inner", d)
        check_iso_domination(heap, [b1])  # b2 unreachable: fine

    def test_audits_hold_across_corpus_mutations(self):
        from repro.corpus import load_program
        from repro.runtime.machine import run_function

        program = load_program("sll")
        heap = Heap()
        lst, _ = run_function(program, "make_list", [8], heap=heap)
        run_function(program, "reverse", [lst], heap=heap)
        head = heap.obj(lst).fields["hd"]
        run_function(program, "remove_tail", [head], heap=heap)
        run_function(program, "pop", [lst], heap=heap)
        check_refcounts(heap)
        check_iso_domination(heap, [lst])
