"""Tests for the stable programmatic facade (`repro.api`)."""

import json

import pytest

from repro import api
from repro.api import CheckResult, Diagnostic, ExitCode, RunResult, VerifyResult

GOOD = """
struct data { v : int; }
def add(a : int, b : int) : int { a + b }
def boxed() : data { new data(v = 9) }
"""

BAD_TYPE = """
struct data { v : int; }
def f(d : data) : unit { send(d) }
"""

BAD_SYNTAX = "struct {"


class TestCheck:
    def test_ok(self):
        result = api.check(GOOD)
        assert result.ok
        assert result.functions == 2
        assert result.nodes > 0
        assert result.diagnostics == []
        assert result.exit_code is ExitCode.OK

    def test_type_error(self):
        result = api.check(BAD_TYPE, filename="bad.fcl")
        assert not result.ok
        assert result.exit_code is ExitCode.CHECK_REJECT
        (diag,) = result.diagnostics
        assert diag.file == "bad.fcl"
        assert diag.severity == "error"
        assert diag.code == "SendError"
        assert "send" in diag.message
        assert diag.span is not None and len(diag.span) == 4

    def test_syntax_error_is_diagnostic_not_exception(self):
        result = api.check(BAD_SYNTAX)
        assert not result.ok
        (diag,) = result.diagnostics
        assert diag.code == "ParseError"
        # str(ParseError) embeds "line:col: "; the facade strips it.
        assert not diag.message.split(" ")[0].rstrip(":").replace(
            ":", ""
        ).isdigit()

    def test_to_dict_round_trip(self):
        for source in (GOOD, BAD_TYPE, BAD_SYNTAX):
            result = api.check(source)
            again = CheckResult.from_dict(result.to_dict())
            assert again.to_dict() == result.to_dict()

    def test_session_matches_cold_path(self):
        from repro.pipeline.session import ProgramSession

        cold = api.check(GOOD, filename="x.fcl")
        warm = api.check(
            GOOD, filename="x.fcl", session=ProgramSession(GOOD)
        )
        assert warm.to_dict() == cold.to_dict()


class TestVerify:
    def test_ok(self):
        result = api.verify(GOOD)
        assert result.ok
        assert result.verified == result.nodes > 0
        assert result.exit_code is ExitCode.OK

    def test_check_reject_maps_to_exit_1(self):
        result = api.verify(BAD_TYPE)
        assert not result.ok
        assert result.exit_code is ExitCode.CHECK_REJECT

    def test_round_trip(self):
        result = api.verify(GOOD)
        assert (
            VerifyResult.from_dict(result.to_dict()).to_dict()
            == result.to_dict()
        )


class TestRun:
    def test_ok(self):
        result = api.run(GOOD, "add", [20, 22])
        assert result.ok
        assert result.value == "42"
        assert result.steps > 0
        assert result.exit_code is ExitCode.OK

    def test_struct_rendering(self):
        result = api.run(GOOD, "boxed")
        assert result.ok
        assert "data{" in result.value and "v = 9" in result.value

    def test_unknown_function(self):
        result = api.run(GOOD, "nosuch")
        assert not result.ok
        assert result.diagnostics[0].code == "MachineError"
        assert result.exit_code is ExitCode.RUNTIME_ERROR

    def test_check_first_rejects(self):
        result = api.run(BAD_TYPE, "f", [])
        assert not result.ok
        assert result.exit_code is ExitCode.CHECK_REJECT

    def test_max_steps_budget(self):
        unbounded = api.run(GOOD, "add", [1, 2])
        assert unbounded.ok
        generous = api.run(GOOD, "add", [1, 2], max_steps=10_000)
        assert generous.ok and generous.steps == unbounded.steps
        tight = api.run(GOOD, "add", [1, 2], max_steps=1)
        assert not tight.ok
        (diag,) = tight.diagnostics
        assert diag.code == "StepLimitExceeded"
        assert tight.exit_code is ExitCode.RUNTIME_ERROR

    def test_round_trip(self):
        result = api.run(GOOD, "add", [1, 2])
        assert (
            RunResult.from_dict(result.to_dict()).to_dict() == result.to_dict()
        )


class TestDiagnostic:
    def test_wire_shape_has_exactly_five_keys(self):
        diag = Diagnostic(
            file="a.fcl",
            severity="error",
            code="SendError",
            message="nope",
            span=(1, 2, 3, 4),
        )
        data = diag.to_dict()
        assert sorted(data) == ["code", "file", "message", "severity", "span"]
        assert data["span"] == [1, 2, 3, 4]
        assert Diagnostic.from_dict(data) == diag
        assert json.loads(json.dumps(data)) == data

    def test_render_verification_failure_one_liner(self):
        diag = Diagnostic(
            file="p.fcl",
            severity="error",
            code="VerificationError",
            message="bad certificate",
        )
        assert diag.render() == "p.fcl: VERIFICATION FAILED: bad certificate"

    def test_render_runtime_one_liner(self):
        diag = Diagnostic(
            file="p.fcl",
            severity="error",
            code="StepLimitExceeded",
            message="step budget exceeded (9 steps)",
        )
        assert diag.render() == "runtime error: step budget exceeded (9 steps)"

    def test_render_type_error_has_caret(self):
        result = api.check(BAD_TYPE, filename="bad.fcl")
        text = result.diagnostics[0].render(BAD_TYPE)
        assert "bad.fcl:" in text and "type error" in text and "^" in text


class TestExitCode:
    def test_documented_values(self):
        assert ExitCode.OK == 0
        assert ExitCode.CHECK_REJECT == 1
        assert ExitCode.VERIFY_FAIL == 2
        assert ExitCode.RUNTIME_ERROR == 3
        assert ExitCode.BENCH_REGRESS == 3
        assert ExitCode.DIVERGENCE == 4
        assert ExitCode.FUZZ_VIOLATION == 5
        assert ExitCode.USAGE == 64


class TestRetiredShims:
    def test_check_source_shim_is_gone(self):
        import repro

        assert not hasattr(repro, "check_source")
        assert "check_source" not in repro.__all__

    def test_verify_source_shim_is_gone(self):
        import repro

        assert not hasattr(repro, "verify_source")
        assert "verify_source" not in repro.__all__

    def test_package_reexports_facade(self):
        import repro

        assert repro.CheckResult is CheckResult
        assert repro.ExitCode is ExitCode
        assert repro.Session is api.Session
        assert repro.api is api
