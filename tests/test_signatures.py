"""The signature gallery corpus (§8's trivial-to-pathological function
abstractions): checks, verifies, and behaves."""

import pytest

from repro.core.checker import Checker
from repro.core.errors import TypeError_
from repro.corpus import load_program, load_source
from repro.lang import parse_program
from repro.runtime.heap import Heap
from repro.runtime.machine import run_function
from repro.runtime.values import NONE
from repro.verifier import Verifier


@pytest.fixture(scope="module")
def program():
    return load_program("signatures")


def mkbox(program, heap, v):
    d = heap.alloc(program.structs["data"], {"v": v})
    return heap.alloc(program.structs["box"], {"inner": d})


class TestGalleryChecks:
    def test_all_check_and_verify(self, program):
        derivation = Checker(program).check_program()
        assert Verifier(program).verify_program(derivation) > 100

    def test_ident_without_after_rejected(self, program):
        source = load_source("signatures").replace(
            "def ident(d : data) : data after: d ~ result { d }",
            "def ident(d : data) : data { d }",
        )
        with pytest.raises(TypeError_):
            Checker(parse_program(source)).check_program()

    def test_may_alias_without_before_rejected_for_aliases(self, program):
        source = load_source("signatures") + """
def caller(d : data) : int {
  let e = d;
  may_alias(d, e)
}
"""
        Checker(parse_program(source)).check_program()  # before: permits it
        stripped = source.replace(" before: a ~ b", "")
        with pytest.raises(TypeError_):
            Checker(parse_program(stripped)).check_program()


class TestGalleryBehaviour:
    def test_swap_detaches_old_payload(self, program):
        heap = Heap()
        box = mkbox(program, heap, 2)
        new_payload = heap.alloc(program.structs["data"], {"v": 9})
        old, _ = run_function(program, "swap", [box, new_payload], heap=heap)
        assert heap.obj(old).fields["v"] == 2
        assert old not in heap.live_set(box)

    def test_swap_into_empty(self, program):
        heap = Heap()
        box = heap.alloc(program.structs["box"], {})
        payload = heap.alloc(program.structs["data"], {"v": 5})
        old, _ = run_function(program, "swap", [box, payload], heap=heap)
        assert old is NONE

    def test_rotate3(self, program):
        heap = Heap()
        boxes = [mkbox(program, heap, v) for v in (1, 2, 3)]
        run_function(program, "rotate3", boxes, heap=heap)
        values = [
            heap.obj(heap.obj(b).fields["inner"]).fields["v"] for b in boxes
        ]
        assert values == [2, 3, 1]

    def test_transfer(self, program):
        heap = Heap()
        src = mkbox(program, heap, 7)
        dst = heap.alloc(program.structs["box"], {})
        run_function(program, "transfer", [src, dst], heap=heap)
        assert heap.obj(src).fields["inner"] is NONE
        assert heap.obj(heap.obj(dst).fields["inner"]).fields["v"] == 7

    def test_pick_left(self, program):
        heap = Heap()
        a = heap.alloc(program.structs["data"], {"v": 1})
        b = heap.alloc(program.structs["data"], {"v": 2})
        result, interp = run_function(
            program, "pick_left", [a, b], heap=heap, sink_sends=True
        )
        assert result == a
        assert b not in interp.reservation  # sent away

    def test_merge_and_return(self, program):
        heap = Heap()
        a = heap.alloc(program.structs["data"], {"v": 10})
        b = heap.alloc(program.structs["data"], {"v": 4})
        result, _ = run_function(program, "merge_and_return", [a, b], heap=heap)
        assert result == a

    def test_pinned_counter(self, program):
        heap = Heap()
        c = heap.alloc(program.structs["counter"], {"hits": 0})
        run_function(program, "bump", [c], heap=heap)
        run_function(program, "bump", [c], heap=heap)
        assert run_function(program, "observe", [c], heap=heap)[0] == 2
