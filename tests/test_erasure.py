"""Verified reservation-check erasure (§3.2).

Well-typed programs keep every reservation they use, so the dynamic guard
can be compiled away: the erased runtime must produce *identical*
observable behaviour (results and the full heap-event trace) on the whole
corpus.  The guard is still real — with checks on, an unauthorized access
(empty reservation, use-after-send) still raises ``ReservationViolation``
— and ``repro run --paranoid`` cross-validates both modes end to end.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.corpus import corpus_names, load_program
from repro.lang import parse_program
from repro.runtime.heap import Heap
from repro.runtime.machine import Machine, ReservationViolation, run_function
from repro.runtime.trace import Tracer

CORPUS = Path(__file__).parent.parent / "src" / "repro" / "corpus"


class Runner:
    """Drives ``run_function`` in one guard mode, accumulating the number
    of reservation checks the interpreter actually performed."""

    def __init__(self, program, heap, check):
        self.program = program
        self.heap = heap
        self.check = check
        self.checks = 0

    def __call__(self, fn, args):
        result, interp = run_function(
            self.program, fn, args, heap=self.heap,
            check_reservations=self.check,
        )
        self.checks += interp.stats.reservation_checks
        return result

    def alloc(self, struct, inits):
        return self.heap.alloc(self.program.structs[struct], inits)


def _drive_sll(run):
    lst = run("make_list", [20])
    out = [run("sum", [lst]), run("list_length", [lst])]
    run("reverse", [lst])
    out.append(run("sum", [lst]))
    return out


def _drive_dll(run):
    lst = run("make_dll", [25])
    out = [run("dll_length", [lst]), run("dll_sum", [lst])]
    run("remove_tail", [lst])
    out.append(run("dll_length", [lst]))
    return out


def _drive_rbtree(run):
    tree = run("build_tree", [20, 3])
    return [run("tree_size", [tree]), run("rb_valid", [tree, -1, 1000000])]


def _drive_queue(run):
    # push/pop only: source/relay/sink need a scheduler (send/recv).
    lst = run.alloc("sll", {})
    for v in range(6):
        run("push", [lst, run.alloc("data", {"v": v})])
    popped = [run("pop", [lst]) for _ in range(3)]
    return [len(popped)]


def _drive_algorithms(run):
    lst = run("make_list_lcg", [15, 7])
    run("sort", [lst])
    return [run("list_is_sorted", [lst])]


def _drive_ntree(run):
    tree = run("build", [3, 2, 1])
    return [run("size", [tree]), run("height", [tree]), run("tag_sum", [tree])]


def _drive_signatures(run):
    d = run.alloc("data", {"v": 7})
    out = [run("reads_only", [d])]
    box = run.alloc("box", {})
    run("stash", [box, run.alloc("data", {"v": 9})])
    counter = run.alloc("counter", {"hits": 0})
    run("bump", [counter])
    out.append(run("observe", [counter]))
    return out


def _drive_fuzzmin(run):
    # send-free functions only: the pipeline threads need a Machine.
    return [
        run("attach_then_read", [5]),
        run("attach_then_focus", [9]),
        run("linked_cells", [3]),
    ]


WORKLOADS = {
    "sll": _drive_sll,
    "dll": _drive_dll,
    "rbtree": _drive_rbtree,
    "queue": _drive_queue,
    "algorithms": _drive_algorithms,
    "ntree": _drive_ntree,
    "signatures": _drive_signatures,
    "fuzzmin": _drive_fuzzmin,
}


def test_every_corpus_program_has_a_workload():
    assert set(WORKLOADS) == set(corpus_names())


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_guarded_and_erased_runs_agree(name):
    """Results and the full observable heap-event stream are invariant
    under erasure — and only the guarded run pays for any checks (the
    erased dispatch is bound once at interpreter construction)."""
    program = load_program(name)
    runs = {}
    for check in (True, False):
        tracer = Tracer(capacity=100_000)
        run = Runner(program, Heap(tracer=tracer), check)
        results = WORKLOADS[name](run)
        runs[check] = (results, tracer.to_dicts(), run.checks)
    guarded, erased = runs[True], runs[False]
    assert guarded[0] == erased[0], "results diverged under erasure"
    assert guarded[1] == erased[1], "heap traces diverged under erasure"
    assert guarded[1], "trace must be non-empty to mean anything"
    assert guarded[2] > 0, "guarded run performed no reservation checks"
    assert erased[2] == 0, "erased run still performed reservation checks"


class TestGuardStillGuards:
    """Erasure is *verified*: with checks on, unauthorized accesses and the
    runtime hazards the type system rules out still trip
    ``ReservationViolation``."""

    def test_empty_reservation_still_violates(self):
        program = parse_program(
            "struct data { v : int; }\ndef f(d : data) : int { d.v }"
        )
        heap = Heap()
        d = heap.alloc(program.structs["data"], {"v": 1})
        with pytest.raises(ReservationViolation):
            run_function(program, "f", [d], heap=heap, reservation=set())
        # ... and the erased dispatch skips exactly that guard:
        result, _ = run_function(
            program, "f", [d], heap=heap, reservation=set(),
            check_reservations=False,
        )
        assert result == 1

    def test_use_after_send_still_caught(self):
        src = """
        struct data { v : int; }
        def bad() : int { let d = new data(v = 1); send(d); d.v }
        def ok() : int { let d = recv(data); d.v }
        """
        program = parse_program(src)
        machine = Machine(program, seed=1)
        machine.spawn("bad")
        machine.spawn("ok")
        with pytest.raises(ReservationViolation):
            machine.run()


class TestCLI:
    def test_trace_json_byte_identical(self, tmp_path, capsys):
        guarded = tmp_path / "guarded.json"
        erased = tmp_path / "erased.json"
        sll = str(CORPUS / "sll.fcl")
        assert main(["run", sll, "make_list", "6", "--trace-json", str(guarded)]) == 0
        assert main(
            ["run", sll, "make_list", "6", "--erased", "--trace-json", str(erased)]
        ) == 0
        capsys.readouterr()
        assert guarded.read_bytes() == erased.read_bytes()
        events = [
            json.loads(line) for line in guarded.read_text().splitlines()
        ]
        assert events, "trace must be non-empty for the comparison to mean anything"
        assert events[0]["kind"] == "alloc"

    def test_paranoid_cross_validates(self, capsys):
        sll = str(CORPUS / "sll.fcl")
        assert main(["run", sll, "make_list", "4", "--paranoid"]) == 0
        err = capsys.readouterr().err
        assert "paranoid: guarded and erased traces identical" in err

    def test_paranoid_conflicts_rejected(self, capsys):
        sll = str(CORPUS / "sll.fcl")
        # Flag conflicts are usage errors: ExitCode.USAGE (64).
        assert main(["run", sll, "make_list", "2", "--paranoid", "--erased"]) == 64
        assert main(["run", sll, "make_list", "2", "--unchecked", "--erased"]) == 64
        capsys.readouterr()
