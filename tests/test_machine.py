"""Interpreter and heap semantics tests."""

import pytest

from repro.lang import parse_program
from repro.runtime.heap import Heap, HeapError
from repro.runtime.machine import (
    Interpreter,
    MachineError,
    ReservationViolation,
    run_function,
)
from repro.runtime.values import NONE, UNIT, Loc

STRUCTS = """
struct data { v : int; }
struct box { iso inner : data?; flag : bool; }
struct cell { other : cell; tag : int; }
"""


def run(body, params="", args=(), ret="int", heap=None, **kwargs):
    program = parse_program(STRUCTS + f"def fn({params}) : {ret} {{ {body} }}")
    return run_function(program, "fn", args, heap=heap, **kwargs)


class TestEvaluation:
    def test_arithmetic(self):
        assert run("2 + 3 * 4")[0] == 14

    def test_division_truncates(self):
        assert run("7 / 2")[0] == 3

    def test_division_by_zero(self):
        with pytest.raises(MachineError):
            run("1 / 0")

    def test_modulo_by_zero(self):
        with pytest.raises(MachineError):
            run("1 % 0")

    def test_comparisons(self):
        assert run("(1 < 2) && (2 <= 2) && (3 > 2) && (3 >= 3)", ret="bool")[0]

    def test_equality(self):
        assert run("1 == 1", ret="bool")[0] is True
        assert run("1 != 1", ret="bool")[0] is False

    def test_unops(self):
        assert run("-5")[0] == -5
        assert run("!false", ret="bool")[0] is True

    def test_unit(self):
        assert run("()", ret="unit")[0] is UNIT

    def test_let_and_blocks(self):
        assert run("let x = 1; { let y = 2; x + y }")[0] == 3

    def test_block_value_is_last_expr(self):
        assert run("{ 1; 2; 3 }")[0] == 3

    def test_block_ending_in_let_is_unit(self):
        assert run("{ let x = 1 }", ret="unit")[0] is UNIT

    def test_assignment(self):
        assert run("let x = 1; x = x + 10; x")[0] == 11

    def test_if_branches(self):
        assert run("if (true) { 1 } else { 2 }")[0] == 1
        assert run("if (false) { 1 } else { 2 }")[0] == 2

    def test_while_computes(self):
        assert run(
            "let i = 5; let acc = 0; while (i > 0) { acc = acc + i; i = i - 1 }; acc"
        )[0] == 15

    def test_let_some_paths(self):
        body = (
            "let b = new box(); "
            "let first = let some(d) = b.inner in { 1 } else { 2 }; "
            "let d2 = new data(v = 1); b.inner = some(d2); "
            "let second = let some(d) = b.inner in { 10 } else { 20 }; "
            "first * 100 + second"
        )
        assert run(body)[0] == 210

    def test_reference_equality(self):
        body = (
            "let a = new cell(); let b = a; let c = new cell(); "
            "if (a == b) { if (a != c) { 1 } else { 2 } } else { 3 }"
        )
        assert run(body)[0] == 1


class TestHeap:
    def test_alloc_defaults(self):
        program = parse_program(STRUCTS)
        heap = Heap()
        loc = heap.alloc(program.structs["box"], {})
        assert heap.obj(loc).fields["inner"] is NONE
        assert heap.obj(loc).fields["flag"] is False

    def test_self_reference_default(self):
        program = parse_program(STRUCTS)
        heap = Heap()
        loc = heap.alloc(program.structs["cell"], {})
        assert heap.obj(loc).fields["other"] == loc
        # And the self-reference is counted.
        assert heap.obj(loc).stored_refcount == 1

    def test_missing_default_raises(self):
        program = parse_program(
            "struct a { x : int; } struct h { item : a; }"
        )
        heap = Heap()
        with pytest.raises(HeapError):
            heap.alloc(program.structs["h"], {})

    def test_dangling_location(self):
        heap = Heap()
        with pytest.raises(HeapError):
            heap.obj(Loc(99))

    def test_refcount_maintenance_on_writes(self):
        program = parse_program(STRUCTS)
        heap = Heap()
        a = heap.alloc(program.structs["cell"], {})
        b = heap.alloc(program.structs["cell"], {})
        heap.write_field(a, "other", b)
        assert heap.obj(b).stored_refcount == 2  # self + a.other
        assert heap.obj(a).stored_refcount == 0
        heap.write_field(a, "other", a)
        assert heap.obj(b).stored_refcount == 1
        assert heap.obj(a).stored_refcount == 1

    def test_iso_fields_not_counted(self):
        program = parse_program(STRUCTS)
        heap = Heap()
        b = heap.alloc(program.structs["box"], {})
        d = heap.alloc(program.structs["data"], {"v": 1})
        heap.write_field(b, "inner", d)
        assert heap.obj(d).stored_refcount == 0  # §5.2: non-iso refs only

    def test_live_set_crosses_everything(self):
        program = parse_program(STRUCTS)
        heap = Heap()
        b = heap.alloc(program.structs["box"], {})
        d = heap.alloc(program.structs["data"], {"v": 1})
        heap.write_field(b, "inner", d)
        assert heap.live_set(b) == {b, d}

    def test_read_write_counters(self):
        heap = Heap()
        _, interp = run(
            "let c = new cell(); c.tag = 5; c.tag + c.tag", heap=heap
        )
        assert heap.writes == 1
        assert heap.reads == 2


class TestReservations:
    def test_accesses_inside_reservation_ok(self):
        result, interp = run("let d = new data(v = 3); d.v")
        assert result == 3

    def test_access_outside_reservation_violates(self):
        program = parse_program(STRUCTS + "def f(d : data) : int { d.v }")
        heap = Heap()
        d = heap.alloc(program.structs["data"], {"v": 1})
        # Empty reservation: even the parameter use must get stuck.
        with pytest.raises(ReservationViolation):
            run_function(program, "f", [d], heap=heap, reservation=set())

    def test_checks_erasable(self):
        program = parse_program(STRUCTS + "def f(d : data) : int { d.v }")
        heap = Heap()
        d = heap.alloc(program.structs["data"], {"v": 9})
        result, _ = run_function(
            program, "f", [d], heap=heap, reservation=set(), check_reservations=False
        )
        assert result == 9

    def test_alloc_joins_reservation(self):
        _, interp = run("let d = new data(v = 1); d.v")
        assert len(interp.reservation) == 1


class TestErrors:
    def test_none_in_non_nullable_position(self):
        # Field read through a none: a dynamic error (MachineError), only
        # reachable by bypassing the checker.
        program = parse_program(
            STRUCTS + "def f(b : box) : unit { b.inner.v; () }"
        )
        heap = Heap()
        b = heap.alloc(program.structs["box"], {})
        with pytest.raises(MachineError):
            run_function(program, "f", [b], heap=heap)

    def test_send_needs_machine(self):
        program = parse_program(
            STRUCTS + "def f() : unit { let d = new data(v = 1); send(d) }"
        )
        with pytest.raises(MachineError):
            run_function(program, "f")

    def test_unbound_runtime_variable(self):
        # Only constructible by running an unchecked program.
        program = parse_program(STRUCTS + "def f() : int { ghost }")
        with pytest.raises(MachineError):
            run_function(program, "f")
