"""Pipeline tests: cache-key invalidation, certificate store round trips,
serial/parallel parity (diagnostics, exit codes, merged metrics), the
``repro batch`` CLI contract, bench report comparison, and fixed-seed fuzz
parity under ``--jobs``.
"""

import copy
import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro import telemetry
from repro.bench import compare_docs
from repro.cli import main
from repro.core.checker import CHECKER_VERSION, DEFAULT_PROFILE, Checker
from repro.core.errors import TypeError_
from repro.corpus import corpus_names, load_source
from repro.corpus.negative import NEGATIVE_CASES
from repro.fuzz import FuzzConfig, run_campaign
from repro.lang import parse_program
from repro.pipeline import (
    CacheEntry,
    CertCache,
    Pipeline,
    ProgramFingerprints,
    ProgramSession,
    callees_of,
    discover,
)
from repro.verifier import Verifier

CORPUS_DIR = Path(__file__).parent.parent / "src" / "repro" / "corpus"

SOURCE = """
struct data { v : int; }
def leaf(x : int) : int { x + 1 }
def mid(x : int) : int { leaf(x) + 2 }
def top(x : int) : int { mid(x) + leaf(x) }
def lone(d : data) : int { d.v }
"""


def keys_of(source: str, profile=DEFAULT_PROFILE, version=CHECKER_VERSION):
    program = parse_program(source)
    fp = ProgramFingerprints(program, profile=profile, version=version)
    return {name: fp.key(name) for name in program.funcs}


@pytest.fixture(autouse=True)
def _clean_global_registry():
    yield
    telemetry.disable()


class TestCacheKeys:
    def test_whitespace_and_comment_edits_are_noops(self):
        noisy = SOURCE.replace(
            "def leaf(x : int) : int { x + 1 }",
            "def leaf( x : int )   : int {\n  // a comment\n  x + 1\n}",
        )
        assert keys_of(SOURCE) == keys_of(noisy)

    def test_body_edit_invalidates_only_that_function(self):
        edited = SOURCE.replace("{ x + 1 }", "{ x + 2 }")
        before, after = keys_of(SOURCE), keys_of(edited)
        assert before["leaf"] != after["leaf"]
        # Callers hash the callee's *header*, which did not change.
        assert before["mid"] == after["mid"]
        assert before["top"] == after["top"]
        assert before["lone"] == after["lone"]

    def test_signature_edit_invalidates_function_and_callers(self):
        edited = SOURCE.replace(
            "def leaf(x : int) : int", "def leaf(x : int, y : int) : int"
        ).replace("leaf(x)", "leaf(x, 0)")
        before, after = keys_of(SOURCE), keys_of(edited)
        assert before["leaf"] != after["leaf"]
        assert before["mid"] != after["mid"]  # calls leaf
        assert before["top"] != after["top"]  # calls leaf and mid
        assert before["lone"] == after["lone"]  # calls nothing

    def test_struct_edit_invalidates_everything(self):
        edited = SOURCE.replace(
            "struct data { v : int; }", "struct data { v : int; w : int; }"
        )
        before, after = keys_of(SOURCE), keys_of(edited)
        assert all(before[name] != after[name] for name in before)

    def test_version_and_profile_are_key_material(self):
        base = keys_of(SOURCE)
        assert keys_of(SOURCE, version="repro-checker/other") != base
        doctored = replace(DEFAULT_PROFILE, unsound_send_keeps_region=True)
        assert keys_of(SOURCE, profile=doctored) != base

    def test_callees_are_direct_only(self):
        program = parse_program(SOURCE)
        assert callees_of(program.func("top"), program) == ["leaf", "mid"]
        assert callees_of(program.func("mid"), program) == ["leaf"]
        assert callees_of(program.func("lone"), program) == []


class TestCertCache:
    def test_miss_then_hit(self, tmp_path):
        cache = CertCache(tmp_path)
        key = "ab" + "0" * 62
        assert cache.get(key) == ("miss", None)
        entry = CacheEntry(func="f", nodes=3, verified=4, cert="{}")
        cache.put(key, entry)
        status, got = cache.get(key)
        assert status == "hit"
        assert (got.func, got.nodes, got.verified, got.cert) == ("f", 3, 4, "{}")
        assert len(cache) == 1

    def test_corrupt_entry_is_stale(self, tmp_path):
        cache = CertCache(tmp_path)
        key = "cd" + "1" * 62
        cache.put(key, CacheEntry(func="f", nodes=1, verified=1, cert="{}"))
        cache.path_for(key).write_text("not json at all")
        assert cache.get(key) == ("stale", None)

    def test_version_mismatch_is_stale(self, tmp_path):
        cache = CertCache(tmp_path)
        key = "ef" + "2" * 62
        cache.put(
            key,
            CacheEntry(
                func="f", nodes=1, verified=1, cert="{}", version="repro-checker/0"
            ),
        )
        assert cache.get(key) == ("stale", None)


class TestPipelineCache:
    def test_cold_then_warm_then_trusted(self, tmp_path):
        with Pipeline(jobs=1, cache_dir=str(tmp_path)) as pipeline:
            cold = pipeline.run("p", SOURCE)
            warm = pipeline.run("p", SOURCE)
        assert cold.ok and warm.ok
        assert cold.counts() == {"hit": 0, "miss": 4, "stale": 0}
        assert warm.counts() == {"hit": 4, "miss": 0, "stale": 0}
        assert (cold.nodes, cold.verified) == (warm.nodes, warm.verified)
        with Pipeline(
            jobs=1, cache_dir=str(tmp_path), trust_cache=True
        ) as pipeline:
            trusted = pipeline.run("p", SOURCE)
        assert trusted.ok
        assert (trusted.nodes, trusted.verified) == (cold.nodes, cold.verified)

    def test_trusted_hits_never_run_the_verifier(self, tmp_path, monkeypatch):
        with Pipeline(jobs=1, cache_dir=str(tmp_path)) as pipeline:
            assert pipeline.run("p", SOURCE).ok
        monkeypatch.setattr(
            Verifier,
            "verify_function",
            lambda self, fd: (_ for _ in ()).throw(AssertionError("verified")),
        )
        with Pipeline(
            jobs=1, cache_dir=str(tmp_path), trust_cache=True
        ) as pipeline:
            assert pipeline.run("p", SOURCE).ok

    def test_tampered_certificate_self_heals(self, tmp_path):
        cache_dir = str(tmp_path)
        with Pipeline(jobs=1, cache_dir=cache_dir) as pipeline:
            assert pipeline.run("p", SOURCE).ok
        # Corrupt one stored certificate *payload* while keeping the entry
        # envelope valid: the replay must fail and fall back to a fresh
        # derivation, not reject the program.
        session = ProgramSession(SOURCE)
        cache = CertCache(cache_dir)
        key = session.function_key("leaf")
        path = cache.path_for(key)
        data = json.loads(path.read_text())
        data["cert"] = '{"rule": "bogus"}'
        path.write_text(json.dumps(data))
        with Pipeline(jobs=1, cache_dir=cache_dir) as pipeline:
            healed = pipeline.run("p", SOURCE)
        assert healed.ok
        assert healed.counts() == {"hit": 3, "miss": 0, "stale": 1}
        # And the fresh certificate was written back: next run is all hits.
        with Pipeline(jobs=1, cache_dir=cache_dir) as pipeline:
            again = pipeline.run("p", SOURCE)
        assert again.counts() == {"hit": 4, "miss": 0, "stale": 0}

    def test_check_only_mode_reads_but_never_writes(self, tmp_path):
        with Pipeline(jobs=1, cache_dir=str(tmp_path), verify=False) as pipeline:
            assert pipeline.run("p", SOURCE).ok
        # Nothing was verified, so nothing may be cached (only verified
        # certificates are sound to replay).
        assert len(CertCache(str(tmp_path))) == 0
        with Pipeline(jobs=1, cache_dir=str(tmp_path)) as pipeline:
            assert pipeline.run("p", SOURCE).ok
        with Pipeline(jobs=1, cache_dir=str(tmp_path), verify=False) as pipeline:
            result = pipeline.run("p", SOURCE)
        assert result.counts()["hit"] == 4


def _counters(reg):
    return {
        name: c.value
        for name, c in reg.counters.items()
        if not name.startswith("pipeline.")
    }


class TestSerialParallelParity:
    def test_corpus_results_and_metrics_agree(self):
        source = load_source("dll")
        # Ground truth: the plain checker + verifier entry points.
        reg = telemetry.enable()
        program = parse_program(source)
        derivation = Checker(program).check_program()
        nodes = Verifier(program).verify_program(derivation)
        telemetry.disable()
        baseline = {n: c.value for n, c in reg.counters.items()}

        for jobs in (1, 2):
            reg = telemetry.enable()
            with Pipeline(jobs=jobs) as pipeline:
                result = pipeline.run("dll", source)
            telemetry.disable()
            assert result.ok
            assert result.nodes == derivation.node_count()
            assert result.verified == nodes
            assert _counters(reg) == baseline

    def test_negative_corpus_diagnostics_and_metrics_agree(self):
        parsable = []
        for case in NEGATIVE_CASES:
            try:
                program = parse_program(case.source)
            except Exception:
                continue
            reg = telemetry.enable()
            try:
                Checker(program).check_program()
                serial = None
            except TypeError_ as exc:
                serial = (type(exc).__name__, exc.message, exc.span)
            finally:
                telemetry.disable()
            parsable.append(
                (case, serial, {n: c.value for n, c in reg.counters.items()})
            )
        assert parsable, "negative corpus should have parsable cases"

        with Pipeline(jobs=1) as serial_pipe, Pipeline(jobs=2) as par_pipe:
            for case, serial, counters in parsable:
                for pipeline in (serial_pipe, par_pipe):
                    reg = telemetry.enable()
                    result = pipeline.run(case.name, case.source)
                    telemetry.disable()
                    if serial is None:
                        assert result.ok
                    else:
                        cls, message, span = serial
                        error = result.error
                        assert not result.ok
                        assert error.stage == "check"
                        assert error.cls == cls
                        assert error.message == message
                        if span is not None:
                            assert error.span == (
                                span.start,
                                span.end,
                                span.line,
                                span.column,
                            )
                    assert _counters(reg) == counters


class TestPartialFailureDiscard:
    """A batch where one function fails check: worker metric documents
    past the failing function are discarded for serial parity, while
    trace events are kept (they describe what actually ran)."""

    # Sorted order: a_ok, m_bad, z_ok — serial checking stops at m_bad.
    BAD_MID = """
def a_ok(x : int) : int { x + 1 }
def m_bad(x : int) : int { missing }
def z_ok(x : int) : int { x + 2 }
"""

    def _serial_counters(self):
        reg = telemetry.enable()
        try:
            Checker(parse_program(self.BAD_MID)).check_program()
        except TypeError_:
            pass
        finally:
            telemetry.disable()
        return {n: c.value for n, c in reg.counters.items()}

    def test_metric_docs_past_failure_are_discarded(self):
        baseline = self._serial_counters()
        reg = telemetry.enable()
        with Pipeline(jobs=2) as pipeline:
            result = pipeline.run("bad-mid", self.BAD_MID)
        telemetry.disable()
        assert not result.ok and result.error.stage == "check"
        merged = _counters(reg)
        for name, value in baseline.items():
            assert merged.get(name) == value, name
        # The parallel run checked z_ok and could have verified a_ok, but
        # none of that work may leak into the merged counters.
        assert not any(n.startswith("verifier.") for n in merged)

    def test_trace_events_survive_the_metric_discard(self):
        import os

        tr = telemetry.Tracer(capacity=4096)
        with telemetry.use_tracer(tr):
            with Pipeline(jobs=2, mode="process") as pipeline:
                result = pipeline.run("bad-mid", self.BAD_MID)
        assert not result.ok
        events = tr.events()
        root = next(e for e in events if e["name"] == "pipeline.program")
        worker = [e for e in events if e["name"].startswith("pipeline.func.")]
        # Worker spans from other processes stitched under this trace —
        # including work the metric merge discarded.
        assert worker, "worker spans must be ingested"
        assert all(e["pid"] != os.getpid() for e in worker)
        assert all(
            e["args"]["trace_id"] == root["args"]["trace_id"] for e in worker
        )
        assert all(
            e["args"]["parent_id"] == root["args"]["span_id"] for e in worker
        )


class TestBatchCli:
    def test_cold_and_warm_stdout_identical(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        argv = [
            "batch",
            str(CORPUS_DIR / "sll.fcl"),
            str(CORPUS_DIR / "dll.fcl"),
            "--jobs",
            "1",
            "--cache",
            cache,
        ]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert main(argv) == 0
        warm = capsys.readouterr()
        assert cold.out == warm.out
        assert "OK" in cold.out and "batch: 2/2 programs OK" in cold.out
        assert "misses=19" in cold.err
        assert "hits=19" in warm.err

    def test_directory_discovery_skips_support_python(self, tmp_path):
        (tmp_path / "good.fcl").write_text(SOURCE)
        (tmp_path / "helper.py").write_text("x = 1\n")
        (tmp_path / "embedded.py").write_text(f'SOURCE = """{SOURCE}"""\n')
        found = dict(discover([str(tmp_path)]))
        assert set(found) == {
            str(tmp_path / "good.fcl"),
            str(tmp_path / "embedded.py"),
        }

    def test_rejection_exit_code_and_line(self, tmp_path, capsys):
        bad = tmp_path / "bad.fcl"
        bad.write_text(NEGATIVE_CASES[0].source)
        assert main(["batch", str(bad), "--jobs", "1"]) == 1
        out = capsys.readouterr().out
        assert "REJECTED" in out
        assert "batch: 0/1 programs OK" in out

    def test_trust_cache_requires_cache(self):
        with pytest.raises(SystemExit):
            main(["batch", str(CORPUS_DIR / "sll.fcl"), "--trust-cache"])


class TestCheckVerifyCliParity:
    def test_check_output_matches_legacy(self, tmp_path, capsys):
        path = tmp_path / "p.fcl"
        path.write_text(SOURCE)
        assert main(["check", str(path)]) == 0
        legacy = capsys.readouterr().out
        assert main(["check", str(path), "--jobs", "2"]) == 0
        assert capsys.readouterr().out == legacy

    def test_verify_output_matches_legacy_warm_or_cold(self, tmp_path, capsys):
        path = tmp_path / "p.fcl"
        path.write_text(SOURCE)
        assert main(["verify", str(path)]) == 0
        legacy = capsys.readouterr().out
        cache = str(tmp_path / "cache")
        for _ in range(2):  # cold, then warm
            assert main(["verify", str(path), "--jobs", "1", "--cache", cache]) == 0
            assert capsys.readouterr().out == legacy

    def test_check_diagnostics_match_legacy(self, tmp_path, capsys):
        path = tmp_path / "bad.fcl"
        path.write_text(NEGATIVE_CASES[0].source)
        assert main(["check", str(path)]) == 1
        legacy = capsys.readouterr().err
        assert main(["check", str(path), "--jobs", "1"]) == 1
        assert capsys.readouterr().err == legacy


def _fake_bench_doc():
    return {
        "schema": "repro-bench/1",
        "label": "A",
        "corpus": [
            {"name": "sll", "functions": 11, "check_ms": 10.0, "verify_ms": 40.0}
        ],
        "generated": [{"chain": 5, "check_ms": 3.0}],
        "search": [{"width": 1, "greedy_ms": 0.08, "search_ms": 0.15}],
        "erasure": [
            {"workload": "sll-traverse", "checked_ms": 3.0, "erased_ms": 2.5}
        ],
    }


class TestBenchCompare:
    def test_identical_docs_have_no_regressions(self):
        doc = _fake_bench_doc()
        cmp = compare_docs(doc, copy.deepcopy(doc))
        assert cmp["regressions"] == []
        assert any(m["metric"] == "check_ms" for m in cmp["metrics"])

    def test_slowdown_beyond_threshold_is_flagged(self):
        old, new = _fake_bench_doc(), _fake_bench_doc()
        new["corpus"][0]["check_ms"] = 100.0
        cmp = compare_docs(old, new, threshold=50.0)
        assert len(cmp["regressions"]) == 1
        reg = cmp["regressions"][0]
        assert (reg["section"], reg["row"], reg["metric"]) == (
            "corpus",
            "sll",
            "check_ms",
        )

    def test_submillisecond_noise_is_never_flagged(self):
        old, new = _fake_bench_doc(), _fake_bench_doc()
        new["search"][0]["greedy_ms"] = 0.9  # 11x, but both sides < 1 ms
        cmp = compare_docs(old, new, threshold=50.0)
        assert cmp["regressions"] == []

    def test_rows_only_on_one_side_are_skipped(self):
        old, new = _fake_bench_doc(), _fake_bench_doc()
        new["pipeline"] = [
            {"workload": "corpus", "serial_ms": 1.0, "trusted_ms": 0.1}
        ]
        new["corpus"].append({"name": "extra", "check_ms": 5.0})
        cmp = compare_docs(old, new)
        assert all(m["row"] != "extra" for m in cmp["metrics"])
        assert all(m["section"] != "pipeline" for m in cmp["metrics"])

    def test_schema_mismatch_raises(self):
        with pytest.raises(ValueError):
            compare_docs({"schema": "other"}, _fake_bench_doc())

    def test_committed_reports_compare_clean(self):
        root = Path(__file__).parent.parent
        old = json.loads((root / "BENCH_PR2.json").read_text())
        new = json.loads((root / "BENCH_PR4.json").read_text())
        # Generous threshold: this asserts comparability across versions,
        # not machine-specific speed.
        cmp = compare_docs(old, new, threshold=10_000.0)
        assert cmp["metrics"], "reports must share comparable rows"
        assert cmp["regressions"] == []


class TestFuzzJobsParity:
    def test_fixed_seed_report_identical_under_jobs(self):
        base = dict(seed=11, budget=12, schedules=1, enumerate_limit=20)
        serial = run_campaign(FuzzConfig(**base))
        pooled = run_campaign(FuzzConfig(**base, jobs=2))
        serial.pop("wall_ms")
        pooled.pop("wall_ms")
        assert serial == pooled

    def test_injected_bug_still_caught_under_jobs(self):
        report = run_campaign(
            FuzzConfig(
                seed=3,
                budget=20,
                schedules=1,
                enumerate_limit=20,
                inject_bug="send-keeps-region",
                stop_after=1,
                shrink=False,
                jobs=2,
            )
        )
        assert report["violations"]
        assert report["violations"][0]["oracle"] == "verifier"


class TestSessionSharing:
    def test_checker_and_verifier_share_the_functype_table(self):
        session = ProgramSession(SOURCE)
        assert session.verifier.functypes is session.checker.functypes

    def test_verify_source_accepts_preparsed_program(self):
        from repro.verifier.verifier import verify_source

        program = parse_program(SOURCE)
        assert verify_source(SOURCE, program=program) > 0
