"""TS2 framing tests: hide, pin, operate, restore (§4.7, fig 12)."""

import pytest

from repro.core.contexts import ContextError, StaticContext
from repro.core.errors import PinnedViolation
from repro.core.framing import frame_away, restore
from repro.core.regions import RegionSupply
from repro.lang import ast

NODE = ast.StructType("node")


def rich_ctx():
    """l focused with hd ↦ r_spine holding cursor; plus an unrelated pair."""
    ctx = StaticContext(RegionSupply())
    r_l = ctx.fresh_region()
    ctx.bind("l", NODE, r_l)
    ctx.focus("l")
    r_spine = ctx.explore("l", "hd")
    ctx.bind("cursor", NODE, r_spine)
    r_other = ctx.fresh_region()
    ctx.bind("other", NODE, r_other)
    return ctx, r_l, r_spine, r_other


class TestFrameAway:
    def test_hide_unrelated_region(self):
        ctx, r_l, r_spine, r_other = rich_ctx()
        frame = frame_away(ctx, regions={r_other})
        assert not ctx.has_region(r_other)
        assert not ctx.has_var("other")
        ctx.check_well_formed()
        restore(ctx, frame)
        assert ctx.has_region(r_other)
        assert ctx.lookup("other").region == r_other

    def test_hiding_tracked_target_pins_owner(self):
        ctx, r_l, r_spine, r_other = rich_ctx()
        frame = frame_away(ctx, regions={r_spine})
        # l.hd was hidden; l is pinned: no new exploration of l.
        tv = ctx.tracked_var("l")
        assert tv.pinned
        assert "hd" not in tv.fields
        with pytest.raises(PinnedViolation):
            ctx.explore("l", "hd")
        ctx.check_well_formed()
        restore(ctx, frame)
        tv = ctx.tracked_var("l")
        assert not tv.pinned
        assert tv.fields["hd"] == r_spine
        assert ctx.lookup("cursor").region == r_spine

    def test_hiding_tracked_variable_pins_region(self):
        ctx, r_l, r_spine, r_other = rich_ctx()
        # First retract the spine so l has no fields (frame the var alone).
        ctx.drop_var("cursor")
        ctx.retract("l", "hd")
        frame = frame_away(ctx, variables={"l"})
        assert not ctx.has_var("l")
        assert ctx.heap[r_l].pinned  # no one else may focus into r_l
        ctx.bind("sneaky", NODE, r_l)
        with pytest.raises(PinnedViolation):
            ctx.focus("sneaky")
        ctx.drop_var("sneaky")
        restore(ctx, frame)
        assert ctx.tracked_region_of("l") == r_l
        assert not ctx.heap[r_l].pinned

    def test_frame_absent_region_rejected(self):
        ctx, *_ = rich_ctx()
        from repro.core.regions import Region

        with pytest.raises(ContextError):
            frame_away(ctx, regions={Region(999)})

    def test_frame_unbound_variable_rejected(self):
        ctx, *_ = rich_ctx()
        with pytest.raises(ContextError):
            frame_away(ctx, variables={"ghost"})


class TestRestoreSafety:
    def test_recreated_variable_blocks_restore(self):
        ctx, r_l, r_spine, r_other = rich_ctx()
        frame = frame_away(ctx, regions={r_other})
        fresh = ctx.fresh_region()
        ctx.bind("other", NODE, fresh)  # name collision
        with pytest.raises(ContextError):
            restore(ctx, frame)

    def test_retracked_field_blocks_restore(self):
        ctx, r_l, r_spine, r_other = rich_ctx()
        frame = frame_away(ctx, regions={r_spine})
        # Maliciously unpin and re-explore the hidden field.
        ctx.tracked_var("l").pinned = False
        ctx.explore("l", "hd")
        with pytest.raises(ContextError):
            restore(ctx, frame)

    def test_nested_frames_restore_in_reverse(self):
        ctx, r_l, r_spine, r_other = rich_ctx()
        outer = frame_away(ctx, regions={r_other})
        inner = frame_away(ctx, regions={r_spine})
        restore(ctx, inner)
        restore(ctx, outer)
        ctx.check_well_formed()
        assert ctx.tracked_var("l").fields["hd"] == r_spine
        assert ctx.has_region(r_other)


class TestFramedOperation:
    def test_work_around_a_frame(self):
        # The TS2 idiom: hide everything but the region a sub-derivation
        # needs, do the work, restore.
        ctx, r_l, r_spine, r_other = rich_ctx()
        frame = frame_away(ctx, regions={r_l, r_spine})
        # Only `other` remains visible; operate on it freely.
        ctx.focus("other")
        target = ctx.explore("other", "payload")
        ctx.retract("other", "payload")
        ctx.unfocus("other")
        restore(ctx, frame)
        ctx.check_well_formed()
        # The hidden state returned exactly.
        assert ctx.tracked_var("l").fields["hd"] == r_spine
        assert ctx.lookup("cursor").region == r_spine
