"""Checker unit tests: literals, variables, blocks, operators, declarations."""

import pytest

from repro.core.checker import Checker, check_source
from repro.core.errors import (
    ArityError,
    InferenceError,
    TypeError_,
    TypeMismatch,
    UnboundVariable,
    UnknownName,
)
from repro.core.validate import DeclarationError
from repro.lang import parse_program

STRUCTS = """
struct data { v : int; }
struct box { iso inner : data?; flag : bool; }
"""


def accept(body, ret="unit", params=""):
    check_source(STRUCTS + f"def fn({params}) : {ret} {{ {body} }}")


def reject(exc, body, ret="unit", params=""):
    with pytest.raises(exc):
        accept(body, ret, params)


class TestLiterals:
    def test_int(self):
        accept("42", ret="int")

    def test_bool(self):
        accept("true", ret="bool")

    def test_unit(self):
        accept("()")

    def test_arith(self):
        accept("1 + 2 * 3 - 4 / 2 % 3", ret="int")

    def test_comparison(self):
        accept("1 < 2", ret="bool")

    def test_logic(self):
        accept("true && (1 == 2) || false", ret="bool")

    def test_arith_type_error(self):
        reject(TypeMismatch, "1 + true", ret="int")

    def test_logic_type_error(self):
        reject(TypeMismatch, "1 && true", ret="bool")

    def test_compare_mixed_types(self):
        reject(TypeMismatch, "1 == true", ret="bool")

    def test_unop(self):
        accept("!false", ret="bool")
        accept("-3", ret="int")
        reject(TypeMismatch, "!3", ret="bool")

    def test_return_type_mismatch(self):
        reject(TypeMismatch, "1", ret="bool")


class TestVariables:
    def test_let_and_use(self):
        accept("let x = 1; x + x", ret="int")

    def test_unbound(self):
        reject(TypeError_, "y", ret="int")

    def test_shadowing_rejected(self):
        reject(TypeError_, "let x = 1; let x = 2; x", ret="int")

    def test_block_scope_ends(self):
        reject(TypeError_, "{ let x = 1; x }; x", ret="int")

    def test_param_use(self):
        accept("k + 1", ret="int", params="k : int")

    def test_assign_same_type(self):
        accept("let x = 1; x = 2; x", ret="int")

    def test_assign_type_change_rejected(self):
        reject(TypeMismatch, "let x = 1; x = true; ()")

    def test_struct_alias(self):
        accept("let d2 = d; d2.v", ret="int", params="d : data")


class TestMaybe:
    def test_none_needs_context(self):
        reject(InferenceError, "let x = none; ()")

    def test_none_with_field_context(self):
        accept("b.inner = none", params="b : box")

    def test_some_of_maybe_rejected(self):
        reject(
            TypeMismatch,
            "let m = b.inner; some(m)",
            ret="data?",
            params="b : box",
        )

    def test_is_none_requires_maybe(self):
        reject(TypeMismatch, "is_none(1)", ret="bool")

    def test_let_some_requires_maybe(self):
        reject(TypeMismatch, "let some(x) = 1 in { () } else { () }")

    def test_let_some_branches(self):
        accept(
            "let some(d) = b.inner in { d.v } else { 0 }",
            ret="int",
            params="b : box",
        )

    def test_branch_type_mismatch(self):
        reject(
            TypeMismatch,
            "let some(d) = b.inner in { 1 } else { true }",
            ret="int",
            params="b : box",
        )


class TestFields:
    def test_non_iso_read(self):
        accept("b.flag", ret="bool", params="b : box")

    def test_unknown_field(self):
        reject(UnknownName, "b.zzz", ret="bool", params="b : box")

    def test_field_on_prim(self):
        reject(TypeMismatch, "k.v", ret="int", params="k : int")

    def test_field_on_maybe_needs_unwrap(self):
        reject(
            TypeMismatch, "b.inner.v", ret="int", params="b : box"
        )

    def test_prim_field_assign(self):
        accept("b.flag = true", params="b : box")

    def test_field_assign_type_error(self):
        reject(TypeMismatch, "b.flag = 3", params="b : box")


class TestNew:
    def test_new_with_defaults(self):
        accept("let b = new box(); ()")

    def test_new_prim_init(self):
        accept("let d = new data(v = 3); d.v", ret="int")

    def test_new_unknown_struct(self):
        reject(UnknownName, "new zzz()")

    def test_new_unknown_field(self):
        reject(UnknownName, "new data(zzz = 1)")

    def test_new_init_type_error(self):
        reject(TypeMismatch, "new data(v = true)")

    def test_new_missing_non_nullable(self):
        src = "struct a { x : int; } struct holder { item : a; }"
        with pytest.raises(TypeError_):
            check_source(src + " def f() : unit { new holder(); () }")

    def test_new_iso_init_requires_let(self):
        src = STRUCTS + """
        struct strong { iso must : data; }
        def f(d : data) : unit consumes d { new strong(must = d); () }
        """
        with pytest.raises(TypeError_):
            check_source(src)


class TestCallsBasics:
    def test_arity(self):
        with pytest.raises(ArityError):
            check_source(
                STRUCTS + "def g(k : int) : int { k } def f() : int { g() }"
            )

    def test_unknown_function(self):
        reject(UnknownName, "zzz()")

    def test_arg_type(self):
        with pytest.raises(TypeMismatch):
            check_source(
                STRUCTS + "def g(k : int) : int { k } def f() : int { g(true) }"
            )

    def test_recursion(self):
        check_source(
            STRUCTS
            + "def fact(n : int) : int { if (n <= 1) { 1 } else { n * fact(n - 1) } }"
        )


class TestDeclarations:
    def test_iso_prim_field_rejected(self):
        with pytest.raises(DeclarationError):
            check_source("struct s { iso k : int; }")

    def test_unknown_field_struct_type(self):
        with pytest.raises(UnknownName):
            check_source("struct s { x : nosuch; }")

    def test_unknown_param_type(self):
        with pytest.raises(UnknownName):
            check_source("def f(x : nosuch) : unit { () }")

    def test_duplicate_param(self):
        with pytest.raises(DeclarationError):
            check_source("def f(x : int, x : int) : unit { () }")


class TestControlFlow:
    def test_if_cond_must_be_bool(self):
        reject(TypeMismatch, "if (1) { () } else { () }")

    def test_if_without_else_is_unit(self):
        accept("if (true) { 1 }; ()")

    def test_while_cond_must_be_bool(self):
        reject(TypeMismatch, "while (1) { () }")

    def test_while_loop_with_counter(self):
        accept("let i = 10; while (i > 0) { i = i - 1 }; i", ret="int")

    def test_nested_ifs(self):
        accept(
            "if (true) { if (false) { 1 } else { 2 } } else { 3 }",
            ret="int",
        )
