"""Lexer unit tests."""

import pytest

from repro.lang.lexer import LexError, tokenize
from repro.lang.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_source_yields_eof(self):
        assert kinds("") == [TokenKind.EOF]

    def test_whitespace_only(self):
        assert kinds(" \t\n\r ") == [TokenKind.EOF]

    def test_integer(self):
        toks = tokenize("42")
        assert toks[0].kind is TokenKind.INT
        assert toks[0].text == "42"

    def test_identifier(self):
        toks = tokenize("foo_bar2")
        assert toks[0].kind is TokenKind.IDENT
        assert toks[0].text == "foo_bar2"

    def test_identifier_with_leading_underscore(self):
        assert tokenize("_x")[0].kind is TokenKind.IDENT

    def test_keywords(self):
        source = "struct def iso let in if else while some none send recv"
        expected = [
            TokenKind.STRUCT,
            TokenKind.DEF,
            TokenKind.ISO,
            TokenKind.LET,
            TokenKind.IN,
            TokenKind.IF,
            TokenKind.ELSE,
            TokenKind.WHILE,
            TokenKind.SOME,
            TokenKind.NONE,
            TokenKind.SEND,
            TokenKind.RECV,
            TokenKind.EOF,
        ]
        assert kinds(source) == expected

    def test_disconnected_keyword(self):
        assert kinds("if disconnected")[:2] == [
            TokenKind.IF,
            TokenKind.DISCONNECTED,
        ]

    def test_annotation_keywords(self):
        assert kinds("consumes after before result")[:-1] == [
            TokenKind.CONSUMES,
            TokenKind.AFTER,
            TokenKind.BEFORE,
            TokenKind.RESULT,
        ]

    def test_type_keywords(self):
        assert kinds("int bool unit")[:-1] == [
            TokenKind.INT_KW,
            TokenKind.BOOL_KW,
            TokenKind.UNIT_KW,
        ]

    def test_keyword_prefix_is_identifier(self):
        # "iso1" and "letx" are identifiers, not keywords.
        toks = tokenize("iso1 letx")
        assert all(t.kind is TokenKind.IDENT for t in toks[:-1])


class TestOperators:
    def test_single_char_operators(self):
        assert kinds("{ } ( ) ; : , . ? ~ =")[:-1] == [
            TokenKind.LBRACE,
            TokenKind.RBRACE,
            TokenKind.LPAREN,
            TokenKind.RPAREN,
            TokenKind.SEMI,
            TokenKind.COLON,
            TokenKind.COMMA,
            TokenKind.DOT,
            TokenKind.QUESTION,
            TokenKind.TILDE,
            TokenKind.ASSIGN,
        ]

    def test_two_char_operators(self):
        assert kinds("== != <= >= && ||")[:-1] == [
            TokenKind.EQ,
            TokenKind.NEQ,
            TokenKind.LE,
            TokenKind.GE,
            TokenKind.AND,
            TokenKind.OR,
        ]

    def test_maximal_munch(self):
        # "==" is one token; "= =" is two.
        assert kinds("==")[:-1] == [TokenKind.EQ]
        assert kinds("= =")[:-1] == [TokenKind.ASSIGN, TokenKind.ASSIGN]

    def test_arithmetic(self):
        assert kinds("+ - * / %")[:-1] == [
            TokenKind.PLUS,
            TokenKind.MINUS,
            TokenKind.STAR,
            TokenKind.SLASH,
            TokenKind.PERCENT,
        ]

    def test_comparison_vs_shift_like(self):
        assert kinds("< > <= >=")[:-1] == [
            TokenKind.LT,
            TokenKind.GT,
            TokenKind.LE,
            TokenKind.GE,
        ]


class TestComments:
    def test_line_comment(self):
        assert texts("a // comment here\n b") == ["a", "b"]

    def test_line_comment_at_eof(self):
        assert texts("a // no newline") == ["a"]

    def test_block_comment(self):
        assert texts("a /* stuff \n more */ b") == ["a", "b"]

    def test_nested_looking_block_comment(self):
        # Not nested: closes at the first */.
        assert texts("a /* x /* y */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")


class TestPositions:
    def test_line_tracking(self):
        toks = tokenize("a\nbb\n  c")
        assert toks[0].span.line == 1
        assert toks[1].span.line == 2
        assert toks[2].span.line == 3
        assert toks[2].span.column == 3

    def test_error_position(self):
        with pytest.raises(LexError) as err:
            tokenize("ok\n  @")
        assert err.value.line == 2


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("#")

    def test_unicode_rejected(self):
        with pytest.raises(LexError):
            tokenize("§")
