"""Liveness analysis (the §5.1 unification oracle)."""

from repro.core.liveness import Liveness, uses
from repro.lang import ast, parse_program


def analyze(body: str, params="", consumes=()):
    consumes_clause = (" consumes " + ", ".join(consumes)) if consumes else ""
    src = f"struct node {{ iso f : node?; }}\ndef fn({params}) : unit{consumes_clause} {{ {body} }}"
    program = parse_program(src)
    fdef = program.funcs["fn"]
    return fdef, Liveness(fdef)


class TestUses:
    def test_varref(self):
        from repro.lang import parse_expr

        assert uses(parse_expr("a + b.f")) == {"a", "b"}

    def test_call_args(self):
        from repro.lang import parse_expr

        assert uses(parse_expr("g(x, y)")) == {"x", "y"}


class TestLiveness:
    def test_param_live_throughout(self):
        fdef, lv = analyze("let a = 1; ()", params="p : node")
        first = fdef.body.body[0]
        assert "p" in lv.live_after(first)

    def test_consumed_param_gets_true_liveness(self):
        fdef, lv = analyze("send(p)", params="p : node", consumes=("p",))
        send = fdef.body.body[0]
        assert "p" not in lv.live_after(send)

    def test_dead_after_last_use(self):
        fdef, lv = analyze("let a = 1; let b = a + 1; b + b")
        let_a = fdef.body.body[0]
        let_b = fdef.body.body[1]
        assert "a" in lv.live_after(let_a)
        assert "a" not in lv.live_after(let_b)
        assert "b" in lv.live_after(let_b)

    def test_branch_union(self):
        fdef, lv = analyze(
            "let a = 1; let b = 2; if (true) { a } else { b }; ()"
        )
        let_b = fdef.body.body[1]
        live = lv.live_after(let_b)
        assert {"a", "b"} <= set(live)

    def test_loop_keeps_condition_vars_live(self):
        fdef, lv = analyze("let i = 3; while (i > 0) { i = i - 1 }; ()")
        let_i = fdef.body.body[0]
        assert "i" in lv.live_after(let_i)

    def test_loop_body_vars_live_across_iterations(self):
        fdef, lv = analyze(
            "let i = 3; let acc = 0; while (i > 0) { acc = acc + i; i = i - 1 }; acc"
        )
        while_node = fdef.body.body[2]
        body_first = while_node.body.body[0]
        # i is live after the first body statement (used in the next one and
        # in later iterations).
        assert "i" in lv.live_after(body_first)
        assert "acc" in lv.live_after(while_node)

    def test_assignment_kills(self):
        fdef, lv = analyze("let a = 1; a = 2; a")
        let_a = fdef.body.body[0]
        # a is reassigned before use: its *old* value is dead right after
        # the binding.
        assert "a" not in lv.live_after(let_a)

    def test_let_some_scoping(self):
        fdef, lv = analyze(
            "let m = none; let some(x) = m in { x } else { () }; ()",
            params="p : node",
        )
        let_m = fdef.body.body[0]
        assert "m" in lv.live_after(let_m)

    def test_unknown_node_defaults_empty(self):
        fdef, lv = analyze("()")
        assert lv.live_after(ast.IntLit(1)) == frozenset()
