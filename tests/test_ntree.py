"""Tests for the n-ary tree corpus: composition of region-structured
data structures, subtree detachment, and scatter/gather concurrency."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.analysis import check_iso_domination, check_refcounts
from repro.core.checker import Checker
from repro.corpus import load_program, load_source
from repro.lang import parse_program
from repro.runtime.heap import Heap
from repro.runtime.smallstep import SmallStepMachine, run_function_smallstep
from repro.runtime.values import NONE
from repro.verifier import Verifier


@pytest.fixture()
def env():
    return load_program("ntree"), Heap()


class TestStructure:
    def test_checks_and_verifies(self):
        program = load_program("ntree")
        derivation = Checker(program).check_program()
        assert Verifier(program).verify_program(derivation) > 100

    @pytest.mark.parametrize(
        "depth,arity,expected",
        [(1, 3, 1), (2, 2, 3), (3, 2, 7), (4, 3, 40), (3, 5, 31)],
    )
    def test_complete_tree_sizes(self, env, depth, arity, expected):
        program, heap = env
        tree, _ = run_function_smallstep(
            program, "build", [depth, arity, 0], heap=heap
        )
        size, _ = run_function_smallstep(program, "size", [tree], heap=heap)
        assert size == expected
        height, _ = run_function_smallstep(program, "height", [tree], heap=heap)
        assert height == depth

    def test_add_child_grows(self, env):
        program, heap = env
        root, _ = run_function_smallstep(program, "leaf", [1], heap=heap)
        for tag in (2, 3, 4):
            child, _ = run_function_smallstep(program, "leaf", [tag], heap=heap)
            run_function_smallstep(program, "add_child", [root, child], heap=heap)
        assert run_function_smallstep(program, "size", [root], heap=heap)[0] == 4
        assert run_function_smallstep(program, "tag_sum", [root], heap=heap)[0] == 10

    def test_detach_first_is_dominating(self, env):
        program, heap = env
        tree, _ = run_function_smallstep(program, "build", [3, 2, 0], heap=heap)
        child, _ = run_function_smallstep(program, "detach_first", [tree], heap=heap)
        assert child is not NONE
        # The detached subtree is disjoint from the remaining tree.
        assert heap.live_set(child).isdisjoint(heap.live_set(tree))
        assert run_function_smallstep(program, "size", [tree], heap=heap)[0] == 4
        assert run_function_smallstep(program, "size", [child], heap=heap)[0] == 3
        check_refcounts(heap)
        check_iso_domination(heap, [tree, child])

    def test_detach_empties(self, env):
        program, heap = env
        root, _ = run_function_smallstep(program, "leaf", [0], heap=heap)
        got, _ = run_function_smallstep(program, "detach_first", [root], heap=heap)
        assert got is NONE


class TestScatterGather:
    def test_pipeline(self):
        source = load_source("ntree") + """
def scatterer() : int {
  let t = build(3, 3, 0);
  scatter(t)
}
"""
        program = parse_program(source)
        Checker(program).check_program()
        machine = SmallStepMachine(program, seed=3)
        scatterer = machine.spawn("scatterer")
        gatherer = machine.spawn("gather", [3])
        machine.run()
        assert scatterer.result == 3
        root = gatherer.result
        size, _ = run_function_smallstep(
            program, "size", [root], heap=machine.heap
        )
        assert size == 1 + 3 * 4  # fresh root + three depth-2 subtrees
        assert machine.reservations_disjoint()
        check_refcounts(machine.heap)


@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=3),
)
@settings(max_examples=30, deadline=None)
def test_size_height_formulas(depth, arity):
    program = load_program("ntree")
    heap = Heap()
    tree, _ = run_function_smallstep(program, "build", [depth, arity, 0], heap=heap)
    size, _ = run_function_smallstep(program, "size", [tree], heap=heap)
    expected = sum(arity**i for i in range(depth))
    assert size == expected
    check_refcounts(heap)
    check_iso_domination(heap, [tree])
