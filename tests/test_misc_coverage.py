"""Assorted coverage: pinned-element guards, checker mode parity, the
REPL CLI subcommand, and derivation rendering."""

import subprocess
import sys

import pytest

from repro.core.checker import Checker, DEFAULT_PROFILE
from repro.core.contexts import ContextError, StaticContext
from repro.core.errors import PinnedViolation, TypeError_
from repro.core.regions import RegionSupply
from repro.corpus import corpus_names, load_program
from repro.lang import ast


class TestPinnedGuards:
    def _focused(self):
        ctx = StaticContext(RegionSupply())
        r = ctx.fresh_region()
        ctx.bind("x", ast.StructType("node"), r)
        ctx.focus("x")
        return ctx, r

    def test_explore_pinned_var(self):
        ctx, _ = self._focused()
        ctx.tracked_var("x").pinned = True
        with pytest.raises(PinnedViolation):
            ctx.explore("x", "f")

    def test_unfocus_pinned_var(self):
        ctx, _ = self._focused()
        ctx.tracked_var("x").pinned = True
        with pytest.raises(PinnedViolation):
            ctx.unfocus("x")

    def test_retract_pinned_target(self):
        ctx, _ = self._focused()
        target = ctx.explore("x", "f")
        ctx.tracking(target).pinned = True
        with pytest.raises(PinnedViolation):
            ctx.retract("x", "f")

    def test_set_field_on_pinned_var(self):
        ctx, _ = self._focused()
        target = ctx.explore("x", "f")
        ctx.tracked_var("x").pinned = True
        with pytest.raises(PinnedViolation):
            ctx.set_field_target("x", "f", target)

    def test_send_pinned_region(self):
        ctx = StaticContext(RegionSupply())
        r = ctx.fresh_region()
        ctx.tracking(r).pinned = True
        with pytest.raises(PinnedViolation):
            ctx.consume_region_for_send(r)


class TestCheckerModeParity:
    @pytest.mark.parametrize("name", corpus_names())
    def test_recording_does_not_change_acceptance(self, name):
        program = load_program(name)
        Checker(program, DEFAULT_PROFILE, record=True).check_program()
        Checker(program, DEFAULT_PROFILE, record=False).check_program()

    def test_rejections_agree(self):
        from repro.corpus.negative import NEGATIVE_CASES
        from repro.lang import parse_program

        for case in NEGATIVE_CASES[:8]:
            for record in (True, False):
                with pytest.raises(TypeError_):
                    Checker(
                        parse_program(case.source), DEFAULT_PROFILE, record=record
                    ).check_program()


class TestReplCli:
    def test_repl_subcommand(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "repl"],
            input="let d = new data(v = 20)\nd.v * 2 + 2\n:quit\n",
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0
        assert "42 : int" in proc.stdout


class TestDerivationRendering:
    def test_render_contains_rules_and_steps(self):
        program = load_program("dll")
        derivation = Checker(program).check_program()
        text = derivation.funcs["remove_tail"].body.render()
        assert "T15-If-Disconnected" in text
        assert "V1-Focus" in text
        assert "T7-SetField" in text

    def test_node_count_positive_everywhere(self):
        for name in corpus_names():
            program = load_program(name)
            derivation = Checker(program).check_program()
            for fd in derivation.funcs.values():
                assert fd.body.node_count() >= 1
