"""Maybe-of-primitive values (`int?`, `bool?`): region-free maybes."""

import pytest

from repro.core.checker import check_source
from repro.core.errors import TypeError_
from repro.lang import parse_program
from repro.runtime.heap import Heap
from repro.runtime.machine import run_function
from repro.runtime.smallstep import run_function_smallstep
from repro.runtime.values import NONE

SRC = """
struct slot { value : int?; flag : bool?; }

def put(s : slot, v : int) : unit { s.value = some(v) }

def clear(s : slot) : unit { s.value = none }

def get_or(s : slot, fallback : int) : int {
  let some(v) = s.value in { v } else { fallback }
}

def flip(s : slot) : unit {
  let some(b) = s.flag in { s.flag = some(!b) } else { s.flag = some(true) }
}

def demo() : int {
  let s = new slot();
  let a = get_or(s, 100);
  put(s, 5);
  let b = get_or(s, 100);
  clear(s);
  let c = get_or(s, 100);
  a + b + c
}
"""


class TestChecking:
    def test_program_checks(self):
        check_source(SRC)

    def test_maybe_prim_params(self):
        check_source(
            "def f(m : int?) : int { let some(v) = m in { v } else { 0 } }"
        )

    def test_some_of_int_in_return(self):
        check_source("def f() : int? { some(3) }")

    def test_none_as_int_maybe(self):
        check_source("def f() : int? { none }")

    def test_prim_maybe_has_no_region_operations(self):
        # A maybe-of-prim cannot be sent.
        with pytest.raises(TypeError_):
            check_source("def f(m : int?) : unit { send(m) }")


class TestRuntime:
    @pytest.mark.parametrize(
        "runner", [run_function, run_function_smallstep], ids=["big", "small"]
    )
    def test_demo(self, runner):
        program = parse_program(SRC)
        result, _ = runner(program, "demo")
        assert result == 100 + 5 + 100

    def test_defaults_are_none(self):
        program = parse_program(SRC)
        heap = Heap()
        s = heap.alloc(program.structs["slot"], {})
        assert heap.obj(s).fields["value"] is NONE

    def test_flip_cycles(self):
        program = parse_program(SRC)
        heap = Heap()
        s = heap.alloc(program.structs["slot"], {})
        run_function(program, "flip", [s], heap=heap)
        assert heap.obj(s).fields["flag"] is True
        run_function(program, "flip", [s], heap=heap)
        assert heap.obj(s).fields["flag"] is False
