"""Dynamic region-graph discovery tests (fig 8's structure, computed)."""

from repro.analysis import build_region_graph, to_networkx
from repro.corpus import load_program
from repro.runtime.heap import Heap
from repro.runtime.machine import run_function


class TestDllRegions:
    def test_spine_is_one_region(self):
        program = load_program("dll")
        heap = Heap()
        lst, _ = run_function(program, "make_dll", [5], heap=heap)
        graph = build_region_graph(heap, [lst])
        # Regions: the dll handle, the spine, and 5 payloads = 7.
        assert len(graph.regions) == 7
        sizes = sorted(len(r) for r in graph.regions)
        assert sizes == [1, 1, 1, 1, 1, 1, 5]

    def test_spine_nodes_share_region(self):
        program = load_program("dll")
        heap = Heap()
        lst, _ = run_function(program, "make_dll", [3], heap=heap)
        hd = heap.obj(lst).fields["hd"]
        nxt = heap.obj(hd).fields["next"]
        graph = build_region_graph(heap, [lst])
        assert graph.same_region(hd, nxt)
        assert not graph.same_region(lst, hd)

    def test_region_graph_is_tree(self):
        program = load_program("dll")
        heap = Heap()
        lst, _ = run_function(program, "make_dll", [4], heap=heap)
        graph = build_region_graph(heap, [lst])
        assert graph.is_tree()

    def test_iso_edges_count(self):
        program = load_program("dll")
        heap = Heap()
        lst, _ = run_function(program, "make_dll", [4], heap=heap)
        graph = build_region_graph(heap, [lst])
        # One hd edge + four payload edges.
        assert len(graph.edges) == 5


class TestSllRegions:
    def test_every_node_is_a_region(self):
        program = load_program("sll")
        heap = Heap()
        lst, _ = run_function(program, "make_list", [4], heap=heap)
        graph = build_region_graph(heap, [lst])
        # handle + 4 nodes + 4 payloads: all singleton regions.
        assert len(graph.regions) == 9
        assert all(len(r) == 1 for r in graph.regions)
        assert graph.is_tree()


class TestSharedStructure:
    def test_double_iso_reference_breaks_tree(self):
        from repro.lang import parse_program

        program = parse_program(
            "struct data { v : int; } struct box { iso inner : data?; }"
        )
        heap = Heap()
        b1 = heap.alloc(program.structs["box"], {})
        b2 = heap.alloc(program.structs["box"], {})
        d = heap.alloc(program.structs["data"], {"v": 1})
        heap.write_field(b1, "inner", d)
        heap.write_field(b2, "inner", d)
        graph = build_region_graph(heap, [b1, b2])
        assert not graph.is_tree()


class TestNetworkx:
    def test_export(self):
        program = load_program("dll")
        heap = Heap()
        lst, _ = run_function(program, "make_dll", [3], heap=heap)
        graph = build_region_graph(heap, [lst])
        g = to_networkx(graph)
        assert g.number_of_nodes() == len(graph.regions)
        assert g.number_of_edges() == len(graph.edges)


class TestDot:
    def test_dot_export(self):
        from repro.analysis import to_dot

        program = load_program("dll")
        heap = Heap()
        lst, _ = run_function(program, "make_dll", [2], heap=heap)
        graph = build_region_graph(heap, [lst])
        dot = to_dot(graph, heap)
        assert dot.startswith("digraph regions {")
        assert dot.rstrip().endswith("}")
        assert "subgraph cluster_0" in dot
        assert 'label="payload"' in dot   # iso edge
        assert "style=dashed" in dot      # intra-region edge
        assert dot.count("subgraph") == len(graph.regions)

    def test_dot_without_heap(self):
        from repro.analysis import to_dot

        program = load_program("sll")
        heap = Heap()
        lst, _ = run_function(program, "make_list", [2], heap=heap)
        graph = build_region_graph(heap, [lst])
        dot = to_dot(graph)
        assert "digraph" in dot

    def test_cli_dot(self, capsys):
        from repro.cli import main
        from pathlib import Path

        corpus = Path(__file__).parent.parent / "src" / "repro" / "corpus"
        assert main(["regions", str(corpus / "dll.fcl"), "make_dll", "2", "--dot"]) == 0
        assert "digraph regions" in capsys.readouterr().out
