"""Property-based end-to-end tests.

The paper's soundness theorem says well-typed programs never get stuck on a
reservation check.  We drive long random operation sequences through the
(type-checked) corpus data structures with all dynamic checks enabled and
assert: no reservation violations, exact stored refcounts (§5.2), iso
domination in the reachable heap (invariant I2), and functional agreement
with plain Python model structures.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.analysis import check_iso_domination, check_refcounts
from repro.corpus import load_program
from repro.runtime.heap import Heap
from repro.runtime.machine import run_function
from repro.runtime.values import NONE

LIMIT = 1 << 30


# ---------------------------------------------------------------------------
# Singly linked list vs Python list model
# ---------------------------------------------------------------------------

_sll_ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(min_value=0, max_value=99)),
        st.just(("pop",)),
        st.just(("remove_tail",)),
        st.just(("reverse",)),
        st.just(("check",)),
    ),
    max_size=30,
)


@given(_sll_ops)
@settings(max_examples=120, deadline=None)
def test_sll_agrees_with_model(ops):
    program = load_program("sll")
    heap = Heap()
    lst, _ = run_function(program, "make_list", [0], heap=heap)
    model = []
    for op in ops:
        if op[0] == "push":
            d = heap.alloc(program.structs["data"], {"v": op[1]})
            run_function(program, "push", [lst, d], heap=heap)
            model.insert(0, op[1])
        elif op[0] == "pop":
            got, _ = run_function(program, "pop", [lst], heap=heap)
            if model:
                expected = model.pop(0)
                assert heap.obj(got).fields["v"] == expected
            else:
                assert got is NONE
        elif op[0] == "remove_tail":
            head = heap.obj(lst).fields["hd"]
            if head is NONE:
                continue
            got, _ = run_function(program, "remove_tail", [head], heap=heap)
            if len(model) >= 2:
                expected = model.pop()
                assert heap.obj(got).fields["v"] == expected
            else:
                assert got is NONE  # size-1 lists cannot be split (fig 2)
        elif op[0] == "reverse":
            run_function(program, "reverse", [lst], heap=heap)
            model.reverse()
        elif op[0] == "check":
            assert (
                run_function(program, "list_length", [lst], heap=heap)[0]
                == len(model)
            )
            assert run_function(program, "sum", [lst], heap=heap)[0] == sum(model)
    check_refcounts(heap)
    check_iso_domination(heap, [lst])


# ---------------------------------------------------------------------------
# Circular doubly linked list vs collections.deque-ish model
# ---------------------------------------------------------------------------

_dll_ops = st.lists(
    st.one_of(
        st.tuples(st.just("push_front"), st.integers(min_value=0, max_value=99)),
        st.just(("remove_tail",)),
        st.just(("check",)),
    ),
    max_size=24,
)


@given(_dll_ops)
@settings(max_examples=120, deadline=None)
def test_dll_agrees_with_model(ops):
    program = load_program("dll")
    heap = Heap()
    lst, _ = run_function(program, "make_dll", [0], heap=heap)
    model = []
    for op in ops:
        if op[0] == "push_front":
            d = heap.alloc(program.structs["data"], {"v": op[1]})
            run_function(program, "push_front", [lst, d], heap=heap)
            model.insert(0, op[1])
        elif op[0] == "remove_tail":
            got, _ = run_function(program, "remove_tail", [lst], heap=heap)
            if model:
                assert heap.obj(got).fields["v"] == model.pop()
            else:
                assert got is NONE
        elif op[0] == "check":
            assert (
                run_function(program, "dll_length", [lst], heap=heap)[0]
                == len(model)
            )
            assert (
                run_function(program, "dll_sum", [lst], heap=heap)[0]
                == sum(model)
            )
    check_refcounts(heap)
    check_iso_domination(heap, [lst])


# ---------------------------------------------------------------------------
# Red-black tree vs Python set
# ---------------------------------------------------------------------------


@given(
    st.lists(st.integers(min_value=0, max_value=200), max_size=50),
    st.lists(st.integers(min_value=0, max_value=200), max_size=10),
)
@settings(max_examples=80, deadline=None)
def test_rbtree_agrees_with_set(keys, probes):
    program = load_program("rbtree")
    heap = Heap()
    tree, _ = run_function(program, "rb_new", [], heap=heap)
    model = set()
    for k in keys:
        run_function(program, "rb_insert", [tree, k], heap=heap)
        model.add(k)
    assert run_function(program, "tree_size", [tree], heap=heap)[0] == len(model)
    assert run_function(program, "rb_valid", [tree, -1, LIMIT], heap=heap)[0]
    for probe in probes + keys[:5]:
        got = run_function(program, "rb_contains", [tree, probe], heap=heap)[0]
        assert got == (probe in model)
    check_refcounts(heap)
    check_iso_domination(heap, [tree])


# ---------------------------------------------------------------------------
# Black-box: reservation checks never fire on well-typed corpus programs
# ---------------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=12))
@settings(max_examples=40, deadline=None)
def test_no_stuck_states_in_concurrent_runs(seed, items):
    from repro.runtime.machine import Machine

    program = load_program("queue")
    machine = Machine(program, seed=seed)
    machine.spawn("source", [items])
    machine.spawn("relay", [items])
    sink = machine.spawn("sink", [items])
    machine.run()  # any ReservationViolation would propagate and fail
    assert sink.result == items * (items + 1) // 2
    assert machine.reservations_disjoint()
