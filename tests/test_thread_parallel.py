"""Thread-parallel in-process checking.

The persistent checker core promises that many threads can check
concurrently against one warm :class:`ProgramSession` with zero copies,
and that the pipeline's thread mode is counter-identical to a serial
run.  These tests cover:

* thread-vs-serial parity (results, diagnostics, merged telemetry) on the
  positive and negative corpus, mirroring the process-mode parity suite;
* execution-mode selection (auto picks serial for one job, threads for
  many; explicit modes are honored; bad modes rejected) and the
  ``pipeline.mode.*`` counters;
* 8-thread stress: Region interning identity, concurrent check/verify
  against one shared warm session, and the shared IR compile cache;
* the redesigned ``repro.api`` facade: ``jobs=``/``mode=`` kwargs and the
  public :class:`api.Session` handle.
"""

import threading

import pytest

from repro import api, telemetry
from repro.api import CheckResult, VerifyResult
from repro.core.checker import Checker
from repro.core.errors import TypeError_
from repro.core.regions import Region
from repro.corpus import load_source
from repro.corpus.negative import NEGATIVE_CASES
from repro.ir.bytecode import (
    clear_compile_cache,
    compile_cache_entries,
    compile_program,
)
from repro.lang import parse_program
from repro.pipeline import Pipeline, ProgramSession
from repro.verifier import Verifier

GOOD = """
struct data { v : int; }
def add(a : int, b : int) : int { a + b }
def boxed() : data { new data(v = 9) }
"""

BAD_TYPE = """
struct data { v : int; }
def f(d : data) : unit { send(d) }
"""

THREADS = 8


@pytest.fixture(autouse=True)
def _clean_global_registry():
    yield
    telemetry.disable()


def _counters(reg):
    return {
        name: c.value
        for name, c in reg.counters.items()
        if not name.startswith("pipeline.")
    }


def _fan_out(work, n=THREADS):
    """Run ``work(i)`` on ``n`` threads behind a barrier; re-raise the
    first worker exception in the caller."""
    barrier = threading.Barrier(n)
    errors = []

    def runner(i):
        try:
            barrier.wait()
            work(i)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=runner, args=(i,), name=f"stress-{i}")
        for i in range(n)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


class TestThreadSerialParity:
    def test_corpus_results_and_metrics_agree(self):
        source = load_source("dll")
        reg = telemetry.enable()
        program = parse_program(source)
        derivation = Checker(program).check_program()
        nodes = Verifier(program).verify_program(derivation)
        telemetry.disable()
        baseline = {n: c.value for n, c in reg.counters.items()}

        for jobs in (1, 4):
            reg = telemetry.enable()
            with Pipeline(jobs=jobs, mode="thread") as pipeline:
                result = pipeline.run("dll", source)
            telemetry.disable()
            assert result.ok
            assert result.nodes == derivation.node_count()
            assert result.verified == nodes
            assert _counters(reg) == baseline

    def test_negative_corpus_diagnostics_and_metrics_agree(self):
        parsable = []
        for case in NEGATIVE_CASES:
            try:
                program = parse_program(case.source)
            except Exception:
                continue
            reg = telemetry.enable()
            try:
                Checker(program).check_program()
                serial = None
            except TypeError_ as exc:
                serial = (type(exc).__name__, exc.message, exc.span)
            finally:
                telemetry.disable()
            parsable.append(
                (case, serial, {n: c.value for n, c in reg.counters.items()})
            )
        assert parsable, "negative corpus should have parsable cases"

        with Pipeline(jobs=4, mode="thread") as pipeline:
            for case, serial, counters in parsable:
                reg = telemetry.enable()
                result = pipeline.run(case.name, case.source)
                telemetry.disable()
                if serial is None:
                    assert result.ok
                else:
                    cls, message, span = serial
                    error = result.error
                    assert not result.ok
                    assert error.stage == "check"
                    assert error.cls == cls
                    assert error.message == message
                    if span is not None:
                        assert error.span == (
                            span.start,
                            span.end,
                            span.line,
                            span.column,
                        )
                assert _counters(reg) == counters

    def test_thread_and_process_modes_agree(self):
        source = load_source("sll")
        results = {}
        for mode in ("serial", "thread", "process"):
            with Pipeline(jobs=2, mode=mode) as pipeline:
                results[mode] = pipeline.run("sll", source)
        assert results["serial"].ok
        assert (
            results["serial"].nodes
            == results["thread"].nodes
            == results["process"].nodes
        )
        assert (
            results["serial"].verified
            == results["thread"].verified
            == results["process"].verified
        )


class TestModeSelection:
    def test_auto_mode_defaults(self):
        with Pipeline(jobs=1) as one, Pipeline(jobs=4) as many:
            assert one.mode == "serial"
            assert many.mode == "thread"

    def test_explicit_modes_are_honored(self):
        for mode in ("serial", "thread", "process"):
            with Pipeline(jobs=2, mode=mode) as pipeline:
                assert pipeline.mode == mode

    def test_auto_alias_means_unset(self):
        with Pipeline(jobs=4, mode="auto") as pipeline:
            assert pipeline.mode == "thread"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            Pipeline(mode="fibers")

    def test_mode_counter_incremented(self):
        for mode, expected in (
            ("serial", "pipeline.mode.serial"),
            ("thread", "pipeline.mode.thread"),
            ("process", "pipeline.mode.process"),
        ):
            reg = telemetry.enable()
            with Pipeline(jobs=2, mode=mode) as pipeline:
                pipeline.run("good", GOOD)
            telemetry.disable()
            assert reg.counters[expected].value == 1

    def test_empty_task_list_counts_as_serial(self):
        reg = telemetry.enable()
        with Pipeline(jobs=4, mode="thread") as pipeline:
            pipeline.run("empty", "struct lonely { v : int; }")
        telemetry.disable()
        assert reg.counters["pipeline.mode.serial"].value == 1
        assert "pipeline.mode.thread" not in reg.counters


class TestEightThreadStress:
    def test_region_interning_identity_under_contention(self):
        # Fresh idents so every thread races the first-seen insert path.
        idents = list(range(880_000, 880_160))
        rows = [None] * THREADS

        def work(i):
            rows[i] = [Region(ident) for ident in idents]

        _fan_out(work)
        first = rows[0]
        for row in rows[1:]:
            for a, b in zip(first, row):
                assert a is b, "interning returned distinct objects"

    def test_concurrent_checks_of_one_warm_session(self):
        source = load_source("dll")
        session = ProgramSession(source)
        names = session.function_names()
        baseline = {
            name: session.check_function(name).body.node_count() for name in names
        }
        rows = [None] * THREADS

        def work(i):
            local = {}
            # Stagger the start so threads collide on different functions.
            for name in names[i % len(names):] + names[: i % len(names)]:
                fd = session.check_function(name)
                local[name] = fd.body.node_count()
                session.verify_function(fd)
            rows[i] = local

        _fan_out(work)
        assert all(row == baseline for row in rows)

    def test_concurrent_checks_across_corpus_sources(self):
        sources = ["dll", "sll", "queue", "ntree"]
        sessions = {name: ProgramSession(load_source(name)) for name in sources}
        baseline = {
            name: sum(
                session.check_function(f).body.node_count()
                for f in session.function_names()
            )
            for name, session in sessions.items()
        }
        rows = [None] * THREADS

        def work(i):
            name = sources[i % len(sources)]
            session = sessions[name]
            rows[i] = (
                name,
                sum(
                    session.check_function(f).body.node_count()
                    for f in session.function_names()
                ),
            )

        _fan_out(work)
        for name, total in rows:
            assert total == baseline[name]

    def test_shared_compile_cache_under_contention(self):
        source = load_source("sll")
        clear_compile_cache()
        programs = [parse_program(source) for _ in range(THREADS)]
        rows = [None] * THREADS

        def work(i):
            rows[i] = compile_program(programs[i], True, False)

        _fan_out(work)
        first = rows[0]
        for row in rows[1:]:
            assert set(row.funcs) == set(first.funcs)
        # The dust settles to exactly one shared entry, and fresh programs
        # from the same source hit it (identical object, no recompile).
        assert compile_cache_entries() == 1
        again_a = compile_program(parse_program(source), True, False)
        again_b = compile_program(parse_program(source), True, False)
        assert again_a is again_b
        clear_compile_cache()


class TestApiParallel:
    def test_check_thread_mode_matches_serial(self):
        serial = api.check(GOOD)
        threaded = api.check(GOOD, jobs=4, mode="thread")
        assert isinstance(threaded, CheckResult)
        assert threaded.to_dict() == serial.to_dict()

    def test_verify_thread_mode_matches_serial(self):
        serial = api.verify(GOOD)
        threaded = api.verify(GOOD, jobs=4, mode="thread")
        assert isinstance(threaded, VerifyResult)
        assert threaded.to_dict() == serial.to_dict()

    def test_jobs_without_mode_selects_thread_pool(self):
        serial = api.check(GOOD)
        auto = api.check(GOOD, jobs=4)
        assert auto.to_dict() == serial.to_dict()

    def test_type_error_diagnostics_match_serial(self):
        serial = api.check(BAD_TYPE, filename="bad.fcl")
        threaded = api.check(BAD_TYPE, filename="bad.fcl", jobs=4, mode="thread")
        assert not threaded.ok
        assert threaded.to_dict() == serial.to_dict()

    def test_syntax_error_is_diagnostic_not_exception(self):
        result = api.check("struct {", jobs=4, mode="thread")
        assert not result.ok
        assert result.diagnostics[0].code == "ParseError"

    def test_explicit_serial_mode_takes_facade_fast_path(self):
        assert (
            api.check(GOOD, jobs=1, mode="serial").to_dict()
            == api.check(GOOD).to_dict()
        )


class TestApiSession:
    def test_warm_session_matches_cold_calls(self):
        session = api.Session(GOOD, filename="x.fcl")
        assert session.ok
        assert session.diagnostics == []
        assert session.function_names() == ["add", "boxed"]
        assert (
            session.check().to_dict()
            == api.check(GOOD, filename="x.fcl").to_dict()
        )
        assert (
            session.verify().to_dict()
            == api.verify(GOOD, filename="x.fcl").to_dict()
        )

    def test_session_parallel_check_matches_serial(self):
        session = api.Session(GOOD)
        assert (
            session.check(jobs=4, mode="thread").to_dict()
            == session.check().to_dict()
        )

    def test_session_run(self):
        session = api.Session(GOOD)
        result = session.run("add", [20, 22])
        assert result.ok
        assert result.value == "42"

    def test_failed_parse_session_never_raises(self):
        session = api.Session("struct {", filename="broken.fcl")
        assert not session.ok
        assert session.diagnostics[0].code == "ParseError"
        assert session.function_names() == []
        check = session.check()
        assert not check.ok
        assert check.diagnostics[0].code == "ParseError"
        verify = session.verify()
        assert not verify.ok
        run = session.run("main")
        assert not run.ok

    def test_type_error_session_reports_via_check(self):
        session = api.Session(BAD_TYPE, filename="bad.fcl")
        result = session.check()
        assert not result.ok
        assert result.diagnostics[0].code == "SendError"
        assert result.diagnostics[0].file == "bad.fcl"

    def test_repr_mentions_state(self):
        assert "Session" in repr(api.Session(GOOD))

    def test_package_root_exports_session(self):
        import repro

        assert repro.Session is api.Session
