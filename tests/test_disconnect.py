"""The §5.2 `if disconnected` check: hand-built heaps + hypothesis random
graphs cross-checking the efficient algorithm against the naive reference."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.lang import parse_program
from repro.runtime.disconnect import efficient_disconnected, naive_disconnected
from repro.runtime.heap import Heap
from repro.runtime.values import NONE, Loc

STRUCTS = parse_program(
    """
struct data { v : int; }
struct dll_node { iso payload : data; next : dll_node; prev : dll_node; }
struct knode { a : knode; b : knode; }
"""
)


def new_dll(heap: Heap, n: int):
    """Build a circular doubly linked list of n nodes; returns the nodes."""
    nodes = []
    for i in range(n):
        payload = heap.alloc(STRUCTS.structs["data"], {"v": i})
        node = heap.alloc(STRUCTS.structs["dll_node"], {"payload": payload})
        nodes.append(node)
    for i, node in enumerate(nodes):
        heap.write_field(node, "next", nodes[(i + 1) % n])
        heap.write_field(node, "prev", nodes[(i - 1) % n])
    return nodes


class TestHandBuilt:
    def test_same_object_connected(self):
        heap = Heap()
        (node,) = new_dll(heap, 1)
        ok, _ = efficient_disconnected(heap, node, node)
        assert not ok

    def test_cycle_connected(self):
        heap = Heap()
        nodes = new_dll(heap, 5)
        for impl in (efficient_disconnected, naive_disconnected):
            ok, _ = impl(heap, nodes[0], nodes[3])
            assert not ok

    def test_detached_tail_disconnected(self):
        # The fig 5 situation: tail unspliced and self-looped.
        heap = Heap()
        nodes = new_dll(heap, 4)
        tail, head = nodes[3], nodes[0]
        heap.write_field(nodes[2], "next", head)
        heap.write_field(head, "prev", nodes[2])
        heap.write_field(tail, "next", tail)
        heap.write_field(tail, "prev", tail)
        for impl in (efficient_disconnected, naive_disconnected):
            ok, _ = impl(heap, tail, head)
            assert ok, impl.__name__

    def test_buggy_unspliced_tail_connected(self):
        # Omit the repointing (§5.2's "buggy case"): still pointing at the
        # list, so not disconnected — and the check stays cheap.
        heap = Heap()
        nodes = new_dll(heap, 64)
        tail, head = nodes[-1], nodes[0]
        heap.write_field(nodes[-2], "next", head)
        heap.write_field(head, "prev", nodes[-2])
        ok, stats = efficient_disconnected(heap, tail, head)
        assert not ok
        assert stats.objects_visited <= 6

    def test_efficient_explores_smaller_side_only(self):
        heap = Heap()
        nodes = new_dll(heap, 256)
        tail, head = nodes[-1], nodes[0]
        heap.write_field(nodes[-2], "next", head)
        heap.write_field(head, "prev", nodes[-2])
        heap.write_field(tail, "next", tail)
        heap.write_field(tail, "prev", tail)
        ok, eff = efficient_disconnected(heap, tail, head)
        assert ok
        _ok2, naive = naive_disconnected(heap, tail, head)
        assert eff.objects_visited <= 4
        assert naive.objects_visited >= 256

    def test_iso_fields_not_traversed(self):
        # Payloads hang off iso fields; they never count as intersection
        # points (tempered domination guarantees they root distinct graphs).
        heap = Heap()
        nodes = new_dll(heap, 2)
        tail, head = nodes[1], nodes[0]
        heap.write_field(head, "next", head)
        heap.write_field(head, "prev", head)
        heap.write_field(tail, "next", tail)
        heap.write_field(tail, "prev", tail)
        ok, stats = efficient_disconnected(heap, tail, head)
        assert ok
        assert stats.objects_visited <= 4  # payloads not visited


# ---------------------------------------------------------------------------
# Property: on arbitrary same-region graphs, efficient=disconnected implies
# truly disconnected (the naive reference), i.e. the check is conservative
# in exactly one direction.
# ---------------------------------------------------------------------------


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.sampled_from(["a", "b"]),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=24,
        )
    )
    left = draw(st.integers(min_value=0, max_value=n - 1))
    right = draw(st.integers(min_value=0, max_value=n - 1))
    return n, edges, left, right


@given(random_graphs())
@settings(max_examples=300, deadline=None)
def test_efficient_is_sound_wrt_naive(case):
    n, edges, left, right = case
    heap = Heap()
    nodes = [heap.alloc(STRUCTS.structs["knode"], {}) for _ in range(n)]
    for src, fieldname, dst in edges:
        heap.write_field(nodes[src], fieldname, nodes[dst])
    eff, _ = efficient_disconnected(heap, nodes[left], nodes[right])
    ref, _ = naive_disconnected(heap, nodes[left], nodes[right])
    if eff:
        # Efficient "disconnected" verdicts must be true: no false separation.
        assert ref

    # On heaps where every object is reachable from one of the two roots,
    # the verdicts coincide exactly.
    reachable = heap.live_set(nodes[left]) | heap.live_set(nodes[right])
    if set(heap.locations()) <= reachable:
        assert eff == ref
