"""Lifecycle, robustness, and parity tests for ``repro serve``.

The acceptance property under test throughout: a server response is
byte-identical (as canonical JSON) to the in-process ``repro.api`` result
for the same source — the memo stores exactly ``to_dict()`` output, so
this is structural, but these tests prove it end to end over a socket.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro import api
from repro.client import Client, ClientError, RemoteError
from repro.corpus import corpus_names, load_source
from repro.corpus.negative import NEGATIVE_CASES
from repro.server import Server, ServerConfig, ServerThread, Service
from repro.server.protocol import RPC_SCHEMA

GOOD = """
struct data { v : int; }
def add(a : int, b : int) : int { a + b }
"""


def _unix_config(**kwargs) -> ServerConfig:
    return ServerConfig(
        host=None, unix_path=tempfile.mktemp(suffix=".sock"), **kwargs
    )


def canon(doc) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


class BlockingService(Service):
    """Every non-control request parks on an event — lets tests fill the
    in-flight queue deterministically."""

    def __init__(self):
        super().__init__()
        self.release = threading.Event()
        self.entered = threading.Event()

    def dispatch(self, method, params):
        self.entered.set()
        self.release.wait(timeout=30)
        return {"ok": True, "blocked": True}


class TestTransports:
    def test_unix_round_trip(self):
        with ServerThread(_unix_config()) as handle:
            assert isinstance(handle.address, str)
            with Client(handle.address) as client:
                reply = client.ping()
                assert reply["pong"] is True and reply["rpc"] == RPC_SCHEMA

    def test_tcp_round_trip(self):
        config = ServerConfig(host="127.0.0.1", port=0)
        with ServerThread(config) as handle:
            host, port = handle.address
            assert port > 0
            with Client((host, port)) as client:
                assert client.ping()["pong"] is True

    def test_both_transports_share_one_service(self):
        config = ServerConfig(
            host="127.0.0.1",
            port=0,
            unix_path=tempfile.mktemp(suffix=".sock"),
        )
        with ServerThread(config) as handle:
            tcp = handle.server.tcp_address
            with Client(tcp) as c1:
                c1.check(GOOD, filename="p.fcl")
            with Client(handle.server.unix_path) as c2:
                stats = c2.stats()
        # The TCP client's check warmed the memo the unix client sees.
        assert stats["service"]["memo_entries"] == 1


class TestParity:
    def test_positive_corpus_byte_identical(self):
        with ServerThread(_unix_config()) as handle:
            with Client(handle.address) as client:
                for name in corpus_names():
                    source = load_source(name)
                    for method, fn in (
                        ("check", api.check),
                        ("verify", api.verify),
                    ):
                        remote = client.call(
                            method, {"source": source, "filename": name}
                        )
                        local = fn(source, filename=name).to_dict()
                        assert canon(remote) == canon(local), (name, method)

    def test_negative_corpus_byte_identical(self):
        with ServerThread(_unix_config()) as handle:
            with Client(handle.address) as client:
                for case in NEGATIVE_CASES:
                    remote = client.call(
                        "check",
                        {"source": case.source, "filename": case.name},
                    )
                    local = api.check(
                        case.source, filename=case.name
                    ).to_dict()
                    assert canon(remote) == canon(local), case.name
                    assert remote["ok"] is False

    def test_run_parity_and_budget(self):
        with ServerThread(_unix_config()) as handle:
            with Client(handle.address) as client:
                remote = client.call(
                    "run",
                    {"source": GOOD, "function": "add", "args": [20, 22]},
                )
                # Omitting `engine` selects the warm-serving default: the
                # compiled bytecode engine.  Replay locally on the same
                # engine so the step budget is meaningful.
                assert remote["engine"] == "ir"
                local = api.run(
                    GOOD,
                    "add",
                    [20, 22],
                    max_steps=remote["steps"] + 1,
                    engine="ir",
                )
                assert remote["ok"] and remote["value"] == "42"
                assert local.ok and local.value == "42"
                pinned = client.run(GOOD, "add", [20, 22], engine="tree")
                assert pinned.ok and pinned.engine == "tree"
                tight = client.run(GOOD, "add", [1, 2], max_steps=1)
                assert not tight.ok
                assert tight.diagnostics[0].code == "StepLimitExceeded"

    def test_cache_backed_verify_parity(self, tmp_path):
        service = Service(cache_dir=str(tmp_path / "cache"))
        with ServerThread(_unix_config(), service=service) as handle:
            with Client(handle.address) as client:
                for name in ("sll", "dll"):
                    source = load_source(name)
                    local = api.verify(source, filename=name).to_dict()
                    cold = client.call(
                        "verify", {"source": source, "filename": name}
                    )
                    assert canon(cold) == canon(local), name
        # A second server over the same populated cache must agree too.
        service2 = Service(cache_dir=str(tmp_path / "cache"))
        with ServerThread(_unix_config(), service=service2) as handle:
            with Client(handle.address) as client:
                for name in ("sll", "dll"):
                    source = load_source(name)
                    warm = client.call(
                        "verify", {"source": source, "filename": name}
                    )
                    local = api.verify(source, filename=name).to_dict()
                    assert canon(warm) == canon(local), name

    def test_memo_hit_returns_same_payload(self):
        with ServerThread(_unix_config()) as handle:
            with Client(handle.address) as client:
                first = client.call("check", {"source": GOOD})
                second = client.call("check", {"source": GOOD})
                assert canon(first) == canon(second)
                stats = client.stats()
                assert stats["service"]["memo_hits"] >= 1


class TestConcurrency:
    N_CLIENTS = 10

    def test_concurrent_clients(self):
        """≥8 simultaneous clients, each its own connection, all served."""
        sources = [
            GOOD.replace("add", f"add{i}") for i in range(self.N_CLIENTS)
        ]
        with ServerThread(_unix_config()) as handle:
            address = handle.address

            def one(source):
                with Client(address) as client:
                    result = client.check(source, filename="p.fcl")
                    return result.ok

            with ThreadPoolExecutor(max_workers=self.N_CLIENTS) as pool:
                outcomes = list(pool.map(one, sources))
            assert outcomes == [True] * self.N_CLIENTS
            with Client(address) as client:
                stats = client.stats()
        requests = stats["requests"]
        assert requests["server.requests.check.ok"] == self.N_CLIENTS
        assert requests["server.connections.opened"] >= self.N_CLIENTS

    def test_pipelined_requests_one_connection(self):
        with ServerThread(_unix_config()) as handle:
            with Client(handle.address) as client:
                for i in range(20):
                    reply = client.call("check", {"source": GOOD})
                    assert reply["ok"] is True


class TestRobustness:
    def test_malformed_frame_recovery(self):
        with ServerThread(_unix_config()) as handle:
            with Client(handle.address) as client:
                reply = client.send_raw(b"this is not json\n")
                assert reply["ok"] is False
                assert reply["error"]["code"] == "malformed-frame"
                # Connection still works afterwards.
                assert client.ping()["pong"] is True

    def test_wrong_rpc_version_rejected_with_id(self):
        with ServerThread(_unix_config()) as handle:
            with Client(handle.address) as client:
                frame = {"rpc": "bogus/9", "id": 41, "method": "ping"}
                reply = client.send_raw(
                    (json.dumps(frame) + "\n").encode()
                )
                assert reply["ok"] is False
                assert reply["error"]["code"] == "invalid-request"
                assert reply["id"] == 41

    def test_unknown_method(self):
        with ServerThread(_unix_config()) as handle:
            with Client(handle.address) as client:
                with pytest.raises(RemoteError) as excinfo:
                    client.call("frobnicate")
                assert excinfo.value.code == "unknown-method"
                assert client.ping()["pong"] is True

    def test_invalid_params(self):
        with ServerThread(_unix_config()) as handle:
            with Client(handle.address) as client:
                with pytest.raises(RemoteError) as excinfo:
                    client.call("check", {"source": 42})
                assert excinfo.value.code == "invalid-request"
                with pytest.raises(RemoteError) as excinfo:
                    client.call(
                        "run",
                        {"source": GOOD, "function": "add", "args": ["x"]},
                    )
                assert excinfo.value.code == "invalid-request"

    def test_oversize_frame_recovery(self):
        config = _unix_config(max_frame=1024)
        with ServerThread(config) as handle:
            with Client(handle.address) as client:
                blob = b"x" * 4096 + b"\n"
                reply = client.send_raw(blob)
                assert reply["ok"] is False
                assert reply["error"]["code"] == "too-large"
                assert client.ping()["pong"] is True

    def test_overloaded_backpressure(self):
        service = BlockingService()
        config = _unix_config(max_queue=1)
        with ServerThread(config, service=service) as handle:
            blocked = Client(handle.address)
            try:
                blocked._sock.sendall(
                    (
                        json.dumps(
                            {
                                "rpc": RPC_SCHEMA,
                                "id": 1,
                                "method": "check",
                                "params": {"source": GOOD},
                            }
                        )
                        + "\n"
                    ).encode()
                )
                assert service.entered.wait(timeout=10)
                with Client(handle.address) as second:
                    with pytest.raises(RemoteError) as excinfo:
                        second.call("check", {"source": GOOD})
                    assert excinfo.value.code == "overloaded"
                    assert "retry" in excinfo.value.message
                    # Control plane stays responsive while overloaded.
                    assert second.ping()["pong"] is True
            finally:
                service.release.set()
                blocked.close()

    def test_timeout_cancels_reply_not_worker(self):
        service = BlockingService()
        config = _unix_config(timeout_s=0.2)
        with ServerThread(config, service=service) as handle:
            try:
                with Client(handle.address) as client:
                    with pytest.raises(RemoteError) as excinfo:
                        client.call("check", {"source": GOOD})
                    assert excinfo.value.code == "timeout"
            finally:
                service.release.set()

    def test_timed_out_slot_is_released_after_worker_finishes(self):
        service = BlockingService()
        config = _unix_config(timeout_s=0.2, max_queue=1)
        with ServerThread(config, service=service) as handle:
            with Client(handle.address) as client:
                with pytest.raises(RemoteError):
                    client.call("check", {"source": GOOD})
                # Worker is still parked: the queue slot must still be held.
                with pytest.raises(RemoteError) as excinfo:
                    client.call("check", {"source": GOOD})
                assert excinfo.value.code == "overloaded"
                service.release.set()
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    if client.stats()["inflight"] == 0:
                        break
                    time.sleep(0.05)
                assert client.stats()["inflight"] == 0


class TestLifecycle:
    def test_shutdown_rpc_drains(self):
        with ServerThread(_unix_config()) as handle:
            address = handle.address
            with Client(address) as client:
                reply = client.call("shutdown")
                assert reply["draining"] is True
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and os.path.exists(address):
                time.sleep(0.05)
            assert not os.path.exists(address)

    def test_draining_rejects_new_work(self):
        service = BlockingService()
        with ServerThread(_unix_config(), service=service) as handle:
            with Client(handle.address) as client:
                client._sock.sendall(
                    (
                        json.dumps(
                            {
                                "rpc": RPC_SCHEMA,
                                "id": 1,
                                "method": "check",
                                "params": {"source": GOOD},
                            }
                        )
                        + "\n"
                    ).encode()
                )
                assert service.entered.wait(timeout=10)
                with Client(handle.address) as second:
                    second.call("shutdown")
                    with pytest.raises(RemoteError) as excinfo:
                        second.call("check", {"source": GOOD})
                    assert excinfo.value.code == "shutting-down"
                service.release.set()
                # The admitted request still gets its answer (drain).
                line = client._file.readline()
                reply = json.loads(line)
                assert reply["ok"] is True

    def test_sigterm_drains_subprocess(self):
        sock = tempfile.mktemp(suffix=".sock")
        src = str(Path(__file__).parent.parent / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--unix", sock],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline and not os.path.exists(sock):
                time.sleep(0.1)
            assert os.path.exists(sock), "server never listened"
            with Client(sock) as client:
                assert client.ping()["pong"] is True
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
            stderr = proc.stderr.read()
            assert "drained, exiting" in stderr
            assert not os.path.exists(sock)
        finally:
            if proc.poll() is None:
                proc.kill()

    def test_stats_shape(self):
        with ServerThread(_unix_config()) as handle:
            with Client(handle.address) as client:
                client.check(GOOD)
                stats = client.stats()
        assert stats["draining"] is False
        assert stats["uptime_ms"] > 0
        assert stats["requests"]["server.requests.check.ok"] == 1
        service = stats["service"]
        assert service["sessions"] == 1
        assert service["memo_entries"] == 1

    def test_server_telemetry_counters(self):
        from repro import telemetry

        reg = telemetry.Registry(enabled=True)
        with telemetry.use(reg):
            with ServerThread(_unix_config()) as handle:
                with Client(handle.address) as client:
                    client.check(GOOD)
                    client.check(GOOD)
        counters = {name: c.value for name, c in reg.counters.items()}
        assert counters["server.requests.check.ok"] == 2
        assert counters["server.connections.opened"] == 1
        assert counters["server.memo.hits"] == 1
        assert counters["server.memo.misses"] == 1
        assert "server.latency_ms" in reg.histograms

    def test_batch_method(self):
        with ServerThread(_unix_config()) as handle:
            with Client(handle.address) as client:
                reply = client.batch(
                    [("good", GOOD), ("bad", NEGATIVE_CASES[0].source)]
                )
        assert reply["ok"] is False
        by_label = {e["label"]: e["result"] for e in reply["programs"]}
        assert by_label["good"]["ok"] is True
        assert by_label["bad"]["ok"] is False
        local = api.verify(
            NEGATIVE_CASES[0].source, filename="bad"
        ).to_dict()
        assert canon(by_label["bad"]) == canon(local)


class TestObservabilityRpcs:
    def _metrics_schema(self):
        path = (
            Path(__file__).parent.parent / "benchmarks" / "metrics.schema.json"
        )
        return json.loads(path.read_text())

    def test_metrics_rpc_returns_schema_valid_doc(self):
        from repro import telemetry

        with ServerThread(_unix_config()) as handle:
            with Client(handle.address) as client:
                client.check(GOOD)
                doc = client.metrics()
        assert doc["schema"] == "repro-telemetry/2"
        assert doc["counters"]["server.requests.check.ok"] == 1
        assert "server.latency_ms.check" in doc["histograms"]
        assert doc["gauges"]["server.queue_depth"] == 0
        telemetry.validate(doc, self._metrics_schema())
        # The doc rebuilds into a registry with usable quantiles.
        reg = telemetry.doc_to_registry(doc)
        assert reg.histogram("server.latency_ms.check").quantile(0.5) is not None

    def test_trace_rpc_round_trips_client_minted_trace_id(self):
        from repro import telemetry

        with telemetry.use_tracer(telemetry.Tracer()) as tr:
            with ServerThread(_unix_config()) as handle:
                with Client(handle.address) as client:
                    client.check(GOOD)
                    trace = client.trace_doc()
        assert trace["schema"] == "repro-trace/1"
        assert trace["enabled"] is True
        by_name = {}
        for event in trace["events"]:
            by_name.setdefault(event["name"], event)
        # The client minted the trace on its rpc.check span; the server's
        # worker-thread span must be its child in the same trace.
        rpc = by_name["rpc.check"]
        server = by_name["server.check"]
        assert server["args"]["trace_id"] == rpc["args"]["trace_id"]
        assert server["args"]["parent_id"] == rpc["args"]["span_id"]
        assert tr.dropped == 0

    def test_trace_rpc_reports_disabled_when_tracing_off(self):
        with ServerThread(_unix_config()) as handle:
            with Client(handle.address) as client:
                trace = client.trace_doc()
        assert trace["enabled"] is False
        assert trace["events"] == []

    def test_refused_requests_record_latency(self):
        from repro import telemetry

        config = _unix_config(max_queue=1)
        reg = telemetry.Registry(enabled=True)
        with telemetry.use(reg):
            # Constructed inside use(): the service adopts ``reg``.
            service = BlockingService()
            with ServerThread(config, service=service) as handle:
                blocked = Client(handle.address)
                try:
                    blocked._sock.sendall(
                        (
                            json.dumps(
                                {
                                    "rpc": RPC_SCHEMA,
                                    "id": 1,
                                    "method": "check",
                                    "params": {"source": GOOD},
                                }
                            )
                            + "\n"
                        ).encode()
                    )
                    assert service.entered.wait(timeout=10)
                    with Client(handle.address) as second:
                        with pytest.raises(RemoteError) as excinfo:
                            second.call("check", {"source": GOOD})
                        assert excinfo.value.code == "overloaded"
                        # The refusal shows up in the latency histograms —
                        # refused requests have latency too.
                        assert reg.histogram("server.latency_ms").count >= 1
                        assert reg.histogram("server.latency_ms.check").count >= 1
                        assert reg.value("server.requests.check.overloaded") == 1
                finally:
                    service.release.set()
                    blocked.close()

    def test_timed_out_requests_record_latency(self):
        from repro import telemetry

        config = _unix_config(timeout_s=0.2)
        reg = telemetry.Registry(enabled=True)
        with telemetry.use(reg):
            service = BlockingService()
            with ServerThread(config, service=service) as handle:
                try:
                    with Client(handle.address) as client:
                        with pytest.raises(RemoteError) as excinfo:
                            client.call("check", {"source": GOOD})
                        assert excinfo.value.code == "timeout"
                finally:
                    service.release.set()
        hist = reg.histogram("server.latency_ms.check")
        assert hist.count >= 1
        # The timed-out request waited at least the timeout budget.
        assert hist.max >= 200.0
        assert reg.value("server.requests.check.timeout") == 1


class TestClientCli:
    def test_client_corpus_matches_corpus_command(self, capsys):
        from repro.cli import main

        with ServerThread(_unix_config()) as handle:
            address = handle.address
            assert main(["corpus"]) == 0
            local_out = capsys.readouterr().out
            assert (
                main(["client", "--connect", f"unix:{address}", "corpus"])
                == 0
            )
            remote_out = capsys.readouterr().out
        assert remote_out == local_out

    def test_client_check_and_run(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "p.fcl"
        path.write_text(GOOD)
        with ServerThread(_unix_config()) as handle:
            connect = f"unix:{handle.address}"
            assert main(["client", "--connect", connect, "check", str(path)]) == 0
            assert "OK" in capsys.readouterr().out
            assert (
                main(
                    ["client", "--connect", connect, "run", str(path), "add", "2", "3"]
                )
                == 0
            )
            assert capsys.readouterr().out.strip() == "5"

    def test_client_transport_error_exit_code(self, capsys):
        from repro.cli import main

        missing = tempfile.mktemp(suffix=".sock")
        code = main(["client", "--connect", f"unix:{missing}", "ping"])
        assert code == 3
        assert "error" in capsys.readouterr().err
