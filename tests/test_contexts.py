"""Static contexts and the virtual transformations V1–V5 (fig 11)."""

import pytest

from repro.core.contexts import ContextError, StaticContext, contexts_equal
from repro.core.errors import PinnedViolation
from repro.core.regions import Region, RegionRenaming
from repro.lang import ast

NODE = ast.StructType("node")


def ctx_with_var(name="x"):
    ctx = StaticContext()
    region = ctx.fresh_region()
    ctx.bind(name, NODE, region)
    return ctx, region


class TestBasics:
    def test_fresh_region_is_empty_unpinned(self):
        ctx = StaticContext()
        region = ctx.fresh_region()
        assert ctx.has_region(region)
        assert ctx.tracking(region).is_empty
        assert not ctx.tracking(region).pinned

    def test_bind_requires_region(self):
        ctx = StaticContext()
        with pytest.raises(ContextError):
            ctx.bind("x", NODE, Region(99))

    def test_bind_prim_without_region(self):
        ctx = StaticContext()
        ctx.bind("n", ast.INT, None)
        assert ctx.lookup("n").region is None

    def test_clone_isolation(self):
        ctx, region = ctx_with_var()
        other = ctx.clone()
        other.focus("x")
        assert ctx.tracking(region).is_empty
        assert not other.tracking(region).is_empty

    def test_clone_shares_supply(self):
        ctx, _ = ctx_with_var()
        other = ctx.clone()
        a = ctx.fresh_region()
        b = other.fresh_region()
        assert a != b  # freshness is global across clones

    def test_snapshot_equality(self):
        a, _ = ctx_with_var()
        b, _ = None, None
        c = a.clone()
        assert contexts_equal(a, c)
        c.focus("x")
        assert not contexts_equal(a, c)


class TestFocus:
    def test_focus_tracks_variable(self):
        ctx, region = ctx_with_var()
        assert ctx.focus("x") == region
        assert ctx.tracked_region_of("x") == region

    def test_focus_requires_empty_region(self):
        # §4.2: a variable may be focused only in a region with no other
        # tracked variables (potential aliases).
        ctx, region = ctx_with_var()
        ctx.bind("y", NODE, region)
        ctx.focus("x")
        with pytest.raises(ContextError):
            ctx.focus("y")

    def test_focus_requires_unpinned(self):
        ctx, region = ctx_with_var()
        ctx.tracking(region).pinned = True
        with pytest.raises(PinnedViolation):
            ctx.focus("x")

    def test_focus_primitive_rejected(self):
        ctx = StaticContext()
        ctx.bind("n", ast.INT, None)
        with pytest.raises(ContextError):
            ctx.focus("n")

    def test_focus_unbound_rejected(self):
        ctx = StaticContext()
        with pytest.raises(ContextError):
            ctx.focus("ghost")


class TestUnfocus:
    def test_unfocus_removes_tracking(self):
        ctx, region = ctx_with_var()
        ctx.focus("x")
        ctx.unfocus("x")
        assert ctx.tracked_region_of("x") is None

    def test_unfocus_requires_no_fields(self):
        ctx, _ = ctx_with_var()
        ctx.focus("x")
        ctx.explore("x", "f")
        with pytest.raises(ContextError):
            ctx.unfocus("x")

    def test_unfocus_untracked_rejected(self):
        ctx, _ = ctx_with_var()
        with pytest.raises(ContextError):
            ctx.unfocus("x")


class TestExploreRetract:
    def test_explore_creates_fresh_target(self):
        ctx, region = ctx_with_var()
        ctx.focus("x")
        target = ctx.explore("x", "f")
        assert target != region
        assert ctx.has_region(target)
        assert ctx.tracking(target).is_empty
        assert ctx.tracked_var("x").fields == {"f": target}

    def test_explore_twice_rejected(self):
        # Well-formedness: no duplicate field bindings (§4.3).
        ctx, _ = ctx_with_var()
        ctx.focus("x")
        ctx.explore("x", "f")
        with pytest.raises(ContextError):
            ctx.explore("x", "f")

    def test_explore_requires_focus(self):
        ctx, _ = ctx_with_var()
        with pytest.raises(ContextError):
            ctx.explore("x", "f")

    def test_retract_drops_target_region(self):
        ctx, _ = ctx_with_var()
        ctx.focus("x")
        target = ctx.explore("x", "f")
        ctx.retract("x", "f")
        assert not ctx.has_region(target)
        assert ctx.tracked_var("x").fields == {}

    def test_retract_requires_empty_target(self):
        ctx, _ = ctx_with_var()
        ctx.focus("x")
        target = ctx.explore("x", "f")
        ctx.bind("y", NODE, target)
        ctx.focus("y")
        with pytest.raises(ContextError):
            ctx.retract("x", "f")

    def test_retract_invalidates_gamma_vars_in_target(self):
        # "invalidating any other references to the retracted target's
        # region" (§4.5).
        ctx, _ = ctx_with_var()
        ctx.focus("x")
        target = ctx.explore("x", "f")
        ctx.bind("y", NODE, target)
        ctx.retract("x", "f")
        assert not ctx.has_var("y")

    def test_retract_invalidates_other_tracked_fields(self):
        ctx, region = ctx_with_var()
        other = ctx.fresh_region()
        ctx.bind("y", NODE, other)
        ctx.focus("x")
        ctx.focus("y")
        target = ctx.explore("x", "f")
        # Point y.g at the same region, then retract x.f: y.g must become ⊥.
        ctx.explore("y", "g")
        ctx.tracked_var("y").fields["g"] = target
        ctx.heap[ctx.tracked_var("y").fields["g"]]  # sanity
        # Drop the region explore created for y.g first (it is now untargeted).
        ctx.retract("x", "f")
        assert ctx.tracked_var("y").fields["g"] is None

    def test_retract_invalid_field_rejected(self):
        ctx, _ = ctx_with_var()
        ctx.focus("x")
        ctx.explore("x", "f")
        ctx.invalidate_field("x", "f")
        with pytest.raises(ContextError):
            ctx.retract("x", "f")


class TestAttach:
    def test_attach_merges_and_substitutes(self):
        ctx = StaticContext()
        r1 = ctx.fresh_region()
        r2 = ctx.fresh_region()
        ctx.bind("a", NODE, r1)
        ctx.bind("b", NODE, r2)
        ctx.attach(r1, r2)
        assert not ctx.has_region(r1)
        assert ctx.lookup("a").region == r2
        assert ctx.lookup("b").region == r2

    def test_attach_substitutes_field_targets(self):
        ctx, region = ctx_with_var()
        ctx.focus("x")
        target = ctx.explore("x", "f")
        dest = ctx.fresh_region()
        ctx.attach(target, dest)
        assert ctx.tracked_var("x").fields["f"] == dest

    def test_attach_moves_tracked_vars(self):
        ctx = StaticContext()
        r1 = ctx.fresh_region()
        r2 = ctx.fresh_region()
        ctx.bind("a", NODE, r1)
        ctx.focus("a")
        ctx.attach(r1, r2)
        assert ctx.tracked_region_of("a") == r2

    def test_attach_pinned_rejected(self):
        ctx = StaticContext()
        r1 = ctx.fresh_region()
        r2 = ctx.fresh_region()
        ctx.tracking(r2).pinned = True
        with pytest.raises(PinnedViolation):
            ctx.attach(r1, r2)

    def test_attach_self_is_noop(self):
        ctx, region = ctx_with_var()
        ctx.attach(region, region)
        assert ctx.has_region(region)


class TestWeakenings:
    def test_drop_region_drops_vars_and_invalidates_inbound(self):
        ctx, region = ctx_with_var()
        ctx.focus("x")
        target = ctx.explore("x", "f")
        ctx.bind("y", NODE, target)
        ctx.drop_region(target)
        assert not ctx.has_var("y")
        assert ctx.tracked_var("x").fields["f"] is None  # ⊥

    def test_consume_for_send_requires_empty(self):
        ctx, region = ctx_with_var()
        ctx.focus("x")
        with pytest.raises(ContextError):
            ctx.consume_region_for_send(region)

    def test_consume_for_send_requires_no_inbound(self):
        ctx, _ = ctx_with_var()
        ctx.focus("x")
        target = ctx.explore("x", "f")
        with pytest.raises(ContextError):
            ctx.consume_region_for_send(target)

    def test_consume_for_send_drops_vars(self):
        ctx, region = ctx_with_var()
        ctx.bind("alias", NODE, region)
        ctx.consume_region_for_send(region)
        assert not ctx.has_region(region)
        assert not ctx.has_var("x")
        assert not ctx.has_var("alias")


class TestRenaming:
    def test_rename_region(self):
        ctx, region = ctx_with_var()
        new = Region(100)
        ctx.rename_region(region, new)
        assert ctx.lookup("x").region == new

    def test_rename_collision_rejected(self):
        ctx = StaticContext()
        r1 = ctx.fresh_region()
        r2 = ctx.fresh_region()
        with pytest.raises(ContextError):
            ctx.rename_region(r1, r2)

    def test_apply_renaming(self):
        ctx, region = ctx_with_var()
        ctx.focus("x")
        target = ctx.explore("x", "f")
        renaming = RegionRenaming()
        renaming.bind(region, Region(50))
        renaming.bind(target, Region(51))
        ctx.apply_renaming(renaming)
        assert ctx.lookup("x").region == Region(50)
        assert ctx.tracked_var("x").fields["f"] == Region(51)


class TestWellFormedness:
    def test_ok_context(self):
        ctx, _ = ctx_with_var()
        ctx.focus("x")
        ctx.explore("x", "f")
        ctx.check_well_formed()

    def test_duplicate_tracked_var_detected(self):
        ctx, region = ctx_with_var()
        other = ctx.fresh_region()
        ctx.focus("x")
        from repro.core.contexts import TrackedVar

        ctx.heap[other].vars["x"] = TrackedVar()
        with pytest.raises(ContextError):
            ctx.check_well_formed()

    def test_dangling_field_target_detected(self):
        ctx, _ = ctx_with_var()
        ctx.focus("x")
        ctx.tracked_var("x").fields["f"] = Region(999)
        with pytest.raises(ContextError):
            ctx.check_well_formed()

    def test_gamma_tracking_region_mismatch(self):
        ctx, region = ctx_with_var()
        ctx.focus("x")
        ctx.gamma["x"].region = ctx.fresh_region()
        with pytest.raises(ContextError):
            ctx.check_well_formed()
