"""Tests for the cached control-/data-flow analysis layer
(``repro.core.analysis``): CFG shapes, memoized ``uses`` with telemetry,
reaching definitions, the program call graph, and the ``for_function``
escape hatch for synthetic (REPL) definitions.
"""

import pytest

from repro import telemetry
from repro.core.analysis import CFG, FunctionAnalysis, ProgramAnalysis
from repro.lang import ast, parse_program

STRAIGHT = """
def f(x : int) : int { x + 1 }
"""

BRANCHY = """
def f(x : int) : int {
  let y = 0;
  if (x > 0) { y = x } else { y = 0 - x };
  y
}
"""

LOOPY = """
def f(n : int) : int {
  let acc = 0;
  while (n > 0) {
    acc = acc + n;
    n = n - 1
  };
  acc
}
"""

CALLS = """
def leaf(x : int) : int { x }
def mid(x : int) : int { leaf(x) + leaf(x) }
def top(x : int) : int { mid(leaf(x)) }
def lone(x : int) : int { x * x }
"""


@pytest.fixture(autouse=True)
def _clean_registry():
    yield
    telemetry.disable()


def analysis_for(source, name="f"):
    program = parse_program(source)
    return ProgramAnalysis(program).function(name), program


class TestCFG:
    def test_straight_line_has_linear_edges(self):
        analysis, _ = analysis_for(STRAIGHT)
        cfg = analysis.cfg
        assert len(cfg.nodes) >= 1
        # Entry is the body; every node has at most one successor.
        assert all(len(node.succs) <= 1 for node in cfg.nodes)
        assert cfg.exits, "straight-line code must have an exit"

    def test_branch_has_two_successors_and_joined_exits(self):
        analysis, _ = analysis_for(BRANCHY)
        cfg = analysis.cfg
        forks = [node for node in cfg.nodes if len(node.succs) == 2]
        assert forks, "if/else should fork control flow"

    def test_while_has_back_edge(self):
        analysis, _ = analysis_for(LOOPY)
        cfg = analysis.cfg
        back_edges = [
            (node.index, succ)
            for node in cfg.nodes
            for succ in node.succs
            if succ < node.index
        ]
        assert back_edges, "while loop must produce a back-edge"

    def test_node_index_is_identity_keyed(self):
        analysis, program = analysis_for(STRAIGHT)
        body = program.func("f").body
        assert analysis.cfg.node_index(body) == 0
        # A structurally equal but distinct node is not a control point.
        other = parse_program(STRAIGHT).func("f").body
        assert analysis.cfg.node_index(other) is None


class TestUsesMemo:
    def test_memoized_and_counted(self):
        analysis, program = analysis_for(BRANCHY)
        body = program.func("f").body
        reg = telemetry.enable()
        first = analysis.uses(body)
        second = analysis.uses(body)
        telemetry.disable()
        assert first == second
        assert reg.counters["analysis.uses.misses"].value == 1
        assert reg.counters["analysis.uses.hits"].value == 1

    def test_matches_uncached_oracle(self):
        from repro.core.liveness import uses as raw_uses

        analysis, program = analysis_for(LOOPY)
        for node in ast.walk(program.func("f").body):
            assert analysis.uses(node) == frozenset(raw_uses(node))


class TestReachingDefs:
    def test_params_reach_entry_as_minus_one(self):
        analysis, program = analysis_for(STRAIGHT)
        body = program.func("f").body
        facts = analysis.reaching_defs(body)
        assert ("x", -1) in facts

    def test_assignment_kills_param_definition(self):
        analysis, program = analysis_for(LOOPY)
        fdef = program.func("f")
        # The final expression of the body: after the loop, `n` may come
        # from the parameter (zero iterations) or the loop assignment.
        last = fdef.body.body[-1]
        facts = analysis.reaching_defs(last)
        n_sites = {site for name, site in facts if name == "n"}
        assert len(n_sites) >= 2, "param def and loop redef should both reach"

    def test_non_control_point_is_empty(self):
        analysis, _ = analysis_for(STRAIGHT)
        stray = parse_program(STRAIGHT).func("f").body
        assert analysis.reaching_defs(stray) == frozenset()

    def test_computed_once(self):
        analysis, program = analysis_for(BRANCHY)
        body = program.func("f").body
        reg = telemetry.enable()
        analysis.reaching_defs(body)
        analysis.reaching_defs(body)
        telemetry.disable()
        assert reg.counters["analysis.reaching.computed"].value == 1


class TestCallGraph:
    def test_edges_and_inverse(self):
        program = parse_program(CALLS)
        analysis = ProgramAnalysis(program)
        graph = analysis.call_graph()
        assert graph["top"] == frozenset({"mid", "leaf"})
        assert graph["mid"] == frozenset({"leaf"})
        assert graph["lone"] == frozenset()
        assert analysis.callees("mid") == frozenset({"leaf"})
        assert analysis.callers("leaf") == frozenset({"mid", "top"})
        assert analysis.callers("top") == frozenset()

    def test_built_once(self):
        program = parse_program(CALLS)
        analysis = ProgramAnalysis(program)
        reg = telemetry.enable()
        analysis.call_graph()
        analysis.call_graph()
        telemetry.disable()
        assert reg.counters["analysis.callgraph.built"].value == 1


class TestProgramAnalysisCache:
    def test_function_is_memoized(self):
        program = parse_program(CALLS)
        analysis = ProgramAnalysis(program)
        assert analysis.function("mid") is analysis.function("mid")

    def test_for_function_returns_cached_for_program_defs(self):
        program = parse_program(CALLS)
        analysis = ProgramAnalysis(program)
        fdef = program.funcs["mid"]
        assert analysis.for_function(fdef) is analysis.function("mid")

    def test_for_function_synthetic_def_is_fresh_and_uncached(self):
        program = parse_program(CALLS)
        analysis = ProgramAnalysis(program)
        synthetic = parse_program("def mid(x : int) : int { x }").funcs["mid"]
        fresh = analysis.for_function(synthetic)
        assert isinstance(fresh, FunctionAnalysis)
        assert fresh is not analysis.function("mid")
        assert fresh.fdef is synthetic
        # And it did not pollute the program cache.
        assert analysis.function("mid").fdef is program.funcs["mid"]

    def test_functions_counter(self):
        program = parse_program(CALLS)
        reg = telemetry.enable()
        analysis = ProgramAnalysis(program)
        for name in program.funcs:
            analysis.function(name)
        telemetry.disable()
        assert reg.counters["analysis.functions"].value == len(program.funcs)
        assert reg.counters["analysis.cfg.nodes"].value > 0
