"""Telemetry subsystem tests: registry primitives, the disabled fast path,
the JSON exporter round trip, the schema validator, and the checker /
runtime / verifier instrumentation."""

import json

import pytest

from repro import telemetry
from repro.core.checker import Checker
from repro.lang import parse_program
from repro.runtime.heap import Heap
from repro.runtime.machine import run_function
from repro.telemetry import (
    BUCKET_BOUNDS,
    Registry,
    SchemaError,
    doc_to_registry,
    export_json,
    load_json,
    merge_doc,
    registry_to_doc,
    render_prometheus,
    render_table,
    validate,
)
from repro.verifier import Verifier

SOURCE = """
struct data { v : int; }
def make(n : int) : data { new data(v = n) }
def main() : int { let d = make(7); d.v }
"""


@pytest.fixture(autouse=True)
def _clean_global_registry():
    yield
    telemetry.disable()


class TestCounters:
    def test_inc_and_value(self):
        reg = Registry()
        reg.inc("a")
        reg.inc("a", 4)
        assert reg.value("a") == 5
        assert reg.value("never") == 0

    def test_disabled_registry_records_nothing(self):
        reg = Registry(enabled=False)
        reg.inc("a")
        reg.observe("h", 1.0)
        with reg.time("t"):
            pass
        with reg.span("s"):
            pass
        assert not reg.counters and not reg.histograms and not reg.spans

    def test_default_global_registry_is_disabled(self):
        assert telemetry.registry().enabled is False


class TestHistograms:
    def test_observe_summary(self):
        reg = Registry()
        for v in (2.0, 8.0, 5.0):
            reg.observe("h", v)
        hist = reg.histogram("h")
        assert hist.count == 3
        assert hist.min == 2.0 and hist.max == 8.0
        assert hist.mean == pytest.approx(5.0)

    def test_timer_feeds_histogram(self):
        reg = Registry()
        with reg.time("t"):
            pass
        hist = reg.histogram("t")
        assert hist.count == 1 and hist.total >= 0.0


class TestGauges:
    def test_set_inc_dec(self):
        reg = Registry()
        reg.set_gauge("g", 5.0)
        assert reg.gauge_value("g") == 5.0
        reg.gauge("g").inc(2.0)
        reg.gauge("g").dec(4.0)
        assert reg.gauge_value("g") == 3.0
        assert reg.gauge_value("never") == 0.0

    def test_set_max_is_high_water(self):
        reg = Registry()
        reg.set_gauge_max("hw", 10.0)
        reg.set_gauge_max("hw", 3.0)
        assert reg.gauge_value("hw") == 10.0
        reg.set_gauge_max("hw", 12.0)
        assert reg.gauge_value("hw") == 12.0

    def test_disabled_registry_records_no_gauges(self):
        reg = Registry(enabled=False)
        reg.set_gauge("g", 1.0)
        reg.set_gauge_max("g", 2.0)
        assert not reg.gauges

    def test_gauges_round_trip_through_export(self):
        reg = Registry()
        reg.set_gauge("machine.seed", 13.0)
        back = load_json(export_json(reg))
        assert back.gauge_value("machine.seed") == 13.0


class TestQuantiles:
    def test_empty_histogram_has_no_quantiles(self):
        assert Registry().histogram("h").quantile(0.5) is None

    def test_bucketed_estimate_is_clamped_to_observations(self):
        reg = Registry()
        for v in (1.0, 2.0, 3.0, 4.0, 100.0):
            reg.observe("h", v)
        hist = reg.histogram("h")
        p50 = hist.quantile(0.5)
        p99 = hist.quantile(0.99)
        assert 1.0 <= p50 <= 4.0
        assert p50 <= p99 <= 100.0
        assert hist.quantile(1.0) == 100.0

    def test_bucketless_doc_falls_back_to_minmax_interpolation(self):
        doc = {
            "schema": "repro-telemetry/1",
            "counters": {},
            "histograms": {
                "h": {"count": 4, "total": 20.0, "min": 2.0, "max": 8.0,
                      "mean": 5.0},
            },
            "spans": [],
        }
        hist = doc_to_registry(doc).histogram("h")
        assert hist.quantile(0.0) == pytest.approx(2.0)
        assert hist.quantile(0.5) == pytest.approx(5.0)
        assert hist.quantile(1.0) == pytest.approx(8.0)


class TestSpans:
    def test_nesting_aggregates_per_parent(self):
        reg = Registry()
        for _ in range(2):
            with reg.span("outer"):
                with reg.span("inner"):
                    pass
        with reg.span("inner"):  # same name, no parent: separate bucket
            pass
        outer = reg.spans[("outer", None)]
        nested = reg.spans[("inner", "outer")]
        top = reg.spans[("inner", None)]
        assert outer.count == 2 and outer.depth == 0
        assert nested.count == 2 and nested.depth == 1
        assert top.count == 1 and top.depth == 0
        assert nested.total_ms <= outer.total_ms

    def test_span_stack_unwinds_on_error(self):
        reg = Registry()
        with pytest.raises(RuntimeError):
            with reg.span("outer"):
                raise RuntimeError("boom")
        assert reg._span_stack == []
        assert reg.spans[("outer", None)].count == 1


class TestGlobalSwap:
    def test_enable_installs_fresh_registry(self):
        first = telemetry.enable()
        first.inc("x")
        second = telemetry.enable()
        assert telemetry.registry() is second
        assert second.value("x") == 0

    def test_use_restores_previous(self):
        mine = Registry()
        with telemetry.use(mine):
            telemetry.registry().inc("k")
        assert mine.value("k") == 1
        assert telemetry.registry().enabled is False


class TestExport:
    def _populated(self):
        reg = Registry()
        reg.inc("c", 3)
        reg.set_gauge("g", 4.0)
        reg.observe("h", 1.5)
        reg.observe("h", 2.5)
        with reg.span("outer"):
            with reg.span("inner"):
                pass
        return reg

    def test_round_trip(self):
        reg = self._populated()
        back = load_json(export_json(reg))
        assert registry_to_doc(back) == registry_to_doc(reg)

    def test_doc_shape(self):
        doc = registry_to_doc(self._populated())
        assert doc["schema"] == "repro-telemetry/2"
        assert doc["counters"] == {"c": 3}
        assert doc["gauges"] == {"g": 4.0}
        assert doc["histograms"]["h"]["mean"] == pytest.approx(2.0)
        assert len(doc["histograms"]["h"]["buckets"]) == len(telemetry.BUCKET_BOUNDS) + 1
        assert sum(doc["histograms"]["h"]["buckets"]) == 2
        assert [s["name"] for s in doc["spans"]] == ["outer", "inner"]

    def test_rejects_foreign_schema(self):
        with pytest.raises(ValueError):
            doc_to_registry({"schema": "somebody-else/9"})

    def test_render_table_lists_everything(self):
        text = render_table(self._populated())
        for needle in ("counters", "c", "histograms", "h", "spans", "inner"):
            assert needle in text
        assert render_table(Registry()) == "(no metrics recorded)"


class TestMergeDoc:
    """The worker-to-parent fold used by ``--jobs N`` (satellite: edge
    cases around histogram envelopes, gauge semantics, span stitching,
    and old-schema documents)."""

    def _doc(self, **overrides):
        doc = {
            "schema": "repro-telemetry/2",
            "counters": {},
            "gauges": {},
            "histograms": {},
            "spans": [],
        }
        doc.update(overrides)
        return doc

    def test_counters_add_and_gauges_take_max(self):
        reg = Registry()
        reg.inc("c", 2)
        reg.set_gauge("g", 7.0)
        merge_doc(reg, self._doc(counters={"c": 3}, gauges={"g": 5.0}))
        merge_doc(reg, self._doc(gauges={"g": 9.0}))
        assert reg.value("c") == 5
        assert reg.gauge_value("g") == 9.0

    def test_histogram_minmax_envelope(self):
        reg = Registry()
        reg.observe("h", 5.0)
        summary = {"count": 2, "total": 12.0, "min": 2.0, "max": 10.0,
                   "mean": 6.0, "buckets": [0] * (len(BUCKET_BOUNDS) + 1)}
        summary["buckets"][3] = 2
        merge_doc(reg, self._doc(histograms={"h": summary}))
        hist = reg.histogram("h")
        assert hist.count == 3
        assert hist.total == pytest.approx(17.0)
        assert hist.min == 2.0 and hist.max == 10.0
        assert sum(hist.buckets) == 3

    def test_histogram_none_minmax_does_not_clobber(self):
        reg = Registry()
        reg.observe("h", 4.0)
        summary = {"count": 0, "total": 0.0, "min": None, "max": None,
                   "mean": 0.0, "buckets": [0] * (len(BUCKET_BOUNDS) + 1)}
        merge_doc(reg, self._doc(histograms={"h": summary}))
        hist = reg.histogram("h")
        assert hist.min == 4.0 and hist.max == 4.0

    def test_v1_doc_without_buckets_degrades_quantiles_only(self):
        reg = Registry()
        reg.observe("h", 1.0)
        old = {
            "schema": "repro-telemetry/1",
            "counters": {"c": 1},
            "histograms": {
                "h": {"count": 1, "total": 9.0, "min": 9.0, "max": 9.0,
                      "mean": 9.0},
            },
            "spans": [],
        }
        merge_doc(reg, old)
        hist = reg.histogram("h")
        # Summary stays exact; buckets are incomplete so quantiles fall
        # back to min/max interpolation instead of lying.
        assert hist.count == 2 and hist.total == pytest.approx(10.0)
        assert sum(hist.buckets) == 1
        assert hist.min <= hist.quantile(0.5) <= hist.max
        assert reg.value("c") == 1

    def test_mismatched_bucket_layout_is_skipped(self):
        reg = Registry()
        summary = {"count": 1, "total": 1.0, "min": 1.0, "max": 1.0,
                   "mean": 1.0, "buckets": [1, 0]}  # foreign layout
        merge_doc(reg, self._doc(histograms={"h": summary}))
        hist = reg.histogram("h")
        assert hist.count == 1
        assert sum(hist.buckets) == 0  # not folded in

    def test_span_parent_stitching_across_worker_docs(self):
        """Two worker docs reporting the same (name, parent) key must
        land in one aggregate; a same-named root span stays separate."""
        reg = Registry()
        worker = self._doc(spans=[
            {"name": "check.fn.f", "parent": "check.program", "depth": 1,
             "count": 2, "total_ms": 4.0, "min_ms": 1.0, "max_ms": 3.0},
        ])
        other = self._doc(spans=[
            {"name": "check.fn.f", "parent": "check.program", "depth": 1,
             "count": 1, "total_ms": 6.0, "min_ms": 6.0, "max_ms": 6.0},
            {"name": "check.fn.f", "parent": None, "depth": 0,
             "count": 1, "total_ms": 1.0, "min_ms": 1.0, "max_ms": 1.0},
        ])
        merge_doc(reg, worker)
        merge_doc(reg, other)
        nested = reg.spans[("check.fn.f", "check.program")]
        assert nested.count == 3
        assert nested.total_ms == pytest.approx(10.0)
        assert nested.min_ms == 1.0 and nested.max_ms == 6.0
        root = reg.spans[("check.fn.f", None)]
        assert root.count == 1

    def test_rejects_foreign_schema(self):
        with pytest.raises(ValueError):
            merge_doc(Registry(), {"schema": "somebody-else/9"})


class TestPrometheus:
    def test_counter_gauge_histogram_exposition(self):
        reg = Registry()
        reg.inc("server.requests.check.ok", 3)
        reg.set_gauge("server.queue_depth", 2.0)
        reg.observe("server.latency_ms", 0.3)
        reg.observe("server.latency_ms", 40.0)
        text = render_prometheus(reg)
        assert "# TYPE repro_server_requests_check_ok counter" in text
        assert "repro_server_requests_check_ok 3" in text
        assert "# TYPE repro_server_queue_depth gauge" in text
        assert "repro_server_queue_depth 2" in text
        assert "# TYPE repro_server_latency_ms histogram" in text
        assert 'repro_server_latency_ms_bucket{le="+Inf"} 2' in text
        assert "repro_server_latency_ms_sum 40.3" in text
        assert "repro_server_latency_ms_count 2" in text

    def test_buckets_are_cumulative(self):
        reg = Registry()
        reg.observe("h", 0.02)  # first real bucket (0.025)
        reg.observe("h", 0.02)
        reg.observe("h", 9999.0)  # last bounded bucket (10000)
        text = render_prometheus(reg)
        assert 'repro_h_bucket{le="0.025"} 2' in text
        assert 'repro_h_bucket{le="10000"} 3' in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(Registry()) == ""


class TestThreadSafety:
    def test_concurrent_mutation_loses_nothing(self):
        import threading

        reg = Registry()
        n_threads, n_iter = 8, 500

        def work():
            for _ in range(n_iter):
                reg.inc("c")
                reg.observe("h", 1.0)
                reg.set_gauge_max("g", 1.0)
                with reg.span("s"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.value("c") == n_threads * n_iter
        assert reg.histogram("h").count == n_threads * n_iter
        assert sum(reg.histogram("h").buckets) == n_threads * n_iter
        assert reg.spans[("s", None)].count == n_threads * n_iter

    def test_span_stacks_are_thread_local(self):
        import threading

        reg = Registry()
        barrier = threading.Barrier(2)

        def work(name):
            with reg.span(name):
                barrier.wait()  # both threads inside their span at once
                with reg.span("inner"):
                    pass

        threads = [
            threading.Thread(target=work, args=(f"outer{i}",)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Each inner span nests under its own thread's outer span.
        assert reg.spans[("inner", "outer0")].count == 1
        assert reg.spans[("inner", "outer1")].count == 1


class TestSchemaValidator:
    def _schema(self):
        from pathlib import Path

        path = Path(__file__).parent.parent / "benchmarks" / "metrics.schema.json"
        return json.loads(path.read_text())

    def test_valid_export_passes(self):
        reg = Registry()
        reg.inc("c")
        reg.observe("h", 1.0)
        with reg.span("s"):
            pass
        validate(json.loads(export_json(reg)), self._schema())

    def test_bad_counter_type_rejected(self):
        doc = registry_to_doc(Registry())
        doc["counters"]["c"] = "three"
        with pytest.raises(SchemaError):
            validate(doc, self._schema())

    def test_missing_required_key_rejected(self):
        doc = registry_to_doc(Registry())
        del doc["spans"]
        with pytest.raises(SchemaError):
            validate(doc, self._schema())

    def test_extra_top_level_key_rejected(self):
        doc = registry_to_doc(Registry())
        doc["surprise"] = 1
        with pytest.raises(SchemaError):
            validate(doc, self._schema())


class TestCheckerInstrumentation:
    def test_rule_and_oracle_counters(self):
        program = parse_program(SOURCE)
        reg = telemetry.enable()
        Checker(program).check_program()
        assert reg.value("checker.functions") == 2
        assert reg.value("checker.rule.T0-Function-Definition") == 2
        assert reg.value("checker.rule.T10-New-Loc") == 1
        assert reg.value("checker.oracle.hits") >= 1
        assert reg.value("unify.greedy.calls") >= 1
        assert ("check.program", None) in reg.spans
        assert ("check.fn.main", "check.program") in reg.spans

    def test_disabled_checker_records_nothing(self):
        program = parse_program(SOURCE)
        Checker(program).check_program()
        assert telemetry.registry().counters == {}


class TestRuntimeInstrumentation:
    def test_run_function_counters(self):
        program = parse_program(SOURCE)
        reg = telemetry.enable()
        run_function(program, "main", heap=Heap())
        assert reg.value("machine.steps") > 0
        assert reg.value("machine.reservation_checks") > 0
        assert reg.value("machine.heap_reads") >= 1
        assert reg.value("machine.heap_objects") == 1
        assert ("machine.fn.main", None) in reg.spans

    def test_heap_traffic_is_a_delta(self):
        program = parse_program(SOURCE)
        heap = Heap()
        run_function(program, "main", heap=heap)  # telemetry off: warm heap
        reg = telemetry.enable()
        run_function(program, "main", heap=heap)
        # Only this run's single d.v read counted, not the warm-up's.
        assert reg.value("machine.heap_reads") == 1


class TestVerifierInstrumentation:
    def test_obligations_and_certificates(self):
        program = parse_program(SOURCE)
        derivation = Checker(program).check_program()
        reg = telemetry.enable()
        Verifier(program).verify_program(derivation)
        assert reg.value("verifier.certificates") == 2
        assert reg.value("verifier.obligations") > 0
        assert reg.value("verifier.steps_replayed") > 0
        cert = reg.histogram("verifier.certificate_bytes")
        assert cert.count == 2 and cert.min > 0
        assert ("verify.program", None) in reg.spans
