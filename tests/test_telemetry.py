"""Telemetry subsystem tests: registry primitives, the disabled fast path,
the JSON exporter round trip, the schema validator, and the checker /
runtime / verifier instrumentation."""

import json

import pytest

from repro import telemetry
from repro.core.checker import Checker
from repro.lang import parse_program
from repro.runtime.heap import Heap
from repro.runtime.machine import run_function
from repro.telemetry import (
    Registry,
    SchemaError,
    doc_to_registry,
    export_json,
    load_json,
    registry_to_doc,
    render_table,
    validate,
)
from repro.verifier import Verifier

SOURCE = """
struct data { v : int; }
def make(n : int) : data { new data(v = n) }
def main() : int { let d = make(7); d.v }
"""


@pytest.fixture(autouse=True)
def _clean_global_registry():
    yield
    telemetry.disable()


class TestCounters:
    def test_inc_and_value(self):
        reg = Registry()
        reg.inc("a")
        reg.inc("a", 4)
        assert reg.value("a") == 5
        assert reg.value("never") == 0

    def test_disabled_registry_records_nothing(self):
        reg = Registry(enabled=False)
        reg.inc("a")
        reg.observe("h", 1.0)
        with reg.time("t"):
            pass
        with reg.span("s"):
            pass
        assert not reg.counters and not reg.histograms and not reg.spans

    def test_default_global_registry_is_disabled(self):
        assert telemetry.registry().enabled is False


class TestHistograms:
    def test_observe_summary(self):
        reg = Registry()
        for v in (2.0, 8.0, 5.0):
            reg.observe("h", v)
        hist = reg.histogram("h")
        assert hist.count == 3
        assert hist.min == 2.0 and hist.max == 8.0
        assert hist.mean == pytest.approx(5.0)

    def test_timer_feeds_histogram(self):
        reg = Registry()
        with reg.time("t"):
            pass
        hist = reg.histogram("t")
        assert hist.count == 1 and hist.total >= 0.0


class TestSpans:
    def test_nesting_aggregates_per_parent(self):
        reg = Registry()
        for _ in range(2):
            with reg.span("outer"):
                with reg.span("inner"):
                    pass
        with reg.span("inner"):  # same name, no parent: separate bucket
            pass
        outer = reg.spans[("outer", None)]
        nested = reg.spans[("inner", "outer")]
        top = reg.spans[("inner", None)]
        assert outer.count == 2 and outer.depth == 0
        assert nested.count == 2 and nested.depth == 1
        assert top.count == 1 and top.depth == 0
        assert nested.total_ms <= outer.total_ms

    def test_span_stack_unwinds_on_error(self):
        reg = Registry()
        with pytest.raises(RuntimeError):
            with reg.span("outer"):
                raise RuntimeError("boom")
        assert reg._span_stack == []
        assert reg.spans[("outer", None)].count == 1


class TestGlobalSwap:
    def test_enable_installs_fresh_registry(self):
        first = telemetry.enable()
        first.inc("x")
        second = telemetry.enable()
        assert telemetry.registry() is second
        assert second.value("x") == 0

    def test_use_restores_previous(self):
        mine = Registry()
        with telemetry.use(mine):
            telemetry.registry().inc("k")
        assert mine.value("k") == 1
        assert telemetry.registry().enabled is False


class TestExport:
    def _populated(self):
        reg = Registry()
        reg.inc("c", 3)
        reg.observe("h", 1.5)
        reg.observe("h", 2.5)
        with reg.span("outer"):
            with reg.span("inner"):
                pass
        return reg

    def test_round_trip(self):
        reg = self._populated()
        back = load_json(export_json(reg))
        assert registry_to_doc(back) == registry_to_doc(reg)

    def test_doc_shape(self):
        doc = registry_to_doc(self._populated())
        assert doc["schema"] == "repro-telemetry/1"
        assert doc["counters"] == {"c": 3}
        assert doc["histograms"]["h"]["mean"] == pytest.approx(2.0)
        assert [s["name"] for s in doc["spans"]] == ["outer", "inner"]

    def test_rejects_foreign_schema(self):
        with pytest.raises(ValueError):
            doc_to_registry({"schema": "somebody-else/9"})

    def test_render_table_lists_everything(self):
        text = render_table(self._populated())
        for needle in ("counters", "c", "histograms", "h", "spans", "inner"):
            assert needle in text
        assert render_table(Registry()) == "(no metrics recorded)"


class TestSchemaValidator:
    def _schema(self):
        from pathlib import Path

        path = Path(__file__).parent.parent / "benchmarks" / "metrics.schema.json"
        return json.loads(path.read_text())

    def test_valid_export_passes(self):
        reg = Registry()
        reg.inc("c")
        reg.observe("h", 1.0)
        with reg.span("s"):
            pass
        validate(json.loads(export_json(reg)), self._schema())

    def test_bad_counter_type_rejected(self):
        doc = registry_to_doc(Registry())
        doc["counters"]["c"] = "three"
        with pytest.raises(SchemaError):
            validate(doc, self._schema())

    def test_missing_required_key_rejected(self):
        doc = registry_to_doc(Registry())
        del doc["spans"]
        with pytest.raises(SchemaError):
            validate(doc, self._schema())

    def test_extra_top_level_key_rejected(self):
        doc = registry_to_doc(Registry())
        doc["surprise"] = 1
        with pytest.raises(SchemaError):
            validate(doc, self._schema())


class TestCheckerInstrumentation:
    def test_rule_and_oracle_counters(self):
        program = parse_program(SOURCE)
        reg = telemetry.enable()
        Checker(program).check_program()
        assert reg.value("checker.functions") == 2
        assert reg.value("checker.rule.T0-Function-Definition") == 2
        assert reg.value("checker.rule.T10-New-Loc") == 1
        assert reg.value("checker.oracle.hits") >= 1
        assert reg.value("unify.greedy.calls") >= 1
        assert ("check.program", None) in reg.spans
        assert ("check.fn.main", "check.program") in reg.spans

    def test_disabled_checker_records_nothing(self):
        program = parse_program(SOURCE)
        Checker(program).check_program()
        assert telemetry.registry().counters == {}


class TestRuntimeInstrumentation:
    def test_run_function_counters(self):
        program = parse_program(SOURCE)
        reg = telemetry.enable()
        run_function(program, "main", heap=Heap())
        assert reg.value("machine.steps") > 0
        assert reg.value("machine.reservation_checks") > 0
        assert reg.value("machine.heap_reads") >= 1
        assert reg.value("machine.heap_objects") == 1
        assert ("machine.fn.main", None) in reg.spans

    def test_heap_traffic_is_a_delta(self):
        program = parse_program(SOURCE)
        heap = Heap()
        run_function(program, "main", heap=heap)  # telemetry off: warm heap
        reg = telemetry.enable()
        run_function(program, "main", heap=heap)
        # Only this run's single d.v read counted, not the warm-up's.
        assert reg.value("machine.heap_reads") == 1


class TestVerifierInstrumentation:
    def test_obligations_and_certificates(self):
        program = parse_program(SOURCE)
        derivation = Checker(program).check_program()
        reg = telemetry.enable()
        Verifier(program).verify_program(derivation)
        assert reg.value("verifier.certificates") == 2
        assert reg.value("verifier.obligations") > 0
        assert reg.value("verifier.steps_replayed") > 0
        cert = reg.histogram("verifier.certificate_bytes")
        assert cert.count == 2 and cert.min > 0
        assert ("verify.program", None) in reg.spans
