"""The bytecode engine (``--engine ir``): compile pipeline and parity.

The IR engine must be observationally indistinguishable from the tree
interpreter: identical results, byte-identical heap-event traces, and the
same reservation-check counts in the observable tier, over the whole
corpus and under concurrent scheduling.  The full optimization tier
(erased, untraced) may read the heap less often but must agree on results
and on the shape of the final heap.  Budgets (``max_steps``) are enforced
inside the dispatch loop itself.
"""

import json
from pathlib import Path

import pytest

from repro import api
from repro.bench import bench_ir
from repro.cli import main
from repro.corpus import corpus_names, load_source
from repro.fuzz import FuzzConfig, run_campaign
from repro import telemetry as tel
from repro.ir.bytecode import (
    OP_CALL,
    OP_CALL1,
    OP_CALL2,
    OP_CHECK,
    OP_LOADV,
    OP_SENDC,
    clear_compile_cache,
    compile_cache_entries,
    compile_program,
    set_compile_cache_limit,
)
from repro.ir.disasm import disassemble
from repro.lang import ast, parse_program
from repro.runtime.heap import Heap
from repro.runtime.machine import (
    Machine,
    ScriptedScheduler,
    StepLimitExceeded,
    run_function,
)
from repro.runtime.trace import Tracer
from repro.server import Service
from repro.server.protocol import RpcError

CORPUS = Path(__file__).parent.parent / "src" / "repro" / "corpus"

PINGPONG = """
struct data { v : int; }
struct token { iso payload : data; }

def pinger(n : int) : int {
  let last = 0;
  while (n > 0) {
    let d = new data(v = n);
    let t = new token(payload = d);
    send(t);
    let back = recv(data);
    last = back.v;
    n = n - 1
  };
  last
}

def ponger(n : int) : unit {
  while (n > 0) {
    let t = recv(token);
    let d = t.payload;
    d.v = d.v * 2;
    t.payload = new data(v = 0);
    send(d);
    n = n - 1
  }
}
"""

SPIN = """
struct counter { n : int; }
def spin(k : int) : int {
  let c = new counter(n = 0);
  while (k > 0) {
    c.n = c.n + 1;
    k = k - 1
  };
  c.n
}
"""

LOOP = """
def forever() : int {
  let x = 0;
  while (x < 1) { x = 0 };
  x
}
"""


def _int_entry_points(program):
    """Every function callable with small int arguments on one thread
    (``recv`` needs a Machine, so receiving functions are skipped)."""
    for name, fdef in program.funcs.items():
        if any(isinstance(node, ast.Recv) for node in ast.walk(fdef.body)):
            continue
        if all(p.ty == ast.INT for p in fdef.params):
            yield name, [4] * len(fdef.params)


def _run(program, fname, args, *, engine, checked, traced):
    tracer = Tracer() if traced else None
    heap = Heap(tracer=tracer)
    result, interp = run_function(
        program, fname, list(args), heap=heap,
        check_reservations=checked, sink_sends=True,
        max_steps=200_000, engine=engine,
    )
    return result, interp, heap, tracer


class TestCorpusParity:
    @pytest.mark.parametrize("name", corpus_names())
    def test_traced_runs_are_byte_identical(self, name):
        """Observable tier: same results, traces, and check counts."""
        program = parse_program(load_source(name))
        ran = 0
        for fname, args in _int_entry_points(program):
            tree = _run(program, fname, args, engine="tree", checked=True,
                        traced=True)
            ir = _run(program, fname, args, engine="ir", checked=True,
                      traced=True)
            assert repr(tree[0]) == repr(ir[0]), fname
            assert tree[1].stats.reservation_checks == \
                ir[1].stats.reservation_checks, fname
            tree_bytes = json.dumps(list(tree[3].to_dicts()), sort_keys=True)
            ir_bytes = json.dumps(list(ir[3].to_dicts()), sort_keys=True)
            assert tree_bytes == ir_bytes, fname
            ran += 1
        assert ran > 0

    @pytest.mark.parametrize("name", corpus_names())
    def test_erased_full_tier_agrees_on_results(self, name):
        """Full tier (RLE + mem2var live): results and heap shape match."""
        program = parse_program(load_source(name))
        for fname, args in _int_entry_points(program):
            tree = _run(program, fname, args, engine="tree", checked=False,
                        traced=False)
            ir = _run(program, fname, args, engine="ir", checked=False,
                      traced=False)
            assert repr(tree[0]) == repr(ir[0]), fname
            assert len(tree[2]) == len(ir[2]), fname


class TestBudgets:
    def test_step_limit_inside_dispatch_loop(self):
        program = parse_program(LOOP)
        with pytest.raises(StepLimitExceeded, match="step budget exceeded"):
            run_function(program, "forever", [], max_steps=1000, engine="ir")

    def test_step_limit_on_finite_work(self):
        program = parse_program(load_source("sll"))
        with pytest.raises(StepLimitExceeded):
            run_function(program, "make_list", [50], max_steps=10,
                         engine="ir", check_reservations=False)
        result, _ = run_function(program, "make_list", [50],
                                 max_steps=1_000_000, engine="ir",
                                 check_reservations=False)
        assert result is not None


class TestConcurrency:
    def test_scripted_replay_is_deterministic(self):
        program = parse_program(PINGPONG)
        results = []
        for _ in range(2):
            machine = Machine(program, scheduler=ScriptedScheduler(),
                              engine="ir")
            pinger = machine.spawn("pinger", [5])
            machine.spawn("ponger", [5])
            machine.run()
            results.append(pinger.result)
        assert results[0] == results[1] == 2

    def test_traced_machines_agree_across_engines(self):
        """Heap-event traces are yield-granularity-independent, so traced
        runs byte-match between engines under the same seed."""
        traces = {}
        for engine in ("tree", "ir"):
            tracer = Tracer()
            program = parse_program(PINGPONG)
            machine = Machine(program, seed=3, tracer=tracer, engine=engine)
            machine.spawn("pinger", [4])
            machine.spawn("ponger", [4])
            machine.run()
            traces[engine] = json.dumps(list(tracer.to_dicts()),
                                        sort_keys=True)
        assert traces["tree"] == traces["ir"]


class TestCompiler:
    def test_erased_module_contains_no_check_opcodes(self):
        program = parse_program(load_source("rbtree"))
        erased = compile_program(program, checked=False, observable=False)
        opcodes = {
            ins[0] for fn in erased.funcs.values() for ins in fn.code
        }
        assert OP_CHECK not in opcodes
        assert OP_SENDC not in opcodes
        assert erased.counters["checks_erased"] > 0

    def test_checked_module_keeps_guards(self):
        program = parse_program(load_source("rbtree"))
        checked = compile_program(program, checked=True, observable=True)
        opcodes = {
            ins[0] for fn in checked.funcs.values() for ins in fn.code
        }
        assert OP_CHECK in opcodes
        assert checked.counters["checks_erased"] == 0

    def test_optimizer_counters_fire_on_rbtree(self):
        program = parse_program(load_source("rbtree"))
        module = compile_program(program, checked=False, observable=False)
        for counter in ("inlined_calls", "loads_eliminated",
                        "consts_pooled", "dests_sunk",
                        "instructions_emitted"):
            assert module.counters[counter] > 0, counter

    def test_mem2var_promotes_non_escaping_allocation(self):
        program = parse_program(SPIN)
        module = compile_program(program, checked=False, observable=False)
        assert module.counters["fields_promoted"] == 1
        assert module.counters["loads_eliminated"] > 0
        # The allocation itself stays: object counts must not change.
        tree = _run(program, "spin", [10], engine="tree", checked=False,
                    traced=False)
        ir = _run(program, "spin", [10], engine="ir", checked=False,
                  traced=False)
        assert tree[0] == ir[0] == 10
        assert len(tree[2]) == len(ir[2]) == 1

    def test_compile_cache_is_per_configuration(self):
        program = parse_program(SPIN)
        a = compile_program(program, checked=False, observable=False)
        b = compile_program(program, checked=False, observable=False)
        c = compile_program(program, checked=True, observable=True)
        assert a is b
        assert a is not c


class TestSurfaces:
    def test_api_run_engine_roundtrip(self):
        result = api.run(SPIN, "spin", [7], engine="ir")
        assert result.ok and result.value == "7"
        assert result.engine == "ir"
        restored = api.RunResult.from_dict(result.to_dict())
        assert restored.engine == "ir"
        # Documents written before the field existed default to tree.
        legacy = dict(result.to_dict())
        del legacy["engine"]
        assert api.RunResult.from_dict(legacy).engine == "tree"

    def test_api_rejects_unknown_engine(self):
        result = api.run(SPIN, "spin", [7], engine="jit")
        assert not result.ok
        assert result.diagnostics[0].code == "MachineError"
        assert "unknown engine" in result.diagnostics[0].message

    def test_service_run_engine(self):
        service = Service()
        reply = service.run(
            {"source": SPIN, "function": "spin", "args": [6], "engine": "ir"}
        )
        assert reply["ok"] and reply["value"] == "6"
        assert reply["engine"] == "ir"
        with pytest.raises(RpcError, match="params.engine"):
            service.run(
                {"source": SPIN, "function": "spin", "args": [6],
                 "engine": "jit"}
            )

    def test_cli_trace_json_byte_identical_across_engines(self, tmp_path):
        sll = str(CORPUS / "sll.fcl")
        out = {}
        for engine in ("tree", "ir"):
            path = tmp_path / f"{engine}.jsonl"
            code = main(["run", sll, "make_list", "8",
                         "--engine", engine, "--trace-json", str(path)])
            assert code == 0
            out[engine] = path.read_bytes()
        assert out["tree"] == out["ir"]

    def test_cli_paranoid_ir_cross_checks_tree(self, capsys):
        rb = str(CORPUS / "rbtree.fcl")
        code = main(["run", rb, "build_tree", "25", "7",
                     "--engine", "ir", "--paranoid"])
        assert code == 0
        err = capsys.readouterr().err
        assert "traces identical" in err

    def test_fuzz_campaign_reports_engines(self):
        report = run_campaign(FuzzConfig(seed=11, budget=8))
        assert report["engines"] == ["tree", "ir"]
        assert report["clean"]

    def test_bench_ir_smoke(self):
        rows = bench_ir(repeats=1, small=True)
        assert [row["workload"] for row in rows] == [
            "rbtree-build", "rbtree-query", "chain-traverse",
        ]
        for row in rows:
            for key in ("tree_checked_ms", "tree_erased_ms",
                        "ir_checked_ms", "ir_erased_ms", "compile_ms"):
                assert row[key] > 0, key
            assert row["checks_erased"] > 0
            assert row["instructions_emitted"] > 0


class TestSecondGen:
    """PR 9: register allocation, LICM, tail-call loops, fused opcodes,
    the shared compile cache, and the disassembler."""

    def test_optimizer_second_gen_counters_fire(self):
        program = parse_program(load_source("rbtree"))
        module = compile_program(program, checked=False, observable=False)
        for counter in ("loops_found", "licm_hoisted",
                        "slots_coalesced", "tail_calls_looped"):
            assert module.counters[counter] > 0, counter

    def test_tail_recursion_becomes_loop_in_full_tier_only(self):
        program = parse_program(load_source("rbtree"))
        erased = compile_program(program, checked=False, observable=False)
        assert erased.counters["tail_calls_looped"] >= 2
        # The looped function must not call itself anymore.
        fn = erased.funcs["contains_opt"]
        for ins in fn.code:
            assert not (
                ins[0] in (OP_CALL, OP_CALL1, OP_CALL2)
                and ins[2].name == "contains_opt"
            )
        # The checked tier keeps the calls (its step/check accounting is
        # part of the observable contract).
        checked = compile_program(program, checked=True, observable=False)
        assert checked.counters["tail_calls_looped"] == 0

    def test_fused_opcodes_present_and_results_agree(self):
        program = parse_program(load_source("rbtree"))
        module = compile_program(program, checked=False, observable=False)
        opcodes = {
            ins[0] for fn in module.funcs.values() for ins in fn.code
        }
        assert OP_LOADV in opcodes
        assert OP_CALL2 in opcodes
        tree = _run(program, "build_tree", [30, 7], engine="tree",
                    checked=False, traced=False)
        ir = _run(program, "build_tree", [30, 7], engine="ir",
                  checked=False, traced=False)
        assert repr(tree[0]) == repr(ir[0])
        assert len(tree[2]) == len(ir[2])

    def test_budget_binds_on_straight_line_functions(self):
        program = parse_program(
            "def add(a : int, b : int) : int { a + b }"
        )
        with pytest.raises(StepLimitExceeded):
            run_function(program, "add", [1, 2], max_steps=1, engine="ir")
        result, _ = run_function(program, "add", [1, 2], max_steps=100,
                                 engine="ir")
        assert result == 3

    def test_disasm_reports_passes_and_baseline(self):
        program = parse_program(load_source("rbtree"))
        optimized = disassemble(
            program, checked=False, optimize=True, function="contains_opt"
        )
        assert "func contains_opt" in optimized
        assert "; pass tailcall: tail_calls_looped+2" in optimized
        assert "; pass regalloc:" in optimized
        baseline = disassemble(
            program, checked=False, optimize=False, function="contains_opt"
        )
        assert "; pass" not in baseline
        assert len(baseline.splitlines()) > len(optimized.splitlines())
        with pytest.raises(KeyError):
            disassemble(program, function="no_such_function")

    def test_shared_cache_eviction_telemetry(self):
        clear_compile_cache()
        set_compile_cache_limit(2)
        reg = tel.enable()
        try:
            programs = [
                parse_program(SPIN.replace("spin", f"spin{i}"))
                for i in range(3)
            ]
            for program in programs:
                compile_program(program, checked=False, observable=False)
            assert compile_cache_entries() == 2
            assert reg.value("machine.engine.compile_cache.evictions") >= 1
            assert reg.value("machine.engine.compile_cache.misses") == 3
            # A fresh Program object for a cached source must hit the
            # shared cache instead of recompiling.
            fresh = parse_program(SPIN.replace("spin", "spin2"))
            before = reg.value("machine.engine.compile_cache.hits")
            compile_program(fresh, checked=False, observable=False)
            assert reg.value("machine.engine.compile_cache.hits") == before + 1
        finally:
            tel.disable()
            set_compile_cache_limit(64)
            clear_compile_cache()

    def test_session_eviction_survived_by_shared_cache(self):
        """Evicting a ProgramSession from the service LRU must not force a
        recompile: the next run builds a fresh Program whose fingerprint
        hits the shared compile cache."""
        clear_compile_cache()
        reg = tel.enable()
        try:
            service = Service(max_sessions=1)
            first = SPIN
            second = SPIN.replace("spin", "spun")
            reply = service.run(
                {"source": first, "function": "spin", "args": [5]}
            )
            # Warm serving defaults to the compiled engine.
            assert reply["engine"] == "ir"
            service.run({"source": second, "function": "spun", "args": [5]})
            before = reg.value("machine.engine.compile_cache.hits")
            service.run({"source": first, "function": "spin", "args": [5]})
            assert reg.value("machine.engine.compile_cache.hits") == before + 1
            assert reg.value("machine.engine.compiles") == 2
        finally:
            tel.disable()
            clear_compile_cache()
