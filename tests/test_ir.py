"""The bytecode engine (``--engine ir``): compile pipeline and parity.

The IR engine must be observationally indistinguishable from the tree
interpreter: identical results, byte-identical heap-event traces, and the
same reservation-check counts in the observable tier, over the whole
corpus and under concurrent scheduling.  The full optimization tier
(erased, untraced) may read the heap less often but must agree on results
and on the shape of the final heap.  Budgets (``max_steps``) are enforced
inside the dispatch loop itself.
"""

import json
from pathlib import Path

import pytest

from repro import api
from repro.bench import bench_ir
from repro.cli import main
from repro.corpus import corpus_names, load_source
from repro.fuzz import FuzzConfig, run_campaign
from repro.ir.bytecode import OP_CHECK, OP_SENDC, compile_program
from repro.lang import ast, parse_program
from repro.runtime.heap import Heap
from repro.runtime.machine import (
    Machine,
    ScriptedScheduler,
    StepLimitExceeded,
    run_function,
)
from repro.runtime.trace import Tracer
from repro.server import Service
from repro.server.protocol import RpcError

CORPUS = Path(__file__).parent.parent / "src" / "repro" / "corpus"

PINGPONG = """
struct data { v : int; }
struct token { iso payload : data; }

def pinger(n : int) : int {
  let last = 0;
  while (n > 0) {
    let d = new data(v = n);
    let t = new token(payload = d);
    send(t);
    let back = recv(data);
    last = back.v;
    n = n - 1
  };
  last
}

def ponger(n : int) : unit {
  while (n > 0) {
    let t = recv(token);
    let d = t.payload;
    d.v = d.v * 2;
    t.payload = new data(v = 0);
    send(d);
    n = n - 1
  }
}
"""

SPIN = """
struct counter { n : int; }
def spin(k : int) : int {
  let c = new counter(n = 0);
  while (k > 0) {
    c.n = c.n + 1;
    k = k - 1
  };
  c.n
}
"""

LOOP = """
def forever() : int {
  let x = 0;
  while (x < 1) { x = 0 };
  x
}
"""


def _int_entry_points(program):
    """Every function callable with small int arguments on one thread
    (``recv`` needs a Machine, so receiving functions are skipped)."""
    for name, fdef in program.funcs.items():
        if any(isinstance(node, ast.Recv) for node in ast.walk(fdef.body)):
            continue
        if all(p.ty == ast.INT for p in fdef.params):
            yield name, [4] * len(fdef.params)


def _run(program, fname, args, *, engine, checked, traced):
    tracer = Tracer() if traced else None
    heap = Heap(tracer=tracer)
    result, interp = run_function(
        program, fname, list(args), heap=heap,
        check_reservations=checked, sink_sends=True,
        max_steps=200_000, engine=engine,
    )
    return result, interp, heap, tracer


class TestCorpusParity:
    @pytest.mark.parametrize("name", corpus_names())
    def test_traced_runs_are_byte_identical(self, name):
        """Observable tier: same results, traces, and check counts."""
        program = parse_program(load_source(name))
        ran = 0
        for fname, args in _int_entry_points(program):
            tree = _run(program, fname, args, engine="tree", checked=True,
                        traced=True)
            ir = _run(program, fname, args, engine="ir", checked=True,
                      traced=True)
            assert repr(tree[0]) == repr(ir[0]), fname
            assert tree[1].stats.reservation_checks == \
                ir[1].stats.reservation_checks, fname
            tree_bytes = json.dumps(list(tree[3].to_dicts()), sort_keys=True)
            ir_bytes = json.dumps(list(ir[3].to_dicts()), sort_keys=True)
            assert tree_bytes == ir_bytes, fname
            ran += 1
        assert ran > 0

    @pytest.mark.parametrize("name", corpus_names())
    def test_erased_full_tier_agrees_on_results(self, name):
        """Full tier (RLE + mem2var live): results and heap shape match."""
        program = parse_program(load_source(name))
        for fname, args in _int_entry_points(program):
            tree = _run(program, fname, args, engine="tree", checked=False,
                        traced=False)
            ir = _run(program, fname, args, engine="ir", checked=False,
                      traced=False)
            assert repr(tree[0]) == repr(ir[0]), fname
            assert len(tree[2]) == len(ir[2]), fname


class TestBudgets:
    def test_step_limit_inside_dispatch_loop(self):
        program = parse_program(LOOP)
        with pytest.raises(StepLimitExceeded, match="step budget exceeded"):
            run_function(program, "forever", [], max_steps=1000, engine="ir")

    def test_step_limit_on_finite_work(self):
        program = parse_program(load_source("sll"))
        with pytest.raises(StepLimitExceeded):
            run_function(program, "make_list", [50], max_steps=10,
                         engine="ir", check_reservations=False)
        result, _ = run_function(program, "make_list", [50],
                                 max_steps=1_000_000, engine="ir",
                                 check_reservations=False)
        assert result is not None


class TestConcurrency:
    def test_scripted_replay_is_deterministic(self):
        program = parse_program(PINGPONG)
        results = []
        for _ in range(2):
            machine = Machine(program, scheduler=ScriptedScheduler(),
                              engine="ir")
            pinger = machine.spawn("pinger", [5])
            machine.spawn("ponger", [5])
            machine.run()
            results.append(pinger.result)
        assert results[0] == results[1] == 2

    def test_traced_machines_agree_across_engines(self):
        """Heap-event traces are yield-granularity-independent, so traced
        runs byte-match between engines under the same seed."""
        traces = {}
        for engine in ("tree", "ir"):
            tracer = Tracer()
            program = parse_program(PINGPONG)
            machine = Machine(program, seed=3, tracer=tracer, engine=engine)
            machine.spawn("pinger", [4])
            machine.spawn("ponger", [4])
            machine.run()
            traces[engine] = json.dumps(list(tracer.to_dicts()),
                                        sort_keys=True)
        assert traces["tree"] == traces["ir"]


class TestCompiler:
    def test_erased_module_contains_no_check_opcodes(self):
        program = parse_program(load_source("rbtree"))
        erased = compile_program(program, checked=False, observable=False)
        opcodes = {
            ins[0] for fn in erased.funcs.values() for ins in fn.code
        }
        assert OP_CHECK not in opcodes
        assert OP_SENDC not in opcodes
        assert erased.counters["checks_erased"] > 0

    def test_checked_module_keeps_guards(self):
        program = parse_program(load_source("rbtree"))
        checked = compile_program(program, checked=True, observable=True)
        opcodes = {
            ins[0] for fn in checked.funcs.values() for ins in fn.code
        }
        assert OP_CHECK in opcodes
        assert checked.counters["checks_erased"] == 0

    def test_optimizer_counters_fire_on_rbtree(self):
        program = parse_program(load_source("rbtree"))
        module = compile_program(program, checked=False, observable=False)
        for counter in ("inlined_calls", "loads_eliminated",
                        "consts_pooled", "dests_sunk",
                        "instructions_emitted"):
            assert module.counters[counter] > 0, counter

    def test_mem2var_promotes_non_escaping_allocation(self):
        program = parse_program(SPIN)
        module = compile_program(program, checked=False, observable=False)
        assert module.counters["fields_promoted"] == 1
        assert module.counters["loads_eliminated"] > 0
        # The allocation itself stays: object counts must not change.
        tree = _run(program, "spin", [10], engine="tree", checked=False,
                    traced=False)
        ir = _run(program, "spin", [10], engine="ir", checked=False,
                  traced=False)
        assert tree[0] == ir[0] == 10
        assert len(tree[2]) == len(ir[2]) == 1

    def test_compile_cache_is_per_configuration(self):
        program = parse_program(SPIN)
        a = compile_program(program, checked=False, observable=False)
        b = compile_program(program, checked=False, observable=False)
        c = compile_program(program, checked=True, observable=True)
        assert a is b
        assert a is not c


class TestSurfaces:
    def test_api_run_engine_roundtrip(self):
        result = api.run(SPIN, "spin", [7], engine="ir")
        assert result.ok and result.value == "7"
        assert result.engine == "ir"
        restored = api.RunResult.from_dict(result.to_dict())
        assert restored.engine == "ir"
        # Documents written before the field existed default to tree.
        legacy = dict(result.to_dict())
        del legacy["engine"]
        assert api.RunResult.from_dict(legacy).engine == "tree"

    def test_api_rejects_unknown_engine(self):
        result = api.run(SPIN, "spin", [7], engine="jit")
        assert not result.ok
        assert result.diagnostics[0].code == "MachineError"
        assert "unknown engine" in result.diagnostics[0].message

    def test_service_run_engine(self):
        service = Service()
        reply = service.run(
            {"source": SPIN, "function": "spin", "args": [6], "engine": "ir"}
        )
        assert reply["ok"] and reply["value"] == "6"
        assert reply["engine"] == "ir"
        with pytest.raises(RpcError, match="params.engine"):
            service.run(
                {"source": SPIN, "function": "spin", "args": [6],
                 "engine": "jit"}
            )

    def test_cli_trace_json_byte_identical_across_engines(self, tmp_path):
        sll = str(CORPUS / "sll.fcl")
        out = {}
        for engine in ("tree", "ir"):
            path = tmp_path / f"{engine}.jsonl"
            code = main(["run", sll, "make_list", "8",
                         "--engine", engine, "--trace-json", str(path)])
            assert code == 0
            out[engine] = path.read_bytes()
        assert out["tree"] == out["ir"]

    def test_cli_paranoid_ir_cross_checks_tree(self, capsys):
        rb = str(CORPUS / "rbtree.fcl")
        code = main(["run", rb, "build_tree", "25", "7",
                     "--engine", "ir", "--paranoid"])
        assert code == 0
        err = capsys.readouterr().err
        assert "traces identical" in err

    def test_fuzz_campaign_reports_engines(self):
        report = run_campaign(FuzzConfig(seed=11, budget=8))
        assert report["engines"] == ["tree", "ir"]
        assert report["clean"]

    def test_bench_ir_smoke(self):
        rows = bench_ir(repeats=1, small=True)
        assert [row["workload"] for row in rows] == [
            "rbtree-build", "rbtree-query", "chain-traverse",
        ]
        for row in rows:
            for key in ("tree_checked_ms", "tree_erased_ms",
                        "ir_checked_ms", "ir_erased_ms", "compile_ms"):
                assert row[key] > 0, key
            assert row["checks_erased"] > 0
            assert row["instructions_emitted"] > 0
