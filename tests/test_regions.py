"""Region and renaming primitives."""

import pytest

from repro.core.regions import Region, RegionRenaming, RegionSupply


class TestRegion:
    def test_identity(self):
        assert Region(1) == Region(1)
        assert Region(1) != Region(2)

    def test_ordering(self):
        assert Region(1) < Region(2)
        assert sorted([Region(3), Region(1)]) == [Region(1), Region(3)]

    def test_str(self):
        assert str(Region(7)) == "r7"

    def test_hashable(self):
        assert len({Region(1), Region(1), Region(2)}) == 2


class TestSupply:
    def test_fresh_are_distinct(self):
        supply = RegionSupply()
        seen = {supply.fresh() for _ in range(100)}
        assert len(seen) == 100

    def test_start_offset(self):
        supply = RegionSupply(start=10)
        assert supply.fresh() == Region(10)

    def test_next_id_tracks(self):
        supply = RegionSupply()
        supply.fresh()
        supply.fresh()
        assert supply.next_id == 2


class TestRenaming:
    def test_bind_and_apply(self):
        r = RegionRenaming()
        assert r.bind(Region(1), Region(5))
        assert r.apply(Region(1)) == Region(5)
        assert r.apply(Region(9)) == Region(9)  # identity off-domain

    def test_idempotent_rebind(self):
        r = RegionRenaming()
        assert r.bind(Region(1), Region(5))
        assert r.bind(Region(1), Region(5))

    def test_conflicting_source(self):
        r = RegionRenaming()
        assert r.bind(Region(1), Region(5))
        assert not r.bind(Region(1), Region(6))

    def test_conflicting_target_keeps_injectivity(self):
        r = RegionRenaming()
        assert r.bind(Region(1), Region(5))
        assert not r.bind(Region(2), Region(5))

    def test_inverse(self):
        r = RegionRenaming()
        r.bind(Region(1), Region(5))
        assert r.inverse(Region(5)) == Region(1)
        assert r.has_target(Region(5))
        assert not r.has_target(Region(1))

    def test_lookup_raises_off_domain(self):
        r = RegionRenaming()
        with pytest.raises(KeyError):
            r.lookup(Region(3))

    def test_items_and_len(self):
        r = RegionRenaming()
        r.bind(Region(1), Region(2))
        r.bind(Region(3), Region(4))
        assert len(r) == 2
        assert dict(r.items()) == {Region(1): Region(2), Region(3): Region(4)}
