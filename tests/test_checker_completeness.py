"""Completeness-flavoured property tests.

Hypothesis composes random FCL programs from statement templates that are
well-typed *by construction* (they never consume a value that is reused,
never leak a parameter, and keep branch effects symmetric).  The checker
must accept every one, the verifier must validate every derivation, and
the interpreter must run them with zero reservation faults and exact
refcounts.

This guards against the checker rejecting reasonable programs (the paper's
whole pitch is *flexibility*) and against unification regressions: every
`if` inserts a join, every loop an invariant search.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis import check_iso_domination, check_refcounts
from repro.core.checker import Checker
from repro.lang import parse_program
from repro.runtime.heap import Heap
from repro.runtime.machine import run_function
from repro.verifier import Verifier

HEADER = """
struct data { v : int; }
struct box { iso inner : data?; tag : int; }
struct cell { other : cell; tag : int; }
"""


class _Gen:
    """Stateful program builder; every emitted statement is well-typed."""

    def __init__(self):
        self.lines = []
        self.counter = 0
        self.boxes = []
        self.cells = []
        self.ints = []

    def fresh(self, prefix):
        self.counter += 1
        return f"{prefix}{self.counter}"

    def emit(self, line, depth):
        self.lines.append("  " * (depth + 1) + line)


def _statement(draw, gen: _Gen, depth: int) -> None:
    choices = ["new_box", "new_cell", "new_int", "fill_box", "read_box",
               "bump_tag", "link_cells", "if_stmt", "loop"]
    kind = draw(st.sampled_from(choices))
    if kind == "new_box":
        name = gen.fresh("b")
        gen.emit(f"let {name} = new box();", depth)
        gen.boxes.append(name)
    elif kind == "new_cell":
        name = gen.fresh("c")
        gen.emit(f"let {name} = new cell();", depth)
        gen.cells.append(name)
    elif kind == "new_int":
        name = gen.fresh("k")
        value = draw(st.integers(min_value=0, max_value=9))
        gen.emit(f"let {name} = {value};", depth)
        gen.ints.append(name)
    elif kind == "fill_box" and gen.boxes:
        box = draw(st.sampled_from(gen.boxes))
        value = draw(st.integers(min_value=0, max_value=9))
        gen.emit(f"{box}.inner = some(new data(v = {value}));", depth)
    elif kind == "read_box" and gen.boxes:
        box = draw(st.sampled_from(gen.boxes))
        name = gen.fresh("r")
        gen.emit(
            f"let {name} = let some(d) = {box}.inner in {{ d.v }} "
            f"else {{ 0 }};",
            depth,
        )
        gen.ints.append(name)
    elif kind == "bump_tag" and gen.boxes:
        box = draw(st.sampled_from(gen.boxes))
        gen.emit(f"{box}.tag = {box}.tag + 1;", depth)
    elif kind == "link_cells" and len(gen.cells) >= 2:
        a = draw(st.sampled_from(gen.cells))
        b = draw(st.sampled_from(gen.cells))
        gen.emit(f"{a}.other = {b};", depth)
    elif kind == "if_stmt" and depth < 2 and gen.ints:
        cond = draw(st.sampled_from(gen.ints))
        gen.emit(f"if ({cond} > 3) {{", depth)
        # Branch bodies only touch existing state symmetrically: prim
        # updates and box fills are join-safe.
        inner = draw(st.integers(min_value=1, max_value=2))
        for _ in range(inner):
            _branch_safe_statement(draw, gen, depth + 1)
        gen.emit("} else {", depth)
        for _ in range(inner):
            _branch_safe_statement(draw, gen, depth + 1)
        gen.emit("};", depth)
    elif kind == "loop" and depth < 2:
        var = gen.fresh("i")
        count = draw(st.integers(min_value=0, max_value=3))
        gen.emit(f"let {var} = {count};", depth)
        gen.emit(f"while ({var} > 0) {{", depth)
        _branch_safe_statement(draw, gen, depth + 1)
        gen.emit(f"{var} = {var} - 1", depth + 1)
        gen.emit("};", depth)


def _branch_safe_statement(draw, gen: _Gen, depth: int) -> None:
    kind = draw(st.sampled_from(["fill_box", "bump_tag", "link_cells", "noop"]))
    if kind == "fill_box" and gen.boxes:
        box = draw(st.sampled_from(gen.boxes))
        value = draw(st.integers(min_value=0, max_value=9))
        gen.emit(f"{box}.inner = some(new data(v = {value}));", depth)
    elif kind == "bump_tag" and gen.boxes:
        box = draw(st.sampled_from(gen.boxes))
        gen.emit(f"{box}.tag = {box}.tag + 7;", depth)
    elif kind == "link_cells" and len(gen.cells) >= 2:
        a = draw(st.sampled_from(gen.cells))
        b = draw(st.sampled_from(gen.cells))
        gen.emit(f"{a}.other = {b};", depth)
    else:
        gen.emit("();", depth)


@st.composite
def programs(draw):
    gen = _Gen()
    count = draw(st.integers(min_value=1, max_value=14))
    for _ in range(count):
        _statement(draw, gen, 0)
    total = " + ".join(gen.ints) if gen.ints else "0"
    body = "\n".join(gen.lines)
    return HEADER + "def main() : int {\n" + body + f"\n  {total}\n}}\n"


@given(programs())
@settings(max_examples=120, deadline=None)
def test_generated_programs_accepted_verified_and_run(source):
    program = parse_program(source)
    derivation = Checker(program).check_program()  # must accept
    Verifier(program).verify_program(derivation)  # must verify
    heap = Heap()
    result, _ = run_function(program, "main", heap=heap)  # must not get stuck
    assert isinstance(result, int)
    check_refcounts(heap)
    # I2 roots are the stack-reachable entry points; approximate them as
    # source objects (no incoming heap references at all).
    from repro.runtime.values import is_loc

    incoming = set()
    for loc in heap.locations():
        for value in heap.obj(loc).fields.values():
            if is_loc(value):
                incoming.add(value)
    roots = [loc for loc in heap.locations() if loc not in incoming]
    check_iso_domination(heap, roots)


@given(programs())
@settings(max_examples=60, deadline=None)
def test_generated_programs_agree_across_semantics(source):
    """Both runtimes (big-step generators, fig 7 small-step machine)
    produce identical results and identical heap traffic on arbitrary
    generated programs."""
    from repro.runtime.smallstep import run_function_smallstep

    program = parse_program(source)
    Checker(program).check_program()
    heap_big = Heap()
    big, _ = run_function(program, "main", heap=heap_big)
    heap_small = Heap()
    small, _ = run_function_smallstep(program, "main", heap=heap_small)
    assert big == small
    assert (heap_big.reads, heap_big.writes) == (
        heap_small.reads,
        heap_small.writes,
    )
    assert len(heap_big) == len(heap_small)
