"""Pruning, unification, step replay, and the backtracking fallback (§4.6, §5.1)."""

import pytest

from repro.core.contexts import ContextError, StaticContext
from repro.core.errors import UnificationError
from repro.core.regions import Region, RegionSupply
from repro.core.unify import (
    Step,
    apply_step,
    match_contexts,
    prune,
    search_unify,
)
from repro.lang import ast

NODE = ast.StructType("node")


def base_ctx():
    ctx = StaticContext(RegionSupply())
    region = ctx.fresh_region()
    ctx.bind("x", NODE, region)
    return ctx, region


class TestPrune:
    def test_drops_dead_vars(self):
        ctx, region = base_ctx()
        ctx.bind("dead", NODE, region)
        prune(ctx, frozenset({"x"}))
        assert not ctx.has_var("dead")
        assert ctx.has_var("x")

    def test_drops_dead_regions(self):
        ctx, region = base_ctx()
        orphan = ctx.fresh_region()
        prune(ctx, frozenset({"x"}))
        assert not ctx.has_region(orphan)
        assert ctx.has_region(region)

    def test_retracts_dead_tracking(self):
        ctx, region = base_ctx()
        ctx.focus("x")
        target = ctx.explore("x", "f")
        steps = prune(ctx, frozenset({"x"}))
        assert ctx.tracked_region_of("x") is None
        assert not ctx.has_region(target)
        rules = [s.rule for s in steps]
        assert "V4-Retract" in rules and "V2-Unfocus" in rules

    def test_keeps_tracking_into_live_regions(self):
        ctx, region = base_ctx()
        ctx.focus("x")
        target = ctx.explore("x", "f")
        ctx.bind("y", NODE, target)
        prune(ctx, frozenset({"x", "y"}))
        assert ctx.tracked_var("x").fields["f"] == target
        assert ctx.has_region(target)

    def test_protect_keeps_regions_alive(self):
        ctx, region = base_ctx()
        orphan = ctx.fresh_region()
        prune(ctx, frozenset({"x"}), protect=frozenset({orphan}))
        assert ctx.has_region(orphan)

    def test_cleans_ghost_tracking_chains(self):
        # Region chain x -> f -> (ghost y) -> g -> r; everything dead is
        # dismantled bottom-up.
        ctx, region = base_ctx()
        ctx.focus("x")
        t1 = ctx.explore("x", "f")
        ctx.bind("y", NODE, t1)
        ctx.focus("y")
        t2 = ctx.explore("y", "g")
        ctx.drop_var("y")  # y out of scope, tracking becomes a ghost
        prune(ctx, frozenset({"x"}))
        assert ctx.tracked_region_of("x") is None
        assert not ctx.has_region(t1)
        assert not ctx.has_region(t2)

    def test_pinned_left_alone(self):
        ctx, region = base_ctx()
        ctx.focus("x")
        ctx.tracked_var("x").pinned = True
        ctx.tracking(region).pinned = True
        prune(ctx, frozenset({"x"}))
        assert ctx.tracked_region_of("x") == region


class TestMatchContexts:
    def test_identical_contexts(self):
        a, _ = base_ctx()
        b = a.clone()
        _ren, sa, sb = match_contexts(a, b, frozenset({"x"}))
        assert a.snapshot() == b.snapshot()

    def test_renaming_alignment(self):
        a, _ = base_ctx()
        b, _ = base_ctx()
        # Different supplies would clash; rebuild b with offset ids.
        b = StaticContext(RegionSupply(100))
        rb = b.fresh_region()
        b.bind("x", NODE, rb)
        _ren, sa, sb = match_contexts(a, b, frozenset({"x"}))
        assert a.snapshot() == b.snapshot()
        assert any(s.rule == "W-RenameAll" for s in sb)

    def test_tracking_mismatch_reconciled_by_retract(self):
        a, ra = base_ctx()
        b = a.clone()
        a.focus("x")
        a.explore("x", "f")
        _ren, sa, sb = match_contexts(a, b, frozenset({"x"}))
        assert a.snapshot() == b.snapshot()
        assert a.tracked_region_of("x") is None  # richer side weakened

    def test_partition_coarsening(self):
        # Side A: x,y share a region; side B: separate regions → B attaches.
        a = StaticContext(RegionSupply())
        r = a.fresh_region()
        a.bind("x", NODE, r)
        a.bind("y", NODE, r)
        b = StaticContext(RegionSupply(10))
        b.bind("x", NODE, b.fresh_region())
        b.bind("y", NODE, b.fresh_region())
        _ren, sa, sb = match_contexts(a, b, frozenset({"x", "y"}))
        assert a.snapshot() == b.snapshot()
        assert any(s.rule == "V5-Attach" for s in sb)

    def test_type_mismatch_rejected(self):
        a, _ = base_ctx()
        b = StaticContext(RegionSupply(10))
        b.bind("x", ast.StructType("other"), b.fresh_region())
        with pytest.raises(UnificationError):
            match_contexts(a, b, frozenset({"x"}))

    def test_live_divergence_rejected(self):
        a, _ = base_ctx()
        b = StaticContext(RegionSupply(10))  # x missing on side B
        with pytest.raises(UnificationError):
            match_contexts(a, b, frozenset({"x"}))

    def test_bottom_fields_aligned(self):
        a, _ = base_ctx()
        b = a.clone()
        for ctx in (a, b):
            ctx.focus("x")
            ctx.explore("x", "f")
        a.invalidate_field("x", "f")
        # Keep f's target alive on b so it cannot just be retracted.
        b.bind("y", NODE, b.tracked_var("x").fields["f"])
        a.bind("y", NODE, a.fresh_region())
        _ren, sa, sb = match_contexts(a, b, frozenset({"x", "y"}))
        assert a.snapshot() == b.snapshot()


class TestStepReplay:
    def test_all_steps_replayable(self):
        ctx, region = base_ctx()
        trace = [
            Step("V1-Focus", ("x",)),
            Step("V3-Explore", ("x", "f", Region(77))),
            Step("W-Bind", ("y", "node", Region(77))),
            Step("W-InvalidateField", ("x", "f")),
            Step("W-DropVar", ("y",)),
        ]
        for step in trace:
            apply_step(ctx, step)
        assert ctx.tracked_var("x").fields["f"] is None

    def test_replay_rejects_violations(self):
        ctx, region = base_ctx()
        with pytest.raises(ContextError):
            apply_step(ctx, Step("V2-Unfocus", ("x",)))  # not focused

    def test_fresh_region_collision_rejected(self):
        ctx, region = base_ctx()
        with pytest.raises(ContextError):
            apply_step(ctx, Step("W-FreshRegion", (region,)))

    def test_unknown_step_rejected(self):
        ctx, _ = base_ctx()
        with pytest.raises(ContextError):
            apply_step(ctx, Step("V9-Nonsense", ()))

    def test_rename_all_requires_injectivity(self):
        ctx, region = base_ctx()
        other = ctx.fresh_region()
        with pytest.raises(ContextError):
            apply_step(
                ctx,
                Step("W-RenameAll", (((region, Region(50)), (other, Region(50))),)),
            )


class TestSearchUnify:
    def test_search_finds_simple_unifier(self):
        a, _ = base_ctx()
        b = a.clone()
        a.focus("x")
        found_a, found_b, pa, pb = search_unify(a, b, frozenset({"x"}))
        assert found_a.snapshot() == found_b.snapshot()

    def test_search_matches_greedy_on_tracking(self):
        a, _ = base_ctx()
        b = a.clone()
        a.focus("x")
        a.explore("x", "f")
        found_a, found_b, pa, pb = search_unify(a, b, frozenset({"x"}))
        assert found_a.snapshot() == found_b.snapshot()

    def test_search_failure_raises(self):
        a, _ = base_ctx()
        b = StaticContext(RegionSupply(10))
        b.bind("x", NODE, b.fresh_region())
        b.bind("w", NODE, b.fresh_region())
        with pytest.raises(UnificationError):
            # Γ domains differ and weakening of live vars is not allowed.
            search_unify(a, b, frozenset({"x", "w"}), max_depth=2)

    def test_search_records_replayable_paths(self):
        a, _ = base_ctx()
        b = a.clone()
        a.focus("x")
        found_a, found_b, pa, pb = search_unify(a, b, frozenset({"x"}))
        replay = a.clone()
        for step in pa:
            apply_step(replay, step)
        assert replay.snapshot() == found_a.snapshot()
