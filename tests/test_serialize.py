"""Derivation JSON round-trip: the prover→verifier boundary as data."""

import pytest

from repro.core.checker import Checker
from repro.core.serialize import (
    program_derivation_from_json,
    program_derivation_to_json,
)
from repro.corpus import corpus_names, load_program
from repro.verifier import VerificationError, Verifier


@pytest.mark.parametrize("name", corpus_names())
def test_roundtrip_verifies(name):
    # Check in one "process", serialize, deserialize, verify the copy.
    program = load_program(name)
    derivation = Checker(program).check_program()
    text = program_derivation_to_json(derivation)
    revived = program_derivation_from_json(text)
    verifier = Verifier(program)
    assert verifier.verify_program(revived) == verifier.verify_program(derivation)
    assert verifier.verify_program(revived) > 0


def test_roundtrip_is_faithful():
    program = load_program("sll")
    derivation = Checker(program).check_program()
    text = program_derivation_to_json(derivation, indent=1)
    revived = program_derivation_from_json(text)
    again = program_derivation_to_json(revived, indent=1)
    assert text == again


def test_tampered_json_rejected():
    program = load_program("queue")
    derivation = Checker(program).check_program()
    text = program_derivation_to_json(derivation)
    # Forge a region id inside the JSON.
    tampered = text.replace('"region": 0', '"region": 424242', 1)
    revived = program_derivation_from_json(tampered)
    with pytest.raises(VerificationError):
        Verifier(program).verify_program(revived)


def test_steps_survive():
    program = load_program("dll")
    derivation = Checker(program).check_program()
    revived = program_derivation_from_json(
        program_derivation_to_json(derivation)
    )
    original = derivation.funcs["remove_tail"].body
    copy = revived.funcs["remove_tail"].body
    assert original.render() == copy.render()
