"""Tests for the algorithms corpus: merge sort, partition, sorted insert —
ownership choreography over the recursively linear list."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.analysis import check_iso_domination, check_refcounts
from repro.core.checker import Checker
from repro.core.errors import TypeError_
from repro.corpus import load_program, load_source
from repro.lang import parse_program
from repro.runtime.heap import Heap
from repro.runtime.machine import run_function
from repro.runtime.values import NONE


def build_list(program, heap, values):
    lst, _ = run_function(program, "make_list_lcg", [0, 0], heap=heap)
    for v in reversed(values):
        d = heap.alloc(program.structs["data"], {"v": v})
        node = heap.alloc(
            program.structs["sll_node"],
            {"payload": d, "next": heap.obj(lst).fields["hd"]},
        )
        heap.write_field(lst, "hd", node)
    return lst


def to_python(program, heap, lst):
    out = []
    node = heap.obj(lst).fields["hd"]
    while node is not NONE:
        payload = heap.obj(node).fields["payload"]
        out.append(heap.obj(payload).fields["v"])
        node = heap.obj(node).fields["next"]
    return out


@pytest.fixture()
def env():
    return load_program("algorithms"), Heap()


class TestMergeSort:
    def test_sorts(self, env):
        program, heap = env
        lst = build_list(program, heap, [5, 2, 9, 1, 7, 3])
        run_function(program, "sort", [lst], heap=heap)
        assert to_python(program, heap, lst) == [1, 2, 3, 5, 7, 9]

    def test_empty_and_singleton(self, env):
        program, heap = env
        for values in ([], [4]):
            lst = build_list(program, heap, values)
            run_function(program, "sort", [lst], heap=heap)
            assert to_python(program, heap, lst) == sorted(values)

    def test_duplicates_preserved(self, env):
        program, heap = env
        lst = build_list(program, heap, [3, 1, 3, 2, 3])
        run_function(program, "sort", [lst], heap=heap)
        assert to_python(program, heap, lst) == [1, 2, 3, 3, 3]

    def test_split_bisects(self, env):
        program, heap = env
        lst = build_list(program, heap, [0, 1, 2, 3, 4, 5])
        head = heap.obj(lst).fields["hd"]
        second, _ = run_function(program, "split", [head], heap=heap)
        assert to_python(program, heap, lst) == [0, 2, 4]
        # Wrap the detached half to walk it.
        other = heap.alloc(program.structs["sll"], {"hd": second})
        assert to_python(program, heap, other) == [1, 3, 5]

    @given(st.lists(st.integers(min_value=-100, max_value=100), max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_matches_python_sorted(self, values):
        program = load_program("algorithms")
        heap = Heap()
        lst = build_list(program, heap, values)
        run_function(program, "sort", [lst], heap=heap)
        assert to_python(program, heap, lst) == sorted(values)
        check_refcounts(heap)
        check_iso_domination(heap, [lst])


class TestPartition:
    def test_partitions(self, env):
        program, heap = env
        lst = build_list(program, heap, [5, 1, 8, 2, 9, 3])
        out, _ = run_function(program, "partition", [lst, 5], heap=heap)
        assert sorted(to_python(program, heap, lst)) == [5, 8, 9]
        assert sorted(to_python(program, heap, out)) == [1, 2, 3]

    def test_partition_disjoint_ownership(self, env):
        program, heap = env
        lst = build_list(program, heap, [5, 1, 8, 2])
        out, _ = run_function(program, "partition", [lst, 5], heap=heap)
        assert heap.live_set(lst).isdisjoint(heap.live_set(out))
        check_iso_domination(heap, [lst, out])

    @given(
        st.lists(st.integers(min_value=0, max_value=50), max_size=25),
        st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_python_filter(self, values, pivot):
        program = load_program("algorithms")
        heap = Heap()
        lst = build_list(program, heap, values)
        out, _ = run_function(program, "partition", [lst, pivot], heap=heap)
        kept = to_python(program, heap, lst)
        moved = to_python(program, heap, out)
        assert sorted(kept) == sorted(v for v in values if v >= pivot)
        assert sorted(moved) == sorted(v for v in values if v < pivot)
        check_refcounts(heap)


class TestSortedInsert:
    @given(st.lists(st.integers(min_value=0, max_value=99), max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_insertion_sort(self, values):
        program = load_program("algorithms")
        heap = Heap()
        lst = build_list(program, heap, [])
        for v in values:
            d = heap.alloc(program.structs["data"], {"v": v})
            run_function(program, "insert_sorted", [lst, d], heap=heap)
        assert to_python(program, heap, lst) == sorted(values)


class TestTypeLevelForcedUnlink:
    def test_forgetting_the_unlink_is_a_type_error(self):
        # partition_after without `next.next = none`: the pushed node would
        # still own the remainder of the list; push_node's consumption then
        # invalidates n.next, and the recursion cannot proceed.
        source = load_source("algorithms").replace("next.next = none;\n", "")
        assert "next.next = none" not in source.split("partition_after")[1].split("}")[0]
        with pytest.raises(TypeError_):
            Checker(parse_program(source)).check_program()

    def test_calling_node_value_with_live_tracking_is_a_type_error(self):
        # The rejected form of is_sorted (documented in algorithms.fcl).
        source = load_source("algorithms") + """
def is_sorted_bad(n : sll_node) : bool {
  let some(next) = n.next in {
    if (node_value(n) <= node_value(next)) { is_sorted_bad(next) }
    else { false }
  } else { true }
}
"""
        with pytest.raises(TypeError_):
            Checker(parse_program(source)).check_program()


class TestVerification:
    def test_algorithms_verify(self):
        from repro.verifier import Verifier

        program = load_program("algorithms")
        derivation = Checker(program).check_program()
        assert Verifier(program).verify_program(derivation) > 300
