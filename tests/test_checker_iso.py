"""Checker tests for iso fields: focus, explore, aliasing, invalidation —
the tempered-domination machinery of §4."""

import pytest

from repro.core.checker import CheckProfile, Checker, check_source
from repro.core.errors import (
    InvalidatedField,
    IsoFieldNotTrackable,
    SeparationError,
    TypeError_,
    TypeMismatch,
    UnificationError,
)
from repro.lang import parse_program

STRUCTS = """
struct data { v : int; }
struct box { iso inner : data?; }
struct node { iso payload : data; iso next : node?; }
struct pair { iso a : data?; iso b : data?; }
"""


def accept(body, ret="unit", params="", extra=""):
    check_source(STRUCTS + extra + f"def fn({params}) : {ret} {{ {body} }}")


def reject(exc, body, ret="unit", params="", extra=""):
    with pytest.raises(exc):
        accept(body, ret, params, extra)


class TestIsoReads:
    def test_simple_read(self):
        accept("let m = b.inner; ()", params="b : box")

    def test_read_requires_variable_base(self):
        # Tracking is per-variable (§4.4); chained iso access must be bound.
        extra = "struct wrap { iso w : box; }\n"
        reject(
            IsoFieldNotTrackable,
            "let v = o.w.inner; ()",
            params="o : wrap",
            extra=extra,
        )

    def test_read_after_binding_chain(self):
        accept(
            "let some(n2) = n.next in { let v = n2.next; () } else { () }",
            params="n : node",
        )

    def test_double_read_same_field_reuses_tracking(self):
        # Reading x.f twice yields the same region (T5 via the recorded
        # mapping, not a second explore).
        accept("let m1 = b.inner; let m2 = b.inner; ()", params="b : box")

    def test_two_fields_of_same_var(self):
        accept("let p1 = p.a; let p2 = p.b; ()", params="p : pair")

    def test_aliases_cannot_both_focus(self):
        # b2 aliases b (same region): focusing both would let one iso field
        # be tracked twice (§4.2).  Reading b2.inner after b.inner is
        # rejected while b's tracking is pinned down by a live target.
        reject(
            IsoFieldNotTrackable,
            "let b2 = b; let m1 = b.inner; let m2 = b2.inner; "
            "let some(d) = m1 in { let some(e) = m2 in { () } else { () } } "
            "else { () }",
            params="b : box",
        )

    def test_alias_focus_ok_when_tracking_released(self):
        # Once the first alias's tracked state is dead, the checker can
        # unfocus it and focus the second alias.
        accept("let b2 = b; let m1 = b.inner; let m2 = b2.inner; ()", params="b : box")


class TestIsoWrites:
    def test_simple_write(self):
        accept("b.inner = none", params="b : box")

    def test_write_fresh_data(self):
        accept(
            "let d = new data(v = 1); b.inner = some(d)",
            params="b : box",
        )

    def test_write_requires_variable_base(self):
        extra = "struct wrap { iso w : box; }\n"
        reject(
            IsoFieldNotTrackable,
            "o.w.inner = none",
            params="o : wrap",
            extra=extra,
        )

    def test_write_own_region_creates_tracked_cycle(self):
        # §4.4: iso fields may be reassigned even if doing so creates
        # cycles; the field is tracked, so tempered domination is kept.
        # But the cycle can never be untracked, so the default signature
        # (empty output tracking) is unsatisfiable and the function is
        # rejected at its boundary.
        reject(
            TypeError_,
            "let some(n2) = n.next in { n2.next = some(n2) } else { () }",
            params="n : node",
        )

    def test_write_prim_rejected(self):
        reject(TypeMismatch, "b.inner = 3", params="b : box")

    def test_overwrite_releases_old_target(self):
        accept(
            "let d1 = new data(v = 1); let d2 = new data(v = 2); "
            "b.inner = some(d1); b.inner = some(d2)",
            params="b : box",
        )


class TestConsumptionAndInvalidation:
    def test_send_invalidates_aliases(self):
        reject(
            TypeError_,
            "let d2 = d; send(d); d2.v",
            ret="int",
            params="d : data",
        )

    def test_send_invalidates_tracked_field_target(self):
        # After sending the target of b.inner, the field must be reassigned
        # before b can be released.
        accept(
            "let some(d) = b.inner in { send(d); b.inner = none } else { () }",
            params="b : box",
        )

    def test_use_after_field_target_sent_rejected(self):
        reject(
            TypeError_,
            "let some(d) = b.inner in { send(d); let e = b.inner; () } "
            "else { () }",
            params="b : box",
        )

    def test_param_of_consumed_region_unusable(self):
        extra = "def eat(d : data) : unit consumes d { send(d) }\n"
        reject(
            TypeError_,
            "eat(d); d.v",
            ret="int",
            params="d : data",
            extra=extra,
        )

    def test_consumed_iso_field_must_be_reassigned(self):
        extra = "def eat(m : data?) : unit consumes m { () }\n"
        accept(
            "eat(b.inner); b.inner = none",
            params="b : box",
            extra=extra,
        )

    def test_consumed_iso_field_read_before_reassign_rejected(self):
        extra = "def eat(m : data?) : unit consumes m { () }\n"
        reject(
            InvalidatedField,
            "eat(b.inner); let x = b.inner; ()",
            params="b : box",
            extra=extra,
        )


class TestDominationAtBoundaries:
    def test_returning_tracked_target_without_after_rejected(self):
        # fig 4's essence: the result would still be reachable through the
        # parameter's iso field.
        reject(
            TypeError_,
            "b.inner",
            ret="data?",
            params="b : box",
        )

    def test_after_annotation_permits_it(self):
        check_source(
            STRUCTS
            + "def take(b : box) : data? after: b.inner ~ result { b.inner }"
        )

    def test_detached_result_accepted(self):
        accept(
            "let some(d) = b.inner in { b.inner = none; some(d) } "
            "else { none }",
            ret="data?",
            params="b : box",
        )


class TestProfileRestrictions:
    def test_no_focus_profile_rejects_iso_read(self):
        profile = CheckProfile(name="nofocus", allow_focus=False)
        program = parse_program(
            STRUCTS + "def f(b : box) : unit { let m = b.inner; () }"
        )
        with pytest.raises(IsoFieldNotTrackable):
            Checker(program, profile).check_program()

    def test_no_intra_region_profile_rejects_dll_struct(self):
        from repro.core.validate import DeclarationError

        profile = CheckProfile(name="affine", allow_intra_region_refs=False)
        program = parse_program(
            "struct n { other : n; }"
        )
        with pytest.raises(DeclarationError):
            Checker(program, profile).check_program()

    def test_no_if_disconnected_profile(self):
        profile = CheckProfile(name="nodisc", allow_if_disconnected=False)
        program = parse_program(
            STRUCTS
            + "def f(a : data) : unit {"
            "  let b = a;"
            "  if disconnected(a, b) { () } else { () }"
            "}"
        )
        with pytest.raises(TypeError_):
            Checker(program, profile).check_program()
