"""Property-based verifier adversary: random load-bearing mutations of
valid derivations must always be rejected.

Mutations chosen to be semantically load-bearing (not cosmetic):

* forging a node's result region to a region that does not exist;
* deleting a recorded virtual-transformation step — restricted to step
  kinds that always change the context (a ``W-Bind`` re-binding a variable
  to its current region, or a ``T7-SetField`` re-pointing a field at its
  current target, is a genuine no-op: dropping it leaves the derivation
  *valid*, and the verifier rightly accepts it);
* re-pointing a node's post snapshot at its pre snapshot when the node has
  steps (claiming the steps had no effect).
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.checker import Checker
from repro.core.derivation import Derivation
from repro.corpus import corpus_names, load_program
from repro.verifier import VerificationError, Verifier


def _all_nodes(pd):
    out = []

    def walk(node: Derivation):
        out.append(node)
        for child in node.children:
            walk(child)

    for fd in pd.funcs.values():
        walk(fd.body)
    return out


def _fresh_derivation(name):
    program = load_program(name)
    return program, Checker(program).check_program()


@given(
    st.sampled_from(corpus_names()),
    st.randoms(use_true_random=False),
    st.sampled_from(["forge_region", "drop_step", "flatten_effect"]),
)
@settings(max_examples=60, deadline=None)
def test_mutations_rejected(name, rng, mutation):
    program, pd = _fresh_derivation(name)
    nodes = _all_nodes(pd)

    if mutation == "forge_region":
        candidates = [n for n in nodes if n.region is not None]
        if not candidates:
            return
        node = rng.choice(candidates)
        node.region = 424_242
    elif mutation == "drop_step":
        effectful = (
            "V1-Focus",
            "V2-Unfocus",
            "V3-Explore",
            "V4-Retract",
            "V5-Attach",
            "W-FreshRegion",
            "W-DropRegion",
            "W-InvalidateField",
            "T16-ConsumeRegion",
            "W-GhostRename",
        )
        candidates = [
            (n, i)
            for n in nodes
            for i, s in enumerate(n.steps)
            if s.rule in effectful
            # Unfocusing a variable right before its whole region is
            # dropped is pure bookkeeping: removing such a step yields a
            # *valid* alternative derivation (W-DropRegion subsumes it), so
            # exits that end in region drops are excluded.
            and not (
                s.rule == "V2-Unfocus"
                and n.rule == "T0-Function-Definition"
            )
        ]
        if not candidates:
            return
        node, index = rng.choice(candidates)
        steps = list(node.steps)
        steps.pop(index)
        node.steps = tuple(steps)
    else:  # flatten_effect
        candidates = [
            n for n in nodes if n.steps and n.pre != n.post
        ]
        if not candidates:
            return
        node = rng.choice(candidates)
        node.post = node.pre

    with pytest.raises(VerificationError):
        Verifier(program).verify_program(pd)


@given(st.sampled_from(corpus_names()))
@settings(max_examples=10, deadline=None)
def test_unmutated_always_verifies(name):
    program, pd = _fresh_derivation(name)
    assert Verifier(program).verify_program(pd) > 0
