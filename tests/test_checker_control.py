"""Checker tests: branch unification (T13), loops (T14), if-disconnected
(T15), and send/recv (T16/T17)."""

import pytest

from repro.core.checker import CheckProfile, Checker, check_source
from repro.core.errors import (
    SendError,
    SeparationError,
    TypeError_,
    TypeMismatch,
    UnificationError,
)
from repro.lang import parse_program

STRUCTS = """
struct data { v : int; }
struct box { iso inner : data?; }
struct node { iso payload : data; iso next : node?; }
struct cell { other : cell; tag : int; }
"""


def accept(src):
    check_source(STRUCTS + src)


def reject(exc, src):
    with pytest.raises(exc):
        accept(src)


class TestBranchJoins:
    def test_branches_with_different_tracking(self):
        # Then-branch focuses and explores; else-branch does not: the join
        # retracts/unfocuses on the richer side.
        accept(
            """
            def f(b : box, c : bool) : int {
              if (c) {
                let some(d) = b.inner in { d.v } else { 0 }
              } else { 1 }
            }
            """
        )

    def test_branches_allocating_in_different_shapes(self):
        accept(
            """
            def f(c : bool) : data {
              if (c) { new data(v = 1) } else { new data(v = 2) }
            }
            """
        )

    def test_one_branch_consumes_live_var_rejected(self):
        reject(
            TypeError_,
            """
            def f(d : data, c : bool) : int {
              if (c) { send(d); 0 } else { 1 };
              d.v
            }
            """,
        )

    def test_both_branches_consume_dead_var(self):
        accept(
            """
            def f(c : bool) : unit {
              let d = new data(v = 1);
              if (c) { send(d) } else { send(d) }
            }
            """
        )

    def test_one_branch_merges_regions(self):
        # Then-branch attaches d into c's region (non-iso write); the else
        # branch does not.  Unification coarsens the else side.
        accept(
            """
            def f(c : cell, flag : bool) : unit {
              let d = new cell();
              if (flag) { c.other = d } else { () };
              ()
            }
            """
        )

    def test_join_result_regions_unify(self):
        accept(
            """
            def f(b : box, c : bool) : data? {
              if (c) {
                let some(d) = b.inner in { b.inner = none; some(d) }
                else { none }
              } else { none }
            }
            """
        )


class TestWhile:
    def test_loop_invariant_with_tracking(self):
        # The loop body reads and rewrites an iso field every iteration:
        # the invariant must absorb the tracking churn.
        accept(
            """
            def f(b : box, n : int) : unit {
              while (n > 0) {
                let d = new data(v = n);
                b.inner = some(d);
                n = n - 1
              }
            }
            """
        )

    def test_loop_cursor_in_shared_region(self):
        accept(
            """
            def f(c : cell, n : int) : int {
              let cur = c;
              while (n > 0) { cur = cur.other; n = n - 1 };
              cur.tag
            }
            """
        )

    def test_loop_cannot_leak_region_each_iteration(self):
        # Sending the same variable twice: the second iteration uses a
        # consumed variable.
        reject(
            TypeError_,
            """
            def f(d : data, n : int) : unit {
              while (n > 0) { send(d); n = n - 1 }
            }
            """,
        )

    def test_loop_allocate_and_send_each_iteration(self):
        accept(
            """
            def f(n : int) : unit {
              while (n > 0) {
                let d = new data(v = n);
                send(d);
                n = n - 1
              }
            }
            """
        )


class TestSendRecv:
    def test_send_requires_regioned_value(self):
        reject(SendError, "def f() : unit { send(3) }")

    def test_send_param_not_allowed_without_consumes(self):
        reject(TypeError_, "def f(d : data) : unit { send(d) }")

    def test_recv_unknown_struct(self):
        from repro.core.errors import UnknownName

        reject(UnknownName, "def f() : unit { let x = recv(nosuch); () }")

    def test_recv_prim_rejected(self):
        reject(TypeMismatch, "def f() : unit { let x = recv(int); () }")

    def test_recv_then_use(self):
        accept("def f() : int { let d = recv(data); d.v }")

    def test_recv_then_send_on(self):
        accept("def f() : unit { let d = recv(data); send(d) }")

    def test_send_region_with_tracked_content(self):
        # Sending a box whose iso field is currently tracked first requires
        # the tracking context to be emptied — possible here because the
        # target is dead.
        accept(
            """
            def f() : unit {
              let b = new box();
              let d = new data(v = 1);
              b.inner = some(d);
              send(b)
            }
            """
        )

    def test_send_blocked_by_live_interior_reference(self):
        # d lives in the region targeted by b.inner; sending b would take
        # d's object along.
        reject(
            TypeError_,
            """
            def f() : int {
              let b = new box();
              let d = new data(v = 1);
              b.inner = some(d);
              send(b);
              d.v
            }
            """,
        )


class TestIfDisconnected:
    def test_args_must_be_variables(self):
        reject(
            TypeError_,
            """
            def f(c : cell) : unit {
              if disconnected(c.other, c) { () } else { () }
            }
            """,
        )

    def test_args_must_share_region(self):
        reject(
            SeparationError,
            """
            def f() : unit {
              let a = new cell();
              let b = new cell();
              if disconnected(a, b) { () } else { () }
            }
            """,
        )

    def test_args_must_be_structs(self):
        reject(
            TypeMismatch,
            """
            def f(x : int) : unit {
              let y = x;
              if disconnected(x, y) { () } else { () }
            }
            """,
        )

    def test_split_detaches_left(self):
        # In the then branch, a sits in a fresh region and may be sent
        # while b stays usable.
        accept(
            """
            def f(c : cell) : int {
              let a = c.other;
              a.other = a;
              c.other = c;
              if disconnected(a, c) { send(a); c.tag } else { c.tag }
            }
            """
        )

    def test_aliases_dropped_in_then_branch(self):
        # x aliases the region being split; it is unusable in the then
        # branch.
        reject(
            TypeError_,
            """
            def f(c : cell) : int {
              let a = c.other;
              let x = c.other;
              if disconnected(a, c) { x.tag } else { 0 }
            }
            """,
        )

    def test_inbound_tracked_field_invalidated(self):
        # fig 5's "l.hd invalid at branch start": the tracked field into
        # the split region must be reassigned before re-use.
        reject(
            TypeError_,
            """
            struct holder { iso spine : cell?; }
            def f(h : holder) : unit {
              let some(c) = h.spine in {
                let a = c.other;
                if disconnected(a, c) {
                  let some(z) = h.spine in { () } else { () }
                } else { () }
              } else { () }
            }
            """,
        )

    def test_inbound_tracked_field_usable_after_reassign(self):
        accept(
            """
            struct holder { iso spine : cell?; }
            def f(h : holder) : unit {
              let some(c) = h.spine in {
                let a = c.other;
                a.other = a;
                c.other = c;
                if disconnected(a, c) {
                  h.spine = some(c);
                  send(a)
                } else { h.spine = some(c) }
              } else { () }
            }
            """
        )
