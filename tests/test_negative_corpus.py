"""Every negative-corpus program is rejected with the expected error class,
and none of them are near-misses (a minimally fixed variant is accepted
where one exists)."""

import pytest

from repro.core.checker import Checker, check_source
from repro.core.errors import TypeError_
from repro.corpus.negative import NEGATIVE_CASES, case_names, get_case
from repro.lang import parse_program


@pytest.mark.parametrize("name", case_names())
def test_rejected_with_expected_error(name):
    case = get_case(name)
    with pytest.raises(case.error):
        check_source(case.source)


def test_catalog_is_nontrivial():
    assert len(NEGATIVE_CASES) >= 18


#: (negative case, accepted repaired variant) — demonstrating each
#: rejection is precise, not a blanket refusal.
REPAIRS = {
    "use-after-send": """
struct data { v : int; }
def f() : int {
  let d = new data(v = 1);
  let value = d.v;
  send(d);
  value
}
""",
    "param-stashed-without-consumes": """
struct data { v : int; }
struct box { iso inner : data?; }
def stash(b : box, d : data) : unit consumes d {
  b.inner = some(d)
}
""",
    "aliased-arguments": """
struct data { v : int; }
def two(a, b : data) : unit before: a ~ b { () }
def f(d : data) : unit { two(d, d) }
""",
    "escaping-interior-reference": """
struct data { v : int; }
struct box { iso inner : data?; }
def leak(b : box) : data? after: b.inner ~ result {
  b.inner
}
""",
    "invalidated-field-read": """
struct data { v : int; }
struct box { iso inner : data?; }
def eat(m : data?) : unit consumes m { () }
def f(b : box) : unit {
  eat(b.inner);
  b.inner = none;
  let x = b.inner;
  ()
}
""",
    "keep-and-return": """
struct data { v : int; }
def identity(d : data) : data after: d ~ result { d }
""",
    "pinned-iso-access": """
struct data { v : int; }
struct box { iso inner : data?; }
def f(b : box) : unit {
  let m = b.inner;
  ()
}
""",
    "none-without-context": """
struct data { v : int; }
struct box { iso inner : data?; }
def f(b : box) : unit {
  b.inner = none
}
""",
}


@pytest.mark.parametrize("name", sorted(REPAIRS))
def test_repaired_variant_accepted(name):
    # The corresponding negative case is rejected ...
    with pytest.raises(get_case(name).error):
        check_source(get_case(name).source)
    # ... while the minimally repaired version checks.
    check_source(REPAIRS[name])


@pytest.mark.parametrize("name", case_names())
def test_rejection_has_stable_position(name):
    """Every rejection points at a real source position and renders as a
    ``file:line:col:`` diagnostic (no caret floating off the excerpt)."""
    from repro.lang.diagnostics import render_diagnostic, strip_location_prefix

    case = get_case(name)
    with pytest.raises(case.error) as exc:
        check_source(case.source)
    span = exc.value.span
    assert span is not None, f"{name}: rejection carries no span"
    lines = case.source.splitlines()
    assert 1 <= span.line <= len(lines), f"{name}: line {span.line} out of range"
    assert span.column >= 1, f"{name}: column {span.column} out of range"
    rendered = render_diagnostic(
        case.source, span, strip_location_prefix(str(exc.value)), filename="neg.fcl"
    )
    assert f"neg.fcl:{span.line}:{span.column}:" in rendered
    caret_line = rendered.splitlines()[-1]
    excerpt_line = rendered.splitlines()[-2]
    assert len(caret_line) <= len(excerpt_line) + 1  # caret stays on the line
