"""Pretty-printer round-trip tests, including a hypothesis program generator."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.lang import ast, parse_program, pretty_expr, pretty_program
from repro.corpus import corpus_names, load_program


def roundtrips(program: ast.Program) -> bool:
    text = pretty_program(program)
    again = parse_program(text)
    return pretty_program(again) == text


class TestManualRoundTrips:
    def test_statement_head_operands_parenthesized(self):
        # Found by the differential fuzzer: shrinking can leave a let/if
        # in binop operand position, where the grammar only admits it
        # inside parens.  The printer must re-insert them or its output
        # fails to re-parse.
        expr = ast.Binop(
            "+",
            ast.VarRef("acc"),
            ast.LetSome(
                "x",
                ast.VarRef("m"),
                ast.Block([ast.IntLit(1)]),
                ast.Block([ast.IntLit(0)]),
            ),
        )
        program = ast.Program(
            structs={},
            funcs={
                "f": ast.FuncDef(
                    name="f",
                    params=[ast.Param("acc", ast.INT), ast.Param("m", ast.MaybeType(ast.INT))],
                    return_type=ast.INT,
                    body=ast.Block([expr]),
                )
            },
        )
        text = pretty_program(program)
        assert "(let some" in text
        assert roundtrips(parse_program(text))

    def test_corpus_round_trips(self):
        for name in corpus_names():
            assert roundtrips(load_program(name)), name

    def test_annotations_survive(self):
        src = (
            "def f(a, b : node) : node? consumes b "
            "before: a ~ b after: a.hd ~ result { none }"
        )
        program = parse_program("struct node { iso hd : node?; }" + src)
        text = pretty_program(program)
        again = parse_program(text)
        f = again.funcs["f"]
        assert f.consumes == ["b"]
        assert f.before == [(("a",), ("b",))]
        assert f.after == [(("a", "hd"), ("result",))]

    def test_expression_rendering(self):
        from repro.lang import parse_expr

        cases = [
            "(1 + (2 * 3))",
            "some(x)",
            "is_none(x.f)",
            "send(d)",
            "recv(data)",
            "new t(a = 1)",
        ]
        for text in cases:
            assert pretty_expr(parse_expr(text)) == text


# ---------------------------------------------------------------------------
# Hypothesis: generate random small programs, pretty-print, re-parse.
# ---------------------------------------------------------------------------

_names = st.sampled_from(["a", "b", "c", "x", "y", "z"])
_fields = st.sampled_from(["f", "g", "payload", "next"])


def _operands(depth):
    """Expressions valid in operand position (no let/if/while heads: the
    grammar stratifies those to statement position)."""
    leaf = st.one_of(
        st.integers(min_value=0, max_value=99).map(lambda v: ast.IntLit(v)),
        st.booleans().map(lambda v: ast.BoolLit(v)),
        st.just(ast.UnitLit()),
        st.just(ast.NoneLit()),
        _names.map(lambda n: ast.VarRef(n)),
    )
    if depth == 0:
        return leaf
    sub = _operands(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(sub, sub).map(lambda t: ast.Binop("+", t[0], t[1])),
        st.tuples(sub, sub).map(lambda t: ast.Binop("==", t[0], t[1])),
        sub.map(lambda e: ast.SomeExpr(e) if not isinstance(e, ast.NoneLit) else e),
        st.tuples(_names, _fields).map(
            lambda t: ast.FieldRef(ast.VarRef(t[0]), t[1])
        ),
        st.lists(sub, min_size=1, max_size=2).map(
            lambda args: ast.Call("f", args)
        ),
        sub.map(lambda e: ast.IsNone(e)),
    )


def _stmts(depth):
    operand = _operands(max(depth - 1, 0))
    if depth == 0:
        return operand
    sub = _stmts(depth - 1)
    block = st.lists(sub, min_size=0, max_size=3).map(lambda es: ast.Block(es))
    return st.one_of(
        operand,
        st.tuples(_names, operand).map(lambda t: ast.LetBind(t[0], t[1])),
        st.tuples(operand, block, block).map(
            lambda t: ast.If(t[0], t[1], t[2])
        ),
        st.tuples(_names, operand, block, block).map(
            lambda t: ast.LetSome(t[0], t[1], t[2], t[3])
        ),
        st.tuples(operand, block).map(lambda t: ast.While(t[0], t[1])),
        st.tuples(_names, operand).map(
            lambda t: ast.Assign(ast.VarRef(t[0]), t[1])
        ),
        block,
    )


@st.composite
def _programs(draw):
    body = draw(_stmts(3))
    fdef = ast.FuncDef(
        name="f",
        params=[ast.Param("a", ast.INT)],
        return_type=ast.UNIT,
        body=ast.Block([body]),
    )
    sdef = ast.StructDef(
        name="t",
        fields=[ast.FieldDecl("f", ast.MaybeType(ast.StructType("t")), True)],
    )
    return ast.Program(structs={"t": sdef}, funcs={"f": fdef})


@given(_programs())
@settings(max_examples=150, deadline=None)
def test_roundtrip_random_programs(program):
    # pretty → parse → pretty is a fixpoint.
    text = pretty_program(program)
    reparsed = parse_program(text)
    assert pretty_program(reparsed) == text
