"""Exhaustive schedule exploration tests (small-scope model checking)."""

import pytest

from repro.analysis.schedules import explore_all_schedules
from repro.corpus import load_program
from repro.lang import parse_program

TWO_PRODUCERS = """
struct data { v : int; }
def producer(v : int, n : int) : unit {
  while (n > 0) { let d = new data(v = v); send(d); n = n - 1 }
}
def consumer(n : int) : int {
  let total = 0;
  while (n > 0) { let d = recv(data); total = total + d.v; n = n - 1 };
  total
}
def first_only(n : int) : int {
  let d = recv(data);
  let keep = d.v;
  n = n - 1;
  while (n > 0) { let e = recv(data); n = n - 1 };
  keep
}
"""


class TestExploration:
    def test_pipeline_is_schedule_deterministic(self):
        program = load_program("queue")
        report = explore_all_schedules(
            program, [("source", [3]), ("relay", [3]), ("sink", [3])]
        )
        # The staged pipeline admits exactly one rendezvous ordering.
        assert report.schedules_explored == 1
        assert report.all_agree()
        assert report.distinct_results().pop()[-1] == 6

    def test_two_producers_all_interleavings(self):
        program = parse_program(TWO_PRODUCERS)
        report = explore_all_schedules(
            program,
            [("producer", [1, 2]), ("producer", [10, 2]), ("consumer", [4])],
        )
        # Interleavings of 2+2 sends: C(4,2) = 6.
        assert report.schedules_explored == 6
        assert not report.violations
        # The *sum* is schedule-independent.
        assert report.distinct_results() == {(None, None, 22)} or all(
            r[-1] == 22 for r in report.distinct_results()
        )

    def test_order_sensitive_consumer_diverges_without_racing(self):
        # A consumer that keeps only the first value is schedule-*sensitive*
        # (allowed nondeterminism) yet still race-free: the explorer sees
        # multiple results but zero violations.
        program = parse_program(TWO_PRODUCERS)
        report = explore_all_schedules(
            program,
            [("producer", [1, 1]), ("producer", [10, 1]), ("first_only", [2])],
        )
        assert report.schedules_explored == 2
        assert not report.violations
        finals = {r[-1] for r in report.distinct_results()}
        assert finals == {1, 10}

    def test_racy_program_violates_on_every_schedule(self):
        racy = """
        struct data { v : int; }
        def bad() : int { let d = new data(v = 1); send(d); d.v }
        def ok() : int { let d = recv(data); d.v }
        """
        program = parse_program(racy)
        report = explore_all_schedules(program, [("bad", []), ("ok", [])])
        assert report.violations
        assert not report.outcomes

    def test_deadlock_recorded(self):
        src = """
        struct data { v : int; }
        def r() : int { let d = recv(data); d.v }
        """
        program = parse_program(src)
        report = explore_all_schedules(program, [("r", [])])
        assert report.schedules_explored == 1
        assert report.outcomes[0].deadlocked
        assert not report.all_agree() or report.outcomes[0].deadlocked

    def test_truncation(self):
        program = parse_program(TWO_PRODUCERS)
        report = explore_all_schedules(
            program,
            [("producer", [1, 3]), ("producer", [2, 3]), ("consumer", [6])],
            max_schedules=3,
        )
        assert report.truncated

    def test_ntree_scatter_gather_exhaustive(self):
        from repro.corpus import load_source

        source = load_source("ntree") + """
def scatterer() : int {
  let t = build(2, 2, 0);
  scatter(t)
}
"""
        program = parse_program(source)
        report = explore_all_schedules(
            program, [("scatterer", []), ("gather", [2])]
        )
        assert report.all_agree()
        assert not report.violations
