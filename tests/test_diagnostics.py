"""Diagnostic rendering tests."""

from repro.lang.diagnostics import render_diagnostic, strip_location_prefix
from repro.lang.tokens import SourceSpan


SOURCE = "struct s { }\ndef f() : int {\n  send(3)\n}\n"


class TestRender:
    def test_excerpt_with_caret(self):
        span = SourceSpan(start=31, end=35, line=3, column=3)
        out = render_diagnostic(SOURCE, span, "bad send", filename="x.fcl")
        lines = out.splitlines()
        assert lines[0] == "x.fcl:3:3: error: bad send"
        assert lines[2] == "3 |   send(3)"
        assert lines[3].endswith("^^^^")

    def test_no_span(self):
        out = render_diagnostic(SOURCE, None, "oops", filename="x.fcl")
        assert out == "x.fcl: error: oops"

    def test_synthetic_span(self):
        span = SourceSpan(0, 0, 0, 0)
        out = render_diagnostic(SOURCE, span, "oops")
        assert "oops" in out and "|" not in out

    def test_out_of_range_line(self):
        span = SourceSpan(0, 1, 99, 1)
        out = render_diagnostic(SOURCE, span, "oops", filename="x.fcl")
        assert out == "x.fcl:99:1: error: oops"

    def test_caret_clamped_to_line(self):
        span = SourceSpan(start=0, end=500, line=1, column=1)
        out = render_diagnostic(SOURCE, span, "wide", filename="x.fcl")
        caret_line = out.splitlines()[-1]
        assert len(caret_line) <= len("1 | ") + len("struct s { }") + 2

    def test_kind_label(self):
        span = SourceSpan(0, 6, 1, 1)
        out = render_diagnostic(SOURCE, span, "m", kind="type error")
        assert "type error: m" in out


class TestCaretGolden:
    """Exact renderings for the caret edge cases: a column at/past the end
    of its line, spans that run into the next line, and tab indentation.
    (The past-EOL caret used to float far right of the excerpt.)"""

    def test_column_past_end_of_line(self):
        # "struct s { }" is 12 chars; column 25 points past its end.
        span = SourceSpan(start=24, end=25, line=1, column=25)
        out = render_diagnostic(SOURCE, span, "eol", filename="x.fcl")
        assert out == (
            "x.fcl:1:25: error: eol\n"
            "  |\n"
            "1 | struct s { }\n"
            "  |             ^"
        )

    def test_span_running_onto_next_line(self):
        # A span whose width crosses the newline is clamped to the
        # remainder of its own line.
        span = SourceSpan(start=7, end=40, line=1, column=8)
        out = render_diagnostic(SOURCE, span, "wide", filename="x.fcl")
        assert out == (
            "x.fcl:1:8: error: wide\n"
            "  |\n"
            "1 | struct s { }\n"
            "  |        ^^^^^"
        )

    def test_tab_indented_line(self):
        # Tabs before the caret are mirrored into the caret gutter so the
        # marker lines up however wide the terminal renders the tab.
        source = "def f() : int {\n\tsend(3)\n}\n"
        span = SourceSpan(start=17, end=21, line=2, column=2)
        out = render_diagnostic(source, span, "bad send", filename="x.fcl")
        assert out == (
            "x.fcl:2:2: error: bad send\n"
            "  |\n"
            "2 | \tsend(3)\n"
            "  | \t^^^^"
        )


class TestStripPrefix:
    def test_strips_line_col(self):
        assert strip_location_prefix("3:7: message here") == "message here"

    def test_leaves_plain(self):
        assert strip_location_prefix("message: with colon") == "message: with colon"


class TestCliIntegration:
    def test_check_renders_excerpt(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "bad.fcl"
        path.write_text(
            "struct data { v : int; }\n"
            "def f() : int {\n"
            "  let d = new data(v = 1);\n"
            "  send(d);\n"
            "  d.v\n"
            "}\n"
        )
        assert main(["check", str(path)]) == 1
        err = capsys.readouterr().err
        assert "send(d)" in err  # the excerpt line
        assert "^" in err


class TestErrorSpans:
    def test_checker_errors_carry_spans(self):
        # Most checker rejections point at real source positions.
        from repro.core.checker import check_source
        from repro.core.errors import TypeError_

        src = (
            "struct data { v : int; }\n"
            "def f() : int {\n"
            "  let d = new data(v = 1);\n"
            "  send(d);\n"
            "  d.v\n"
            "}\n"
        )
        try:
            check_source(src)
            raise AssertionError("must reject")
        except TypeError_ as exc:
            assert exc.span is not None
            assert exc.span.line == 4  # the send

    def test_parse_errors_carry_spans(self):
        from repro.lang import parse_program
        from repro.lang.parser import ParseError

        try:
            parse_program("struct s {\n  x :\n}")
            raise AssertionError("must reject")
        except ParseError as exc:
            assert exc.span is not None and exc.span.line >= 2
