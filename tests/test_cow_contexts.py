"""Persistent structural sharing must be observationally invisible.

``StaticContext.clone`` shares the heap/Γ dicts and their inner
``TrackingContext``/``TrackedVar`` objects; published objects are
immutable, and a handle path-copies an inner object the first time *it*
writes (ownership is tracked handle-side, never on the shared objects —
which is what makes two threads checking against the same warm session
safe).  These tests sweep *every* mutating method over a cloned context
and check, against a ``copy.deepcopy`` oracle, that

* the mutation lands exactly as it would on an eager deep copy, and
* the sibling context never observes it — in either direction (mutate the
  clone, the original is untouched; mutate the original, the clone is),
* and the sibling's published object graph stays **identical**: the very
  same inner objects, with byte-for-byte unchanged contents.

A failure here means a mutation path bypassed ``own_heap``/``own_gamma``/
``own_tracking``/``own_tracked`` and scribbled on shared structure.
"""

import copy

import pytest

from repro.core import framing
from repro.core.contexts import StaticContext, contexts_equal
from repro.core.regions import Region, RegionRenaming, RegionSupply
from repro.lang import ast

NODE = ast.StructType("node")
INT = ast.PrimType("int")


def make_ctx():
    """A context exercising every structural feature: tracked variables
    with explored fields, an untracked binding, a primitive binding, and
    an empty spare region."""
    ctx = StaticContext(RegionSupply())
    r_a = ctx.fresh_region()
    ctx.bind("a", NODE, r_a)
    ctx.focus("a")
    r_f = ctx.explore("a", "f")
    r_b = ctx.fresh_region()
    ctx.bind("b", NODE, r_b)
    r_c = ctx.fresh_region()
    ctx.bind("c", NODE, r_c)
    ctx.focus("c")
    ctx.bind("p", INT, None)
    r_d = ctx.fresh_region()
    return ctx, {"a": r_a, "f": r_f, "b": r_b, "c": r_c, "d": r_d}


def state(ctx):
    """A plain, cache-free structural fingerprint of a context."""
    heap = {
        region.ident: (
            tc.pinned,
            {
                name: (
                    tv.pinned,
                    {
                        f: (None if t is None else t.ident)
                        for f, t in tv.fields.items()
                    },
                )
                for name, tv in tc.vars.items()
            },
        )
        for region, tc in ctx.heap.items()
    }
    gamma = {
        name: (repr(b.ty), None if b.region is None else b.region.ident)
        for name, b in ctx.gamma.items()
    }
    return heap, gamma


def op_frame_cycle(ctx, r):
    frame = framing.frame_away(ctx, regions={r["f"]}, variables={"b"})
    framing.restore(ctx, frame)


def op_take_from(ctx, r):
    other = StaticContext(RegionSupply())
    region = other.fresh_region()
    other.bind("q", NODE, region)
    ctx.take_from(other)


MUTATORS = [
    ("fresh_region", lambda ctx, r: ctx.fresh_region()),
    ("add_region", lambda ctx, r: ctx.add_region(Region(900))),
    ("set_region_pinned", lambda ctx, r: ctx.set_region_pinned(r["b"], True)),
    ("set_var_pinned", lambda ctx, r: ctx.set_var_pinned(r["a"], "a", True)),
    ("bind", lambda ctx, r: ctx.bind("z", NODE, r["b"])),
    ("set_binding", lambda ctx, r: ctx.set_binding("b", NODE, r["d"])),
    ("drop_var", lambda ctx, r: ctx.drop_var("b")),
    ("focus", lambda ctx, r: ctx.focus("b")),
    ("unfocus", lambda ctx, r: ctx.unfocus("c")),
    ("explore", lambda ctx, r: ctx.explore("c", "g")),
    ("explore_at", lambda ctx, r: ctx.explore_at("c", "g", Region(901))),
    ("retract", lambda ctx, r: ctx.retract("a", "f")),
    ("attach", lambda ctx, r: ctx.attach(r["f"], r["d"])),
    ("drop_region", lambda ctx, r: ctx.drop_region(r["d"])),
    ("drop_region_referenced", lambda ctx, r: ctx.drop_region(r["f"])),
    ("consume_region_for_send", lambda ctx, r: ctx.consume_region_for_send(r["d"])),
    ("invalidate_field", lambda ctx, r: ctx.invalidate_field("a", "f")),
    ("set_field_target", lambda ctx, r: ctx.set_field_target("a", "f", r["d"])),
    ("install_tracked_field", lambda ctx, r: ctx.install_tracked_field("a", "h", r["d"])),
    ("rename_tracked", lambda ctx, r: ctx.rename_tracked(r["a"], "a", "ghost_a")),
    ("rename_region", lambda ctx, r: ctx.rename_region(r["b"], Region(902))),
    (
        "apply_renaming",
        lambda ctx, r: ctx.apply_renaming(_renaming(r["f"], Region(903))),
    ),
    ("frame_cycle", op_frame_cycle),
    ("take_from", op_take_from),
]


def _renaming(source, target):
    renaming = RegionRenaming()
    assert renaming.bind(source, target)
    return renaming


@pytest.mark.parametrize("name,mutate", MUTATORS, ids=[m[0] for m in MUTATORS])
def test_clone_mutation_never_leaks_into_original(name, mutate):
    base, regions = make_ctx()
    clone = base.clone()
    before = state(base)

    oracle = copy.deepcopy(base)
    mutate(oracle, regions)
    mutate(clone, regions)

    assert state(base) == before, f"{name} leaked from clone into original"
    assert state(clone) == state(oracle), f"{name} diverged from eager-copy oracle"


@pytest.mark.parametrize("name,mutate", MUTATORS, ids=[m[0] for m in MUTATORS])
def test_original_mutation_never_leaks_into_clone(name, mutate):
    base, regions = make_ctx()
    clone = base.clone()
    before = state(clone)

    oracle = copy.deepcopy(base)
    mutate(oracle, regions)
    mutate(base, regions)

    assert state(clone) == before, f"{name} leaked from original into clone"
    assert state(base) == state(oracle), f"{name} diverged from eager-copy oracle"


def object_graph(ctx):
    """Identity + content snapshot of every inner object reachable from
    ``ctx``: (dict objects, TrackingContexts, TrackedVars) with the exact
    object references and their current contents."""
    tcs = {}
    tvs = {}
    for region, tc in ctx.heap.items():
        tcs[region.ident] = (tc, tc.pinned, dict(tc.vars))
        for name, tv in tc.vars.items():
            tvs[(region.ident, name)] = (tv, tv.pinned, dict(tv.fields))
    return (ctx.heap, ctx.gamma, tcs, tvs)


def assert_graph_byte_stable(before, ctx, label):
    """The context still holds the *same* objects with unchanged
    contents — structural equality is not enough; persistence promises
    the published graph is never written."""
    heap, gamma, tcs, tvs = before
    assert ctx.heap is heap, f"{label}: heap dict was replaced"
    assert ctx.gamma is gamma, f"{label}: gamma dict was replaced"
    now_heap, now_gamma, now_tcs, now_tvs = object_graph(ctx)
    assert set(now_tcs) == set(tcs), f"{label}: region set changed"
    for key, (tc, pinned, var_map) in tcs.items():
        tc_now = now_tcs[key][0]
        assert tc_now is tc, f"{label}: TrackingContext {key} replaced"
        assert tc.pinned == pinned, f"{label}: TC {key} pinned flag mutated"
        assert tc.vars == var_map, f"{label}: TC {key} vars mutated"
    for key, (tv, pinned, field_map) in tvs.items():
        tv_now = now_tvs[key][0]
        assert tv_now is tv, f"{label}: TrackedVar {key} replaced"
        assert tv.pinned == pinned, f"{label}: TV {key} pinned flag mutated"
        assert tv.fields == field_map, f"{label}: TV {key} fields mutated"


@pytest.mark.parametrize("name,mutate", MUTATORS, ids=[m[0] for m in MUTATORS])
def test_clone_mutation_leaves_original_graph_byte_stable(name, mutate):
    base, regions = make_ctx()
    clone = base.clone()
    graph = object_graph(base)
    mutate(clone, regions)
    assert_graph_byte_stable(graph, base, name)


def test_checking_leaves_shared_contexts_byte_stable():
    """End-to-end: cloning a context into branch arms and mutating each
    arm (the checker's branch pattern) never writes the parent graph."""
    base, regions = make_ctx()
    graph = object_graph(base)
    for _ in range(3):
        arm = base.clone()
        arm.focus("b")
        arm.explore("c", "g")
        arm.invalidate_field("a", "f")
        arm.drop_var("b")
        assert_graph_byte_stable(graph, base, "branch-arm")


def test_clone_of_clone_chain_isolated():
    """Three-deep clone chain: a mutation at any depth stays there."""
    base, regions = make_ctx()
    mid = base.clone()
    leaf = mid.clone()
    snap_base, snap_mid = state(base), state(mid)

    leaf.explore("c", "g")
    leaf.invalidate_field("a", "f")
    leaf.drop_var("b")

    assert state(base) == snap_base
    assert state(mid) == snap_mid
    assert contexts_equal(base, mid)


def test_clone_preserves_snapshot_equality():
    base, _ = make_ctx()
    clone = base.clone()
    assert contexts_equal(base, clone)
    assert base.canonical_key() == clone.canonical_key()
