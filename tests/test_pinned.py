"""The `pinned` parameter annotation (§4.7's pinning, §4.9's surface form).

A pinned parameter gives the callee a *partial* view of the argument's
region: the callee may read non-iso state but may not focus, attach, or
consume anything there — and in exchange, the call site does not have to
empty the region's tracking context before the call (TS2 framing).
"""

import pytest

from repro.core.checker import Checker, check_source
from repro.core.errors import AnnotationError, TypeError_
from repro.lang import parse_program
from repro.verifier import Verifier

STRUCTS = """
struct data { v : int; }
struct cell { other : cell; tag : int; }
struct holder { iso spine : cell?; }
"""


def accept(src):
    program = parse_program(STRUCTS + src)
    derivation = Checker(program).check_program()
    Verifier(program).verify_program(derivation)


def reject(exc, src):
    with pytest.raises(exc):
        check_source(STRUCTS + src)


class TestParsing:
    def test_pinned_param_parses(self):
        program = parse_program(STRUCTS + "def f(pinned c : cell) : int { c.tag }")
        assert program.funcs["f"].params[0].pinned

    def test_pretty_roundtrip(self):
        from repro.lang import pretty_program

        program = parse_program(STRUCTS + "def f(pinned c : cell) : int { c.tag }")
        text = pretty_program(program)
        assert "pinned c : cell" in text
        again = parse_program(text)
        assert again.funcs["f"].params[0].pinned


class TestCalleeRestrictions:
    def test_non_iso_reads_allowed(self):
        accept("def peek(pinned c : cell) : int { c.tag + c.other.tag }")

    def test_prim_writes_allowed(self):
        accept("def poke(pinned c : cell) : unit { c.tag = 5 }")

    def test_iso_access_rejected(self):
        # Focusing inside a pinned region is impossible.
        reject(
            TypeError_,
            "def bad(pinned h : holder) : unit { let s = h.spine; () }",
        )

    def test_send_rejected(self):
        reject(TypeError_, "def bad(pinned c : cell) : unit { send(c) }")

    def test_attach_into_pinned_rejected(self):
        reject(
            TypeError_,
            """
            def bad(pinned c : cell) : unit {
              let fresh = new cell();
              c.other = fresh
            }
            """,
        )


class TestAnnotationValidation:
    def test_pinned_primitive_rejected(self):
        reject(AnnotationError, "def f(pinned k : int) : int { k }")

    def test_pinned_consumed_rejected(self):
        reject(
            AnnotationError,
            "def f(pinned c : cell) : unit consumes c { () }",
        )

    def test_pinned_in_after_rejected(self):
        reject(
            AnnotationError,
            "def f(pinned c : cell, d : cell) : unit after: c ~ d { () }",
        )


class TestCallSites:
    def test_call_with_live_tracking_in_arg_region(self):
        # The whole point: helper(pinned n) can be called while h.spine is
        # tracked and its target region holds the live cursor `n` — no
        # emptying required.  The unpinned version of the same program is
        # rejected.
        pinned_src = """
        def peek(pinned n : cell) : int { n.tag }
        def walk(h : holder) : int {
          let some(n) = h.spine in {
            let a = peek(n);
            let b = n.tag;
            a + b
          } else { 0 }
        }
        """
        accept(pinned_src)

    def test_unpinned_version_also_ok_when_droppable(self):
        # Without `pinned`, the call forces the region's tracking to be
        # emptied; here that is possible (the tracking is re-established
        # afterwards on demand), so both typings exist — pinning is about
        # *not disturbing* the call-site context.
        accept(
            """
            def peek(n : cell) : int { n.tag }
            def walk(h : holder) : int {
              let some(n) = h.spine in { peek(n) } else { 0 }
            }
            """
        )

    def test_pinned_callee_preserves_call_site_tracking(self):
        # After the call, h.spine's tracking survives, so the cursor is
        # still in the *same* region as before — provable by storing it
        # back without re-reading h.spine.
        accept(
            """
            def peek(pinned n : cell) : int { n.tag }
            def reuse(h : holder) : unit {
              let some(n) = h.spine in {
                peek(n);
                h.spine = some(n)
              } else { () }
            }
            """
        )

    def test_pinned_arg_still_needs_separation(self):
        from repro.core.errors import SeparationError

        reject(
            SeparationError,
            """
            def two(pinned a : cell, b : cell) : unit { () }
            def f(c : cell) : unit { two(c, c) }
            """,
        )
