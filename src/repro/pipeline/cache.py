"""Content-addressed certificate cache for the check/verify pipeline.

The paper's checking problem is compositional at function granularity: a
:class:`~repro.core.derivation.FuncDerivation` depends only on

* the struct declarations (field layout and ``iso`` capabilities),
* the *signatures* of the functions it calls (T17 consults interfaces,
  never bodies), and
* its own pretty-printed definition (signature + body).

So a derivation certificate can be keyed by the SHA-256 of exactly those
inputs — canonicalized through the pretty-printer so whitespace and
comment edits never invalidate anything — plus the checker version tag
and the active :class:`~repro.core.checker.CheckProfile`.  A cache hit
replays the stored certificate through the cheap
:class:`~repro.verifier.Verifier` path (or, under ``--trust-cache``,
skips verification entirely) instead of re-running the prover's search.

Invalidation falls out of the key recipe:

* editing a function body changes only that function's key;
* editing a function *signature* changes the key of the function itself
  and of every function that calls it (callers hash callee headers);
* editing any struct declaration changes every key (struct layout is
  global input to the T rules);
* bumping :data:`~repro.core.checker.CHECKER_VERSION` changes every key,
  and entries whose *stored* version tag disagrees with the running
  checker are additionally ignored as stale even if a key matches
  (defense in depth against hand-edited or migrated cache directories).

Entries live one-per-file under ``<root>/<key[:2]>/<key>.json`` and are
written atomically (temp file + ``os.replace``), so concurrent pipelines
sharing a cache directory can only ever observe whole entries.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..core.checker import CHECKER_VERSION, CheckProfile, DEFAULT_PROFILE
from ..lang import ast
from ..lang.pretty import pretty_func, pretty_func_header, pretty_struct

#: Schema tag of one stored cache entry.
ENTRY_SCHEMA = "repro-cert/1"


def profile_tag(profile: CheckProfile) -> str:
    """Canonical text of a profile.  ``CheckProfile`` is a frozen dataclass,
    so its repr enumerates every feature switch deterministically — a
    restricted (or fault-injected) profile can never replay certificates
    minted under the full type system, and vice versa."""
    return repr(profile)


def struct_fingerprint(program: ast.Program) -> str:
    """All struct declarations, pretty-printed in sorted order."""
    return "\n".join(
        pretty_struct(sdef) for _, sdef in sorted(program.structs.items())
    )


def callees_of(fdef: ast.FuncDef, program: ast.Program) -> List[str]:
    """Names of program functions called directly anywhere in ``fdef``'s
    body, sorted.  One level is enough: T17 consults only the callee's
    declared interface, never its body."""
    return sorted(
        {
            node.func
            for node in ast.walk(fdef.body)
            if isinstance(node, ast.Call) and node.func in program.funcs
        }
    )


class ProgramFingerprints:
    """Per-function cache keys for one program, with the shared parts
    (struct fingerprint, header table, profile tag) computed once."""

    def __init__(
        self,
        program: ast.Program,
        profile: CheckProfile = DEFAULT_PROFILE,
        version: str = CHECKER_VERSION,
    ):
        self.program = program
        self.version = version
        self._profile = profile_tag(profile)
        self._structs = struct_fingerprint(program)
        self._headers: Dict[str, str] = {
            name: pretty_func_header(fdef)
            for name, fdef in program.funcs.items()
        }
        self._keys: Dict[str, str] = {}

    def key(self, name: str) -> str:
        """SHA-256 cache key of one function (hex digest)."""
        cached = self._keys.get(name)
        if cached is not None:
            return cached
        fdef = self.program.func(name)
        callee_sigs = "\n".join(
            self._headers[callee] for callee in callees_of(fdef, self.program)
        )
        material = "\x00".join(
            (
                "version:" + self.version,
                "profile:" + self._profile,
                "structs:" + self._structs,
                "callees:" + callee_sigs,
                "func:" + pretty_func(fdef),
            )
        )
        digest = hashlib.sha256(material.encode("utf-8")).hexdigest()
        self._keys[name] = digest
        return digest


@dataclass
class CacheEntry:
    """One stored certificate plus the summary numbers the CLI reports,
    so a trusted hit needs no deserialization at all."""

    func: str
    #: ``ProgramDerivation.node_count()`` contribution (what ``check`` prints).
    nodes: int
    #: Verifier node count including T0 (what ``verify`` prints).
    verified: int
    #: The serialized ``FuncDerivation`` (``core/serialize`` JSON form).
    cert: str
    version: str = CHECKER_VERSION


class CertCache:
    """Directory-backed content-addressed store of derivation certificates."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Tuple[str, Optional[CacheEntry]]:
        """Look up one key.  Returns ``(status, entry)`` where status is
        ``"hit"``, ``"miss"`` (no entry), or ``"stale"`` (an entry exists
        but is unreadable, malformed, or carries a different checker
        version tag — it is ignored and will be overwritten)."""
        path = self.path_for(key)
        try:
            raw = path.read_text()
        except OSError:
            return "miss", None
        try:
            data = json.loads(raw)
            if (
                data["schema"] != ENTRY_SCHEMA
                or data["version"] != CHECKER_VERSION
            ):
                return "stale", None
            entry = CacheEntry(
                func=data["func"],
                nodes=int(data["nodes"]),
                verified=int(data["verified"]),
                cert=data["cert"],
                version=data["version"],
            )
        except (ValueError, KeyError, TypeError):
            return "stale", None
        return "hit", entry

    def put(self, key: str, entry: CacheEntry) -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "schema": ENTRY_SCHEMA,
                "version": entry.version,
                "func": entry.func,
                "nodes": entry.nodes,
                "verified": entry.verified,
                "cert": entry.cert,
            }
        )
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=f".{key[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
