"""Content-addressed certificate cache for the check/verify pipeline.

The paper's checking problem is compositional at function granularity: a
:class:`~repro.core.derivation.FuncDerivation` depends only on

* the struct declarations (field layout and ``iso`` capabilities),
* the *signatures* of the functions it calls (T17 consults interfaces,
  never bodies), and
* its own pretty-printed definition (signature + body).

So a derivation certificate can be keyed by the SHA-256 of exactly those
inputs — canonicalized through the pretty-printer so whitespace and
comment edits never invalidate anything — plus the checker version tag
and the active :class:`~repro.core.checker.CheckProfile`.  A cache hit
replays the stored certificate through the cheap
:class:`~repro.verifier.Verifier` path (or, under ``--trust-cache``,
skips verification entirely) instead of re-running the prover's search.

Invalidation falls out of the key recipe:

* editing a function body changes only that function's key;
* editing a function *signature* changes the key of the function itself
  and of every function that calls it (callers hash callee headers);
* editing any struct declaration changes every key (struct layout is
  global input to the T rules);
* bumping :data:`~repro.core.checker.CHECKER_VERSION` changes every key,
  and entries whose *stored* version tag disagrees with the running
  checker are additionally ignored as stale even if a key matches
  (defense in depth against hand-edited or migrated cache directories).

Entries live one-per-file under ``<root>/<key[:2]>/<key>.json`` (256
hash shards) and are written atomically (temp file + ``os.replace``), so
concurrent pipelines — and the PR-8 serve fleet's worker processes —
sharing a cache directory can only ever observe whole entries.

**Eviction.**  With ``max_entries``/``max_bytes`` caps set, the store is
a disk LRU: every hit touches the entry file's mtime (``os.utime`` — one
atomic syscall, no lock needed across processes), and every ``put``
re-scans the shards and unlinks oldest-mtime entries until the store is
back under its caps.  Certificates are immutable and content-addressed,
so eviction can never lose information — a re-derivation re-creates the
identical entry — which is what makes a shared store safe to cap.
Racing evictors are harmless: ``unlink`` of an already-evicted entry is
ignored.

**Hygiene.**  A writer killed between ``mkstemp`` and ``os.replace``
leaves a ``.<key>.tmp`` file behind; those are swept on store open and
during eviction scans once they are older than ``tmp_ttl_s`` (young tmp
files may be in-flight writes of a live sibling process and are left
alone).  ``len(cache)`` counts only entries the running checker version
would actually serve.

**Telemetry** (ambient registry, or one injected via ``registry=``):
``cache.hits`` / ``cache.misses`` / ``cache.stale`` counters,
``cache.evictions`` / ``cache.tmp_swept`` counters, ``cache.bytes`` /
``cache.entries`` gauges refreshed at each eviction scan, and
``cache.get_ms`` / ``cache.put_ms`` latency histograms.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .. import telemetry as tel
from ..core.checker import CHECKER_VERSION, CheckProfile, DEFAULT_PROFILE
from ..lang import ast
from ..lang.pretty import pretty_func, pretty_func_header, pretty_struct

#: Schema tag of one stored cache entry.
ENTRY_SCHEMA = "repro-cert/1"


def profile_tag(profile: CheckProfile) -> str:
    """Canonical text of a profile.  ``CheckProfile`` is a frozen dataclass,
    so its repr enumerates every feature switch deterministically — a
    restricted (or fault-injected) profile can never replay certificates
    minted under the full type system, and vice versa."""
    return repr(profile)


def struct_fingerprint(program: ast.Program) -> str:
    """All struct declarations, pretty-printed in sorted order."""
    return "\n".join(
        pretty_struct(sdef) for _, sdef in sorted(program.structs.items())
    )


def callees_of(fdef: ast.FuncDef, program: ast.Program) -> List[str]:
    """Names of program functions called directly anywhere in ``fdef``'s
    body, sorted.  One level is enough: T17 consults only the callee's
    declared interface, never its body."""
    return sorted(
        {
            node.func
            for node in ast.walk(fdef.body)
            if isinstance(node, ast.Call) and node.func in program.funcs
        }
    )


class ProgramFingerprints:
    """Per-function cache keys for one program, with the shared parts
    (struct fingerprint, header table, profile tag) computed once."""

    def __init__(
        self,
        program: ast.Program,
        profile: CheckProfile = DEFAULT_PROFILE,
        version: str = CHECKER_VERSION,
    ):
        self.program = program
        self.version = version
        self._profile = profile_tag(profile)
        self._structs = struct_fingerprint(program)
        self._headers: Dict[str, str] = {
            name: pretty_func_header(fdef)
            for name, fdef in program.funcs.items()
        }
        self._keys: Dict[str, str] = {}

    def key(self, name: str) -> str:
        """SHA-256 cache key of one function (hex digest)."""
        cached = self._keys.get(name)
        if cached is not None:
            return cached
        fdef = self.program.func(name)
        callee_sigs = "\n".join(
            self._headers[callee] for callee in callees_of(fdef, self.program)
        )
        material = "\x00".join(
            (
                "version:" + self.version,
                "profile:" + self._profile,
                "structs:" + self._structs,
                "callees:" + callee_sigs,
                "func:" + pretty_func(fdef),
            )
        )
        digest = hashlib.sha256(material.encode("utf-8")).hexdigest()
        self._keys[name] = digest
        return digest


@dataclass
class CacheEntry:
    """One stored certificate plus the summary numbers the CLI reports,
    so a trusted hit needs no deserialization at all."""

    func: str
    #: ``ProgramDerivation.node_count()`` contribution (what ``check`` prints).
    nodes: int
    #: Verifier node count including T0 (what ``verify`` prints).
    verified: int
    #: The serialized ``FuncDerivation`` (``core/serialize`` JSON form).
    cert: str
    version: str = CHECKER_VERSION


_STATUS_COUNTERS = {
    "hit": "cache.hits",
    "miss": "cache.misses",
    "stale": "cache.stale",
}


class CertCache:
    """Directory-backed content-addressed store of derivation
    certificates, optionally capped with sharded LRU eviction (see the
    module docstring for the eviction and hygiene contracts)."""

    def __init__(
        self,
        root,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
        tmp_ttl_s: float = 300.0,
        registry: Optional[tel.Registry] = None,
    ) -> None:
        self.root = Path(root)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.tmp_ttl_s = tmp_ttl_s
        self._registry = registry
        if self.root.is_dir():
            self._sweep_tmp()

    def _reg(self) -> tel.Registry:
        return self._registry if self._registry is not None else tel.registry()

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Tuple[str, Optional[CacheEntry]]:
        """Look up one key.  Returns ``(status, entry)`` where status is
        ``"hit"``, ``"miss"`` (no entry), or ``"stale"`` (an entry exists
        but is unreadable, malformed, or carries a different checker
        version tag — it is ignored and will be overwritten).  A hit
        touches the entry's mtime so eviction sees it as recently used."""
        t0 = time.perf_counter()
        status, entry = self._get(key)
        reg = self._reg()
        if reg.enabled:
            reg.inc(_STATUS_COUNTERS[status])
            reg.observe("cache.get_ms", (time.perf_counter() - t0) * 1000.0)
        return status, entry

    def _get(self, key: str) -> Tuple[str, Optional[CacheEntry]]:
        path = self.path_for(key)
        try:
            raw = path.read_text()
        except OSError:
            return "miss", None
        try:
            data = json.loads(raw)
            if (
                data["schema"] != ENTRY_SCHEMA
                or data["version"] != CHECKER_VERSION
            ):
                return "stale", None
            entry = CacheEntry(
                func=data["func"],
                nodes=int(data["nodes"]),
                verified=int(data["verified"]),
                cert=data["cert"],
                version=data["version"],
            )
        except (ValueError, KeyError, TypeError):
            return "stale", None
        try:
            os.utime(path, None)  # LRU touch; atomic, racing evictors ok
        except OSError:
            pass  # evicted between read and touch — the entry was served
        return "hit", entry

    def put(self, key: str, entry: CacheEntry) -> None:
        t0 = time.perf_counter()
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "schema": ENTRY_SCHEMA,
                "version": entry.version,
                "func": entry.func,
                "nodes": entry.nodes,
                "verified": entry.verified,
                "cert": entry.cert,
            }
        )
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=f".{key[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if self.max_entries is not None or self.max_bytes is not None:
            self._evict()
        reg = self._reg()
        if reg.enabled:
            reg.observe("cache.put_ms", (time.perf_counter() - t0) * 1000.0)

    # ------------------------------------------------------------------
    # Eviction and hygiene
    # ------------------------------------------------------------------

    def _scan(self) -> List[Tuple[float, int, Path]]:
        """``(mtime, size, path)`` of every entry, oldest first; sweeps
        expired tmp litter as a side effect of walking the shards."""
        entries: List[Tuple[float, int, Path]] = []
        cutoff = time.time() - self.tmp_ttl_s
        swept = 0
        if not self.root.is_dir():
            return entries
        for shard in self.root.iterdir():
            if not shard.is_dir():
                continue
            try:
                listing = list(os.scandir(shard))
            except OSError:
                continue
            for item in listing:
                try:
                    stat = item.stat()
                except OSError:
                    continue  # raced with an evictor/writer
                if item.name.endswith(".json"):
                    entries.append((stat.st_mtime, stat.st_size, Path(item.path)))
                elif item.name.endswith(".tmp") and stat.st_mtime < cutoff:
                    try:
                        os.unlink(item.path)
                        swept += 1
                    except OSError:
                        pass
        if swept:
            reg = self._reg()
            if reg.enabled:
                reg.inc("cache.tmp_swept", swept)
        entries.sort(key=lambda e: e[0])
        return entries

    def _sweep_tmp(self) -> None:
        """Unlink orphaned ``.tmp`` files older than ``tmp_ttl_s`` — the
        litter of writers killed between ``mkstemp`` and ``os.replace``."""
        self._scan()

    def _evict(self) -> None:
        entries = self._scan()
        count = len(entries)
        total = sum(size for _, size, _ in entries)
        evicted = 0
        index = 0
        while index < count and (
            (self.max_entries is not None and count - evicted > self.max_entries)
            or (self.max_bytes is not None and total > self.max_bytes)
        ):
            _, size, path = entries[index]
            index += 1
            try:
                os.unlink(path)
            except OSError:
                continue  # a racing evictor won; sizes already corrected
            evicted += 1
            total -= size
        reg = self._reg()
        if reg.enabled:
            if evicted:
                reg.inc("cache.evictions", evicted)
            reg.set_gauge("cache.entries", count - evicted)
            reg.set_gauge("cache.bytes", total)

    def disk_stats(self) -> Dict[str, int]:
        """Current footprint: ``{"entries": n, "bytes": b}`` (all entries,
        including stale-versioned ones still occupying space)."""
        entries = self._scan()
        return {
            "entries": len(entries),
            "bytes": sum(size for _, size, _ in entries),
        }

    def __len__(self) -> int:
        """Entries this store would actually serve: stale-versioned or
        malformed files still on disk are excluded."""
        if not self.root.is_dir():
            return 0
        count = 0
        for path in self.root.glob("*/*.json"):
            try:
                data = json.loads(path.read_text())
                if (
                    data["schema"] == ENTRY_SCHEMA
                    and data["version"] == CHECKER_VERSION
                ):
                    count += 1
            except (OSError, ValueError, KeyError, TypeError):
                continue
        return count
