"""Parallel + incremental check/verify pipeline.

Batch orchestration for the prover–verifier stack: per-function jobs
fanned over a process pool (``--jobs N``) and a persistent
content-addressed certificate cache that turns repeat runs into cheap
certificate replays (``--cache DIR``) or pure hash lookups
(``--trust-cache``).  See ``docs/PERFORMANCE.md`` for the cache-key
recipe and the determinism contract.
"""

from .batch import discover, run_batch
from .cache import (
    CacheEntry,
    CertCache,
    ProgramFingerprints,
    callees_of,
    profile_tag,
    struct_fingerprint,
)
from .runner import ErrorInfo, FunctionResult, Pipeline, ProgramResult
from .session import ProgramSession

__all__ = [
    "CacheEntry",
    "CertCache",
    "ErrorInfo",
    "FunctionResult",
    "Pipeline",
    "ProgramFingerprints",
    "ProgramResult",
    "ProgramSession",
    "callees_of",
    "discover",
    "profile_tag",
    "run_batch",
    "struct_fingerprint",
]
