"""File discovery and the ``repro batch`` driver.

Output contract (the CI smoke job diffs it byte-for-byte between a cold
and a warm run): **stdout** carries one deterministic result line per
program — the same numbers whether a function was freshly derived or
served from the cache — plus a summary footer; everything run-dependent
(timings, hit/miss/stale counts, worker count) goes to **stderr**.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Iterable, List, Optional, Tuple

from ..corpus import read_program_source
from .runner import Pipeline, ProgramResult

#: Suffixes ``discover`` considers.  ``.py`` files participate only when
#: they embed a module-level ``SOURCE`` literal (the corpus convention).
PROGRAM_SUFFIXES = (".fcl", ".py")


def discover(paths: Iterable[str]) -> List[Tuple[str, str]]:
    """Expand files and directories into ``(label, source)`` pairs.

    Directories are walked recursively for ``*.fcl`` files and corpus-style
    ``*.py`` files with an embedded ``SOURCE`` literal (``.py`` files
    without one are silently skipped — they are support code, not
    programs).  Results are sorted by path so batch output is stable
    across filesystems.

    Raises ``OSError`` for a path that does not exist and ``ValueError``
    for an explicitly named ``.py`` file without a ``SOURCE`` literal:
    naming a file is a claim that it is a program.
    """
    out: List[Tuple[str, str]] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for child in sorted(path.rglob("*")):
                if child.suffix not in PROGRAM_SUFFIXES or not child.is_file():
                    continue
                try:
                    out.append((str(child), read_program_source(str(child))))
                except ValueError:
                    continue  # .py without SOURCE: not a program
        elif path.is_file():
            out.append((str(path), read_program_source(str(path))))
        else:
            raise OSError(f"no such file or directory: {raw}")
    out.sort(key=lambda pair: pair[0])
    return out


def run_batch(
    programs: List[Tuple[str, str]],
    pipeline: Pipeline,
    out=None,
    err=None,
) -> int:
    """Run every program through ``pipeline`` and report.

    Returns the process exit code: ``0`` when everything checked and
    verified, ``1`` when any program was rejected by the checker, ``2``
    when a certificate failed verification (and no check error occurred —
    check errors dominate, matching the single-file commands).
    """
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    t0 = time.perf_counter()
    results: List[ProgramResult] = []
    for label, source in programs:
        result = pipeline.run(label, source)
        results.append(result)
        print(_result_line(result), file=out)

    ok = [r for r in results if r.ok]
    print(
        f"batch: {len(ok)}/{len(results)} programs OK — "
        f"{sum(len(r.functions) for r in ok)} functions, "
        f"{sum(r.nodes for r in ok)} derivation nodes",
        file=out,
    )

    hits = misses = stale = 0
    for r in results:
        counts = r.counts()
        hits += counts["hit"]
        misses += counts["miss"]
        stale += counts["stale"]
    wall_ms = (time.perf_counter() - t0) * 1000.0
    print(
        f"pipeline: jobs={pipeline.jobs} mode={pipeline.mode} "
        f"hits={hits} misses={misses} "
        f"stale={stale} ({wall_ms:.0f} ms)",
        file=err,
    )

    if any(r.error is not None and r.error.stage == "check" for r in results):
        return 1
    if any(r.error is not None for r in results):
        return 2
    return 0


def _result_line(result: ProgramResult) -> str:
    if result.ok:
        return (
            f"{result.label}: OK — {len(result.functions)} functions, "
            f"{result.nodes} derivation nodes"
        )
    error = result.error
    if error is not None and error.stage == "verify":
        return f"{result.label}: VERIFICATION FAILED: {error.message}"
    detail = f"{error.cls}: {error.message}" if error is not None else "rejected"
    return f"{result.label}: REJECTED — {detail}"
