"""The batch check/verify orchestrator.

A :class:`Pipeline` takes programs and produces :class:`ProgramResult`\\ s
through three cooperating mechanisms:

* **per-function fan-out** — each function of a program is an independent
  job (check + verify, or certificate replay).  ``jobs=1`` runs them
  in-process and phase-faithful to the serial entry points; ``jobs>1``
  fans out in one of two execution modes.  ``mode="thread"`` (the
  default for ``jobs>1``) runs tasks on a ``ThreadPoolExecutor``
  against the **shared warm session** — the persistent checker core
  makes concurrent checks safe with zero copies, and nothing is pickled
  or re-elaborated.  ``mode="process"`` keeps the older
  ``ProcessPoolExecutor`` fan-out, worth its serialization tax only for
  large CPU-bound cold batches where the GIL would serialise the
  thread pool;
* **the certificate cache** (:mod:`repro.pipeline.cache`) — a content
  hash decides per function whether the prover runs at all.  A hit
  replays the stored certificate through the verifier (soundness
  preserved: nothing is trusted), or skips verification entirely under
  ``trust_cache`` (integrity by content hash: the certificate was
  verified when it was stored, and the key proves the inputs have not
  changed since);
* **telemetry merge-back** — worker registries come home as exported
  documents and are folded into the parent registry, so ``--metrics-json``
  reports the same checker/verifier counters a serial run would.

Determinism contract, relied on by tests and CI: for any program, any
cache state, and **any execution mode**, ``jobs=1`` and ``jobs=N``
produce identical accept/reject decisions, identical first-error
diagnostics (first in sorted function order, exactly like
``Checker.check_program``), and identical merged counters (modulo the
``pipeline.*`` family itself).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .. import telemetry as tel
from ..core import errors as _errors
from ..core.checker import CheckProfile, DEFAULT_PROFILE
from ..core.errors import TypeError_
from ..core.serialize import func_derivation_to_json
from ..lang import ast
from ..verifier import VerificationError
from .cache import CacheEntry, CertCache
from .session import ProgramSession
from .worker import init_worker, run_function_task, span_from_tuple


@dataclass
class ErrorInfo:
    """A check/verify failure in transportable form (workers cannot ship
    exception objects across the process boundary reliably)."""

    stage: str  # "check" | "verify"
    cls: str
    message: str
    span: Optional[Tuple[int, int, int, int]] = None
    crash: bool = False

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "ErrorInfo":
        return cls(
            stage=record["stage"],
            cls=record["cls"],
            message=record["message"],
            span=tuple(record["span"]) if record["span"] else None,
            crash=record.get("crash", False),
        )

    @classmethod
    def from_exception(
        cls, stage: str, exc: BaseException, crash: bool = False
    ) -> "ErrorInfo":
        span = getattr(exc, "span", None)
        return cls(
            stage=stage,
            cls=type(exc).__name__,
            message=getattr(exc, "message", None) or str(exc),
            span=None
            if span is None
            else (span.start, span.end, span.line, span.column),
            crash=crash,
        )

    def as_type_error(self) -> TypeError_:
        """Reconstruct the checker exception (or the closest subclass we
        can name) so callers can render it exactly like the serial path."""
        klass = getattr(_errors, self.cls, TypeError_)
        if not (isinstance(klass, type) and issubclass(klass, TypeError_)):
            klass = TypeError_
        return klass(self.message, span_from_tuple(self.span))

    def to_diagnostic(self, file: str = "<input>"):
        """The canonical :class:`repro.api.Diagnostic` form — the one
        encoder shared by CLI text output, ``--metrics-json`` failure
        records, and ``repro-rpc/1`` responses."""
        from ..api import Diagnostic

        return Diagnostic(
            file=file,
            severity="error",
            code="VerificationError" if self.stage == "verify" else self.cls,
            message=self.message,
            span=self.span,
        )

    def render(self, source: str, filename: str) -> str:
        return self.to_diagnostic(filename).render(source)


@dataclass
class FunctionResult:
    name: str
    ok: bool
    #: "miss" (freshly derived), "hit" (certificate replayed), "trusted"
    #: (hit under trust_cache — not re-verified), "stale" (an unusable
    #: cache entry forced a fresh derivation).
    cached: str
    nodes: int = 0
    verified: int = 0
    ms: float = 0.0
    error: Optional[ErrorInfo] = None


@dataclass
class ProgramResult:
    label: str
    ok: bool
    error: Optional[ErrorInfo] = None
    functions: List[FunctionResult] = field(default_factory=list)
    wall_ms: float = 0.0

    @property
    def nodes(self) -> int:
        return sum(f.nodes for f in self.functions)

    @property
    def verified(self) -> int:
        return sum(f.verified for f in self.functions)

    def counts(self) -> Dict[str, int]:
        out = {"hit": 0, "miss": 0, "stale": 0, "trusted": 0}
        for f in self.functions:
            out[f.cached] = out.get(f.cached, 0) + 1
        # A trusted hit is still a hit; stale entries were misses that
        # additionally evicted garbage.
        out["hit"] += out.pop("trusted")
        return out


#: Execution modes accepted by :class:`Pipeline` (``None`` means auto:
#: serial for one job, thread otherwise).
PIPELINE_MODES = ("serial", "thread", "process")


class Pipeline:
    """Reusable batch check/verify engine (one per CLI invocation)."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache_dir: Optional[str] = None,
        trust_cache: bool = False,
        verify: bool = True,
        profile: CheckProfile = DEFAULT_PROFILE,
        cache_entries: Optional[int] = None,
        cache_bytes: Optional[int] = None,
        mode: Optional[str] = None,
    ):
        self.jobs = jobs if jobs and jobs > 0 else (os.cpu_count() or 1)
        if mode in (None, "auto"):
            mode = None
        elif mode not in PIPELINE_MODES:
            raise ValueError(
                f"unknown pipeline mode {mode!r}; "
                f"expected one of {', '.join(PIPELINE_MODES)}"
            )
        self._requested_mode = mode
        self.cache = (
            CertCache(
                cache_dir, max_entries=cache_entries, max_bytes=cache_bytes
            )
            if cache_dir
            else None
        )
        self.trust_cache = trust_cache
        self.verify = verify
        self.profile = profile
        self._executor: Optional[ProcessPoolExecutor] = None
        self._thread_executor: Optional[ThreadPoolExecutor] = None
        reg = tel.registry()
        if reg.enabled:
            reg.inc("pipeline.jobs", self.jobs)

    @property
    def mode(self) -> str:
        """The resolved execution mode: an explicit request wins; auto
        picks serial for one job and thread otherwise (shared warm
        session, no pickling — process fan-out is opt-in)."""
        if self._requested_mode is not None:
            return self._requested_mode
        return "serial" if self.jobs <= 1 else "thread"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _executor_handle(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs, initializer=init_worker
            )
        return self._executor

    def _thread_executor_handle(self) -> ThreadPoolExecutor:
        if self._thread_executor is None:
            self._thread_executor = ThreadPoolExecutor(
                max_workers=self.jobs, thread_name_prefix="repro-pipeline"
            )
        return self._thread_executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
        if self._thread_executor is not None:
            self._thread_executor.shutdown()
            self._thread_executor = None

    def __enter__(self) -> "Pipeline":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # One program
    # ------------------------------------------------------------------

    def run(
        self,
        label: str,
        source: str,
        program: Optional[ast.Program] = None,
    ) -> ProgramResult:
        """Check (and verify) every function of one program."""
        tr = tel.tracer()
        if not tr.enabled:
            return self._run(label, source, program)
        # Under the ambient span when there is one (the daemon's request
        # span, the facade's api.* span), a new root otherwise; worker
        # tasks inherit this context and stitch under it.
        with tr.span("pipeline.program", cat="pipeline", args={"label": label}):
            return self._run(label, source, program)

    def _run(
        self,
        label: str,
        source: str,
        program: Optional[ast.Program] = None,
    ) -> ProgramResult:
        t0 = time.perf_counter()
        reg = tel.registry()
        try:
            session = ProgramSession(
                source, program=program, profile=self.profile
            )
        except TypeError_ as exc:
            # Program-level validation failure (duplicate names, malformed
            # annotations) — same rejection the serial Checker raises.
            return ProgramResult(
                label,
                ok=False,
                error=ErrorInfo.from_exception("check", exc),
                wall_ms=(time.perf_counter() - t0) * 1000.0,
            )
        names = session.function_names()

        # Phase 0 — consult the cache and plan one task per function.
        resolved: Dict[str, FunctionResult] = {}
        tasks: List[Dict[str, Any]] = []
        for name in names:
            status, entry = ("miss", None)
            if self.cache is not None:
                status, entry = self.cache.get(session.function_key(name))
            if status == "hit" and entry is not None:
                if self.trust_cache or not self.verify:
                    resolved[name] = FunctionResult(
                        name,
                        ok=True,
                        cached="trusted" if self.trust_cache else "hit",
                        nodes=entry.nodes,
                        verified=entry.verified if self.trust_cache else 0,
                    )
                    continue
                tasks.append(self._task(session, name, "replay", entry.cert))
            else:
                # "stale" is re-derived like a miss; the overwrite below
                # evicts the unusable entry.
                tasks.append(self._task(session, name, "check", None))

        mode = self.mode
        if reg.enabled:
            reg.inc(f"pipeline.mode.{mode if tasks else 'serial'}")
        if tasks and mode == "process":
            outcomes = self._run_parallel(session, tasks, reg)
        elif tasks and mode == "thread":
            outcomes = self._run_threaded(session, tasks, reg)
        else:
            outcomes = self._run_serial(session, tasks, reg)

        result = self._assemble(label, session, names, resolved, outcomes, reg)
        result.wall_ms = (time.perf_counter() - t0) * 1000.0
        if reg.enabled:
            reg.inc("pipeline.files")
            reg.inc("pipeline.functions", len(names))
            counts = result.counts()
            reg.inc("pipeline.cache.hit", counts["hit"])
            reg.inc("pipeline.cache.miss", counts["miss"])
            reg.inc("pipeline.cache.stale", counts["stale"])
        return result

    def _task(
        self,
        session: ProgramSession,
        name: str,
        kind: str,
        cert: Optional[str],
    ) -> Dict[str, Any]:
        return {
            "source": session.source,
            "profile": self.profile,
            "func": name,
            "kind": kind,
            "cert": cert,
            "want_cert": self.cache is not None and self.verify,
            "verify": self.verify,
            "collect": tel.registry().enabled,
            # Wire trace context (None when tracing is off): workers run
            # under a local tracer parented here and ship events back as
            # `trace_doc` for the parent ring buffer to ingest.
            "trace": tel.current_wire() if tel.tracer().enabled else None,
        }

    # ------------------------------------------------------------------
    # Serial execution — today's path, phase-faithful
    # ------------------------------------------------------------------

    def _run_serial(
        self,
        session: ProgramSession,
        tasks: List[Dict[str, Any]],
        reg: tel.Registry,
    ) -> Dict[str, Dict[str, Any]]:
        """In-process execution against the ambient registry, replicating
        the serial entry points' phase structure exactly: check every
        function first (sorted order, stop at the first type error — the
        verifier must not run for a program the checker rejected), then
        verify/replay every derivation."""
        outcomes: Dict[str, Dict[str, Any]] = {}
        fresh: Dict[str, Any] = {}  # name -> FuncDerivation to verify

        with _maybe_span(reg, "check.program"):
            for task in tasks:
                name = task["func"]
                if task["kind"] == "replay":
                    continue  # nothing to check; replayed in phase 2
                t0 = time.perf_counter()
                try:
                    fd = session.check_function(name)
                except TypeError_ as exc:
                    outcomes[name] = _outcome(
                        name, error=ErrorInfo.from_exception("check", exc)
                    )
                    return outcomes
                fresh[name] = fd
                outcomes[name] = _outcome(
                    name,
                    cached="miss",
                    nodes=fd.body.node_count(),
                    ms=(time.perf_counter() - t0) * 1000.0,
                )

        if not self.verify:
            return outcomes

        with _maybe_span(reg, "verify.program"):
            for task in tasks:
                name = task["func"]
                t0 = time.perf_counter()
                if task["kind"] == "replay":
                    out = self._replay_serial(session, name, task["cert"])
                else:
                    out = outcomes[name]
                    try:
                        out["verified"] = session.verify_function(fresh[name])
                    except VerificationError as exc:
                        out["error"] = ErrorInfo.from_exception("verify", exc)
                        out["ok"] = False
                        outcomes[name] = out
                        return outcomes
                    out["cert"] = (
                        func_derivation_to_json(fresh[name])
                        if self.cache is not None
                        else None
                    )
                out["ms"] += (time.perf_counter() - t0) * 1000.0
                outcomes[name] = out
                if out["error"] is not None:
                    return outcomes
        return outcomes

    def _replay_serial(
        self, session: ProgramSession, name: str, cert: str
    ) -> Dict[str, Any]:
        from ..core.serialize import func_derivation_from_json

        try:
            fd = func_derivation_from_json(name, cert)
            verified = session.verify_function(fd)
            return _outcome(
                name, cached="hit", nodes=fd.body.node_count(), verified=verified
            )
        except (VerificationError, ValueError, KeyError, TypeError):
            pass
        # Unusable certificate: self-heal with a fresh derivation.
        out = _outcome(name, cached="stale")
        try:
            fd = session.check_function(name)
            out["nodes"] = fd.body.node_count()
            out["verified"] = session.verify_function(fd)
            if self.cache is not None:
                out["cert"] = func_derivation_to_json(fd)
        except TypeError_ as exc:
            out.update(ok=False, error=ErrorInfo.from_exception("check", exc))
        except VerificationError as exc:
            out.update(ok=False, error=ErrorInfo.from_exception("verify", exc))
        return out

    # ------------------------------------------------------------------
    # Parallel execution
    # ------------------------------------------------------------------

    def _run_parallel(
        self,
        session: ProgramSession,
        tasks: List[Dict[str, Any]],
        reg: tel.Registry,
    ) -> Dict[str, Dict[str, Any]]:
        executor = self._executor_handle()
        with _maybe_span(reg, "check.program"):
            raw = list(executor.map(run_function_task, tasks))
        return self._ingest(raw, reg)

    def _run_threaded(
        self,
        session: ProgramSession,
        tasks: List[Dict[str, Any]],
        reg: tel.Registry,
    ) -> Dict[str, Dict[str, Any]]:
        """In-process fan-out over a thread pool.

        Every task runs :func:`run_function_task` against the **same**
        warm session object: the persistent contexts core guarantees a
        check never mutates shared state, region interning is locked,
        and the per-task telemetry/tracer swaps in the worker are
        thread-scoped.  Compared to process mode nothing is pickled and
        the program is parsed/elaborated exactly once — the serialization
        tax visible in ``pipeline.worker_ms`` disappears."""
        executor = self._thread_executor_handle()
        with _maybe_span(reg, "check.program"):
            raw = list(
                executor.map(lambda task: run_function_task(task, session), tasks)
            )
        return self._ingest(raw, reg)

    def _ingest(
        self, raw: List[Dict[str, Any]], reg: tel.Registry
    ) -> Dict[str, Dict[str, Any]]:
        outcomes: Dict[str, Dict[str, Any]] = {}
        tr = tel.tracer()
        for record in raw:
            # Trace events describe what actually ran, so unlike the
            # metric documents below they are ingested unconditionally —
            # no serial-parity discard.
            if tr.enabled and record.get("trace_doc"):
                tr.ingest(record["trace_doc"])
            out = _outcome(
                record["func"],
                cached=record["cached"],
                nodes=record["nodes"],
                verified=record["verified"],
                ms=record["ms"],
            )
            out["cert"] = record.get("cert")
            out["check_doc"] = record.get("check_doc")
            out["verify_doc"] = record.get("verify_doc")
            if record["error"] is not None:
                out["ok"] = False
                out["error"] = ErrorInfo.from_record(record["error"])
            outcomes[record["func"]] = out
        return outcomes

    # ------------------------------------------------------------------
    # Assembly — deterministic reporting + telemetry merge-back
    # ------------------------------------------------------------------

    def _assemble(
        self,
        label: str,
        session: ProgramSession,
        names: List[str],
        resolved: Dict[str, FunctionResult],
        outcomes: Dict[str, Dict[str, Any]],
        reg: tel.Registry,
    ) -> ProgramResult:
        # The winning error is the serial one: first check error in sorted
        # function order; barring those, the first verify error.
        error: Optional[ErrorInfo] = None
        error_name: Optional[str] = None
        for stage in ("check", "verify"):
            for name in names:
                out = outcomes.get(name)
                if out is not None and out["error"] is not None and out["error"].stage == stage:
                    error, error_name = out["error"], name
                    break
            if error is not None:
                break

        # Merge worker telemetry so the parent registry reads like a
        # serial run: on a check failure, a serial run never checked past
        # the failing function (sorted order) and never verified anything.
        if reg.enabled:
            merge_names = names
            include_verify = error is None or error.stage == "verify"
            if error is not None and error.stage == "check":
                merge_names = names[: names.index(error_name) + 1]
            for name in merge_names:
                out = outcomes.get(name)
                if out is None:
                    continue
                if out.get("check_doc") is not None:
                    tel.merge_doc(reg, out["check_doc"])
                if include_verify and out.get("verify_doc") is not None:
                    tel.merge_doc(reg, out["verify_doc"])
                if error is not None and error_name == name:
                    break
                if out.get("ms"):
                    reg.observe("pipeline.worker_ms", out["ms"])

        result = ProgramResult(label, ok=error is None, error=error)
        if error is not None:
            return result

        checked = 0
        verified_count = 0
        for name in names:
            if name in resolved:
                result.functions.append(resolved[name])
                continue
            out = outcomes[name]
            result.functions.append(
                FunctionResult(
                    name,
                    ok=True,
                    cached=out["cached"],
                    nodes=out["nodes"],
                    verified=out["verified"],
                    ms=out["ms"],
                )
            )
            if out["cached"] in ("miss", "stale"):
                checked += 1
            if self.verify:
                verified_count += 1
            if self.cache is not None and out.get("cert"):
                self.cache.put(
                    session.function_key(name),
                    CacheEntry(
                        func=name,
                        nodes=out["nodes"],
                        verified=out["verified"],
                        cert=out["cert"],
                    ),
                )
        if reg.enabled:
            if checked:
                reg.inc("checker.functions", checked)
            if verified_count:
                reg.inc("verifier.certificates", verified_count)
        return result


def _outcome(
    name: str,
    cached: str = "miss",
    nodes: int = 0,
    verified: int = 0,
    ms: float = 0.0,
    error: Optional[ErrorInfo] = None,
) -> Dict[str, Any]:
    return {
        "func": name,
        "ok": error is None,
        "cached": cached,
        "nodes": nodes,
        "verified": verified,
        "ms": ms,
        "error": error,
        "cert": None,
        "check_doc": None,
        "verify_doc": None,
    }


class _maybe_span:
    """``registry.span(name)`` when telemetry is on, nothing otherwise."""

    def __init__(self, reg: tel.Registry, name: str):
        self._cm = reg.span(name) if reg.enabled else None

    def __enter__(self):
        return self._cm.__enter__() if self._cm is not None else None

    def __exit__(self, *exc):
        return self._cm.__exit__(*exc) if self._cm is not None else False
