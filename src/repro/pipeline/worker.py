"""Worker-process entry points for the parallel pipeline.

Everything here must be importable by name from a fresh interpreter (the
``ProcessPoolExecutor`` contract) and speak only in picklable primitives:
tasks and results are plain dicts of strings/ints, exceptions are folded
into structured error records, and telemetry crosses the process boundary
as exported ``repro-telemetry/1`` documents that the parent merges back
into its registry.

A worker keeps a small per-process table of :class:`ProgramSession`
objects keyed by (source, profile), so a batch that fans N functions of
one file out parses and elaborates that file once per *worker*, not once
per function.

Check-phase and verify-phase metrics are collected into **separate**
registries.  That lets the parent reproduce the serial path's accounting
exactly: a serial run that dies on the third function's type error never
ran the verifier at all, so when a parallel run hits the same error the
parent merges only the check-phase documents of the functions a serial
run would have reached and drops every verify-phase document.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, Optional, Tuple

from .. import telemetry as tel
from ..core.checker import CheckProfile
from ..core.errors import TypeError_
from ..core.serialize import (
    func_derivation_from_json,
    func_derivation_to_json,
)
from ..lang import parse_program
from ..lang.parser import ParseError
from ..lang.tokens import SourceSpan
from ..verifier import VerificationError
from .session import ProgramSession

#: Per-process session table; bounded so a long batch over many files
#: doesn't pin every AST in every worker forever.
_SESSIONS: Dict[Tuple[str, CheckProfile], ProgramSession] = {}
_MAX_SESSIONS = 8


def init_worker() -> None:
    """Pool initializer: match the parent's recursion headroom (the checker
    and the pickler both recurse over deep derivations)."""
    sys.setrecursionlimit(100_000)


def _session_for(source: str, profile: CheckProfile) -> ProgramSession:
    key = (source, profile)
    session = _SESSIONS.get(key)
    if session is None:
        if len(_SESSIONS) >= _MAX_SESSIONS:
            _SESSIONS.clear()
        session = _SESSIONS[key] = ProgramSession(source, profile=profile)
    return session


def _span_tuple(span: Optional[SourceSpan]):
    if span is None:
        return None
    return (span.start, span.end, span.line, span.column)


def span_from_tuple(data) -> Optional[SourceSpan]:
    if data is None:
        return None
    start, end, line, column = data
    return SourceSpan(start, end, line, column)


def _error_record(stage: str, exc: BaseException, crash: bool = False):
    return {
        "stage": stage,
        "cls": type(exc).__name__,
        "message": getattr(exc, "message", None) or str(exc),
        "span": _span_tuple(getattr(exc, "span", None)),
        "crash": crash,
    }


def run_function_task(
    task: Dict[str, Any], session: Optional[ProgramSession] = None
) -> Dict[str, Any]:
    """Check (or replay) + verify one function; the parallel pipeline's
    unit of work.

    ``task`` keys: ``source``, ``profile``, ``func``, ``kind``
    (``"check"`` for a cache miss, ``"replay"`` for a hit whose stored
    certificate should go through the verifier), ``cert`` (the stored
    certificate JSON for replays), ``want_cert`` (serialize the fresh
    derivation so the parent can store it), ``verify``, ``collect``
    (gather telemetry documents), ``trace`` (optional trace-context wire
    dict: run under a worker-local tracer and ship the events back as
    ``trace_doc`` for the parent to stitch into its ring buffer).

    Process pools call this with ``session=None`` and fall back to the
    per-process session table; the in-process thread mode passes the
    parent's warm session directly — no pickling, no re-elaboration.
    Telemetry/tracer swaps below are per-thread scoped, so concurrent
    thread-mode tasks collect into private registries without touching
    each other or the caller's ambient registry.
    """
    parent_ctx = tel.TraceContext.from_wire(task.get("trace"))
    if parent_ctx is None:
        return _run_function_task(task, session)
    local = tel.Tracer(capacity=4096)
    with tel.use_tracer_local(local):
        with local.span(
            f"pipeline.func.{task['func']}", cat="pipeline", parent=parent_ctx
        ):
            result = _run_function_task(task, session)
    result["trace_doc"] = local.events()
    return result


def _run_function_task(
    task: Dict[str, Any], session: Optional[ProgramSession] = None
) -> Dict[str, Any]:
    t0 = time.perf_counter()
    collect = task["collect"]
    check_reg = tel.Registry(enabled=True) if collect else None
    verify_reg = tel.Registry(enabled=True) if collect else None
    result: Dict[str, Any] = {
        "func": task["func"],
        "ok": False,
        "cached": "miss",
        "nodes": 0,
        "verified": 0,
        "cert": None,
        "error": None,
    }

    name = task["func"]
    fd = None
    try:
        if session is None:
            session = _session_for(task["source"], task["profile"])
    except TypeError_ as exc:
        # Program-level validation failure — the parent normally catches
        # this before fanning out, but a worker must never crash the pool.
        result["error"] = _error_record("check", exc)
        if collect:
            result["check_doc"] = tel.registry_to_doc(check_reg)
            result["verify_doc"] = tel.registry_to_doc(verify_reg)
        result["ms"] = (time.perf_counter() - t0) * 1000.0
        return result

    if task["kind"] == "replay":
        result["cached"] = "hit"
        with tel.use_local(verify_reg) if collect else _noop():
            try:
                fd = func_derivation_from_json(name, task["cert"])
                result["verified"] = session.verify_function(fd)
            except (VerificationError, ValueError, KeyError, TypeError):
                # The stored certificate no longer replays (tampered,
                # truncated, or a collision-grade anomaly): self-heal by
                # re-deriving from scratch.
                result["cached"] = "stale"
                fd = None
        if fd is not None:
            result["ok"] = True
            result["nodes"] = fd.body.node_count()

    if fd is None:
        with tel.use_local(check_reg) if collect else _noop():
            try:
                fd = session.check_function(name)
            except TypeError_ as exc:
                result["error"] = _error_record("check", exc)
            except Exception as exc:  # noqa: BLE001 — report, don't hang the pool
                result["error"] = _error_record("check", exc, crash=True)
        if fd is not None:
            result["nodes"] = fd.body.node_count()
            if task["verify"]:
                with tel.use_local(verify_reg) if collect else _noop():
                    try:
                        result["verified"] = session.verify_function(fd)
                    except VerificationError as exc:
                        result["error"] = _error_record("verify", exc)
                    except Exception as exc:  # noqa: BLE001
                        result["error"] = _error_record("verify", exc, crash=True)
            if result["error"] is None:
                result["ok"] = True
                if task["want_cert"]:
                    result["cert"] = func_derivation_to_json(fd)

    if collect:
        result["check_doc"] = tel.registry_to_doc(check_reg)
        result["verify_doc"] = tel.registry_to_doc(verify_reg)
    result["ms"] = (time.perf_counter() - t0) * 1000.0
    return result


def check_verify_program_task(task: Dict[str, Any]) -> Dict[str, Any]:
    """Whole-program checker⇒verifier verdict — the fuzz campaign's
    static oracle, run remotely with byte-for-byte the same semantics as
    the in-process path in :mod:`repro.fuzz.oracles`.

    ``task`` keys: ``source``, ``profile``, ``collect``.  Returns a
    verdict dict with ``status`` in ``ok | parse | type | crash |
    verifier`` plus the error details needed to reconstruct the serial
    diagnostics, and (when collecting) the telemetry document of
    everything the check and verify did.
    """
    collect = task["collect"]
    reg = tel.Registry(enabled=True) if collect else None
    verdict: Dict[str, Any] = {"status": "ok", "cls": None, "message": None, "span": None}
    with tel.use_local(reg) if collect else _noop():
        try:
            program = parse_program(task["source"])
        except ParseError as exc:
            verdict.update(
                status="parse",
                cls="ParseError",
                message=str(exc),
                span=_span_tuple(getattr(exc, "span", None)),
            )
            program = None
        derivation = None
        session = None
        if program is not None:
            # Construction mirrors the serial oracle exactly: program-level
            # validation/elaboration errors are TypeError_ rejections, any
            # other exception is a checker-crash finding.
            try:
                session = ProgramSession(
                    task["source"], program=program, profile=task["profile"]
                )
                derivation = session.checker.check_program()
            except TypeError_ as exc:
                verdict.update(
                    status="type",
                    cls=type(exc).__name__,
                    message=exc.message,
                    span=_span_tuple(exc.span),
                )
            except Exception as exc:  # noqa: BLE001 — crashes are findings
                verdict.update(
                    status="crash", cls=type(exc).__name__, message=str(exc)
                )
        if derivation is not None:
            try:
                session.verifier.verify_program(derivation)
            except VerificationError as exc:
                verdict.update(status="verifier", message=str(exc))
    if collect:
        verdict["doc"] = tel.registry_to_doc(reg)
    return verdict


class _noop:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False
