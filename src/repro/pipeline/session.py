"""A parsed/elaborated program shared across the whole check/verify stack.

Before the pipeline, every entry point re-did program-level work per call:
``verify_source`` parsed the program, the :class:`Checker` elaborated the
function-type table, and the :class:`Verifier` elaborated the same table
again.  A :class:`ProgramSession` does each exactly once — parse once per
file, elaborate once per program — and hands the shared objects to both
the prover and the verifier, which is what lets the batch runner fan
hundreds of per-function jobs out without paying the program-level costs
hundreds of times.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.checker import CHECKER_VERSION, Checker, CheckProfile, DEFAULT_PROFILE
from ..core.derivation import FuncDerivation
from ..core.functypes import FuncType
from ..lang import ast, parse_program
from ..verifier import Verifier
from .cache import ProgramFingerprints


class ProgramSession:
    """One program, parsed and elaborated once, with a shared checker,
    verifier, and cache-key fingerprinter hanging off it."""

    def __init__(
        self,
        source: str,
        program: Optional[ast.Program] = None,
        profile: CheckProfile = DEFAULT_PROFILE,
        record: bool = True,
        version: str = CHECKER_VERSION,
    ):
        self.source = source
        self.program = program if program is not None else parse_program(source)
        self.profile = profile
        self.version = version
        self.checker = Checker(self.program, profile=profile, record=record)
        self.verifier = Verifier(self.program, functypes=self.checker.functypes)
        self._fingerprints: Optional[ProgramFingerprints] = None

    @property
    def functypes(self) -> Dict[str, FuncType]:
        return self.checker.functypes

    @property
    def fingerprints(self) -> ProgramFingerprints:
        if self._fingerprints is None:
            self._fingerprints = ProgramFingerprints(
                self.program, profile=self.profile, version=self.version
            )
        return self._fingerprints

    def function_names(self) -> List[str]:
        """Sorted, matching the order ``Checker.check_program`` checks in
        (and therefore which type error a serial run reports first)."""
        return sorted(self.program.funcs)

    def function_key(self, name: str) -> str:
        return self.fingerprints.key(name)

    def check_function(self, name: str) -> FuncDerivation:
        return self.checker.check_function(name)

    def verify_function(self, fd: FuncDerivation) -> int:
        return self.verifier.verify_function(fd)
