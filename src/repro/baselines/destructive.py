"""Destructive-read baseline for singly linked lists (experiment E6).

Global-domination systems without focus (§9.1) access a unique/iso field by
*destructively reading* it: the field is implicitly nulled so the invariant
is never observed broken, and must be written back afterwards.  For the
recursively linear list this means ``remove_tail`` performs **two heap
writes per node traversed** (null on the way down, restore on the way up) —
"a write to each list node traversed" (§1) — versus the O(1) writes of the
fearless version (fig 2).

The baseline operates directly on the shared :class:`~repro.runtime.heap.Heap`
over the corpus ``sll_node`` structs so both versions are measured with the
same heap write counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..runtime.heap import Heap
from ..runtime.values import NONE, Loc, RuntimeValue, is_loc


@dataclass
class RemoveTailResult:
    payload: Optional[Loc]
    reads: int
    writes: int


def destructive_remove_tail(heap: Heap, node: Loc) -> RemoveTailResult:
    """remove_tail under the destructive-read discipline.

    Every traversal of an iso field nulls it (one write) and repairs it on
    the way back (another write).  Returns the detached payload and the
    read/write counts incurred.
    """
    reads0, writes0 = heap.reads, heap.writes
    payload = _remove_tail_rec(heap, node)
    return RemoveTailResult(
        payload=payload,
        reads=heap.reads - reads0,
        writes=heap.writes - writes0,
    )


def _destructive_read(heap: Heap, loc: Loc, fieldname: str) -> RuntimeValue:
    value = heap.read_field(loc, fieldname)
    heap.write_field(loc, fieldname, NONE)  # implicit null
    return value


def _remove_tail_rec(heap: Heap, node: Loc) -> Optional[Loc]:
    next_value = _destructive_read(heap, node, "next")
    if not is_loc(next_value):
        # node is the tail of a size-1 list; nothing to detach.
        heap.write_field(node, "next", next_value)
        return None
    next_next = heap.read_field(next_value, "next")
    if not is_loc(next_next):
        # next is the tail: detach its payload destructively.
        payload = _destructive_read(heap, next_value, "payload")
        heap.write_field(node, "next", NONE)
        return payload if is_loc(payload) else None
    result = _remove_tail_rec(heap, next_value)
    heap.write_field(node, "next", next_value)  # repair on the way up
    return result


def fearless_remove_tail(heap: Heap, program, node: Loc) -> RemoveTailResult:
    """The fig 2 version, executed by the FCL interpreter on the same heap."""
    from ..runtime.machine import run_function

    reads0, writes0 = heap.reads, heap.writes
    result, _interp = run_function(program, "remove_tail", [node], heap=heap)
    return RemoveTailResult(
        payload=result if is_loc(result) else None,
        reads=heap.reads - reads0,
        writes=heap.writes - writes0,
    )
