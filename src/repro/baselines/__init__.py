"""Baseline models for the Table 1 comparison and the E6 write-count study."""

from .destructive import destructive_remove_tail, fearless_remove_tail
from .profiles import AFFINE, ALL_PROFILES, FEARLESS, GLOBAL_DOMINATION, SEARCH_ONLY
from .table1 import build_table, compare_with_paper, render_table

__all__ = [
    "AFFINE",
    "FEARLESS",
    "GLOBAL_DOMINATION",
    "SEARCH_ONLY",
    "ALL_PROFILES",
    "build_table",
    "compare_with_paper",
    "render_table",
    "destructive_remove_tail",
    "fearless_remove_tail",
]
