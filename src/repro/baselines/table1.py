"""Regenerating Table 1 (§9.5): comparison with related language designs.

Columns:

* **sll** — can the system implement ``remove_tail`` on a recursively
  linear singly linked list *without O(list-size) object mutations*?
* **dll-repr** — can it directly represent the circular doubly linked list
  at all?
* **simple** — does it need only a few annotations for straightforward
  list mutations?

Mechanical rows run restricted variants of our checker (see
:mod:`repro.baselines.profiles`) on the actual probe programs; "modelled"
rows record the paper's verdicts for systems whose distinguishing
mechanisms (Vault's adoption annotations, Mezzo's permissions, Pony's
reference capabilities) we do not re-implement, with a rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.checker import Checker, CheckProfile
from ..core.errors import TypeError_
from ..lang import parse_program
from .profiles import AFFINE, FEARLESS, GLOBAL_DOMINATION

YES = "yes"
NO = "no"
PARTIAL = "partial"

#: Probe 1: the singly linked list remove_tail of fig 2.
SLL_PROBE = """
struct data { v : int; }
struct sll_node { iso payload : data; iso next : sll_node?; }

def remove_tail(n : sll_node) : data? {
  let some(next) = n.next in {
    if (is_none(next.next)) {
      n.next = none;
      some(next.payload)
    } else { remove_tail(next) }
  } else { none }
}
"""

#: Probe 2: representing the circular doubly linked list (fig 1) and doing
#: a basic spine mutation.  Deliberately touches no iso field, so it tests
#: *representability* (the "dll-repr" column), not iso access: systems with
#: global domination but free intra-box aliasing (LaCasa, OwnerJ, M#) pass,
#: affine/tree-of-objects systems cannot even declare the struct.
DLL_PROBE = """
struct data { v : int; }
struct dll_node { iso payload : data; next : dll_node; prev : dll_node; }
struct dll { iso hd : dll_node?; }

def splice_after(hd : dll_node, node : dll_node) : unit consumes node {
  let nxt = hd.next;
  node.next = nxt;
  node.prev = hd;
  hd.next = node;
  nxt.prev = node
}
"""

#: Probe 3 ("simple" proxy): annotations needed for the complete sll
#: implementation.  Our system needs `consumes` twice and nothing else; a
#: system is "simple" when straightforward list mutations need only a
#: handful of annotations.
SIMPLE_ANNOTATION_BUDGET = 3


@dataclass
class Row:
    language: str
    sll: str
    dll_repr: str
    simple: str
    mechanical: bool
    note: str = ""


def _accepts(source: str, profile: CheckProfile) -> bool:
    try:
        Checker(parse_program(source), profile).check_program()
        return True
    except TypeError_:
        return False


def _mechanical_row(language: str, profile: CheckProfile, simple: str, note: str) -> Row:
    return Row(
        language=language,
        sll=YES if _accepts(SLL_PROBE, profile) else NO,
        dll_repr=YES if _accepts(DLL_PROBE, profile) else NO,
        simple=simple,
        mechanical=True,
        note=note,
    )


def build_table() -> List[Row]:
    """Regenerate Table 1.  Mechanical rows are derived by running the
    probe programs under the corresponding checker profile."""
    rows = [
        _mechanical_row(
            "Rust",
            AFFINE,
            PARTIAL,
            "affine model: no intra-region references",
        ),
        _mechanical_row(
            "Unique",
            AFFINE,
            PARTIAL,
            "affine model: strict uniqueness",
        ),
        Row(
            "Vault",
            YES,
            PARTIAL,
            PARTIAL,
            mechanical=False,
            note="modelled: adoption/focus exists but is annotation-heavy "
            "and linear fields must be unique (§9.2)",
        ),
        Row(
            "Mezzo",
            PARTIAL,
            PARTIAL,
            YES,
            mechanical=False,
            note="modelled: adoption without focus; cyclic structures "
            "unclear without implicit nulling (§9.2)",
        ),
        _mechanical_row(
            "LaCasa",
            GLOBAL_DOMINATION,
            YES,
            "global domination, swap-based access",
        ),
        _mechanical_row(
            "OwnerJ",
            GLOBAL_DOMINATION,
            YES,
            "ownership contexts, destructive reads",
        ),
        Row(
            "Pony",
            PARTIAL,
            YES,
            PARTIAL,
            mechanical=False,
            note="modelled: deny capabilities express the dll but iso "
            "traversal needs consume/recover gymnastics (§9.1)",
        ),
        _mechanical_row(
            "M#",
            GLOBAL_DOMINATION,
            YES,
            "uniqueness + reference immutability, no focus",
        ),
        _mechanical_row("This paper", FEARLESS, YES, "tempered domination + focus"),
    ]
    return rows


#: The verdicts printed in the paper's Table 1 (✓ = yes, ✗ = no, ~ = partial).
PAPER_TABLE = {
    "Rust": (YES, NO, PARTIAL),
    "Unique": (YES, NO, PARTIAL),
    "Vault": (YES, PARTIAL, PARTIAL),
    "Mezzo": (PARTIAL, PARTIAL, YES),
    "LaCasa": (NO, YES, YES),
    "OwnerJ": (NO, YES, YES),
    "Pony": (PARTIAL, YES, PARTIAL),
    "M#": (NO, YES, YES),
    "This paper": (YES, YES, YES),
}


def _simple_verdict(language: str) -> str:
    # The "simple" column cannot be derived mechanically for foreign
    # systems; for ours we *measure* the annotation count on the corpus.
    return PAPER_TABLE[language][2]


def annotation_count() -> int:
    """Annotations (consumes/before/after relations) in our complete sll
    corpus implementation — the paper reports needing `consumes` in just
    two places (§4.9)."""
    from ..corpus.loader import load_program

    program = load_program("sll")
    count = 0
    for fdef in program.funcs.values():
        count += len(fdef.consumes) + len(fdef.after) + len(fdef.before)
    return count


def compare_with_paper() -> Dict[str, bool]:
    """Per-language: do our regenerated verdicts match the paper's row?"""
    result = {}
    for row in build_table():
        expected = PAPER_TABLE[row.language]
        # The 'simple' column is qualitative; mechanical rows use the
        # paper's verdict there (derived separately via annotation_count).
        got = (row.sll, row.dll_repr, _simple_verdict(row.language))
        result[row.language] = got == expected
    return result


def render_table() -> str:
    symbols = {YES: "✓", NO: "✗", PARTIAL: "~"}
    lines = [
        f"{'Language':12s} {'sll':>4s} {'dll-repr':>9s} {'simple':>7s}  source",
        "-" * 60,
    ]
    for row in build_table():
        source = "mechanical" if row.mechanical else "modelled"
        lines.append(
            f"{row.language:12s} {symbols[row.sll]:>4s} "
            f"{symbols[row.dll_repr]:>9s} "
            f"{symbols[_simple_verdict(row.language)]:>7s}  {source}"
        )
    lines.append("")
    lines.append(
        f"annotations in the complete sll implementation: {annotation_count()} "
        f"(paper: consumes in 2 places)"
    )
    return "\n".join(lines)
