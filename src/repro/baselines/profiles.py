"""Checker profiles modelling the related language designs of Table 1 (§9.5).

Table 1 is a capability matrix.  Each related system's *distinguishing
restriction* — the reason it earns an ✗ in some column — is expressible as
a restriction of our checker:

* **Affine / tree-of-objects systems** (Rust without unsafe, Wadler-style
  uniqueness): every object reference is an owning edge; there are no
  intra-region references, so the circular doubly linked list is not even
  representable (`allow_intra_region_refs=False`).

* **Global-domination systems** (LaCasa, OwnerJ-style ownership systems,
  M#): iso/unique fields must dominate *at all times* and there is no focus
  mechanism; reading an iso field requires a destructive read or swap, so
  the non-destructive singly-linked-list traversal of fig 2 is untypable
  (`allow_focus=False`).

* Neither family has an ``if disconnected`` primitive
  (`allow_if_disconnected=False`), so fig 5 is out of reach for all of them
  — matching the paper's claim that *no* previous system expresses
  ``remove_tail`` on the doubly linked list.

Rows the paper marks "~" (Vault, Mezzo, Pony) mix these restrictions with
system-specific mechanisms we do not model mechanically; their verdicts are
recorded as documented (non-mechanical) entries in
:mod:`repro.baselines.table1`.
"""

from __future__ import annotations

from ..core.checker import CheckProfile

#: This paper's system (the default profile).
FEARLESS = CheckProfile(name="fearless")

#: Affine/tree-of-objects model: no intra-region references, no focus
#: needed for the sll (unique chains are this model's bread and butter),
#: no region-splitting primitive.
AFFINE = CheckProfile(
    name="affine",
    allow_intra_region_refs=False,
    allow_if_disconnected=False,
)

#: Global-domination model: intra-region aliases are fine (that is the
#: whole point of LaCasa-style boxes) but there is no focus, so iso fields
#: may never be observed in a non-dominating state.
GLOBAL_DOMINATION = CheckProfile(
    name="global-domination",
    allow_focus=False,
    allow_if_disconnected=False,
)

#: Search-only profile (no liveness oracle) for the §4.6/§5.1 experiments.
SEARCH_ONLY = CheckProfile(name="search-only", use_liveness_oracle=False)

ALL_PROFILES = {
    profile.name: profile
    for profile in (FEARLESS, AFFINE, GLOBAL_DOMINATION, SEARCH_ONLY)
}
