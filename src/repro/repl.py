"""An interactive FCL session: ``python -m repro repl``.

The REPL maintains *both* halves of the paper simultaneously:

* a persistent :class:`StaticContext` — every expression you enter is
  type-checked incrementally against it, so ``let`` bindings, focused
  variables, tracked iso fields, and consumed regions persist across
  inputs exactly as they would inside one function body;
* a persistent heap + environment — accepted expressions are then
  evaluated with the dynamic reservation checks on.

Meta-commands:

* ``:ctx``     — show the static context (H; Γ)
* ``:heap``    — show the dynamic heap
* ``:regions`` — show the dynamic region graph
* ``:load F``  — load struct/function declarations from a file
* ``:quit``

Declarations (inputs starting with ``struct`` or ``def``) extend the
program; anything else is parsed as an expression, checked, and run.
"""

from __future__ import annotations

import sys
from typing import Dict, Tuple

from .core.checker import Checker, _FuncChecker
from .core.contexts import StaticContext
from .core.errors import TypeError_
from .core.regions import RegionSupply
from .lang import ast, parse_program
from .lang.lexer import LexError
from .lang.parser import ParseError, Parser
from .runtime.heap import Heap
from .runtime.machine import (
    Interpreter,
    MachineError,
    ReservationViolation,
)
from .runtime.values import NONE, UNIT, RuntimeValue, is_loc


class ReplError(Exception):
    pass


class Session:
    """One interactive session: accumulated program + static context +
    dynamic machine state."""

    def __init__(self) -> None:
        self.decl_source = "struct data { v : int; }\n"
        self.program = parse_program(self.decl_source)
        self.checker = Checker(self.program)
        self.supply = RegionSupply()
        self.ctx = StaticContext(self.supply)
        self.heap = Heap()
        self.interp = Interpreter(self.program, self.heap, reservation=set())
        self.env: Dict[str, RuntimeValue] = {}

    # -- declarations -------------------------------------------------------

    def add_declarations(self, source: str) -> str:
        """Extend the program; the whole program is re-checked."""
        combined = self.decl_source + "\n" + source
        program = parse_program(combined)
        checker = Checker(program)
        checker.check_program()
        self.decl_source = combined
        self.program = program
        self.checker = checker
        self.interp.program = program
        added = parse_program("struct data { v : int; }\n" + source)
        names = [n for n in added.funcs] + [
            n for n in added.structs if n != "data"
        ]
        return f"defined {', '.join(names)}" if names else "ok"

    # -- expressions --------------------------------------------------------

    def eval_expression(self, source: str) -> Tuple[RuntimeValue, str, str]:
        """Check one expression against the persistent context, then run it.

        Returns (value, type string, rendering)."""
        expr = self._parse_expr(source)
        fchecker = self._make_checker(expr)
        trial = self.ctx.clone()
        value, _deriv = fchecker.check_expr(expr, trial, None)
        # Statically accepted: evaluate, then commit the static context.
        result = self._run(expr)
        self.ctx = trial
        if isinstance(expr, ast.LetBind) and self._last_bound is not None:
            self.env[expr.name] = self._last_bound
        # Bindings invalidated statically (sent/consumed) leave the session.
        for name in list(self.env):
            if not self.ctx.has_var(name):
                del self.env[name]
        return result, str(value.ty), self._show(result)

    def _parse_expr(self, source: str) -> ast.Expr:
        parser = Parser(source)
        expr = parser.parse_expr()
        from .lang.tokens import TokenKind

        trailing = parser._peek()
        if trailing.kind is not TokenKind.EOF:
            raise ParseError(
                f"trailing input {trailing.text!r}", trailing.span
            )
        return expr

    def _make_checker(self, expr: ast.Expr) -> _FuncChecker:
        """A checker whose liveness treats every session binding as live
        (the user may reference it in a later input)."""
        from .core.functypes import elaborate

        params = [
            ast.Param(name, binding.ty)
            for name, binding in self.ctx.gamma.items()
        ]
        # Session bindings stay live across inputs (they may be used later)
        # — except ones this very input sends away, which get true liveness
        # so the send is permitted and the binding leaves the session.
        sent_names = {
            node.value.name
            for node in ast.walk(expr)
            if isinstance(node, ast.Send) and isinstance(node.value, ast.VarRef)
        }
        consumable = [
            name
            for name, binding in self.ctx.gamma.items()
            if binding.region is not None and name in sent_names
        ]
        fdef = ast.FuncDef(
            name="$repl",
            params=params,
            return_type=ast.UNIT,
            body=ast.Block([expr]),
            consumes=consumable,
        )
        self.checker.functypes["$repl"] = elaborate(fdef, self.program)
        try:
            fchecker = _FuncChecker(self.checker, fdef)
        finally:
            del self.checker.functypes["$repl"]
        fchecker.supply = self.supply  # regions persist across inputs
        return fchecker

    def _run(self, expr: ast.Expr) -> RuntimeValue:
        from repro.runtime.machine import Env

        env = Env(self.env)
        gen = self.interp._eval(expr, env)
        self._last_bound = None
        try:
            event = None
            while True:
                if event is not None and event[0] == "send":
                    # The REPL plays a sink thread: the live set leaves this
                    # session's reservation and is gone.
                    _kind, _struct, _root, live = event
                    self.interp.reservation.difference_update(live)
                    event = gen.send(UNIT)
                    continue
                event = next(gen)
                if event[0] == "recv":
                    raise ReplError(
                        "recv needs a multi-threaded Machine; not available "
                        "in the REPL"
                    )
        except StopIteration as stop:
            # Write assignments back to the session environment.
            for name in list(self.env):
                self.env[name] = env.lookup(name)
            if isinstance(expr, ast.LetBind):
                self._last_bound = env.lookup(expr.name)
            return stop.value

    # -- rendering ------------------------------------------------------------

    def _show(self, value: RuntimeValue) -> str:
        if value is UNIT:
            return "()"
        if value is NONE:
            return "none"
        if is_loc(value):
            obj = self.heap.obj(value)
            fields = ", ".join(
                f"{k} = {self._brief(v)}" for k, v in obj.fields.items()
            )
            return f"{obj.struct.name}{{{fields}}} @ {value}"
        return repr(value)

    def _brief(self, value: RuntimeValue) -> str:
        if value is NONE:
            return "none"
        if is_loc(value):
            return str(value)
        return repr(value)

    def show_context(self) -> str:
        return str(self.ctx)

    def show_heap(self) -> str:
        lines = []
        for loc in sorted(self.heap.locations()):
            obj = self.heap.obj(loc)
            fields = ", ".join(
                f"{k} = {self._brief(v)}" for k, v in obj.fields.items()
            )
            lines.append(
                f"{loc}: {obj.struct.name}{{{fields}}} "
                f"[rc={obj.stored_refcount}]"
            )
        return "\n".join(lines) if lines else "(empty heap)"

    def show_regions(self) -> str:
        from .analysis import build_region_graph

        roots = [v for v in self.env.values() if is_loc(v)]
        graph = build_region_graph(self.heap, roots)
        lines = [
            f"{len(graph.regions)} dynamic regions, "
            f"{len(graph.edges)} iso edges, tree: {graph.is_tree()}"
        ]
        for index, region in enumerate(graph.regions):
            members = ", ".join(str(l) for l in sorted(region))
            lines.append(f"  region {index}: {{{members}}}")
        return "\n".join(lines)


BANNER = (
    "FCL interactive session — fearless concurrency, one expression at a "
    "time.\nDeclarations (struct/def) extend the program; :help for "
    "commands."
)

HELP = (
    ":ctx      show the static context (H; Γ)\n"
    ":heap     show the dynamic heap\n"
    ":regions  show the dynamic region graph\n"
    ":load F   load declarations from a file\n"
    ":quit     leave"
)


def run_repl(stdin=None, stdout=None) -> int:
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout

    def say(text: str) -> None:
        print(text, file=stdout)

    session = Session()
    say(BANNER)
    while True:
        try:
            stdout.write("fcl> ")
            stdout.flush()
            line = stdin.readline()
        except KeyboardInterrupt:
            say("")
            continue
        if not line:
            say("")
            return 0
        line = line.strip()
        if not line:
            continue
        try:
            if line in (":quit", ":q", ":exit"):
                return 0
            if line in (":help", ":h"):
                say(HELP)
            elif line == ":ctx":
                say(session.show_context())
            elif line == ":heap":
                say(session.show_heap())
            elif line == ":regions":
                say(session.show_regions())
            elif line.startswith(":load "):
                path = line[len(":load "):].strip()
                with open(path) as handle:
                    say(session.add_declarations(handle.read()))
            elif line.startswith(("struct ", "def ")):
                # Multi-line declarations: read until braces balance.
                while line.count("{") > line.count("}"):
                    more = stdin.readline()
                    if not more:
                        break
                    line += "\n" + more.rstrip()
                say(session.add_declarations(line))
            else:
                _value, ty, rendering = session.eval_expression(line)
                say(f"{rendering} : {ty}")
        except (TypeError_, ParseError, LexError) as exc:
            say(f"error: {exc}")
        except (ReplError, MachineError, ReservationViolation) as exc:
            say(f"runtime error: {exc}")
