"""The negative corpus: programs the type system must reject, each with
the paper-level reason and the expected error class.

Used by tests and by the Table 1 machinery to demonstrate exactly which
discipline each rejection enforces.  Every entry is a complete program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Type

from ..core import errors

_PRELUDE = """
struct data { v : int; }
struct box { iso inner : data?; }
struct node { iso payload : data; iso next : node?; }
struct cell { other : cell; tag : int; }
struct dll_node { iso payload : data; next : dll_node; prev : dll_node; }
struct dll { iso hd : dll_node?; }
"""


@dataclass(frozen=True)
class NegativeCase:
    name: str
    reason: str
    error: Type[Exception]
    source: str


NEGATIVE_CASES: List[NegativeCase] = [
    NegativeCase(
        "use-after-send",
        "a sent object's aliases must be invalidated (§2.1)",
        errors.TypeError_,
        _PRELUDE + """
def f() : int {
  let d = new data(v = 1);
  send(d);
  d.v
}
""",
    ),
    NegativeCase(
        "alias-survives-send",
        "every alias of the sent region dies, not just the sent variable",
        errors.TypeError_,
        _PRELUDE + """
def f() : int {
  let d = new data(v = 1);
  let alias = d;
  send(d);
  alias.v
}
""",
    ),
    NegativeCase(
        "send-reachable-interior",
        "sending a structure takes its reachable subgraph along (fig 15)",
        errors.TypeError_,
        _PRELUDE + """
def f() : int {
  let b = new box();
  let d = new data(v = 2);
  b.inner = some(d);
  send(b);
  d.v
}
""",
    ),
    NegativeCase(
        "fig4-broken-dll-removal",
        "the returned payload is not a dominating reference on size-1 lists (fig 4)",
        errors.UnificationError,
        _PRELUDE + """
def remove_tail(l : dll) : data? {
  let some(hd) = l.hd in {
    let tail = hd.prev;
    tail.prev.next = hd;
    hd.prev = tail.prev;
    some(tail.payload)
  } else { none }
}
""",
    ),
    NegativeCase(
        "escaping-interior-reference",
        "returning a tracked iso target needs `after: b.inner ~ result`",
        errors.TypeError_,
        _PRELUDE + """
def leak(b : box) : data? {
  b.inner
}
""",
    ),
    NegativeCase(
        "param-stashed-without-consumes",
        "retracting a parameter into another structure consumes it (§4.9)",
        errors.TypeError_,
        _PRELUDE + """
def stash(b : box, d : data) : unit {
  b.inner = some(d)
}
""",
    ),
    NegativeCase(
        "aliased-arguments",
        "distinct parameter regions require provably disjoint arguments (T9)",
        errors.SeparationError,
        _PRELUDE + """
def two(a, b : data) : unit { () }
def f(d : data) : unit { two(d, d) }
""",
    ),
    NegativeCase(
        "double-focus-of-aliases",
        "one tracked variable per region: aliases cannot both be focused (§4.2)",
        errors.IsoFieldNotTrackable,
        _PRELUDE + """
def f(b : box) : unit {
  let b2 = b;
  let m1 = b.inner;
  let m2 = b2.inner;
  let some(d1) = m1 in {
    let some(d2) = m2 in { () } else { () }
  } else { () }
}
""",
    ),
    NegativeCase(
        "invalidated-field-read",
        "a ⊥ field must be reassigned before use (fig 5's l.hd)",
        errors.TypeError_,
        _PRELUDE + """
def eat(m : data?) : unit consumes m { () }
def f(b : box) : unit {
  eat(b.inner);
  let x = b.inner;
  ()
}
""",
    ),
    NegativeCase(
        "if-disconnected-alias-use",
        "aliases of a split region die in the then branch (T15)",
        errors.TypeError_,
        _PRELUDE + """
def f(c : cell) : int {
  let a = c.other;
  let x = c.other;
  if disconnected(a, c) { x.tag } else { 0 }
}
""",
    ),
    NegativeCase(
        "if-disconnected-cross-region",
        "if disconnected arguments must share one region",
        errors.SeparationError,
        _PRELUDE + """
def f() : unit {
  let a = new cell();
  let b = new cell();
  if disconnected(a, b) { () } else { () }
}
""",
    ),
    NegativeCase(
        "branch-asymmetric-consumption",
        "a region consumed in one branch but live after the join",
        errors.TypeError_,
        _PRELUDE + """
def f(d : data, c : bool) : int {
  if (c) { send(d); 0 } else { 1 };
  d.v
}
""",
    ),
    NegativeCase(
        "loop-double-send",
        "a loop body cannot consume a loop-invariant region",
        errors.TypeError_,
        _PRELUDE + """
def f(d : data, n : int) : unit {
  while (n > 0) { send(d); n = n - 1 }
}
""",
    ),
    NegativeCase(
        "iso-chain-without-binding",
        "iso fields are accessed through declared variables only (§4.6)",
        errors.IsoFieldNotTrackable,
        _PRELUDE + """
struct wrap { iso w : box; }
def f(o : wrap) : unit {
  let v = o.w.inner;
  ()
}
""",
    ),
    NegativeCase(
        "iso-of-primitive",
        "iso fields isolate object graphs, not scalars",
        errors.TypeError_,
        "struct s { iso k : int; }",
    ),
    NegativeCase(
        "tracked-cycle-at-boundary",
        "a tracked self-cycle can never be untracked, so the default interface is unsatisfiable",
        errors.TypeError_,
        _PRELUDE + """
def f(n : node) : unit {
  let some(n2) = n.next in { n2.next = some(n2) } else { () }
}
""",
    ),
    NegativeCase(
        "pinned-iso-access",
        "a pinned region admits no focusing (§4.7)",
        errors.TypeError_,
        _PRELUDE + """
def f(pinned b : box) : unit {
  let m = b.inner;
  ()
}
""",
    ),
    NegativeCase(
        "pinned-send",
        "a pinned region cannot be consumed",
        errors.TypeError_,
        _PRELUDE + """
def f(pinned d : data) : unit {
  send(d)
}
""",
    ),
    NegativeCase(
        "none-without-context",
        "bare `none` needs an expected maybe type",
        errors.InferenceError,
        _PRELUDE + """
def f() : unit {
  let x = none;
  ()
}
""",
    ),
    NegativeCase(
        "keep-and-return",
        "the result region must be separate from the (kept) parameter",
        errors.TypeError_,
        _PRELUDE + """
def identity(d : data) : data { d }
""",
    ),
    # The two entries below were found by the differential fuzzer
    # (`repro fuzz`) as should-reject mutants of generated relay threads
    # and auto-shrunk to these minimal forms (see docs/FUZZING.md).
    NegativeCase(
        "fuzz-wrapped-double-send",
        "wrapping a received region into an iso field does not license sending the wrapper twice",
        errors.SendError,
        _PRELUDE + """
struct pkt { iso payload : data; }
def relay() : unit {
  let d = recv(data);
  let w = new pkt(payload = d);
  send(w);
  send(w)
}
""",
    ),
    NegativeCase(
        "fuzz-send-use-wrapper",
        "a freshly wrapped packet dies with its send, like any other region",
        errors.SendError,
        _PRELUDE + """
struct pkt { iso payload : data; }
def relay() : box {
  let d = recv(data);
  let w = new pkt(payload = d);
  send(w);
  let b = new box(inner = w.payload);
  b
}
""",
    ),
]


def case_names() -> List[str]:
    return [case.name for case in NEGATIVE_CASES]


def get_case(name: str) -> NegativeCase:
    for case in NEGATIVE_CASES:
        if case.name == name:
            return case
    raise KeyError(name)
