"""Loader for the corpus of FCL example programs.

Each ``.fcl`` file is a standalone program (structs + functions) from the
paper's figures and §8 expressiveness study.
"""

from __future__ import annotations

import functools
from pathlib import Path
from typing import List

from ..lang import ast, parse_program

_CORPUS_DIR = Path(__file__).parent

#: Name → filename of every corpus program.
PROGRAMS = {
    "sll": "sll.fcl",
    "dll": "dll.fcl",
    "rbtree": "rbtree.fcl",
    "queue": "queue.fcl",
    "algorithms": "algorithms.fcl",
    "ntree": "ntree.fcl",
    "signatures": "signatures.fcl",
    "fuzzmin": "fuzzmin.fcl",
}


def corpus_names() -> List[str]:
    return sorted(PROGRAMS)


def load_source(name: str) -> str:
    try:
        filename = PROGRAMS[name]
    except KeyError:
        raise KeyError(
            f"unknown corpus program {name!r}; available: {corpus_names()}"
        ) from None
    return (_CORPUS_DIR / filename).read_text()


@functools.lru_cache(maxsize=None)
def load_program(name: str) -> ast.Program:
    """Parse a corpus program (cached; the AST must not be mutated)."""
    return parse_program(load_source(name))
