"""Loader for the corpus of FCL example programs.

Each ``.fcl`` file is a standalone program (structs + functions) from the
paper's figures and §8 expressiveness study.
"""

from __future__ import annotations

import functools
from pathlib import Path
from typing import List

from ..lang import ast, parse_program

_CORPUS_DIR = Path(__file__).parent

#: Name → filename of every corpus program.
PROGRAMS = {
    "sll": "sll.fcl",
    "dll": "dll.fcl",
    "rbtree": "rbtree.fcl",
    "queue": "queue.fcl",
    "algorithms": "algorithms.fcl",
    "ntree": "ntree.fcl",
    "signatures": "signatures.fcl",
    "fuzzmin": "fuzzmin.fcl",
}


def corpus_names() -> List[str]:
    return sorted(PROGRAMS)


def extract_embedded_source(path: str, text: str) -> str:
    """FCL source embedded in a Python example: the module-level
    ``SOURCE = \"\"\"...\"\"\"`` string literal (the style of ``examples/``).

    Raises :class:`ValueError` when ``text`` is not valid Python or has no
    such literal.
    """
    import ast as pyast

    try:
        tree = pyast.parse(text)
    except SyntaxError as exc:
        raise ValueError(f"{path}: not valid Python: {exc}") from exc
    for node in tree.body:
        if not isinstance(node, pyast.Assign):
            continue
        for target in node.targets:
            if (
                isinstance(target, pyast.Name)
                and target.id == "SOURCE"
                and isinstance(node.value, pyast.Constant)
                and isinstance(node.value.value, str)
            ):
                return node.value.value
    raise ValueError(f"{path}: no module-level SOURCE string literal found")


def read_program_source(path) -> str:
    """Read FCL source from ``path``: ``.fcl`` files verbatim, ``.py``
    files through their embedded ``SOURCE`` literal.  Raises ``OSError``
    on unreadable files and :class:`ValueError` on ``.py`` files without
    an embedded program."""
    path = Path(path)
    text = path.read_text()
    if path.suffix == ".py":
        return extract_embedded_source(str(path), text)
    return text


def load_source(name: str) -> str:
    try:
        filename = PROGRAMS[name]
    except KeyError:
        raise KeyError(
            f"unknown corpus program {name!r}; available: {corpus_names()}"
        ) from None
    return (_CORPUS_DIR / filename).read_text()


@functools.lru_cache(maxsize=None)
def load_program(name: str) -> ast.Program:
    """Parse a corpus program (cached; the AST must not be mutated)."""
    return parse_program(load_source(name))
