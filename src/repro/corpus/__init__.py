"""The FCL example-program corpus (paper figures and §8 data structures)."""

from .loader import PROGRAMS, corpus_names, load_program, load_source

__all__ = ["PROGRAMS", "corpus_names", "load_program", "load_source"]
