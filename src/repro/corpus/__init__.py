"""The FCL example-program corpus (paper figures and §8 data structures)."""

from .loader import (
    PROGRAMS,
    corpus_names,
    extract_embedded_source,
    load_program,
    load_source,
    read_program_source,
)

__all__ = [
    "PROGRAMS",
    "corpus_names",
    "extract_embedded_source",
    "load_program",
    "load_source",
    "read_program_source",
]
