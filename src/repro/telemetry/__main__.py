"""``python -m repro.telemetry FILE [--schema PATH]`` — validate a metrics
export document against the checked-in schema."""

import sys

from .schema import main

if __name__ == "__main__":
    sys.exit(main())
