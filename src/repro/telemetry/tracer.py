"""Event-level tracing: individual span/instant events in a ring buffer.

The registry (:mod:`.registry`) aggregates — per-name counters, per
``(name, parent)`` span summaries — which answers "how much overall" but
not "where did *this* request go".  The tracer records individual events
with trace/span identities so one request can be followed from the
client, across the ``repro-rpc/1`` wire, through the daemon's worker
threads, and down into checker/verifier/machine spans:

* a :class:`TraceContext` is the propagation unit — ``(trace_id,
  span_id, sampled)`` — carried in-process by a :class:`contextvars.
  ContextVar` and across process boundaries as a plain ``{"id", "span",
  "sampled"}`` wire dict (the ``trace`` key of an RPC frame, the
  ``trace`` key of a pipeline worker task);
* a :class:`Tracer` holds a **bounded ring buffer** of completed events
  (oldest dropped first, drop count kept) so a long-running daemon can
  trace forever in constant memory;
* **sampling** is decided once, when a root span is minted: child spans
  inherit the decision, and an unsampled context still propagates its
  IDs (so a sampled downstream hop could stitch) while recording
  nothing.

Like the registry, the process-global tracer is **disabled by default
and free when off**: instrumented code checks ``tracer().enabled`` and
skips all event work on the disabled path.  The registry's
:meth:`~.registry.Registry.span` bridges into the active tracer, so
every existing ``check.fn.<name>`` / ``verify.program`` /
``machine.run`` span shows up in traces with zero changes to the
instrumented modules.

Export is Chrome trace-event JSON (:func:`to_chrome`) — loadable in
Perfetto or ``chrome://tracing``, validated in CI against
``benchmarks/trace.schema.json``.
"""

from __future__ import annotations

import os
import random
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, NamedTuple, Optional

TRACE_SCHEMA = "repro-trace/1"


def new_trace_id() -> str:
    """A 64-bit hex trace identifier."""
    return os.urandom(8).hex()


def new_span_id() -> str:
    """A 32-bit hex span identifier."""
    return os.urandom(4).hex()


class TraceContext(NamedTuple):
    """The propagation unit: which trace, which span, and whether the
    root's sampling decision said to record."""

    trace_id: str
    span_id: str
    sampled: bool = True

    def to_wire(self) -> Dict[str, Any]:
        """The ``trace`` object stamped into ``repro-rpc/1`` frames and
        pipeline worker tasks."""
        return {"id": self.trace_id, "span": self.span_id, "sampled": self.sampled}

    @classmethod
    def from_wire(cls, data: Any) -> Optional["TraceContext"]:
        """Parse a wire dict; malformed context degrades to ``None``
        (a trace must never fail a request)."""
        if not isinstance(data, dict):
            return None
        trace_id = data.get("id")
        span_id = data.get("span")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            return None
        return cls(trace_id, span_id, bool(data.get("sampled", True)))


#: The ambient context of the current task/thread.  ContextVars give
#: correct nesting under asyncio and plain threads alike; crossing an
#: executor boundary needs explicit hand-off (see ``server/daemon.py``).
_current: ContextVar[Optional[TraceContext]] = ContextVar(
    "repro_trace_context", default=None
)


def current_context() -> Optional[TraceContext]:
    """The ambient :class:`TraceContext`, or ``None`` outside any span."""
    return _current.get()


def current_wire() -> Optional[Dict[str, Any]]:
    """The ambient context as a wire dict (``None`` outside any span)."""
    ctx = _current.get()
    return None if ctx is None else ctx.to_wire()


@contextmanager
def activate(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Install ``ctx`` as the ambient context for a block (used when a
    context arrives over the wire and the receiving code is not itself
    opening a span)."""
    token = _current.set(ctx)
    try:
        yield ctx
    finally:
        _current.reset(token)


class Tracer:
    """A bounded ring buffer of trace events.

    Completed spans append one Chrome ``"X"`` (complete) event; instants
    append ``"i"`` events.  The buffer holds the most recent ``capacity``
    events; older ones are dropped and counted in :attr:`dropped`.
    ``sample`` is the probability a **root** span is recorded — the
    decision is made once per trace and inherited by every child.
    """

    def __init__(
        self,
        capacity: int = 8192,
        sample: float = 1.0,
        enabled: bool = True,
    ):
        self.enabled = enabled
        self.capacity = capacity
        self.sample = sample
        self.dropped = 0
        self._events: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._rng = random.Random()

    # -- recording ---------------------------------------------------------

    def _emit(self, event: Dict[str, Any]) -> None:
        with self._lock:
            if len(self._events) == self.capacity:
                self.dropped += 1
            self._events.append(event)

    def _sample_root(self) -> bool:
        if self.sample >= 1.0:
            return True
        if self.sample <= 0.0:
            return False
        return self._rng.random() < self.sample

    @contextmanager
    def span(
        self,
        name: str,
        cat: str = "repro",
        parent: Any = ...,
        args: Optional[Dict[str, Any]] = None,
    ) -> Iterator[Optional[TraceContext]]:
        """Record one span event around a block and make its context
        ambient.

        ``parent`` defaults to the ambient context; pass an explicit
        :class:`TraceContext` to stitch under a remote parent, or
        ``None`` to force a new root (which is where the sampling
        decision is made).  Yields the span's own context so callers can
        put it on the wire (``ctx.to_wire()``).
        """
        if not self.enabled:
            yield current_context()
            return
        if parent is ...:
            parent = current_context()
        if parent is None:
            ctx = TraceContext(new_trace_id(), new_span_id(), self._sample_root())
        else:
            ctx = TraceContext(parent.trace_id, new_span_id(), parent.sampled)
        token = _current.set(ctx)
        ts = time.time() * 1e6  # wall-clock µs: aligns across processes
        t0 = time.perf_counter()
        try:
            yield ctx
        finally:
            _current.reset(token)
            if ctx.sampled:
                event = {
                    "name": name,
                    "cat": cat,
                    "ph": "X",
                    "ts": ts,
                    "dur": (time.perf_counter() - t0) * 1e6,
                    "pid": os.getpid(),
                    "tid": threading.get_ident(),
                    "args": {
                        "trace_id": ctx.trace_id,
                        "span_id": ctx.span_id,
                        "parent_id": None if parent is None else parent.span_id,
                        **(args or {}),
                    },
                }
                self._emit(event)

    def instant(
        self,
        name: str,
        cat: str = "repro",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record one point-in-time event under the ambient context."""
        if not self.enabled:
            return
        ctx = current_context()
        if ctx is not None and not ctx.sampled:
            return
        self._emit(
            {
                "name": name,
                "cat": cat,
                "ph": "i",
                "ts": time.time() * 1e6,
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "args": {
                    "trace_id": None if ctx is None else ctx.trace_id,
                    "span_id": None if ctx is None else ctx.span_id,
                    "parent_id": None,
                    **(args or {}),
                },
            }
        )

    # -- stitching and export ----------------------------------------------

    def ingest(self, events: List[Dict[str, Any]]) -> int:
        """Fold events exported by another tracer (a worker process, the
        daemon's ``trace`` RPC) into this ring buffer; returns how many
        were accepted.  Malformed entries are skipped, never raised."""
        accepted = 0
        for event in events:
            if not isinstance(event, dict) or "name" not in event or "ts" not in event:
                continue
            self._emit(dict(event))
            accepted += 1
        return accepted

    def events(self) -> List[Dict[str, Any]]:
        """A snapshot of the buffered events (oldest first)."""
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        return (
            f"Tracer(enabled={self.enabled}, {len(self._events)} events, "
            f"dropped={self.dropped}, sample={self.sample})"
        )


def to_chrome(tracer: Tracer) -> Dict[str, Any]:
    """The Chrome trace-event document (Perfetto / ``chrome://tracing``
    loadable; shape pinned by ``benchmarks/trace.schema.json``)."""
    events = sorted(tracer.events(), key=lambda e: e.get("ts", 0.0))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": TRACE_SCHEMA, "dropped": tracer.dropped},
    }


#: The permanently disabled default — instrumented code sees
#: ``tracer().enabled == False`` and skips all event work.
_NULL = Tracer(capacity=0, enabled=False)
_active = _NULL
#: Per-thread override installed by :func:`use_tracer_local` (mirrors
#: ``registry.use_local``): thread-mode pipeline tasks trace into
#: private buffers without touching the process-global tracer.
_override = threading.local()


def tracer() -> Tracer:
    """The currently active tracer: this thread's
    :func:`use_tracer_local` override when one is installed, the
    process-global tracer otherwise."""
    tr = getattr(_override, "tracer", None)
    return _active if tr is None else tr


def set_tracer(tr: Tracer) -> Tracer:
    """Install ``tr`` as the process-global tracer; returns the old one."""
    global _active
    old = _active
    _active = tr
    return old


def enable_tracing(capacity: int = 8192, sample: float = 1.0) -> Tracer:
    """Install and return a fresh enabled tracer."""
    tr = Tracer(capacity=capacity, sample=sample, enabled=True)
    set_tracer(tr)
    return tr


def disable_tracing() -> None:
    """Restore the disabled default tracer."""
    set_tracer(_NULL)


@contextmanager
def use_tracer(tr: Tracer) -> Iterator[Tracer]:
    """Temporarily make ``tr`` the **process-global** tracer.

    Scoped and reentrant; visible from every thread.  For a swap
    private to the calling thread — concurrent pipeline tasks tracing
    into separate ring buffers — use :func:`use_tracer_local`."""
    old = set_tracer(tr)
    try:
        yield tr
    finally:
        set_tracer(old)


@contextmanager
def use_tracer_local(tr: Tracer) -> Iterator[Tracer]:
    """Temporarily make ``tr`` the active tracer **for this thread
    only**.

    Scoped and reentrant; other threads (and the process-global tracer
    installed via :func:`set_tracer`/:func:`use_tracer`) are
    unaffected."""
    old = getattr(_override, "tracer", None)
    _override.tracer = tr
    try:
        yield tr
    finally:
        _override.tracer = old
