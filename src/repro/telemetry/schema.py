"""A minimal, dependency-free JSON Schema validator for metrics exports.

Supports the subset of JSON Schema used by ``benchmarks/metrics.schema.json``
(``type``, ``required``, ``properties``, ``additionalProperties``,
``items``, ``enum``, ``const``, ``anyOf``) — enough for CI to validate
``repro stats --metrics-json`` output against a checked-in schema without
installing ``jsonschema``.

Usage::

    python -m repro.telemetry.schema out.json --schema benchmarks/metrics.schema.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, List


class SchemaError(ValueError):
    """The instance does not conform to the schema."""


_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "boolean": bool,
    "null": type(None),
}


def _type_ok(instance: Any, ty: str) -> bool:
    if ty == "number":
        return isinstance(instance, (int, float)) and not isinstance(instance, bool)
    if ty == "integer":
        return isinstance(instance, int) and not isinstance(instance, bool)
    expected = _TYPES.get(ty)
    if expected is None:
        raise SchemaError(f"unsupported schema type {ty!r}")
    return isinstance(instance, expected)


def validate(instance: Any, schema: Any, path: str = "$") -> None:
    """Raise :class:`SchemaError` when ``instance`` violates ``schema``."""
    if schema is True or schema == {}:
        return
    if schema is False:
        raise SchemaError(f"{path}: no value permitted here")
    if not isinstance(schema, dict):
        raise SchemaError(f"{path}: malformed schema node {schema!r}")

    if "const" in schema and instance != schema["const"]:
        raise SchemaError(
            f"{path}: expected constant {schema['const']!r}, got {instance!r}"
        )
    if "enum" in schema and instance not in schema["enum"]:
        raise SchemaError(f"{path}: {instance!r} not one of {schema['enum']!r}")

    if "anyOf" in schema:
        errors: List[str] = []
        for index, option in enumerate(schema["anyOf"]):
            try:
                validate(instance, option, path)
                break
            except SchemaError as exc:
                errors.append(f"[{index}] {exc}")
        else:
            raise SchemaError(f"{path}: matched no anyOf branch ({'; '.join(errors)})")

    ty = schema.get("type")
    if ty is not None:
        types = ty if isinstance(ty, list) else [ty]
        if not any(_type_ok(instance, t) for t in types):
            raise SchemaError(
                f"{path}: expected type {'/'.join(types)}, "
                f"got {type(instance).__name__}"
            )

    if isinstance(instance, dict):
        for key in schema.get("required", ()):
            if key not in instance:
                raise SchemaError(f"{path}: missing required property {key!r}")
        props = schema.get("properties", {})
        additional = schema.get("additionalProperties", True)
        for key, value in instance.items():
            if key in props:
                validate(value, props[key], f"{path}.{key}")
            elif additional is False:
                raise SchemaError(f"{path}: unexpected property {key!r}")
            elif additional is not True:
                validate(value, additional, f"{path}.{key}")

    if isinstance(instance, list) and "items" in schema:
        for index, item in enumerate(instance):
            validate(item, schema["items"], f"{path}[{index}]")


def validate_file(instance_path: str, schema_path: str) -> None:
    instance = json.loads(Path(instance_path).read_text())
    schema = json.loads(Path(schema_path).read_text())
    validate(instance, schema)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="validate a metrics JSON export against a schema"
    )
    parser.add_argument("file", help="metrics JSON document to validate")
    parser.add_argument(
        "--schema",
        default=str(
            Path(__file__).resolve().parents[3] / "benchmarks" / "metrics.schema.json"
        ),
        help="schema path (default: the repo's benchmarks/metrics.schema.json)",
    )
    args = parser.parse_args(argv)
    try:
        validate_file(args.file, args.schema)
    except (OSError, json.JSONDecodeError, SchemaError) as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    print(f"{args.file}: valid against {args.schema}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
