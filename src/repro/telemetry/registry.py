"""The telemetry registry: counters, gauges, histograms/timers, spans.

Dependency-free instrumentation shared by the checker, the runtime machine,
the verifier, and the RPC server.  Four primitives:

* :class:`Counter` — a monotonically increasing integer (``inc``);
* :class:`Gauge` — a point-in-time level that can go up and down
  (``set``/``inc``/``dec``): queue depth, last seed, high-water marks;
* :class:`Histogram` — a streaming summary (count/total/min/max/mean) of
  observed values plus fixed log-scale buckets, so quantiles (p50/p99)
  can be estimated from an export; doubles as a timer via
  :meth:`Registry.time`;
* spans — nestable wall-time scopes (:meth:`Registry.span`); completed
  spans are aggregated per ``(name, parent)`` so the call structure is
  preserved without unbounded event storage.  When the process-global
  :mod:`tracer <.tracer>` is enabled, each span additionally records an
  individual trace event, which is how checker/verifier/machine spans
  appear in request traces without touching those modules.

The process-global registry is **disabled by default** and the disabled
path is a single attribute check (``registry().enabled``), so instrumented
code pays nothing measurable when telemetry is off.  Enable a fresh
registry with :func:`enable`, or install a custom one with
:func:`set_registry` (e.g. one registry per benchmark run).

The enabled path is **thread-safe**: one lock guards every mutation (the
RPC daemon records from its worker threads), and the span stack is
thread-local so concurrent requests nest their spans independently.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from . import tracer as _tracing

#: Histogram bucket upper bounds (``le`` semantics, log-ish scale).  One
#: overflow bucket rides after the last bound.  Milliseconds-flavored —
#: wide enough that byte-sized observations still land somewhere useful.
BUCKET_BOUNDS: Tuple[float, ...] = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


class Counter:
    """A named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A named level: settable, not monotonic.

    Counters that were really gauges (``server.queue_depth``,
    ``machine.seed``, ``machine.starvation_max_wait``) live here now, so
    exports can state their merge semantics (max envelope) instead of
    nonsensically summing them.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n

    def set_max(self, value: float) -> None:
        """High-water-mark update: keep the larger of old and new."""
        if value > self.value:
            self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A streaming summary of observed values (also the timer backend).

    Besides count/total/min/max it keeps fixed log-scale bucket counts
    (:data:`BUCKET_BOUNDS` plus one overflow bucket), which is what lets
    :meth:`quantile` estimate p50/p99 from an export — the observations
    themselves are never stored.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: List[int] = [0] * (len(BUCKET_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.buckets[bisect_left(BUCKET_BOUNDS, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from the bucket
        counts by linear interpolation within the winning bucket, clamped
        to the observed min/max.  Registries rebuilt from bucket-less
        ``repro-telemetry/1`` documents fall back to interpolating
        between min and max."""
        if not self.count:
            return None
        if sum(self.buckets) < self.count:
            # Buckets incomplete (merged from a /1 export): min/max line.
            lo = self.min if self.min is not None else 0.0
            hi = self.max if self.max is not None else lo
            return lo + (hi - lo) * q
        target = q * self.count
        cumulative = 0
        for index, n in enumerate(self.buckets):
            if n == 0:
                continue
            cumulative += n
            if cumulative >= target:
                lower = BUCKET_BOUNDS[index - 1] if index > 0 else 0.0
                upper = (
                    BUCKET_BOUNDS[index]
                    if index < len(BUCKET_BOUNDS)
                    else (self.max if self.max is not None else lower)
                )
                fraction = (target - (cumulative - n)) / n if n else 1.0
                estimate = lower + (upper - lower) * fraction
                if self.min is not None:
                    estimate = max(estimate, self.min)
                if self.max is not None:
                    estimate = min(estimate, self.max)
                return estimate
        return self.max

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.count} mean={self.mean:.3f})"


class SpanStats:
    """Aggregated completions of one span name under one parent."""

    __slots__ = ("name", "parent", "depth", "count", "total_ms", "min_ms", "max_ms")

    def __init__(self, name: str, parent: Optional[str], depth: int):
        self.name = name
        self.parent = parent
        self.depth = depth
        self.count = 0
        self.total_ms = 0.0
        self.min_ms: Optional[float] = None
        self.max_ms: Optional[float] = None

    def observe(self, ms: float) -> None:
        self.count += 1
        self.total_ms += ms
        if self.min_ms is None or ms < self.min_ms:
            self.min_ms = ms
        if self.max_ms is None or ms > self.max_ms:
            self.max_ms = ms


class Registry:
    """A bag of named metrics, swappable process-globally.

    Mutations on the enabled path take one lock (the RPC daemon's worker
    threads record concurrently); the disabled path takes nothing.  The
    span stack is per-thread, so spans opened by concurrent requests
    nest within their own thread only.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.spans: Dict[Tuple[str, Optional[str]], SpanStats] = {}
        self._lock = threading.Lock()
        self._local = threading.local()

    @property
    def _span_stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- counters ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            with self._lock:
                counter = self.counters.get(name)
                if counter is None:
                    counter = self.counters[name] = Counter(name)
        return counter

    def inc(self, name: str, n: int = 1) -> None:
        if self.enabled:
            counter = self.counter(name)
            with self._lock:
                counter.inc(n)

    def value(self, name: str) -> int:
        """Current value of a counter (0 if never incremented)."""
        counter = self.counters.get(name)
        return 0 if counter is None else counter.value

    # -- gauges -----------------------------------------------------------

    def gauge(self, name: str) -> Gauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self.gauges.get(name)
                if gauge is None:
                    gauge = self.gauges[name] = Gauge(name)
        return gauge

    def set_gauge(self, name: str, value: float) -> None:
        if self.enabled:
            gauge = self.gauge(name)
            with self._lock:
                gauge.set(value)

    def set_gauge_max(self, name: str, value: float) -> None:
        """High-water-mark form of :meth:`set_gauge`."""
        if self.enabled:
            gauge = self.gauge(name)
            with self._lock:
                gauge.set_max(value)

    def gauge_value(self, name: str) -> float:
        """Current value of a gauge (0.0 if never set)."""
        gauge = self.gauges.get(name)
        return 0.0 if gauge is None else gauge.value

    # -- histograms / timers ----------------------------------------------

    def histogram(self, name: str) -> Histogram:
        hist = self.histograms.get(name)
        if hist is None:
            with self._lock:
                hist = self.histograms.get(name)
                if hist is None:
                    hist = self.histograms[name] = Histogram(name)
        return hist

    def observe(self, name: str, value: float) -> None:
        if self.enabled:
            hist = self.histogram(name)
            with self._lock:
                hist.observe(value)

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Time a block into histogram ``name`` (milliseconds)."""
        if not self.enabled:
            yield
            return
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, (time.perf_counter() - t0) * 1000.0)

    # -- spans ------------------------------------------------------------

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """A nestable wall-time scope.  Completions aggregate per
        ``(name, parent-span-name)`` so nesting survives aggregation.
        When the global tracer is enabled, the same scope records one
        individual trace event (the registry→tracer bridge)."""
        if not self.enabled:
            yield
            return
        stack = self._span_stack
        parent = stack[-1] if stack else None
        depth = len(stack)
        stack.append(name)
        tr = _tracing.tracer()  # honors the per-thread use_tracer override
        trace_cm = tr.span(name, cat="registry") if tr.enabled else None
        if trace_cm is not None:
            trace_cm.__enter__()
        t0 = time.perf_counter()
        try:
            yield
        finally:
            stack.pop()
            if trace_cm is not None:
                trace_cm.__exit__(None, None, None)
            ms = (time.perf_counter() - t0) * 1000.0
            key = (name, parent)
            with self._lock:
                stats = self.spans.get(key)
                if stats is None:
                    stats = self.spans[key] = SpanStats(name, parent, depth)
                stats.observe(ms)

    # -- management -------------------------------------------------------

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()
            self.spans.clear()
            self._local = threading.local()

    def __repr__(self) -> str:
        return (
            f"Registry(enabled={self.enabled}, {len(self.counters)} counters, "
            f"{len(self.gauges)} gauges, {len(self.histograms)} histograms, "
            f"{len(self.spans)} spans)"
        )


#: The permanently disabled default — instrumented code sees
#: ``registry().enabled == False`` and skips all metric work.
_NULL = Registry(enabled=False)
_active = _NULL
#: Per-thread override installed by :func:`use_local`.  Keeping that
#: swap thread-local is what lets the in-process (thread-mode) pipeline
#: give each concurrent worker task its own collection registry without
#: the tasks clobbering one another or the process-global registry.
_override = threading.local()


def registry() -> Registry:
    """The currently active registry: this thread's :func:`use_local`
    override when one is installed, the process-global registry
    otherwise."""
    reg = getattr(_override, "registry", None)
    return _active if reg is None else reg


def set_registry(reg: Registry) -> Registry:
    """Install ``reg`` as the process-global registry; returns the old one."""
    global _active
    old = _active
    _active = reg
    return old


def enable() -> Registry:
    """Install and return a fresh enabled registry."""
    return_new = Registry(enabled=True)
    set_registry(return_new)
    return return_new


def disable() -> None:
    """Restore the disabled default registry."""
    set_registry(_NULL)


@contextmanager
def use(reg: Registry) -> Iterator[Registry]:
    """Temporarily make ``reg`` the **process-global** registry.

    Scoped and reentrant; visible from every thread (benchmarks and
    tests wrap whole server lifecycles in it).  For a swap private to
    the calling thread — concurrent pipeline tasks collecting into
    separate registries — use :func:`use_local`."""
    old = set_registry(reg)
    try:
        yield reg
    finally:
        set_registry(old)


@contextmanager
def use_local(reg: Registry) -> Iterator[Registry]:
    """Temporarily make ``reg`` the active registry **for this thread
    only**.

    Scoped and reentrant; other threads (and the process-global registry
    installed via :func:`set_registry`/:func:`use`) are unaffected."""
    old = getattr(_override, "registry", None)
    _override.registry = reg
    try:
        yield reg
    finally:
        _override.registry = old
