"""The telemetry registry: counters, histograms/timers, and nestable spans.

Dependency-free instrumentation shared by the checker, the runtime machine,
and the verifier.  Three primitives:

* :class:`Counter` — a monotonically increasing integer (``inc``);
* :class:`Histogram` — a streaming summary (count/total/min/max/mean) of
  observed values; doubles as a timer via :meth:`Registry.time`;
* spans — nestable wall-time scopes (:meth:`Registry.span`); completed
  spans are aggregated per ``(name, parent)`` so the call structure is
  preserved without unbounded event storage.

The process-global registry is **disabled by default** and the disabled
path is a single attribute check (``registry().enabled``), so instrumented
code pays nothing measurable when telemetry is off.  Enable a fresh
registry with :func:`enable`, or install a custom one with
:func:`set_registry` (e.g. one registry per benchmark run).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple


class Counter:
    """A named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Histogram:
    """A streaming summary of observed values (also the timer backend)."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.count} mean={self.mean:.3f})"


class SpanStats:
    """Aggregated completions of one span name under one parent."""

    __slots__ = ("name", "parent", "depth", "count", "total_ms", "min_ms", "max_ms")

    def __init__(self, name: str, parent: Optional[str], depth: int):
        self.name = name
        self.parent = parent
        self.depth = depth
        self.count = 0
        self.total_ms = 0.0
        self.min_ms: Optional[float] = None
        self.max_ms: Optional[float] = None

    def observe(self, ms: float) -> None:
        self.count += 1
        self.total_ms += ms
        if self.min_ms is None or ms < self.min_ms:
            self.min_ms = ms
        if self.max_ms is None or ms > self.max_ms:
            self.max_ms = ms


class Registry:
    """A bag of named metrics, swappable process-globally.

    Not thread-safe by design: the repro runtime is a cooperative
    single-OS-thread scheduler, and CPython int increments are atomic
    enough for the crude cross-thread case.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.counters: Dict[str, Counter] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.spans: Dict[Tuple[str, Optional[str]], SpanStats] = {}
        self._span_stack: List[str] = []

    # -- counters ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def inc(self, name: str, n: int = 1) -> None:
        if self.enabled:
            self.counter(name).inc(n)

    def value(self, name: str) -> int:
        """Current value of a counter (0 if never incremented)."""
        counter = self.counters.get(name)
        return 0 if counter is None else counter.value

    # -- histograms / timers ----------------------------------------------

    def histogram(self, name: str) -> Histogram:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(name)
        return hist

    def observe(self, name: str, value: float) -> None:
        if self.enabled:
            self.histogram(name).observe(value)

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Time a block into histogram ``name`` (milliseconds)."""
        if not self.enabled:
            yield
            return
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, (time.perf_counter() - t0) * 1000.0)

    # -- spans ------------------------------------------------------------

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """A nestable wall-time scope.  Completions aggregate per
        ``(name, parent-span-name)`` so nesting survives aggregation."""
        if not self.enabled:
            yield
            return
        parent = self._span_stack[-1] if self._span_stack else None
        depth = len(self._span_stack)
        self._span_stack.append(name)
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self._span_stack.pop()
            key = (name, parent)
            stats = self.spans.get(key)
            if stats is None:
                stats = self.spans[key] = SpanStats(name, parent, depth)
            stats.observe((time.perf_counter() - t0) * 1000.0)

    # -- management -------------------------------------------------------

    def reset(self) -> None:
        self.counters.clear()
        self.histograms.clear()
        self.spans.clear()
        self._span_stack.clear()

    def __repr__(self) -> str:
        return (
            f"Registry(enabled={self.enabled}, {len(self.counters)} counters, "
            f"{len(self.histograms)} histograms, {len(self.spans)} spans)"
        )


#: The permanently disabled default — instrumented code sees
#: ``registry().enabled == False`` and skips all metric work.
_NULL = Registry(enabled=False)
_active = _NULL


def registry() -> Registry:
    """The currently active process-global registry."""
    return _active


def set_registry(reg: Registry) -> Registry:
    """Install ``reg`` as the process-global registry; returns the old one."""
    global _active
    old = _active
    _active = reg
    return old


def enable() -> Registry:
    """Install and return a fresh enabled registry."""
    return_new = Registry(enabled=True)
    set_registry(return_new)
    return return_new


def disable() -> None:
    """Restore the disabled default registry."""
    set_registry(_NULL)


@contextmanager
def use(reg: Registry) -> Iterator[Registry]:
    """Temporarily install ``reg`` as the global registry."""
    old = set_registry(reg)
    try:
        yield reg
    finally:
        set_registry(old)
