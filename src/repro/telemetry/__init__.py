"""Unified telemetry: counters, gauges, histograms/timers, nestable
spans, event-level tracing, and structured exporters — the observability
layer for the checker, the runtime machine, the verifier, and the RPC
server.

Quick use::

    from repro import telemetry

    reg = telemetry.enable()          # fresh process-global registry
    ...check / run / verify...
    print(telemetry.render_table(reg))
    Path("out.json").write_text(telemetry.export_json(reg))
    telemetry.disable()

Event-level tracing rides alongside the registry (see
``telemetry/tracer.py``)::

    tr = telemetry.enable_tracing()   # bounded ring buffer of events
    ...spans recorded by the registry bridge and explicit tr.span()...
    Path("trace.json").write_text(json.dumps(telemetry.to_chrome(tr)))

Instrumented modules consult :func:`registry` / :func:`tracer` and skip
all work when the active instance is disabled (the default), so the off
path costs one attribute check.  See ``docs/OBSERVABILITY.md`` for every
metric name and the trace-context wire format.
"""

from .export import (
    ACCEPTED_SCHEMAS,
    SCHEMA,
    doc_to_registry,
    export_json,
    load_json,
    merge_doc,
    registry_to_doc,
    render_prometheus,
    render_table,
)
from .registry import (
    BUCKET_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    Registry,
    SpanStats,
    disable,
    enable,
    registry,
    set_registry,
    use,
    use_local,
)
from .schema import SchemaError, validate
from .tracer import (
    TRACE_SCHEMA,
    TraceContext,
    Tracer,
    activate,
    current_context,
    current_wire,
    disable_tracing,
    enable_tracing,
    set_tracer,
    to_chrome,
    tracer,
    use_tracer,
    use_tracer_local,
)

__all__ = [
    "ACCEPTED_SCHEMAS",
    "BUCKET_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "SCHEMA",
    "SchemaError",
    "SpanStats",
    "TRACE_SCHEMA",
    "TraceContext",
    "Tracer",
    "activate",
    "current_context",
    "current_wire",
    "disable",
    "disable_tracing",
    "doc_to_registry",
    "enable",
    "enable_tracing",
    "export_json",
    "load_json",
    "merge_doc",
    "registry",
    "registry_to_doc",
    "render_prometheus",
    "render_table",
    "set_registry",
    "set_tracer",
    "to_chrome",
    "tracer",
    "use",
    "use_local",
    "use_tracer",
    "use_tracer_local",
    "validate",
]
