"""Unified telemetry: counters, histograms/timers, nestable spans, and a
structured JSON exporter — the observability layer for the checker, the
runtime machine, and the verifier.

Quick use::

    from repro import telemetry

    reg = telemetry.enable()          # fresh process-global registry
    ...check / run / verify...
    print(telemetry.render_table(reg))
    Path("out.json").write_text(telemetry.export_json(reg))
    telemetry.disable()

Instrumented modules consult :func:`registry` and skip all work when the
active registry is disabled (the default), so the off path costs one
attribute check.  See ``docs/OBSERVABILITY.md`` for every metric name.
"""

from .export import (
    SCHEMA,
    doc_to_registry,
    export_json,
    load_json,
    merge_doc,
    registry_to_doc,
    render_table,
)
from .registry import (
    Counter,
    Histogram,
    Registry,
    SpanStats,
    disable,
    enable,
    registry,
    set_registry,
    use,
)
from .schema import SchemaError, validate

__all__ = [
    "SCHEMA",
    "Counter",
    "Histogram",
    "Registry",
    "SchemaError",
    "SpanStats",
    "disable",
    "doc_to_registry",
    "enable",
    "export_json",
    "load_json",
    "merge_doc",
    "registry",
    "registry_to_doc",
    "render_table",
    "set_registry",
    "use",
    "validate",
]
