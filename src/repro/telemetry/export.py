"""Structured export of a telemetry :class:`Registry`.

``registry_to_doc`` produces a plain-dict document (schema
``repro-telemetry/1``, see ``benchmarks/metrics.schema.json``);
``doc_to_registry`` reconstructs an equivalent registry, so exports round
trip.  ``render_table`` is the human-facing form used by ``repro stats``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

from .registry import Histogram, Registry, SpanStats

SCHEMA = "repro-telemetry/1"


def registry_to_doc(reg: Registry) -> Dict[str, Any]:
    """A JSON-able document with every counter, histogram, and span."""
    spans = []
    for (name, parent), stats in sorted(
        reg.spans.items(), key=lambda item: (item[0][1] or "", item[0][0])
    ):
        spans.append(
            {
                "name": name,
                "parent": parent,
                "depth": stats.depth,
                "count": stats.count,
                "total_ms": stats.total_ms,
                "min_ms": stats.min_ms,
                "max_ms": stats.max_ms,
            }
        )
    return {
        "schema": SCHEMA,
        "counters": {
            name: counter.value for name, counter in sorted(reg.counters.items())
        },
        "histograms": {
            name: {
                "count": hist.count,
                "total": hist.total,
                "min": hist.min,
                "max": hist.max,
                "mean": hist.mean,
            }
            for name, hist in sorted(reg.histograms.items())
        },
        "spans": spans,
    }


def doc_to_registry(doc: Dict[str, Any]) -> Registry:
    """Rebuild a registry from an exported document (inverse of
    :func:`registry_to_doc` up to histogram mean, which is derived)."""
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"unsupported telemetry schema {doc.get('schema')!r}")
    reg = Registry(enabled=True)
    for name, value in doc.get("counters", {}).items():
        reg.counter(name).value = int(value)
    for name, summary in doc.get("histograms", {}).items():
        hist = reg.histogram(name)
        hist.count = int(summary["count"])
        hist.total = float(summary["total"])
        hist.min = summary["min"]
        hist.max = summary["max"]
    for entry in doc.get("spans", []):
        key: Tuple[str, Optional[str]] = (entry["name"], entry.get("parent"))
        stats = SpanStats(entry["name"], entry.get("parent"), int(entry["depth"]))
        stats.count = int(entry["count"])
        stats.total_ms = float(entry["total_ms"])
        stats.min_ms = entry.get("min_ms")
        stats.max_ms = entry.get("max_ms")
        reg.spans[key] = stats
    return reg


def merge_doc(reg: Registry, doc: Dict[str, Any]) -> Registry:
    """Fold an exported document into ``reg`` in place (and return it).

    Counters add; histograms combine count/total and take the min/max
    envelope (the mean stays derived); span stats combine per
    ``(name, parent)`` key.  This is how the pipeline folds each worker
    process's registry back into the parent so ``--metrics-json`` stays
    truthful under ``--jobs N``: every checker/verifier counter reads the
    same as a serial run, with parallelism visible only through the
    ``pipeline.*`` metrics and the span timings.
    """
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"unsupported telemetry schema {doc.get('schema')!r}")
    for name, value in doc.get("counters", {}).items():
        reg.counter(name).value += int(value)
    for name, summary in doc.get("histograms", {}).items():
        hist = reg.histogram(name)
        hist.count += int(summary["count"])
        hist.total += float(summary["total"])
        for attr, pick in (("min", min), ("max", max)):
            incoming = summary.get(attr)
            if incoming is None:
                continue
            current = getattr(hist, attr)
            setattr(
                hist,
                attr,
                incoming if current is None else pick(current, incoming),
            )
    for entry in doc.get("spans", []):
        key: Tuple[str, Optional[str]] = (entry["name"], entry.get("parent"))
        stats = reg.spans.get(key)
        if stats is None:
            stats = reg.spans[key] = SpanStats(
                entry["name"], entry.get("parent"), int(entry["depth"])
            )
        stats.count += int(entry["count"])
        stats.total_ms += float(entry["total_ms"])
        for attr, pick in (("min_ms", min), ("max_ms", max)):
            incoming = entry.get(attr)
            if incoming is None:
                continue
            current = getattr(stats, attr)
            setattr(
                stats,
                attr,
                incoming if current is None else pick(current, incoming),
            )
    return reg


def export_json(reg: Registry, indent: int = 1, failures=None) -> str:
    """Serialize ``reg`` as a ``repro-telemetry/1`` document.

    ``failures`` is an optional sequence of :class:`repro.api.Diagnostic`
    records (or their dicts); when non-empty they ride along as the
    document's ``failures`` array so machine consumers get structured
    error records instead of scraping stderr.  Failure-free exports are
    byte-identical to previous releases.
    """
    doc = registry_to_doc(reg)
    if failures:
        doc["failures"] = [
            item if isinstance(item, dict) else item.to_dict()
            for item in failures
        ]
    return json.dumps(doc, indent=indent, sort_keys=False)


def load_json(text: str) -> Registry:
    return doc_to_registry(json.loads(text))


def render_table(reg: Registry) -> str:
    """The metrics table printed by ``repro stats``."""
    lines = []
    if reg.counters:
        lines.append("counters")
        width = max(len(name) for name in reg.counters)
        for name in sorted(reg.counters):
            lines.append(f"  {name:<{width}s}  {reg.counters[name].value:>10d}")
    if reg.histograms:
        lines.append("histograms")
        width = max(len(name) for name in reg.histograms)
        for name in sorted(reg.histograms):
            hist = reg.histograms[name]
            lines.append(
                f"  {name:<{width}s}  n={hist.count:<6d} mean={hist.mean:10.3f} "
                f"min={_num(hist.min):>10s} max={_num(hist.max):>10s}"
            )
    if reg.spans:
        lines.append("spans")
        for (name, parent), stats in sorted(
            reg.spans.items(), key=lambda item: (item[1].depth, item[0][1] or "", item[0][0])
        ):
            indent = "  " * (stats.depth + 1)
            lines.append(
                f"{indent}{name}  n={stats.count} total={stats.total_ms:.2f}ms"
                + (f"  (under {parent})" if parent else "")
            )
    return "\n".join(lines) if lines else "(no metrics recorded)"


def _num(value) -> str:
    return "-" if value is None else f"{value:.3f}"
