"""Structured export of a telemetry :class:`Registry`.

``registry_to_doc`` produces a plain-dict document (schema
``repro-telemetry/2``, see ``benchmarks/metrics.schema.json``);
``doc_to_registry`` reconstructs an equivalent registry, so exports round
trip.  ``/2`` added gauges and histogram bucket counts; ``doc_to_registry``
and ``merge_doc`` still accept ``repro-telemetry/1`` documents (no gauges,
no buckets) so stored exports keep loading.  ``render_table`` is the
human-facing form used by ``repro stats``; ``render_prometheus`` is the
text exposition served through the daemon's ``metrics`` RPC
(``repro client metrics --prom``).
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Optional, Tuple

from .registry import BUCKET_BOUNDS, Histogram, Registry, SpanStats

SCHEMA = "repro-telemetry/2"

#: Schemas ``doc_to_registry``/``merge_doc`` accept.  ``/1`` documents
#: simply have no gauges and no histogram buckets.
ACCEPTED_SCHEMAS = ("repro-telemetry/1", "repro-telemetry/2")


def _check_schema(doc: Dict[str, Any]) -> None:
    if doc.get("schema") not in ACCEPTED_SCHEMAS:
        raise ValueError(f"unsupported telemetry schema {doc.get('schema')!r}")


def registry_to_doc(reg: Registry) -> Dict[str, Any]:
    """A JSON-able document with every counter, gauge, histogram, span."""
    spans = []
    for (name, parent), stats in sorted(
        reg.spans.items(), key=lambda item: (item[0][1] or "", item[0][0])
    ):
        spans.append(
            {
                "name": name,
                "parent": parent,
                "depth": stats.depth,
                "count": stats.count,
                "total_ms": stats.total_ms,
                "min_ms": stats.min_ms,
                "max_ms": stats.max_ms,
            }
        )
    return {
        "schema": SCHEMA,
        "counters": {
            name: counter.value for name, counter in sorted(reg.counters.items())
        },
        "gauges": {
            name: gauge.value for name, gauge in sorted(reg.gauges.items())
        },
        "histograms": {
            name: {
                "count": hist.count,
                "total": hist.total,
                "min": hist.min,
                "max": hist.max,
                "mean": hist.mean,
                "buckets": list(hist.buckets),
            }
            for name, hist in sorted(reg.histograms.items())
        },
        "spans": spans,
    }


def doc_to_registry(doc: Dict[str, Any]) -> Registry:
    """Rebuild a registry from an exported document (inverse of
    :func:`registry_to_doc` up to histogram mean, which is derived).
    Accepts ``/1`` and ``/2`` documents."""
    _check_schema(doc)
    reg = Registry(enabled=True)
    for name, value in doc.get("counters", {}).items():
        reg.counter(name).value = int(value)
    for name, value in doc.get("gauges", {}).items():
        reg.gauge(name).value = float(value)
    for name, summary in doc.get("histograms", {}).items():
        hist = reg.histogram(name)
        hist.count = int(summary["count"])
        hist.total = float(summary["total"])
        hist.min = summary["min"]
        hist.max = summary["max"]
        buckets = summary.get("buckets")
        if isinstance(buckets, list) and len(buckets) == len(hist.buckets):
            hist.buckets = [int(n) for n in buckets]
    for entry in doc.get("spans", []):
        key: Tuple[str, Optional[str]] = (entry["name"], entry.get("parent"))
        stats = SpanStats(entry["name"], entry.get("parent"), int(entry["depth"]))
        stats.count = int(entry["count"])
        stats.total_ms = float(entry["total_ms"])
        stats.min_ms = entry.get("min_ms")
        stats.max_ms = entry.get("max_ms")
        reg.spans[key] = stats
    return reg


def merge_doc(reg: Registry, doc: Dict[str, Any]) -> Registry:
    """Fold an exported document into ``reg`` in place (and return it).

    Counters add; gauges take the max envelope (every migrated gauge —
    queue depth, starvation high-water, last seed — reads correctly under
    max, and summing a level is always wrong); histograms combine
    count/total, take the min/max envelope, and add bucket counts
    elementwise (skipped when the incoming document has no buckets or a
    different bucket layout — quantiles then degrade to the min/max
    interpolation, summaries stay exact); span stats combine per
    ``(name, parent)`` key.  This is how the pipeline folds each worker
    process's registry back into the parent so ``--metrics-json`` stays
    truthful under ``--jobs N``: every checker/verifier counter reads the
    same as a serial run, with parallelism visible only through the
    ``pipeline.*`` metrics and the span timings.
    """
    _check_schema(doc)
    for name, value in doc.get("counters", {}).items():
        reg.counter(name).value += int(value)
    for name, value in doc.get("gauges", {}).items():
        reg.gauge(name).set_max(float(value))
    for name, summary in doc.get("histograms", {}).items():
        hist = reg.histogram(name)
        hist.count += int(summary["count"])
        hist.total += float(summary["total"])
        for attr, pick in (("min", min), ("max", max)):
            incoming = summary.get(attr)
            if incoming is None:
                continue
            current = getattr(hist, attr)
            setattr(
                hist,
                attr,
                incoming if current is None else pick(current, incoming),
            )
        buckets = summary.get("buckets")
        if isinstance(buckets, list) and len(buckets) == len(hist.buckets):
            hist.buckets = [a + int(b) for a, b in zip(hist.buckets, buckets)]
    for entry in doc.get("spans", []):
        key: Tuple[str, Optional[str]] = (entry["name"], entry.get("parent"))
        stats = reg.spans.get(key)
        if stats is None:
            stats = reg.spans[key] = SpanStats(
                entry["name"], entry.get("parent"), int(entry["depth"])
            )
        stats.count += int(entry["count"])
        stats.total_ms += float(entry["total_ms"])
        for attr, pick in (("min_ms", min), ("max_ms", max)):
            incoming = entry.get(attr)
            if incoming is None:
                continue
            current = getattr(stats, attr)
            setattr(
                stats,
                attr,
                incoming if current is None else pick(current, incoming),
            )
    return reg


def export_json(reg: Registry, indent: int = 1, failures=None) -> str:
    """Serialize ``reg`` as a ``repro-telemetry/2`` document.

    ``failures`` is an optional sequence of :class:`repro.api.Diagnostic`
    records (or their dicts); when non-empty they ride along as the
    document's ``failures`` array so machine consumers get structured
    error records instead of scraping stderr.  Failure-free exports are
    byte-identical to previous releases.
    """
    doc = registry_to_doc(reg)
    if failures:
        doc["failures"] = [
            item if isinstance(item, dict) else item.to_dict()
            for item in failures
        ]
    return json.dumps(doc, indent=indent, sort_keys=False)


def load_json(text: str) -> Registry:
    return doc_to_registry(json.loads(text))


def render_table(reg: Registry) -> str:
    """The metrics table printed by ``repro stats``."""
    lines = []
    if reg.counters:
        lines.append("counters")
        width = max(len(name) for name in reg.counters)
        for name in sorted(reg.counters):
            lines.append(f"  {name:<{width}s}  {reg.counters[name].value:>10d}")
    if reg.gauges:
        lines.append("gauges")
        width = max(len(name) for name in reg.gauges)
        for name in sorted(reg.gauges):
            lines.append(f"  {name:<{width}s}  {reg.gauges[name].value:>10g}")
    if reg.histograms:
        lines.append("histograms")
        width = max(len(name) for name in reg.histograms)
        for name in sorted(reg.histograms):
            hist = reg.histograms[name]
            lines.append(
                f"  {name:<{width}s}  n={hist.count:<6d} mean={hist.mean:10.3f} "
                f"min={_num(hist.min):>10s} max={_num(hist.max):>10s}"
            )
    if reg.spans:
        lines.append("spans")
        for (name, parent), stats in sorted(
            reg.spans.items(), key=lambda item: (item[1].depth, item[0][1] or "", item[0][0])
        ):
            indent = "  " * (stats.depth + 1)
            lines.append(
                f"{indent}{name}  n={stats.count} total={stats.total_ms:.2f}ms"
                + (f"  (under {parent})" if parent else "")
            )
    return "\n".join(lines) if lines else "(no metrics recorded)"


_PROM_BAD = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    return "repro_" + _PROM_BAD.sub("_", name)


def render_prometheus(reg: Registry) -> str:
    """Prometheus text exposition (format version 0.0.4) of the registry:
    counters, gauges, and histograms with cumulative ``le`` buckets.
    Spans are aggregates with a composite key and have no natural
    Prometheus shape; scrape the JSON document for those."""
    lines = []
    for name in sorted(reg.counters):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {reg.counters[name].value}")
    for name in sorted(reg.gauges):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_num(reg.gauges[name].value)}")
    for name in sorted(reg.histograms):
        hist = reg.histograms[name]
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for bound, count in zip(BUCKET_BOUNDS, hist.buckets):
            cumulative += count
            lines.append(f'{prom}_bucket{{le="{_prom_num(bound)}"}} {cumulative}')
        lines.append(f'{prom}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{prom}_sum {_prom_num(hist.total)}")
        lines.append(f"{prom}_count {hist.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def _prom_num(value: float) -> str:
    return f"{value:g}"


def _num(value) -> str:
    return "-" if value is None else f"{value:.3f}"
