"""The stable programmatic facade: ``check`` / ``verify`` / ``run``.

Before this module, callers reached into four inconsistent entry points
(``core.checker.check_source``, ``verifier.verify_source``,
``runtime.machine.run_function``, ``pipeline.Pipeline``) with mismatched
signatures, exit-code conventions, and ad-hoc dict payloads.  The facade
gives every consumer — the CLI, the batch pipeline, and the ``repro
serve`` RPC daemon — one typed surface:

* :func:`check`  → :class:`CheckResult`
* :func:`verify` → :class:`VerifyResult`
* :func:`run`    → :class:`RunResult`

:func:`check` and :func:`verify` accept ``jobs=``/``mode=`` to fan a
program's functions out through the batch pipeline — ``mode="thread"``
checks them concurrently in-process against one shared session (safe
because the checker core is persistent), ``mode="process"`` uses a
process pool.  Results are identical to the serial path by the pipeline
determinism contract.  :class:`Session` is the warm handle for
embedders: parse + elaborate once, then ``check``/``verify``/``run``
repeatedly (and concurrently) without re-paying program-level costs or
importing ``repro.pipeline`` internals.

No facade function raises on a *program* problem: parse errors, type
errors, verification failures, and runtime faults all come back as
:class:`Diagnostic` records on the result (``result.ok`` is False).
Exceptions are reserved for caller bugs (bad argument types).

Every result is a frozen-ish dataclass with ``to_dict()``/``from_dict()``
whose dict form IS the ``repro-rpc/1`` wire payload — the server returns
exactly ``check(source).to_dict()``, which is what makes the "server
responses are byte-identical to in-process results" guarantee checkable.

Exit codes are normalized in :class:`ExitCode` (see docs/API.md):
0 ok · 1 check-reject · 2 verify-fail · 3 runtime error / bench
regression · 4 divergence · 5 fuzz violation · 64 usage.
"""

from __future__ import annotations

import enum
import functools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .core.checker import DEFAULT_PROFILE, CheckProfile
from .core.errors import TypeError_
from .lang.tokens import SourceSpan

API_VERSION = "repro-api/1"


class ExitCode(enum.IntEnum):
    """Process exit codes, uniform across every ``repro`` subcommand.

    ``BENCH_REGRESS`` and ``RUNTIME_ERROR`` share 3 deliberately: both
    mean "the artifact was fine but executing it went wrong", and no
    subcommand can produce both.
    """

    OK = 0
    CHECK_REJECT = 1
    VERIFY_FAIL = 2
    RUNTIME_ERROR = 3
    BENCH_REGRESS = 3  # alias of RUNTIME_ERROR
    DIVERGENCE = 4
    FUZZ_VIOLATION = 5
    USAGE = 64


#: Diagnostic codes rendered as "syntax error" with a caret excerpt.
_SYNTAX_CODES = ("ParseError", "LexError")
#: Diagnostic codes produced by the runtime, rendered without an excerpt.
_RUNTIME_CODES = (
    "MachineError",
    "ReservationViolation",
    "DeadlockError",
    "StepLimitExceeded",
)


@dataclass
class Diagnostic:
    """One canonical failure record.

    This is the single encoder behind CLI text output, ``--metrics-json``
    failure records, and ``repro-rpc/1`` error payloads — the per-call-site
    dict literals are gone.  ``span`` is ``(start, end, line, column)`` or
    ``None`` when the failure has no source location.
    """

    file: str
    severity: str  # "error" (reserved: "warning")
    code: str  # the exception class name, e.g. "RegionConsumed"
    message: str
    span: Optional[Tuple[int, int, int, int]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "file": self.file,
            "span": list(self.span) if self.span is not None else None,
            "severity": self.severity,
            "code": self.code,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Diagnostic":
        span = data.get("span")
        return cls(
            file=data["file"],
            severity=data["severity"],
            code=data["code"],
            message=data["message"],
            span=tuple(span) if span is not None else None,
        )

    @classmethod
    def from_exception(
        cls, exc: BaseException, file: str = "<input>"
    ) -> "Diagnostic":
        from .lang.diagnostics import strip_location_prefix

        span = getattr(exc, "span", None)
        return cls(
            file=file,
            severity="error",
            code=type(exc).__name__,
            message=getattr(exc, "message", None)
            or strip_location_prefix(str(exc)),
            span=None
            if span is None
            else (span.start, span.end, span.line, span.column),
        )

    def source_span(self) -> Optional[SourceSpan]:
        if self.span is None:
            return None
        start, end, line, column = self.span
        return SourceSpan(start, end, line, column)

    def render(self, source: str = "") -> str:
        """The human-facing form: caret excerpt for parse/type errors,
        the historical one-liners for verify and runtime failures."""
        from .lang.diagnostics import render_diagnostic

        if self.code == "VerificationError":
            return f"{self.file}: VERIFICATION FAILED: {self.message}"
        if self.code in _RUNTIME_CODES:
            return f"runtime error: {self.message}"
        kind = "syntax error" if self.code in _SYNTAX_CODES else "type error"
        return render_diagnostic(
            source, self.source_span(), self.message, filename=self.file, kind=kind
        )


def _diagnostics_from(items: Sequence[Dict[str, Any]]) -> List[Diagnostic]:
    return [Diagnostic.from_dict(item) for item in items]


@dataclass
class CheckResult:
    """Outcome of type-checking one program."""

    ok: bool
    functions: int = 0
    nodes: int = 0
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "functions": self.functions,
            "nodes": self.nodes,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CheckResult":
        return cls(
            ok=data["ok"],
            functions=data["functions"],
            nodes=data["nodes"],
            diagnostics=_diagnostics_from(data["diagnostics"]),
        )

    def summary(self, file: str) -> str:
        return (
            f"{file}: OK — {self.functions} functions, "
            f"{self.nodes} derivation nodes"
        )

    @property
    def exit_code(self) -> ExitCode:
        return ExitCode.OK if self.ok else ExitCode.CHECK_REJECT


@dataclass
class VerifyResult:
    """Outcome of checking and then independently verifying a program."""

    ok: bool
    functions: int = 0
    nodes: int = 0
    verified: int = 0
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "functions": self.functions,
            "nodes": self.nodes,
            "verified": self.verified,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "VerifyResult":
        return cls(
            ok=data["ok"],
            functions=data["functions"],
            nodes=data["nodes"],
            verified=data["verified"],
            diagnostics=_diagnostics_from(data["diagnostics"]),
        )

    def summary(self, file: str) -> str:
        return f"{file}: verified ({self.verified} nodes)"

    @property
    def exit_code(self) -> ExitCode:
        if self.ok:
            return ExitCode.OK
        for diag in self.diagnostics:
            if diag.code == "VerificationError":
                return ExitCode.VERIFY_FAIL
        return ExitCode.CHECK_REJECT


@dataclass
class RunResult:
    """Outcome of running one function single-threaded."""

    ok: bool
    value: Optional[str] = None  # rendered result (see render_value)
    steps: int = 0
    reservation_checks: int = 0
    heap_reads: int = 0
    heap_writes: int = 0
    heap_objects: int = 0
    engine: str = "tree"
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "value": self.value,
            "steps": self.steps,
            "reservation_checks": self.reservation_checks,
            "heap_reads": self.heap_reads,
            "heap_writes": self.heap_writes,
            "heap_objects": self.heap_objects,
            "engine": self.engine,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunResult":
        return cls(
            ok=data["ok"],
            value=data["value"],
            steps=data["steps"],
            reservation_checks=data["reservation_checks"],
            heap_reads=data["heap_reads"],
            heap_writes=data["heap_writes"],
            heap_objects=data["heap_objects"],
            engine=data.get("engine", "tree"),
            diagnostics=_diagnostics_from(data["diagnostics"]),
        )

    @property
    def exit_code(self) -> ExitCode:
        if self.ok:
            return ExitCode.OK
        if any(d.code in _RUNTIME_CODES for d in self.diagnostics):
            return ExitCode.RUNTIME_ERROR
        return ExitCode.CHECK_REJECT


def render_value(value, heap) -> str:
    """Render a runtime value the way the CLI prints it (structs show
    their fields and location; primitives show their repr)."""
    from .runtime.values import NONE, UNIT, Loc

    if value is UNIT:
        return "()"
    if value is NONE:
        return "none"
    if isinstance(value, Loc):
        obj = heap.obj(value)
        fields = ", ".join(
            f"{name} = {_brief(v)}" for name, v in obj.fields.items()
        )
        return f"{obj.struct.name}{{{fields}}} @ {value}"
    return repr(value)


def _brief(value) -> str:
    from .runtime.values import NONE, Loc

    if value is NONE:
        return "none"
    if isinstance(value, Loc):
        return str(value)
    return repr(value)


# ---------------------------------------------------------------------------
# The facade functions
# ---------------------------------------------------------------------------


def _traced(name: str):
    """Wrap a facade function in an ``api.*`` tracer span, so every
    entry through the facade anchors a trace tree (or nests under the
    caller's ambient span).  Free when tracing is off: one lazy import
    plus one attribute check."""

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            from . import telemetry as tel

            tr = tel.tracer()
            if not tr.enabled:
                return fn(*args, **kwargs)
            with tr.span(name, cat="api"):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def _parse_failure(exc: BaseException, filename: str) -> List[Diagnostic]:
    return [Diagnostic.from_exception(exc, file=filename)]


def _make_session(
    source: str,
    filename: str,
    program,
    profile: CheckProfile,
):
    """(session, failure-diagnostics). Parse + program-level elaboration;
    both kinds of failure come back as diagnostics, not exceptions."""
    from .lang import ParseError, parse_program
    from .lang.lexer import LexError
    from .pipeline.session import ProgramSession

    try:
        if program is None:
            program = parse_program(source)
        return ProgramSession(source, program=program, profile=profile), []
    except (ParseError, LexError) as exc:
        return None, _parse_failure(exc, filename)
    except TypeError_ as exc:
        return None, _parse_failure(exc, filename)


def _wants_parallel(jobs: Optional[int], mode: Optional[str]) -> bool:
    return (jobs is not None and jobs != 1) or mode not in (None, "serial")


def _pipeline_result(
    source: str,
    filename: str,
    program,
    profile: CheckProfile,
    jobs: Optional[int],
    mode: Optional[str],
    want_verify: bool,
):
    """Route one program through the batch pipeline and translate its
    :class:`~repro.pipeline.ProgramResult` into the facade's result type
    (same numbers as the serial path — the pipeline determinism
    contract)."""
    from .lang import ParseError, parse_program
    from .lang.lexer import LexError
    from .pipeline import Pipeline

    result_cls = VerifyResult if want_verify else CheckResult
    if program is None:
        try:
            program = parse_program(source)
        except (ParseError, LexError) as exc:
            return result_cls(ok=False, diagnostics=_parse_failure(exc, filename))
    with Pipeline(
        jobs=jobs, mode=mode, verify=want_verify, profile=profile
    ) as pipeline:
        result = pipeline.run(filename, source, program)
    functions = len(program.funcs)
    if not result.ok:
        return result_cls(
            ok=False,
            functions=functions,
            diagnostics=[result.error.to_diagnostic(filename)],
        )
    if want_verify:
        return VerifyResult(
            ok=True,
            functions=functions,
            nodes=result.nodes,
            verified=result.verified,
        )
    return CheckResult(ok=True, functions=functions, nodes=result.nodes)


@_traced("api.check")
def check(
    source: str,
    *,
    filename: str = "<input>",
    program=None,
    profile: CheckProfile = DEFAULT_PROFILE,
    session=None,
    jobs: Optional[int] = None,
    mode: Optional[str] = None,
) -> CheckResult:
    """Parse and type-check ``source``; never raises on program errors.

    ``session`` lets warm callers (the server) reuse a parsed/elaborated
    :class:`~repro.pipeline.ProgramSession`; results are identical.
    ``jobs``/``mode`` fan the functions out through the batch pipeline
    (``mode="thread"`` shares one session across worker threads,
    ``mode="process"`` forks a pool); results are again identical.
    """
    if _wants_parallel(jobs, mode):
        if program is None and session is not None:
            program = session.program
        return _pipeline_result(
            source, filename, program, profile, jobs, mode, want_verify=False
        )
    if session is None:
        session, failed = _make_session(source, filename, program, profile)
        if session is None:
            return CheckResult(ok=False, diagnostics=failed)
    try:
        derivation = session.checker.check_program()
    except TypeError_ as exc:
        return CheckResult(
            ok=False,
            functions=len(session.program.funcs),
            diagnostics=[Diagnostic.from_exception(exc, file=filename)],
        )
    return CheckResult(
        ok=True,
        functions=len(session.program.funcs),
        nodes=derivation.node_count(),
    )


@_traced("api.verify")
def verify(
    source: str,
    *,
    filename: str = "<input>",
    program=None,
    profile: CheckProfile = DEFAULT_PROFILE,
    session=None,
    jobs: Optional[int] = None,
    mode: Optional[str] = None,
) -> VerifyResult:
    """Check, then independently verify the derivation (§5).

    ``jobs``/``mode`` parallelize per function exactly like
    :func:`check`."""
    from .verifier import VerificationError

    if _wants_parallel(jobs, mode):
        if program is None and session is not None:
            program = session.program
        return _pipeline_result(
            source, filename, program, profile, jobs, mode, want_verify=True
        )
    if session is None:
        session, failed = _make_session(source, filename, program, profile)
        if session is None:
            return VerifyResult(ok=False, diagnostics=failed)
    try:
        derivation = session.checker.check_program()
    except TypeError_ as exc:
        return VerifyResult(
            ok=False,
            functions=len(session.program.funcs),
            diagnostics=[Diagnostic.from_exception(exc, file=filename)],
        )
    try:
        verified = session.verifier.verify_program(derivation)
    except VerificationError as exc:
        return VerifyResult(
            ok=False,
            functions=len(session.program.funcs),
            nodes=derivation.node_count(),
            diagnostics=[Diagnostic.from_exception(exc, file=filename)],
        )
    return VerifyResult(
        ok=True,
        functions=len(session.program.funcs),
        nodes=derivation.node_count(),
        verified=verified,
    )


@_traced("api.run")
def run(
    source: str,
    function: str,
    args: Sequence = (),
    *,
    filename: str = "<input>",
    program=None,
    profile: CheckProfile = DEFAULT_PROFILE,
    check_first: bool = True,
    erased: bool = False,
    max_steps: Optional[int] = None,
    sink_sends: bool = True,
    seed: Optional[int] = None,
    engine: str = "tree",
    session=None,
) -> RunResult:
    """Type-check (unless ``check_first=False``) and run one function
    single-threaded.  ``max_steps`` bounds execution (the server's step
    budget); exceeding it is a ``StepLimitExceeded`` diagnostic.
    ``erased=True`` uses the §3.2 verified-erasure fast path and is only
    honored when the program was checked.  ``engine`` selects the tree
    interpreter (``"tree"``, the local default) or the compiled bytecode
    engine (``"ir"``, see :mod:`repro.ir`).  Note the ``run`` RPC differs:
    a request without an ``engine`` key defaults to ``"ir"`` — warm
    daemons serve from the shared compile cache, and
    :attr:`RunResult.engine` always reports the effective choice.
    """
    from .runtime.heap import Heap
    from .runtime.machine import run_function

    if engine not in ("tree", "ir"):
        return RunResult(
            ok=False,
            engine=engine,
            diagnostics=[
                Diagnostic(
                    file=filename,
                    severity="error",
                    code="MachineError",
                    message=(
                        f"unknown engine {engine!r}; expected 'tree' or 'ir'"
                    ),
                )
            ],
        )
    if session is None:
        session, failed = _make_session(source, filename, program, profile)
        if session is None:
            return RunResult(ok=False, engine=engine, diagnostics=failed)
    if check_first:
        try:
            session.checker.check_program()
        except TypeError_ as exc:
            return RunResult(
                ok=False,
                engine=engine,
                diagnostics=[Diagnostic.from_exception(exc, file=filename)],
            )
    if function not in session.program.funcs:
        return RunResult(
            ok=False,
            engine=engine,
            diagnostics=[
                Diagnostic(
                    file=filename,
                    severity="error",
                    code="MachineError",
                    message=f"no function {function!r}",
                )
            ],
        )
    heap = Heap()
    check_reservations = not (erased and check_first)
    try:
        value, interp = run_function(
            session.program,
            function,
            list(args),
            heap=heap,
            check_reservations=check_reservations,
            sink_sends=sink_sends,
            max_steps=max_steps,
            seed=seed,
            engine=engine,
        )
    except Exception as exc:  # runtime faults are diagnostics, not crashes
        return RunResult(
            ok=False,
            engine=engine,
            diagnostics=[Diagnostic.from_exception(exc, file=filename)],
        )
    return RunResult(
        ok=True,
        value=render_value(value, heap),
        steps=interp.stats.steps,
        reservation_checks=interp.stats.reservation_checks,
        heap_reads=heap.reads,
        heap_writes=heap.writes,
        heap_objects=len(heap),
        engine=engine,
    )


class Session:
    """A warm program handle: parse + elaborate once, then ``check`` /
    ``verify`` / ``run`` repeatedly without re-paying program-level
    costs.

    This is the stable wrapper over the pipeline's internal
    ``ProgramSession`` — embedders get warm reuse and per-function
    parallelism without importing :mod:`repro.pipeline`.  The checker
    core is persistent (path-copied contexts, interned regions), so one
    Session may be shared across threads: concurrent ``check`` calls
    against the same warm Session are safe with zero copies.

    Construction never raises on program errors: a Session whose source
    fails to parse or elaborate has ``ok == False`` and carries the
    diagnostics; its ``check``/``verify``/``run`` return failed results
    built from them.
    """

    def __init__(
        self,
        source: str,
        *,
        filename: str = "<input>",
        profile: CheckProfile = DEFAULT_PROFILE,
    ):
        self.source = source
        self.filename = filename
        self.profile = profile
        self._session, self._diagnostics = _make_session(
            source, filename, None, profile
        )

    @property
    def ok(self) -> bool:
        """Whether the source parsed and elaborated."""
        return self._session is not None

    @property
    def diagnostics(self) -> List[Diagnostic]:
        """Parse/elaboration diagnostics (empty when ``ok``)."""
        return list(self._diagnostics)

    @property
    def program(self):
        """The parsed :class:`~repro.lang.ast.Program` (``None`` when
        construction failed)."""
        return None if self._session is None else self._session.program

    def function_names(self) -> List[str]:
        """Sorted function names (the checker's processing order)."""
        return [] if self._session is None else self._session.function_names()

    def check(
        self, *, jobs: Optional[int] = None, mode: Optional[str] = None
    ) -> CheckResult:
        if self._session is None:
            return CheckResult(ok=False, diagnostics=self.diagnostics)
        return check(
            self.source,
            filename=self.filename,
            profile=self.profile,
            session=self._session,
            jobs=jobs,
            mode=mode,
        )

    def verify(
        self, *, jobs: Optional[int] = None, mode: Optional[str] = None
    ) -> VerifyResult:
        if self._session is None:
            return VerifyResult(ok=False, diagnostics=self.diagnostics)
        return verify(
            self.source,
            filename=self.filename,
            profile=self.profile,
            session=self._session,
            jobs=jobs,
            mode=mode,
        )

    def run(self, function: str, args: Sequence = (), **kwargs) -> RunResult:
        if self._session is None:
            return RunResult(ok=False, diagnostics=self.diagnostics)
        return run(
            self.source,
            function,
            args,
            filename=self.filename,
            profile=self.profile,
            session=self._session,
            **kwargs,
        )

    def __repr__(self) -> str:
        status = "ok" if self.ok else "failed"
        return f"Session({self.filename!r}, {status})"


__all__ = [
    "API_VERSION",
    "CheckResult",
    "Diagnostic",
    "ExitCode",
    "RunResult",
    "Session",
    "VerifyResult",
    "check",
    "render_value",
    "run",
    "verify",
]
