"""Wall-clock benchmark harness (``repro bench`` / ``benchmarks/bench_report.py``).

Runs the speed-critical paths with plain ``time.perf_counter`` loops (no
pytest-benchmark needed) and reports a document in schema ``repro-bench/1``
(``benchmarks/bench.schema.json``):

* **corpus** — E2: prover + verifier wall-clock per corpus program, with the
  clone/copy-on-write telemetry counters of the checker run;
* **generated** — E2: checker scaling on generated ``chain``-length programs;
* **search** — E4: greedy-with-oracle vs bounded backtracking search;
* **erasure** — §3.2: guarded vs erased-guard runtime on corpus workloads,
  plus the number of reservation checks erasure elides.

The clone counters quantify the copy-on-write win directly:
``clone_dicts_cow`` is what ``StaticContext.clone`` plus later CoW faults
actually allocated, ``clone_dicts_eager`` is what the pre-CoW eager deep
clone would have allocated for the same workload.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence

from . import telemetry
from .core.checker import Checker
from .core.contexts import StaticContext
from .core.regions import RegionSupply
from .core.unify import match_contexts, search_unify
from .lang import ast, parse_program
from .runtime.heap import Heap
from .runtime.machine import run_function
from .verifier import Verifier

SCHEMA = "repro-bench/1"

#: Erasure workloads: (label, corpus, constructor, traversal, size).
ERASURE_WORKLOADS = (
    ("sll-traverse", "sll", "make_list", "sum", 150),
    ("dll-walk", "dll", "make_dll", "dll_length", 300),
)


def generated_program(chain: int) -> str:
    """A function with ``chain`` sequential iso manipulations + branches —
    scales the number of variables and join points the checker handles
    (mirrors ``benchmarks/test_checker_speed.py``)."""
    lines = [
        "struct data { v : int; }",
        "struct box { iso inner : data?; }",
        "def fn(b : box, c : bool) : int {",
        "  let acc = 0;",
    ]
    for i in range(chain):
        lines.append(f"  let d{i} = new data(v = {i});")
        lines.append(f"  b.inner = some(d{i});")
        lines.append(
            f"  if (c) {{ let some(x{i}) = b.inner in {{ acc = acc + x{i}.v }}"
            f" else {{ acc = acc }} }} else {{ acc = acc + {i} }};"
        )
    lines.append("  acc")
    lines.append("}")
    return "\n".join(lines)


def branch_pair(width: int):
    """Two branch outputs over ``width`` variables (E4's unification
    instance): side A focused+explored every variable, side B untracked."""
    node = ast.StructType("node")
    a = StaticContext(RegionSupply())
    for i in range(width):
        region = a.fresh_region()
        a.bind(f"v{i}", node, region)
    b = a.clone()
    for i in range(width):
        a.focus(f"v{i}")
        a.explore(f"v{i}", "f")
    live = frozenset(f"v{i}" for i in range(width))
    return a, b, live


def _clone_counters(reg: telemetry.Registry) -> Dict[str, int]:
    counters = {name: c.value for name, c in reg.counters.items()}
    cow = (
        counters.get("contexts.cow.heap_faults", 0)
        + counters.get("contexts.cow.gamma_faults", 0)
        + counters.get("contexts.cow.tc_faults", 0)
        + counters.get("contexts.cow.tv_faults", 0)
    )
    return {
        "clones": counters.get("contexts.clones", 0),
        "cow_heap_faults": counters.get("contexts.cow.heap_faults", 0),
        "cow_gamma_faults": counters.get("contexts.cow.gamma_faults", 0),
        "cow_tc_faults": counters.get("contexts.cow.tc_faults", 0),
        "cow_tv_faults": counters.get("contexts.cow.tv_faults", 0),
        "clone_dicts_cow": cow,
        "clone_dicts_eager": counters.get("contexts.clone.dicts_eager", 0),
        "snapshot_hits": counters.get("contexts.snapshot.hits", 0),
        "snapshot_misses": counters.get("contexts.snapshot.misses", 0),
    }


def bench_corpus(names: Optional[Iterable[str]] = None) -> List[Dict]:
    """E2: per corpus program, check + verify wall-clock and CoW counters."""
    from .corpus import corpus_names, load_program

    rows = []
    for name in names if names is not None else corpus_names():
        program = load_program(name)
        reg = telemetry.Registry(enabled=True)
        with telemetry.use(reg):
            t0 = time.perf_counter()
            derivation = Checker(program).check_program()
            check_ms = (time.perf_counter() - t0) * 1000
        t0 = time.perf_counter()
        nodes = Verifier(program).verify_program(derivation)
        verify_ms = (time.perf_counter() - t0) * 1000
        row = {
            "name": name,
            "functions": len(program.funcs),
            "check_ms": round(check_ms, 3),
            "verify_ms": round(verify_ms, 3),
            "derivation_nodes": nodes,
        }
        row.update(_clone_counters(reg))
        rows.append(row)
    return rows


def bench_generated(chains: Sequence[int] = (5, 20, 50)) -> List[Dict]:
    """E2: checker scaling on generated programs, with CoW counters."""
    rows = []
    for chain in chains:
        program = parse_program(generated_program(chain))
        reg = telemetry.Registry(enabled=True)
        with telemetry.use(reg):
            t0 = time.perf_counter()
            Checker(program, record=False).check_program()
            check_ms = (time.perf_counter() - t0) * 1000
        row = {"chain": chain, "check_ms": round(check_ms, 3)}
        row.update(_clone_counters(reg))
        rows.append(row)
    return rows


def bench_search(widths: Sequence[int] = (1, 2, 3, 4)) -> List[Dict]:
    """E4: greedy-with-liveness-oracle vs bounded backtracking search."""
    rows = []
    for width in widths:
        a, b, live = branch_pair(width)
        t0 = time.perf_counter()
        match_contexts(a.clone(), b.clone(), live)
        greedy_ms = (time.perf_counter() - t0) * 1000
        reg = telemetry.Registry(enabled=True)
        with telemetry.use(reg):
            t0 = time.perf_counter()
            search_unify(a, b, live, max_depth=2 * width + 1)
            search_ms = (time.perf_counter() - t0) * 1000
        rows.append(
            {
                "width": width,
                "greedy_ms": round(greedy_ms, 3),
                "search_ms": round(search_ms, 3),
                "search_states": reg.counters["unify.search.states"].value
                if "unify.search.states" in reg.counters
                else 0,
            }
        )
    return rows


def bench_erasure(repeats: int = 5) -> List[Dict]:
    """§3.2: guarded vs erased-guard runtime wall-clock; the guarded run's
    reservation-check count is exactly what erasure elides."""
    from .corpus import load_program

    rows = []
    for label, corpus, maker, fn, n in ERASURE_WORKLOADS:
        program = load_program(corpus)
        best = {True: float("inf"), False: float("inf")}
        elided = 0
        for checks in (True, False):
            for _ in range(repeats):
                heap = Heap()
                lst, _ = run_function(
                    program, maker, [n], heap=heap, check_reservations=checks
                )
                t0 = time.perf_counter()
                _, interp = run_function(
                    program, fn, [lst], heap=heap, check_reservations=checks
                )
                best[checks] = min(
                    best[checks], (time.perf_counter() - t0) * 1000
                )
                if checks:
                    elided = interp.stats.reservation_checks
        rows.append(
            {
                "workload": label,
                "checked_ms": round(best[True], 3),
                "erased_ms": round(best[False], 3),
                "reservation_checks_elided": elided,
            }
        )
    return rows


def collect(small: bool = False) -> Dict:
    """The full ``repro-bench/1`` document."""
    if small:
        corpus_names = ("sll", "dll", "rbtree")
        chains: Sequence[int] = (5, 20)
        widths: Sequence[int] = (1, 2, 3)
        repeats = 2
    else:
        corpus_names = None
        chains = (5, 20, 50)
        widths = (1, 2, 3, 4)
        repeats = 5
    return {
        "schema": SCHEMA,
        "label": "PR2",
        "corpus": bench_corpus(corpus_names),
        "generated": bench_generated(chains),
        "search": bench_search(widths),
        "erasure": bench_erasure(repeats),
    }


def render_table(doc: Dict) -> str:
    lines = []
    lines.append("E2 — corpus check + verify (copy-on-write contexts)")
    lines.append(
        f"{'program':>8s} {'fns':>4s} {'check(ms)':>10s} {'verify(ms)':>11s} "
        f"{'clones':>7s} {'dicts(cow)':>11s} {'dicts(eager)':>13s}"
    )
    for row in doc["corpus"]:
        lines.append(
            f"{row['name']:>8s} {row['functions']:4d} {row['check_ms']:10.1f} "
            f"{row['verify_ms']:11.1f} {row['clones']:7d} "
            f"{row['clone_dicts_cow']:11d} {row['clone_dicts_eager']:13d}"
        )
    lines.append("")
    lines.append("E2 — generated-program scaling")
    lines.append(
        f"{'chain':>6s} {'check(ms)':>10s} {'clones':>7s} {'faults':>7s} "
        f"{'dicts(cow)':>11s} {'dicts(eager)':>13s} {'snap hit/miss':>14s}"
    )
    for row in doc["generated"]:
        faults = (
            row["cow_heap_faults"]
            + row["cow_gamma_faults"]
            + row["cow_tc_faults"]
            + row["cow_tv_faults"]
        )
        lines.append(
            f"{row['chain']:6d} {row['check_ms']:10.1f} {row['clones']:7d} "
            f"{faults:7d} {row['clone_dicts_cow']:11d} "
            f"{row['clone_dicts_eager']:13d} "
            f"{row['snapshot_hits']:6d}/{row['snapshot_misses']:<6d}"
        )
    lines.append("")
    lines.append("E4 — greedy + oracle vs backtracking search")
    lines.append(
        f"{'width':>6s} {'greedy(ms)':>11s} {'search(ms)':>11s} {'states':>8s}"
    )
    for row in doc["search"]:
        lines.append(
            f"{row['width']:6d} {row['greedy_ms']:11.2f} "
            f"{row['search_ms']:11.2f} {row['search_states']:8d}"
        )
    lines.append("")
    lines.append("§3.2 — verified reservation-check erasure")
    lines.append(
        f"{'workload':>14s} {'checked(ms)':>12s} {'erased(ms)':>11s} "
        f"{'checks elided':>14s}"
    )
    for row in doc["erasure"]:
        lines.append(
            f"{row['workload']:>14s} {row['checked_ms']:12.2f} "
            f"{row['erased_ms']:11.2f} {row['reservation_checks_elided']:14d}"
        )
    return "\n".join(lines)
