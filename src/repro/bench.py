"""Wall-clock benchmark harness (``repro bench`` / ``benchmarks/bench_report.py``).

Runs the speed-critical paths with plain ``time.perf_counter`` loops (no
pytest-benchmark needed) and reports a document in schema ``repro-bench/1``
(``benchmarks/bench.schema.json``):

* **corpus** — E2: prover + verifier wall-clock per corpus program, with the
  clone/copy-on-write telemetry counters of the checker run;
* **generated** — E2: checker scaling on generated ``chain``-length programs;
* **search** — E4: greedy-with-oracle vs bounded backtracking search;
* **erasure** — §3.2: guarded vs erased-guard runtime on corpus workloads,
  plus the number of reservation checks erasure elides;
* **ir** — tree-walking interpreter vs the compiled bytecode engine
  (``--engine ir``) in both guard modes, with compile wall-clock and the
  optimizer's pass counters (calls inlined, loads eliminated, checks
  erased at lowering);
* **pipeline** — §5 at batch scale: serial vs thread- and process-pool
  fan-out vs warm certificate cache (replayed and trusted) on the corpus
  and on a generated many-function workload.  Rows record the host's
  ``cpu_count`` because fan-out speedups are meaningless without it;
* **modes** — cold (pool start-up included) vs warm (pool alive) batch
  wall-clock for the thread pool at jobs 1/2/4 against the process pool,
  on the embarrassingly-parallel many-function workload.  Thread mode
  runs against the shared in-process session — no pickling, no worker
  re-elaboration — which is the ``pipeline.worker_ms`` serialization tax
  the persistent checker core eliminates.

``compare_docs`` diffs two such documents (same schema, any two runs) and
flags wall-clock regressions — the CI bench-smoke job compares a fresh
``--small`` run against the committed baseline report.  Rows and metrics
present in only one report are skipped, so reports from before and after
a rename (e.g. ``cow_*`` -> ``persist_*``) stay comparable.

The clone counters quantify the persistent-sharing win directly:
``clone_dicts_persist`` is what ``StaticContext.clone`` plus later
handle-side copies actually allocated, ``clone_dicts_eager`` is what the
old eager deep clone would have allocated for the same workload.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence

from . import telemetry
from .core.checker import Checker
from .core.contexts import StaticContext
from .core.regions import RegionSupply
from .core.unify import match_contexts, search_unify
from .lang import ast, parse_program
from .runtime.heap import Heap
from .runtime.machine import run_function
from .verifier import Verifier

SCHEMA = "repro-bench/1"

#: Erasure workloads: (label, corpus, constructor, traversal, size).
ERASURE_WORKLOADS = (
    ("sll-traverse", "sll", "make_list", "sum", 150),
    ("dll-walk", "dll", "make_dll", "dll_length", 300),
)


def generated_program(chain: int) -> str:
    """A function with ``chain`` sequential iso manipulations + branches —
    scales the number of variables and join points the checker handles
    (mirrors ``benchmarks/test_checker_speed.py``)."""
    lines = [
        "struct data { v : int; }",
        "struct box { iso inner : data?; }",
        "def fn(b : box, c : bool) : int {",
        "  let acc = 0;",
    ]
    for i in range(chain):
        lines.append(f"  let d{i} = new data(v = {i});")
        lines.append(f"  b.inner = some(d{i});")
        lines.append(
            f"  if (c) {{ let some(x{i}) = b.inner in {{ acc = acc + x{i}.v }}"
            f" else {{ acc = acc }} }} else {{ acc = acc + {i} }};"
        )
    lines.append("  acc")
    lines.append("}")
    return "\n".join(lines)


def branch_pair(width: int):
    """Two branch outputs over ``width`` variables (E4's unification
    instance): side A focused+explored every variable, side B untracked."""
    node = ast.StructType("node")
    a = StaticContext(RegionSupply())
    for i in range(width):
        region = a.fresh_region()
        a.bind(f"v{i}", node, region)
    b = a.clone()
    for i in range(width):
        a.focus(f"v{i}")
        a.explore(f"v{i}", "f")
    live = frozenset(f"v{i}" for i in range(width))
    return a, b, live


def _clone_counters(reg: telemetry.Registry) -> Dict[str, int]:
    counters = {name: c.value for name, c in reg.counters.items()}
    copies = (
        counters.get("contexts.persist.heap_copies", 0)
        + counters.get("contexts.persist.gamma_copies", 0)
        + counters.get("contexts.persist.tc_copies", 0)
        + counters.get("contexts.persist.tv_copies", 0)
    )
    return {
        "clones": counters.get("contexts.clones", 0),
        "persist_heap_copies": counters.get("contexts.persist.heap_copies", 0),
        "persist_gamma_copies": counters.get(
            "contexts.persist.gamma_copies", 0
        ),
        "persist_tc_copies": counters.get("contexts.persist.tc_copies", 0),
        "persist_tv_copies": counters.get("contexts.persist.tv_copies", 0),
        "clone_dicts_persist": copies,
        "clone_dicts_eager": counters.get("contexts.clone.dicts_eager", 0),
        "snapshot_hits": counters.get("contexts.snapshot.hits", 0),
        "snapshot_misses": counters.get("contexts.snapshot.misses", 0),
    }


def bench_corpus(names: Optional[Iterable[str]] = None) -> List[Dict]:
    """E2: per corpus program, check + verify wall-clock and CoW counters."""
    from .corpus import corpus_names, load_program

    rows = []
    for name in names if names is not None else corpus_names():
        program = load_program(name)
        reg = telemetry.Registry(enabled=True)
        with telemetry.use(reg):
            t0 = time.perf_counter()
            derivation = Checker(program).check_program()
            check_ms = (time.perf_counter() - t0) * 1000
        t0 = time.perf_counter()
        nodes = Verifier(program).verify_program(derivation)
        verify_ms = (time.perf_counter() - t0) * 1000
        row = {
            "name": name,
            "functions": len(program.funcs),
            "check_ms": round(check_ms, 3),
            "verify_ms": round(verify_ms, 3),
            "derivation_nodes": nodes,
        }
        row.update(_clone_counters(reg))
        rows.append(row)
    return rows


def bench_generated(chains: Sequence[int] = (5, 20, 50)) -> List[Dict]:
    """E2: checker scaling on generated programs, with CoW counters."""
    rows = []
    for chain in chains:
        program = parse_program(generated_program(chain))
        reg = telemetry.Registry(enabled=True)
        with telemetry.use(reg):
            t0 = time.perf_counter()
            Checker(program, record=False).check_program()
            check_ms = (time.perf_counter() - t0) * 1000
        row = {"chain": chain, "check_ms": round(check_ms, 3)}
        row.update(_clone_counters(reg))
        rows.append(row)
    return rows


def bench_search(widths: Sequence[int] = (1, 2, 3, 4)) -> List[Dict]:
    """E4: greedy-with-liveness-oracle vs bounded backtracking search."""
    rows = []
    for width in widths:
        a, b, live = branch_pair(width)
        t0 = time.perf_counter()
        match_contexts(a.clone(), b.clone(), live)
        greedy_ms = (time.perf_counter() - t0) * 1000
        reg = telemetry.Registry(enabled=True)
        with telemetry.use(reg):
            t0 = time.perf_counter()
            search_unify(a, b, live, max_depth=2 * width + 1)
            search_ms = (time.perf_counter() - t0) * 1000
        rows.append(
            {
                "width": width,
                "greedy_ms": round(greedy_ms, 3),
                "search_ms": round(search_ms, 3),
                "search_states": reg.counters["unify.search.states"].value
                if "unify.search.states" in reg.counters
                else 0,
            }
        )
    return rows


def many_functions_program(count: int) -> str:
    """``count`` small independent functions — the embarrassingly-parallel
    shape the per-function pipeline is built for (each function's
    derivation depends only on decls and signatures, never other bodies)."""
    lines = ["struct data { v : int; }"]
    for i in range(count):
        lines.append(
            f"def f{i}(x : int) : int {{\n"
            f"  let d = new data(v = x);\n"
            f"  let a = d.v + {i};\n"
            f"  let b = a + a;\n"
            f"  if (b > x) {{ b }} else {{ a }}\n"
            f"}}"
        )
    return "\n".join(lines)


def bench_pipeline(small: bool = False, jobs: int = 4) -> List[Dict]:
    """Serial vs fan-out vs warm-cache batch throughput.

    Six timings per workload, all over the same program set:

    * ``serial_ms``  — ``jobs=1``, no cache (today's path);
    * ``thread_ms``  — ``jobs=N`` in-process thread pool, no cache;
    * ``parallel_ms`` — ``jobs=N`` process pool, no cache (includes pool
      start-up: that cost is real for a one-shot batch);
    * ``cold_ms``    — ``jobs=1`` populating a fresh cache;
    * ``warm_ms``    — ``jobs=1`` replaying every certificate through the
      verifier (the sound fast path);
    * ``trusted_ms`` — ``--trust-cache``: hash lookup only, no replay.
    """
    import os
    import tempfile

    from .corpus import corpus_names, load_source
    from .pipeline import Pipeline

    corpus = ("sll", "dll", "rbtree") if small else tuple(corpus_names())
    count = 40 if small else 120
    workloads = [
        ("corpus", [(name, load_source(name)) for name in corpus]),
        (f"many-fns-{count}", [("generated", many_functions_program(count))]),
    ]

    def timed(pipeline: "Pipeline", programs):
        t0 = time.perf_counter()
        functions = 0
        for label, source in programs:
            result = pipeline.run(label, source)
            assert result.ok, f"bench workload rejected: {label}"
            functions += len(result.functions)
        return (time.perf_counter() - t0) * 1000, functions

    rows = []
    for label, programs in workloads:
        with Pipeline(jobs=1) as p:
            serial_ms, functions = timed(p, programs)
        with Pipeline(jobs=jobs, mode="thread") as p:
            thread_ms, _ = timed(p, programs)
        with Pipeline(jobs=jobs, mode="process") as p:
            parallel_ms, _ = timed(p, programs)
        with tempfile.TemporaryDirectory() as cache_dir:
            with Pipeline(jobs=1, cache_dir=cache_dir) as p:
                cold_ms, _ = timed(p, programs)
            with Pipeline(jobs=1, cache_dir=cache_dir) as p:
                warm_ms, _ = timed(p, programs)
            with Pipeline(jobs=1, cache_dir=cache_dir, trust_cache=True) as p:
                trusted_ms, _ = timed(p, programs)
        rows.append(
            {
                "workload": label,
                "functions": functions,
                "jobs": jobs,
                "cpu_count": os.cpu_count() or 1,
                "serial_ms": round(serial_ms, 3),
                "thread_ms": round(thread_ms, 3),
                "parallel_ms": round(parallel_ms, 3),
                "cold_ms": round(cold_ms, 3),
                "warm_ms": round(warm_ms, 3),
                "trusted_ms": round(trusted_ms, 3),
                "speedup_warm": round(serial_ms / warm_ms, 2) if warm_ms else 0.0,
                "speedup_trusted": round(serial_ms / trusted_ms, 2)
                if trusted_ms
                else 0.0,
            }
        )
    return rows


def bench_modes(small: bool = False) -> List[Dict]:
    """Thread pool vs process pool, cold and warm, per job count.

    One row per pool configuration over the many-function workload:

    * ``cold_ms`` — first batch on a fresh :class:`Pipeline` (includes
      pool start-up and, for the process pool, worker spawn);
    * ``warm_ms`` — second batch on the same pipeline (pool alive; the
      steady state of an embedded server or a long batch session).

    Thread workers check the shared warm session in-process, so warm
    thread rows carry none of the process pool's task pickling or
    per-worker session re-elaboration (``pipeline.worker_ms``).
    """
    from .pipeline import Pipeline

    count = 40 if small else 120
    source = many_functions_program(count)
    label = f"many-fns-{count}"

    def timed(pipeline: "Pipeline"):
        t0 = time.perf_counter()
        result = pipeline.run(label, source)
        assert result.ok, "bench workload rejected"
        return (time.perf_counter() - t0) * 1000

    configs = [("thread", j) for j in (1, 2, 4)] + [("process", 4)]
    rows = []
    for mode, jobs in configs:
        with Pipeline(jobs=jobs, mode=mode) as p:
            cold_ms = timed(p)
            warm_ms = timed(p)
        rows.append(
            {
                "config": f"{mode}-j{jobs}",
                "mode": mode,
                "jobs": jobs,
                "functions": count,
                "cold_ms": round(cold_ms, 3),
                "warm_ms": round(warm_ms, 3),
            }
        )
    return rows


def bench_server(small: bool = False) -> List[Dict]:
    """Warm ``repro serve`` check latency vs a cold ``repro check``
    process.

    ``cold_process_ms`` spawns a fresh interpreter per request (what a
    build system pays shelling out to ``repro check``); ``warm_first_ms``
    is the first RPC against a running daemon (session construction);
    ``warm_ms`` is the steady state (memoized result over a socket).
    """
    import os
    import subprocess
    import sys
    import tempfile

    from . import corpus as corpus_pkg
    from .client import Client
    from .corpus import load_source
    from .server import ServerConfig, ServerThread

    names = ("sll",) if small else ("sll", "rbtree")
    repeats = 2 if small else 3
    corpus_dir = os.path.dirname(os.path.abspath(corpus_pkg.__file__))
    src_root = os.path.dirname(os.path.dirname(corpus_dir))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    rows = []
    config = ServerConfig(
        host=None, unix_path=tempfile.mktemp(suffix=".sock")
    )
    with ServerThread(config) as handle:
        with Client(handle.address) as client:
            for name in names:
                fcl = os.path.join(corpus_dir, f"{name}.fcl")
                source = load_source(name)
                cold = float("inf")
                for _ in range(repeats):
                    t0 = time.perf_counter()
                    proc = subprocess.run(
                        [sys.executable, "-m", "repro", "check", fcl],
                        env=env,
                        capture_output=True,
                    )
                    cold = min(cold, (time.perf_counter() - t0) * 1000)
                    assert proc.returncode == 0, proc.stderr.decode()
                t0 = time.perf_counter()
                first = client.check(source, filename=name)
                warm_first_ms = (time.perf_counter() - t0) * 1000
                assert first.ok, f"bench workload rejected: {name}"
                samples = []
                for _ in range(repeats * 3):
                    t0 = time.perf_counter()
                    client.check(source, filename=name)
                    samples.append((time.perf_counter() - t0) * 1000)
                samples.sort()
                warm = samples[0]
                p50 = samples[len(samples) // 2]
                p99 = samples[min(len(samples) - 1, int(len(samples) * 0.99))]
                rows.append(
                    {
                        "workload": name,
                        "cold_process_ms": round(cold, 3),
                        "warm_first_ms": round(warm_first_ms, 3),
                        "warm_ms": round(warm, 3),
                        "warm_p50_ms": round(p50, 3),
                        "warm_p99_ms": round(p99, 3),
                        "speedup_warm": round(cold / warm, 2) if warm else 0.0,
                    }
                )
    return rows


def bench_erasure(repeats: int = 5) -> List[Dict]:
    """§3.2: guarded vs erased-guard runtime wall-clock; the guarded run's
    reservation-check count is exactly what erasure elides."""
    from .corpus import load_program

    rows = []
    for label, corpus, maker, fn, n in ERASURE_WORKLOADS:
        program = load_program(corpus)
        best = {True: float("inf"), False: float("inf")}
        elided = 0
        for checks in (True, False):
            for _ in range(repeats):
                heap = Heap()
                lst, _ = run_function(
                    program, maker, [n], heap=heap, check_reservations=checks
                )
                t0 = time.perf_counter()
                _, interp = run_function(
                    program, fn, [lst], heap=heap, check_reservations=checks
                )
                best[checks] = min(
                    best[checks], (time.perf_counter() - t0) * 1000
                )
                if checks:
                    elided = interp.stats.reservation_checks
        rows.append(
            {
                "workload": label,
                "checked_ms": round(best[True], 3),
                "erased_ms": round(best[False], 3),
                "reservation_checks_elided": elided,
            }
        )
    return rows


def bench_ir(repeats: int = 5, small: bool = False) -> List[Dict]:
    """Tree-walking interpreter vs the compiled bytecode engine
    (``--engine ir``) on run-heavy corpus workloads.

    Each workload is timed in all four engine × guard-mode configurations
    (min over ``repeats``, after a cold compile whose wall-clock is
    reported separately), and the row carries the compile-time pass
    counters of the erased full-tier module, so a report shows both *how
    fast* the bytecode runs and *why* (calls inlined, loads eliminated,
    checks erased at lowering).
    """
    from .ir.bytecode import compile_program
    from .corpus import load_source

    n_tree = 40 if small else 120
    n_list = 40 if small else 100
    queries = 4 if small else 48
    sums = 4 if small else 20

    def rb_build(program, heap):
        return [("build_tree", [n_tree, 7])]

    def rb_query(program, heap):
        t, _ = run_function(
            program, "build_tree", [n_tree, 7], heap=heap,
            check_reservations=False,
        )
        calls = []
        for i in range(queries):
            if i % 2 == 0:
                calls.append(("tree_size", [t]))
            else:
                calls.append(("rb_contains", [t, (i * 37) % 1000]))
        return calls

    def chain(program, heap):
        # Build once, then traverse repeatedly: the recursive sum is what
        # the chain workload measures, not the allocation-bound build.
        l, _ = run_function(
            program, "make_list", [n_list], heap=heap,
            check_reservations=False,
        )
        return [("sum", [l])] * sums

    rows = []
    for label, corpus, setup in (
        ("rbtree-build", "rbtree", rb_build),
        ("rbtree-query", "rbtree", rb_query),
        ("chain-traverse", "sll", chain),
    ):
        # A fresh parse per workload guarantees the compile is cold.
        program = parse_program(load_source(corpus))
        t0 = time.perf_counter()
        compile_program(program, checked=True, observable=False)
        erased_mod = compile_program(program, checked=False, observable=False)
        compile_ms = (time.perf_counter() - t0) * 1000
        heap = Heap()
        calls = setup(program, heap)
        best: Dict = {}
        for engine in ("tree", "ir"):
            for checks in (True, False):
                key = (engine, checks)
                best[key] = float("inf")
                for _ in range(repeats):
                    t0 = time.perf_counter()
                    for fn, fargs in calls:
                        run_function(
                            program, fn, fargs, heap=heap,
                            check_reservations=checks, engine=engine,
                        )
                    best[key] = min(
                        best[key], (time.perf_counter() - t0) * 1000
                    )
        counters = erased_mod.counters
        rows.append(
            {
                "workload": label,
                "tree_checked_ms": round(best[("tree", True)], 3),
                "tree_erased_ms": round(best[("tree", False)], 3),
                "ir_checked_ms": round(best[("ir", True)], 3),
                "ir_erased_ms": round(best[("ir", False)], 3),
                "compile_ms": round(compile_ms, 3),
                "speedup_checked": round(
                    best[("tree", True)] / best[("ir", True)], 2
                ),
                "speedup_erased": round(
                    best[("tree", False)] / best[("ir", False)], 2
                ),
                "inlined_calls": counters.get("inlined_calls", 0),
                "loads_eliminated": counters.get("loads_eliminated", 0),
                "checks_erased": counters.get("checks_erased", 0),
                "consts_pooled": counters.get("consts_pooled", 0),
                "dests_sunk": counters.get("dests_sunk", 0),
                "licm_hoisted": counters.get("licm_hoisted", 0),
                "tail_calls_looped": counters.get("tail_calls_looped", 0),
                "slots_coalesced": counters.get("slots_coalesced", 0),
                "instructions_emitted": counters.get(
                    "instructions_emitted", 0
                ),
            }
        )
    return rows


def collect(small: bool = False) -> Dict:
    """The full ``repro-bench/1`` document."""
    if small:
        corpus_names = ("sll", "dll", "rbtree")
        chains: Sequence[int] = (5, 20)
        widths: Sequence[int] = (1, 2, 3)
        repeats = 2
    else:
        corpus_names = None
        chains = (5, 20, 50)
        widths = (1, 2, 3, 4)
        repeats = 5
    return {
        "schema": SCHEMA,
        "label": "PR10",
        "corpus": bench_corpus(corpus_names),
        "generated": bench_generated(chains),
        "search": bench_search(widths),
        "erasure": bench_erasure(repeats),
        "ir": bench_ir(repeats, small),
        "pipeline": bench_pipeline(small),
        "modes": bench_modes(small),
        "server": bench_server(small),
    }


def render_table(doc: Dict) -> str:
    lines = []
    lines.append("E2 — corpus check + verify (persistent contexts)")
    lines.append(
        f"{'program':>8s} {'fns':>4s} {'check(ms)':>10s} {'verify(ms)':>11s} "
        f"{'clones':>7s} {'dicts(pers)':>11s} {'dicts(eager)':>13s}"
    )
    for row in doc["corpus"]:
        lines.append(
            f"{row['name']:>8s} {row['functions']:4d} {row['check_ms']:10.1f} "
            f"{row['verify_ms']:11.1f} {row['clones']:7d} "
            f"{row['clone_dicts_persist']:11d} {row['clone_dicts_eager']:13d}"
        )
    lines.append("")
    lines.append("E2 — generated-program scaling")
    lines.append(
        f"{'chain':>6s} {'check(ms)':>10s} {'clones':>7s} {'copies':>7s} "
        f"{'dicts(pers)':>11s} {'dicts(eager)':>13s} {'snap hit/miss':>14s}"
    )
    for row in doc["generated"]:
        copies = (
            row["persist_heap_copies"]
            + row["persist_gamma_copies"]
            + row["persist_tc_copies"]
            + row["persist_tv_copies"]
        )
        lines.append(
            f"{row['chain']:6d} {row['check_ms']:10.1f} {row['clones']:7d} "
            f"{copies:7d} {row['clone_dicts_persist']:11d} "
            f"{row['clone_dicts_eager']:13d} "
            f"{row['snapshot_hits']:6d}/{row['snapshot_misses']:<6d}"
        )
    lines.append("")
    lines.append("E4 — greedy + oracle vs backtracking search")
    lines.append(
        f"{'width':>6s} {'greedy(ms)':>11s} {'search(ms)':>11s} {'states':>8s}"
    )
    for row in doc["search"]:
        lines.append(
            f"{row['width']:6d} {row['greedy_ms']:11.2f} "
            f"{row['search_ms']:11.2f} {row['search_states']:8d}"
        )
    lines.append("")
    lines.append("§3.2 — verified reservation-check erasure")
    lines.append(
        f"{'workload':>14s} {'checked(ms)':>12s} {'erased(ms)':>11s} "
        f"{'checks elided':>14s}"
    )
    for row in doc["erasure"]:
        lines.append(
            f"{row['workload']:>14s} {row['checked_ms']:12.2f} "
            f"{row['erased_ms']:11.2f} {row['reservation_checks_elided']:14d}"
        )
    if doc.get("ir"):
        lines.append("")
        lines.append("bytecode engine — tree interpreter vs --engine ir")
        lines.append(
            f"{'workload':>15s} {'tree chk':>9s} {'ir chk':>8s} "
            f"{'tree ers':>9s} {'ir ers':>8s} {'compile':>8s} "
            f"{'chk x':>6s} {'ers x':>6s} {'inl':>4s} {'rle':>4s} "
            f"{'licm':>5s} {'tco':>4s} {'erased':>7s}"
        )
        for row in doc["ir"]:
            lines.append(
                f"{row['workload']:>15s} {row['tree_checked_ms']:9.1f} "
                f"{row['ir_checked_ms']:8.1f} {row['tree_erased_ms']:9.1f} "
                f"{row['ir_erased_ms']:8.1f} {row['compile_ms']:8.1f} "
                f"{row['speedup_checked']:6.2f} {row['speedup_erased']:6.2f} "
                f"{row['inlined_calls']:4d} {row['loads_eliminated']:4d} "
                f"{row.get('licm_hoisted', 0):5d} "
                f"{row.get('tail_calls_looped', 0):4d} "
                f"{row['checks_erased']:7d}"
            )
    if doc.get("pipeline"):
        lines.append("")
        lines.append("§5 — batch pipeline: serial vs fan-out vs warm cache")
        lines.append(
            f"{'workload':>14s} {'fns':>4s} {'jobs':>5s} {'serial(ms)':>11s} "
            f"{'thr(ms)':>9s} {'par(ms)':>9s} {'cold(ms)':>9s} "
            f"{'warm(ms)':>9s} {'trust(ms)':>10s} {'warm x':>7s} "
            f"{'trust x':>8s}"
        )
        for row in doc["pipeline"]:
            lines.append(
                f"{row['workload']:>14s} {row['functions']:4d} "
                f"{row['jobs']:3d}/{row['cpu_count']:<1d} "
                f"{row['serial_ms']:11.1f} "
                f"{row.get('thread_ms', 0.0):9.1f} "
                f"{row['parallel_ms']:9.1f} "
                f"{row['cold_ms']:9.1f} {row['warm_ms']:9.1f} "
                f"{row['trusted_ms']:10.1f} {row['speedup_warm']:7.1f} "
                f"{row['speedup_trusted']:8.1f}"
            )
    if doc.get("modes"):
        lines.append("")
        lines.append("execution modes — thread pool vs process pool")
        lines.append(
            f"{'config':>12s} {'fns':>4s} {'cold(ms)':>9s} {'warm(ms)':>9s}"
        )
        for row in doc["modes"]:
            lines.append(
                f"{row['config']:>12s} {row['functions']:4d} "
                f"{row['cold_ms']:9.1f} {row['warm_ms']:9.1f}"
            )
    if doc.get("server"):
        lines.append("")
        lines.append("repro serve — warm daemon vs cold process per check")
        lines.append(
            f"{'workload':>9s} {'cold proc(ms)':>14s} {'warm 1st(ms)':>13s} "
            f"{'warm(ms)':>9s} {'p50(ms)':>8s} {'p99(ms)':>8s} {'speedup':>8s}"
        )
        for row in doc["server"]:
            lines.append(
                f"{row['workload']:>9s} {row['cold_process_ms']:14.1f} "
                f"{row['warm_first_ms']:13.2f} {row['warm_ms']:9.3f} "
                f"{row.get('warm_p50_ms', 0.0):8.3f} "
                f"{row.get('warm_p99_ms', 0.0):8.3f} "
                f"{row['speedup_warm']:7.1f}x"
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Report comparison (``repro bench --compare``)
# ---------------------------------------------------------------------------

COMPARE_SCHEMA = "repro-bench-compare/1"

#: Section name -> the row field that identifies a row across runs.
SECTION_KEYS = {
    "corpus": "name",
    "generated": "chain",
    "search": "width",
    "erasure": "workload",
    "ir": "workload",
    "pipeline": "workload",
    "modes": "config",
    "server": "workload",
}


def compare_docs(
    old: Dict, new: Dict, threshold: float = 50.0, min_ms: float = 1.0
) -> Dict:
    """Diff two ``repro-bench/1`` documents metric by metric.

    Rows are matched per section by their key field (program name, chain
    length, ...); rows or sections present in only one document are
    skipped, so reports from different versions stay comparable.  Only
    wall-clock metrics (``*_ms``) can flag a regression: a metric
    regresses when it grew by more than ``threshold`` percent AND either
    side is at least ``min_ms`` (sub-millisecond rows are pure timer
    noise).  Counter-like fields are deterministic and diffed exactly,
    informationally.
    """
    for doc, tag in ((old, "old"), (new, "new")):
        if doc.get("schema") != SCHEMA:
            raise ValueError(
                f"{tag} report has schema {doc.get('schema')!r}, want {SCHEMA!r}"
            )
    metrics: List[Dict] = []
    for section, keyfield in SECTION_KEYS.items():
        old_rows = {
            str(r.get(keyfield)): r for r in old.get(section, [])
        }
        for row in new.get(section, []):
            old_row = old_rows.get(str(row.get(keyfield)))
            if old_row is None:
                continue
            for metric in sorted(row):
                if metric == keyfield or metric not in old_row:
                    continue
                new_val, old_val = row[metric], old_row[metric]
                if not isinstance(new_val, (int, float)) or not isinstance(
                    old_val, (int, float)
                ):
                    continue
                timing = metric.endswith("_ms")
                delta = (
                    (new_val - old_val) / old_val * 100.0 if old_val else 0.0
                )
                metrics.append(
                    {
                        "section": section,
                        "row": str(row.get(keyfield)),
                        "metric": metric,
                        "old": old_val,
                        "new": new_val,
                        "delta_pct": round(delta, 1),
                        "regression": bool(
                            timing
                            and delta > threshold
                            and max(old_val, new_val) >= min_ms
                        ),
                    }
                )
    return {
        "schema": COMPARE_SCHEMA,
        "old_label": old.get("label"),
        "new_label": new.get("label"),
        "threshold_pct": threshold,
        "metrics": metrics,
        "regressions": [m for m in metrics if m["regression"]],
    }


def render_compare(cmp: Dict) -> str:
    lines = [
        f"bench compare: {cmp['old_label']} -> {cmp['new_label']} "
        f"(regression threshold +{cmp['threshold_pct']:g}% on *_ms)"
    ]
    lines.append(
        f"{'section':>9s} {'row':>14s} {'metric':>16s} {'old':>10s} "
        f"{'new':>10s} {'delta':>8s}"
    )
    for m in cmp["metrics"]:
        if not m["metric"].endswith("_ms") and m["old"] == m["new"]:
            continue  # unchanged counters: noise-free, not worth a line
        flag = "  << REGRESSION" if m["regression"] else ""
        lines.append(
            f"{m['section']:>9s} {m['row']:>14s} {m['metric']:>16s} "
            f"{m['old']:10g} {m['new']:10g} {m['delta_pct']:+7.1f}%{flag}"
        )
    count = len(cmp["regressions"])
    lines.append(
        f"{count} regression(s)" if count else "no wall-clock regressions"
    )
    return "\n".join(lines)
