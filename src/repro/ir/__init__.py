"""Compilation of checked FCL to a basic-block IR and bytecode.

Pipeline: ``lang/ast.py`` → :mod:`repro.ir.lower` (lowering with
lowering-time guard erasure) → :mod:`repro.ir.passes` (PassManager:
inlining, simplification, redundant-load elimination, mem2var, DCE) →
:mod:`repro.ir.bytecode` (flat linear bytecode) →
:mod:`repro.ir.engine` (the dispatch loop, protocol-compatible with the
tree interpreter).

Select it at the surface with ``repro run --engine ir`` (or
``engine="ir"`` through :func:`repro.api.run`, the ``run`` RPC, and
``runtime.machine.run_function``/``Machine``).
"""

from .bytecode import CompiledModule, compile_program
from .engine import IREngine
from .lower import lower_function
from .nodes import BasicBlock, Instr, IRFunction, render_function
from .passes import IRModule, PassManager, default_pipeline

__all__ = [
    "BasicBlock",
    "CompiledModule",
    "IREngine",
    "IRFunction",
    "IRModule",
    "Instr",
    "PassManager",
    "compile_program",
    "default_pipeline",
    "lower_function",
    "render_function",
]
