"""Compilation of checked FCL to a basic-block IR and bytecode.

Pipeline: ``lang/ast.py`` → :mod:`repro.ir.lower` (lowering with
lowering-time guard erasure) → :mod:`repro.ir.passes` (PassManager:
inlining, simplification, mem2var, loop optimization, global
redundant-load elimination, DCE, register allocation) →
:mod:`repro.ir.bytecode` (flat linear bytecode, cached per program and
in a shared cross-program LRU) → :mod:`repro.ir.engine` (the dispatch
loop, protocol-compatible with the tree interpreter).

Select it at the surface with ``repro run --engine ir`` (or
``engine="ir"`` through :func:`repro.api.run`, the ``run`` RPC — where
it is the default — and ``runtime.machine.run_function``/``Machine``).
``repro disasm FILE`` dumps the bytecode with per-pass attribution.
"""

from .bytecode import (
    CompiledModule,
    build_module,
    clear_compile_cache,
    compile_cache_entries,
    compile_program,
    set_compile_cache_limit,
)
from .engine import IREngine
from .lower import lower_function
from .nodes import BasicBlock, Instr, IRFunction, render_function
from .passes import IRModule, PassManager, default_pipeline

__all__ = [
    "BasicBlock",
    "CompiledModule",
    "IREngine",
    "IRFunction",
    "IRModule",
    "Instr",
    "PassManager",
    "build_module",
    "clear_compile_cache",
    "compile_cache_entries",
    "compile_program",
    "default_pipeline",
    "lower_function",
    "render_function",
    "set_compile_cache_limit",
]
