"""Control-flow-graph analyses over the basic-block IR.

Successors come straight off block terminators; everything else
(reachability, predecessor maps, slot liveness) is derived on demand —
the functions here are pure queries so passes can call them after every
mutation without cache-invalidation protocols.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .nodes import BasicBlock, IRFunction, instr_uses


def successors(block: BasicBlock) -> Tuple[int, ...]:
    term = block.term
    if term is None:
        return ()
    if term.op == "jmp":
        return (term.args[0],)
    if term.op == "br":
        if term.args[1] == term.args[2]:
            return (term.args[1],)
        return (term.args[1], term.args[2])
    return ()  # ret


def predecessors(fn: IRFunction) -> Dict[int, List[int]]:
    preds: Dict[int, List[int]] = {b.label: [] for b in fn.blocks}
    for block in fn.blocks:
        for succ in successors(block):
            preds[succ].append(block.label)
    return preds


def reachable_labels(fn: IRFunction) -> Set[int]:
    """Labels reachable from the entry block."""
    if not fn.blocks:
        return set()
    blocks = fn.block_map()
    seen: Set[int] = set()
    stack = [fn.blocks[0].label]
    while stack:
        label = stack.pop()
        if label in seen:
            continue
        seen.add(label)
        for succ in successors(blocks[label]):
            if succ not in seen:
                stack.append(succ)
    return seen


def remove_unreachable(fn: IRFunction) -> bool:
    """Drop blocks the entry can never reach.  Returns True on change."""
    keep = reachable_labels(fn)
    if len(keep) == len(fn.blocks):
        return False
    fn.blocks = [b for b in fn.blocks if b.label in keep]
    return True


def block_use_def(block: BasicBlock) -> Tuple[Set[int], Set[int]]:
    """(upward-exposed uses, defined slots) for one block."""
    uses: Set[int] = set()
    defs: Set[int] = set()
    instrs = list(block.instrs)
    if block.term is not None:
        instrs.append(block.term)
    for ins in instrs:
        for slot in instr_uses(ins):
            if slot not in defs:
                uses.add(slot)
        if ins.dest is not None:
            defs.add(ins.dest)
    return uses, defs


def liveness(fn: IRFunction) -> Tuple[Dict[int, Set[int]], Dict[int, Set[int]]]:
    """Per-block live-in / live-out slot sets (backward dataflow to a
    fixpoint)."""
    use: Dict[int, Set[int]] = {}
    define: Dict[int, Set[int]] = {}
    for block in fn.blocks:
        use[block.label], define[block.label] = block_use_def(block)
    live_in: Dict[int, Set[int]] = {b.label: set() for b in fn.blocks}
    live_out: Dict[int, Set[int]] = {b.label: set() for b in fn.blocks}
    succs = {b.label: successors(b) for b in fn.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(fn.blocks):
            label = block.label
            out: Set[int] = set()
            for succ in succs[label]:
                out |= live_in.get(succ, set())
            new_in = use[label] | (out - define[label])
            if out != live_out[label] or new_in != live_in[label]:
                live_out[label] = out
                live_in[label] = new_in
                changed = True
    return live_in, live_out
