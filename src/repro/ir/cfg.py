"""Control-flow-graph analyses over the basic-block IR.

Successors come straight off block terminators; everything else
(reachability, predecessor maps, slot liveness) is derived on demand —
the functions here are pure queries so passes can call them after every
mutation without cache-invalidation protocols.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .nodes import BasicBlock, IRFunction, instr_uses


def successors(block: BasicBlock) -> Tuple[int, ...]:
    term = block.term
    if term is None:
        return ()
    if term.op == "jmp":
        return (term.args[0],)
    if term.op == "br":
        if term.args[1] == term.args[2]:
            return (term.args[1],)
        return (term.args[1], term.args[2])
    return ()  # ret


def predecessors(fn: IRFunction) -> Dict[int, List[int]]:
    preds: Dict[int, List[int]] = {b.label: [] for b in fn.blocks}
    for block in fn.blocks:
        for succ in successors(block):
            preds[succ].append(block.label)
    return preds


def reachable_labels(fn: IRFunction) -> Set[int]:
    """Labels reachable from the entry block."""
    if not fn.blocks:
        return set()
    blocks = fn.block_map()
    seen: Set[int] = set()
    stack = [fn.blocks[0].label]
    while stack:
        label = stack.pop()
        if label in seen:
            continue
        seen.add(label)
        for succ in successors(blocks[label]):
            if succ not in seen:
                stack.append(succ)
    return seen


def remove_unreachable(fn: IRFunction) -> bool:
    """Drop blocks the entry can never reach.  Returns True on change."""
    keep = reachable_labels(fn)
    if len(keep) == len(fn.blocks):
        return False
    fn.blocks = [b for b in fn.blocks if b.label in keep]
    return True


def dominators(fn: IRFunction) -> Dict[int, Set[int]]:
    """label → set of labels that dominate it (every path from entry
    passes through them; reflexive).  Classic iterative dataflow over the
    reachable subgraph — unreachable blocks are absent from the result."""
    reachable = reachable_labels(fn)
    if not reachable:
        return {}
    entry = fn.blocks[0].label
    preds = predecessors(fn)
    dom: Dict[int, Set[int]] = {entry: {entry}}
    rest = [b.label for b in fn.blocks if b.label in reachable and b.label != entry]
    for label in rest:
        dom[label] = set(reachable)
    changed = True
    while changed:
        changed = False
        for label in rest:
            new = set(reachable)
            had_pred = False
            for p in preds[label]:
                if p in dom:
                    new &= dom[p]
                    had_pred = True
            if not had_pred:
                new = set()
            new.add(label)
            if new != dom[label]:
                dom[label] = new
                changed = True
    return dom


class Loop:
    """One natural loop: a header plus every block that can reach a back
    edge (``tail → header`` where the header dominates the tail) without
    leaving through the header.  Back edges sharing a header are merged
    into one loop."""

    __slots__ = ("header", "body", "tails")

    def __init__(self, header: int):
        self.header = header
        self.body: Set[int] = {header}
        self.tails: Set[int] = set()


def natural_loops(fn: IRFunction) -> List[Loop]:
    """Discover natural loops on the reachable CFG, innermost-last by
    body size (callers that hoist outermost-first should iterate as
    returned)."""
    dom = dominators(fn)
    preds = predecessors(fn)
    loops: Dict[int, Loop] = {}
    for block in fn.blocks:
        if block.label not in dom:
            continue
        for succ in successors(block):
            if succ in dom[block.label]:  # back edge block → succ
                loop = loops.get(succ)
                if loop is None:
                    loop = loops[succ] = Loop(succ)
                loop.tails.add(block.label)
                # Walk predecessors from the tail up to the header.
                stack = [block.label]
                while stack:
                    label = stack.pop()
                    if label in loop.body:
                        continue
                    loop.body.add(label)
                    for p in preds.get(label, ()):
                        if p in dom:  # reachable preds only
                            stack.append(p)
    return sorted(loops.values(), key=lambda lp: len(lp.body), reverse=True)


def block_use_def(block: BasicBlock) -> Tuple[Set[int], Set[int]]:
    """(upward-exposed uses, defined slots) for one block."""
    uses: Set[int] = set()
    defs: Set[int] = set()
    instrs = list(block.instrs)
    if block.term is not None:
        instrs.append(block.term)
    for ins in instrs:
        for slot in instr_uses(ins):
            if slot not in defs:
                uses.add(slot)
        if ins.dest is not None:
            defs.add(ins.dest)
    return uses, defs


def liveness(fn: IRFunction) -> Tuple[Dict[int, Set[int]], Dict[int, Set[int]]]:
    """Per-block live-in / live-out slot sets (backward dataflow to a
    fixpoint)."""
    use: Dict[int, Set[int]] = {}
    define: Dict[int, Set[int]] = {}
    for block in fn.blocks:
        use[block.label], define[block.label] = block_use_def(block)
    live_in: Dict[int, Set[int]] = {b.label: set() for b in fn.blocks}
    live_out: Dict[int, Set[int]] = {b.label: set() for b in fn.blocks}
    succs = {b.label: successors(b) for b in fn.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(fn.blocks):
            label = block.label
            out: Set[int] = set()
            for succ in succs[label]:
                out |= live_in.get(succ, set())
            new_in = use[label] | (out - define[label])
            if out != live_out[label] or new_in != live_in[label]:
                live_out[label] = out
                live_in[label] = new_in
                changed = True
    return live_in, live_out
