"""The bytecode execution engine.

:class:`IREngine` is a drop-in replacement for
:class:`repro.runtime.machine.Interpreter`: it exposes the same
``call(name, args)`` generator protocol (yielding ``(EV_STEP,)`` /
``(EV_SEND, struct, root, live)`` / ``(EV_RECV, tyname)`` and resuming
with the rendezvous value), the same ``stats``/``reservation`` surface,
and raises the same exceptions with the same messages — so ``Machine``,
``run_function``, schedulers, tracing, and step budgets all work
unchanged with ``engine="ir"``.

Differences from the tree interpreter, by design:

* ``stats.steps`` counts bytecode instructions retired, not AST nodes
  visited (budgets are engine-relative).
* The step budget is enforced *inside* the dispatch loop at control-flow
  instructions — every loop iteration and call crosses one — instead of
  by an external driver, raising :class:`StepLimitExceeded` directly.
* When preemptive, the engine yields at basic-block boundaries rather
  than per AST node.  Scheduling decisions stay deterministic for a fixed
  scheduler because the yield points are a pure function of the compiled
  code.
* Calls use an explicit frame stack, so deep FCL recursion never hits the
  Python recursion limit.
"""

from __future__ import annotations

from typing import Generator, Iterable, List, Set, Tuple

from ..lang import ast
from ..runtime.disconnect import efficient_disconnected, naive_disconnected
from ..runtime.heap import Heap, HeapError
from ..runtime.machine import (
    EV_RECV,
    EV_SEND,
    EV_STEP,
    MachineError,
    ReservationViolation,
    StepLimitExceeded,
    ThreadStats,
)
from ..runtime.values import NONE, UNIT, Loc, RuntimeValue
from ..telemetry import registry as _telemetry
from .bytecode import (
    OP_ADD, OP_AND, OP_ASLOC, OP_BR, OP_BREQ, OP_BRGE, OP_BRGT, OP_BRLE,
    OP_BRLT, OP_BRNE, OP_BRNONE, OP_BRSOME, OP_CALL, OP_CALL1, OP_CALL2,
    OP_CHECK, OP_CONST,
    OP_DISC, OP_DIV, OP_EQ, OP_GE, OP_GT, OP_ISNONE, OP_ISSOME, OP_JMP,
    OP_LE, OP_LOAD, OP_LOADV, OP_LT, OP_MOD, OP_MOV, OP_MUL, OP_NE, OP_NEG,
    OP_NEW, OP_NOT, OP_OR, OP_RECV, OP_RET, OP_SEND, OP_SENDC, OP_SLOAD,
    OP_STORE, OP_STOREV, OP_SUB, OP_TLOAD, OP_TSTORE,
    compile_program,
)

_STEP_EVENT = (EV_STEP,)


class IREngine:
    """Executes compiled FCL bytecode for one thread."""

    def __init__(
        self,
        program: ast.Program,
        heap: Heap,
        reservation: Set[Loc],
        check_reservations: bool = True,
        disconnect: str = "efficient",
        preemptive: bool = False,
        max_steps: int = None,
    ):
        self.program = program
        self.heap = heap
        self.reservation = reservation
        self.check_reservations = check_reservations
        self.preemptive = preemptive
        self.max_steps = max_steps
        self.stats = ThreadStats()
        if disconnect == "efficient":
            self._disconnected = efficient_disconnected
        elif disconnect == "naive":
            self._disconnected = naive_disconnected
        else:
            raise ValueError(f"unknown disconnect implementation {disconnect!r}")
        # Guard erasure happened at lowering: the erased module simply has
        # no check instructions.  A tracer on the heap selects the
        # observable tier so heap-event traces stay comparable with the
        # tree interpreter.
        self._module = compile_program(
            program,
            checked=check_reservations,
            observable=heap.tracer is not None,
        )
        tel = _telemetry()
        if tel.enabled:
            tel.inc("machine.engine.selected.ir")
            tel.inc(
                "machine.guard_mode.checked"
                if check_reservations
                else "machine.guard_mode.erased"
            )

    def call(
        self, name: str, args: Iterable[RuntimeValue]
    ) -> Generator[Tuple, RuntimeValue, RuntimeValue]:
        fdef = self.program.func(name)  # unknown-function parity
        func = self._module.funcs[name]
        args = list(args)
        if len(args) != len(fdef.params):
            raise MachineError(
                f"{name} expects {len(fdef.params)} arguments, got {len(args)}"
            )

        heap = self.heap
        objects = heap._objects
        tracer = heap.tracer
        read_field = heap.read_field
        write_field = heap.write_field
        reservation = self.reservation
        stats = self.stats
        preemptive = self.preemptive
        max_steps = self.max_steps
        disconnected = self._disconnected
        # One flag check per control-flow instruction on the fast path:
        # budget enforcement and preemption points share the slow branch.
        slow = preemptive or max_steps is not None

        base_steps = stats.steps
        base_checks = stats.reservation_checks
        base_cost = stats.reservation_cost
        steps = 0
        checks = 0
        cost = 0
        hreads = 0

        frame = func.blank[:]
        frame[: len(args)] = args
        code = func.code
        pc = 0
        stack: List[Tuple] = []

        try:
            while True:
                ins = code[pc]
                op = ins[0]
                pc += 1
                steps += 1
                if op == OP_MOV:
                    frame[ins[1]] = frame[ins[2]]
                elif op == OP_CONST:
                    frame[ins[1]] = ins[2]
                elif op == OP_LOAD:
                    base = frame[ins[2]]
                    if tracer is None:
                        o = objects.get(base)
                        if o is None:
                            raise HeapError(f"dangling location {base}")
                        hreads += 1
                        frame[ins[1]] = o.fields[ins[3]]
                    else:
                        frame[ins[1]] = read_field(base, ins[3])
                elif op == OP_LOADV:
                    # asloc fused into the load it guards: identical check,
                    # identical error, one dispatch.
                    base = frame[ins[2]]
                    if type(base) is not Loc:
                        raise MachineError(
                            f"expected an object reference, got {base!r} "
                            f"(did a none reach a non-nullable position?)"
                        )
                    if tracer is None:
                        o = objects.get(base)
                        if o is None:
                            raise HeapError(f"dangling location {base}")
                        hreads += 1
                        frame[ins[1]] = o.fields[ins[3]]
                    else:
                        frame[ins[1]] = read_field(base, ins[3])
                elif op == OP_RET:
                    value = frame[ins[1]]
                    if not stack:
                        # Straight-line functions never reach a control op,
                        # so the budget must also bind at the top-level
                        # return (once per run — off the hot path).
                        if (max_steps is not None
                                and base_steps + steps > max_steps):
                            raise StepLimitExceeded(
                                f"step budget exceeded ({max_steps} steps)"
                            )
                        return value
                    code, frame, pc, dest = stack.pop()
                    frame[dest] = value
                elif op == OP_CALL1:
                    if slow:
                        if (max_steps is not None
                                and base_steps + steps > max_steps):
                            raise StepLimitExceeded(
                                f"step budget exceeded ({max_steps} steps)"
                            )
                        if preemptive:
                            stats.steps = base_steps + steps
                            stats.reservation_checks = base_checks + checks
                            stats.reservation_cost = base_cost + cost
                            if hreads:
                                heap.reads += hreads
                                hreads = 0
                            yield _STEP_EVENT
                    callee = ins[2]
                    new_frame = callee.blank[:]
                    new_frame[0] = frame[ins[3]]
                    stack.append((code, frame, pc, ins[1]))
                    code = callee.code
                    frame = new_frame
                    pc = 0
                elif op == OP_CALL2:
                    if slow:
                        if (max_steps is not None
                                and base_steps + steps > max_steps):
                            raise StepLimitExceeded(
                                f"step budget exceeded ({max_steps} steps)"
                            )
                        if preemptive:
                            stats.steps = base_steps + steps
                            stats.reservation_checks = base_checks + checks
                            stats.reservation_cost = base_cost + cost
                            if hreads:
                                heap.reads += hreads
                                hreads = 0
                            yield _STEP_EVENT
                    callee = ins[2]
                    new_frame = callee.blank[:]
                    new_frame[0] = frame[ins[3]]
                    new_frame[1] = frame[ins[4]]
                    stack.append((code, frame, pc, ins[1]))
                    code = callee.code
                    frame = new_frame
                    pc = 0
                elif op >= OP_BRLT:  # fused compare-and-branch family
                    if slow:
                        if (max_steps is not None
                                and base_steps + steps > max_steps):
                            raise StepLimitExceeded(
                                f"step budget exceeded ({max_steps} steps)"
                            )
                        if preemptive:
                            stats.steps = base_steps + steps
                            stats.reservation_checks = base_checks + checks
                            stats.reservation_cost = base_cost + cost
                            if hreads:
                                heap.reads += hreads
                                hreads = 0
                            yield _STEP_EVENT
                    if op == OP_BRLT:
                        pc = ins[3] if frame[ins[1]] < frame[ins[2]] else ins[4]
                    elif op == OP_BRGT:
                        pc = ins[3] if frame[ins[1]] > frame[ins[2]] else ins[4]
                    elif op == OP_BRNONE:
                        pc = ins[2] if frame[ins[1]] is NONE else ins[3]
                    elif op == OP_BRSOME:
                        pc = ins[2] if frame[ins[1]] is not NONE else ins[3]
                    elif op == OP_BRLE:
                        pc = ins[3] if frame[ins[1]] <= frame[ins[2]] else ins[4]
                    elif op == OP_BRGE:
                        pc = ins[3] if frame[ins[1]] >= frame[ins[2]] else ins[4]
                    elif op == OP_BREQ:
                        pc = ins[3] if frame[ins[1]] == frame[ins[2]] else ins[4]
                    else:  # OP_BRNE
                        pc = ins[3] if frame[ins[1]] != frame[ins[2]] else ins[4]
                elif op == OP_BR:
                    if slow:
                        if (max_steps is not None
                                and base_steps + steps > max_steps):
                            raise StepLimitExceeded(
                                f"step budget exceeded ({max_steps} steps)"
                            )
                        if preemptive:
                            stats.steps = base_steps + steps
                            stats.reservation_checks = base_checks + checks
                            stats.reservation_cost = base_cost + cost
                            if hreads:
                                heap.reads += hreads
                                hreads = 0
                            yield _STEP_EVENT
                    pc = ins[2] if frame[ins[1]] else ins[3]
                elif op == OP_JMP:
                    if slow:
                        if (max_steps is not None
                                and base_steps + steps > max_steps):
                            raise StepLimitExceeded(
                                f"step budget exceeded ({max_steps} steps)"
                            )
                        if preemptive:
                            stats.steps = base_steps + steps
                            stats.reservation_checks = base_checks + checks
                            stats.reservation_cost = base_cost + cost
                            if hreads:
                                heap.reads += hreads
                                hreads = 0
                            yield _STEP_EVENT
                    pc = ins[1]
                elif op == OP_ADD:
                    frame[ins[1]] = frame[ins[2]] + frame[ins[3]]
                elif op == OP_SUB:
                    frame[ins[1]] = frame[ins[2]] - frame[ins[3]]
                elif op == OP_MUL:
                    frame[ins[1]] = frame[ins[2]] * frame[ins[3]]
                elif op == OP_DIV:
                    right = frame[ins[3]]
                    if right == 0:
                        raise MachineError("division by zero")
                    frame[ins[1]] = frame[ins[2]] // right
                elif op == OP_MOD:
                    right = frame[ins[3]]
                    if right == 0:
                        raise MachineError("modulo by zero")
                    frame[ins[1]] = frame[ins[2]] % right
                elif op == OP_LT:
                    frame[ins[1]] = frame[ins[2]] < frame[ins[3]]
                elif op == OP_GT:
                    frame[ins[1]] = frame[ins[2]] > frame[ins[3]]
                elif op == OP_LE:
                    frame[ins[1]] = frame[ins[2]] <= frame[ins[3]]
                elif op == OP_GE:
                    frame[ins[1]] = frame[ins[2]] >= frame[ins[3]]
                elif op == OP_EQ:
                    frame[ins[1]] = frame[ins[2]] == frame[ins[3]]
                elif op == OP_NE:
                    frame[ins[1]] = frame[ins[2]] != frame[ins[3]]
                elif op == OP_AND:
                    frame[ins[1]] = bool(frame[ins[2]]) and bool(frame[ins[3]])
                elif op == OP_OR:
                    frame[ins[1]] = bool(frame[ins[2]]) or bool(frame[ins[3]])
                elif op == OP_NOT:
                    frame[ins[1]] = not frame[ins[2]]
                elif op == OP_NEG:
                    frame[ins[1]] = -frame[ins[2]]
                elif op == OP_ISNONE:
                    frame[ins[1]] = frame[ins[2]] is NONE
                elif op == OP_ISSOME:
                    frame[ins[1]] = frame[ins[2]] is not NONE
                elif op == OP_CHECK:
                    value = frame[ins[1]]
                    if type(value) is Loc:
                        checks += 1
                        cost += 1
                        if value not in reservation:
                            raise ReservationViolation(
                                f"access to {value} outside the thread's "
                                f"reservation"
                            )
                elif op == OP_ASLOC:
                    value = frame[ins[1]]
                    if type(value) is not Loc:
                        raise MachineError(
                            f"expected an object reference, got {value!r} "
                            f"(did a none reach a non-nullable position?)"
                        )
                elif op == OP_STORE:
                    write_field(frame[ins[1]], ins[2], frame[ins[3]])
                elif op == OP_STOREV:
                    # asloc fused into the store it guards.
                    base = frame[ins[1]]
                    if type(base) is not Loc:
                        raise MachineError(
                            f"expected an object reference, got {base!r} "
                            f"(did a none reach a non-nullable position?)"
                        )
                    write_field(base, ins[2], frame[ins[3]])
                elif op == OP_NEW:
                    names = ins[3]
                    slots = ins[4]
                    inits = {}
                    i = 0
                    for fieldname in names:
                        inits[fieldname] = frame[slots[i]]
                        i += 1
                    loc = heap.alloc(ins[2], inits)
                    reservation.add(loc)
                    frame[ins[1]] = loc
                elif op == OP_CALL:
                    if slow:
                        if (max_steps is not None
                                and base_steps + steps > max_steps):
                            raise StepLimitExceeded(
                                f"step budget exceeded ({max_steps} steps)"
                            )
                        if preemptive:
                            stats.steps = base_steps + steps
                            stats.reservation_checks = base_checks + checks
                            stats.reservation_cost = base_cost + cost
                            if hreads:
                                heap.reads += hreads
                                hreads = 0
                            yield _STEP_EVENT
                    callee = ins[2]
                    argslots = ins[3]
                    new_frame = callee.blank[:]
                    i = 0
                    for slot in argslots:
                        new_frame[i] = frame[slot]
                        i += 1
                    stack.append((code, frame, pc, ins[1]))
                    code = callee.code
                    frame = new_frame
                    pc = 0
                elif op == OP_SEND or op == OP_SENDC:
                    root = frame[ins[2]]
                    live = heap.live_set(root)
                    if op == OP_SENDC:
                        checks += 1
                        cost += len(live)
                        if not live <= reservation:
                            raise ReservationViolation(
                                "send: the live set leaks outside the "
                                "sender's reservation"
                            )
                    stats.sends += 1
                    stats.steps = base_steps + steps
                    stats.reservation_checks = base_checks + checks
                    stats.reservation_cost = base_cost + cost
                    if hreads:
                        heap.reads += hreads
                        hreads = 0
                    yield (EV_SEND, heap.obj(root).struct.name, root, live)
                    frame[ins[1]] = UNIT
                elif op == OP_RECV:
                    stats.recvs += 1
                    stats.steps = base_steps + steps
                    stats.reservation_checks = base_checks + checks
                    stats.reservation_cost = base_cost + cost
                    if hreads:
                        heap.reads += hreads
                        hreads = 0
                    root = yield (EV_RECV, ins[2])
                    frame[ins[1]] = root
                elif op == OP_DISC:
                    result, dstats = disconnected(
                        heap, frame[ins[2]], frame[ins[3]]
                    )
                    stats.disconnect_checks.append(dstats)
                    frame[ins[1]] = result
                elif op == OP_TLOAD:
                    # An optimized-away load: the value lives in a slot,
                    # but the read event (and the logical read) happens
                    # here, exactly where the original load sat.
                    value = frame[ins[4]]
                    hreads += 1
                    tracer.record(
                        "read", frame[ins[2]], fieldname=ins[3], value=value
                    )
                    frame[ins[1]] = value
                elif op == OP_TSTORE:
                    # A promoted store: dest is the register that carries
                    # the field; its current value is the event's `old`.
                    value = frame[ins[4]]
                    heap.writes += 1
                    tracer.record(
                        "write", frame[ins[2]], fieldname=ins[3],
                        value=value, old=frame[ins[1]],
                    )
                    frame[ins[1]] = value
                elif op == OP_SLOAD:
                    # Silent preheader read: no trace event, no read count
                    # (the in-loop tload it feeds does the counting).
                    base = frame[ins[2]]
                    o = objects.get(base)
                    if o is None:
                        raise HeapError(f"dangling location {base}")
                    frame[ins[1]] = o.fields[ins[3]]
                else:
                    raise MachineError(f"unknown opcode {op}")
        finally:
            stats.steps = base_steps + steps
            stats.reservation_checks = base_checks + checks
            stats.reservation_cost = base_cost + cost
            if hreads:
                heap.reads += hreads
            tel = _telemetry()
            if tel.enabled:
                tel.inc("machine.engine.instructions", steps)
