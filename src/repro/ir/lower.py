"""AST → IR lowering, with guard erasure decided here (not at dispatch).

The lowering mirrors the tree interpreter's evaluation order *exactly* —
operand evaluation, `as-loc` coercions, reservation guards, heap reads and
writes happen in the same sequence — so a checked IR run produces the same
heap-event trace and the same ``reservation_checks`` count as
``runtime.machine.Interpreter``, and ``--paranoid`` can byte-compare the
two engines' traces.

Guard sites replicate fig 7's pervasive checks:

* function entry: one ``check`` per parameter (the interpreter guards each
  argument while binding it);
* every variable use (``check`` on the variable's slot before the value is
  captured);
* field reads: ``asloc`` + ``check`` on the base, then ``check`` on a
  location result;
* field writes: ``asloc`` on the base *before* the value is evaluated
  (the interpreter's as-loc error preempts value side effects), then
  ``check`` base / ``check`` value;
* ``if disconnected``: ``asloc`` + ``check`` on both operands;
* ``send``: the live-set containment check is part of the send opcode and
  is selected at flatten time (``SENDC`` vs ``SEND``).

In erased mode none of these ``check`` instructions are emitted — the
would-be sites are only counted (``checks_erased``), which is the §3.2
erasure argument applied at compile time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..lang import ast
from ..runtime.machine import MachineError
from ..runtime.values import NONE, UNIT
from .nodes import BasicBlock, Instr, IRFunction


class FunctionLowerer:
    def __init__(self, program: ast.Program, fdef: ast.FuncDef, checked: bool):
        self.program = program
        self.fdef = fdef
        self.checked = checked
        self.checks_erased = 0
        self.fn = IRFunction(fdef.name, len(fdef.params))
        self.cur = self.fn.new_block()
        # Compile-time scope stack: FCL has no closures, so lexical name →
        # slot resolution here is exactly the interpreter's Env at run time.
        self.scopes: List[Dict[str, int]] = [
            {p.name: i for i, p in enumerate(fdef.params)}
        ]

    # -- plumbing ----------------------------------------------------------

    def emit(self, op: str, dest: Optional[int] = None, *args) -> None:
        self.cur.instrs.append(Instr(op, dest, *args))

    def terminate(self, op: str, *args) -> None:
        if self.cur.term is None:
            self.cur.term = Instr(op, None, *args)

    def start_block(self, block: BasicBlock) -> None:
        self.cur = block

    def lookup(self, name: str) -> int:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        raise MachineError(f"unbound variable {name!r} at run time")

    def lookup_assign(self, name: str) -> int:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        raise MachineError(f"assignment to unbound variable {name!r}")

    def guard(self, slot: int) -> None:
        if self.checked:
            self.emit("check", None, slot)
        else:
            self.checks_erased += 1

    def const(self, value) -> int:
        t = self.fn.new_slot()
        self.emit("const", t, value)
        return t

    # -- entry point -------------------------------------------------------

    def run(self) -> Tuple[IRFunction, int]:
        for i in range(len(self.fdef.params)):
            self.guard(i)
        result = self.lower(self.fdef.body)
        self.terminate("ret", result)
        return self.fn, self.checks_erased

    # -- expression lowering ----------------------------------------------

    def lower(self, node: ast.Expr) -> int:
        if isinstance(node, ast.IntLit):
            return self.const(node.value)
        if isinstance(node, ast.BoolLit):
            return self.const(node.value)
        if isinstance(node, ast.UnitLit):
            return self.const(UNIT)
        if isinstance(node, ast.NoneLit):
            return self.const(NONE)
        if isinstance(node, ast.VarRef):
            slot = self.lookup(node.name)
            self.guard(slot)
            # Capture the value now: later assignments to the variable must
            # not retroactively change this use (the interpreter reads the
            # environment at evaluation time).
            t = self.fn.new_slot()
            self.emit("mov", t, slot)
            return t
        if isinstance(node, ast.SomeExpr):
            return self.lower(node.inner)
        if isinstance(node, ast.IsNone):
            s = self.lower(node.inner)
            t = self.fn.new_slot()
            self.emit("isnone", t, s)
            return t
        if isinstance(node, ast.IsSome):
            s = self.lower(node.inner)
            t = self.fn.new_slot()
            self.emit("issome", t, s)
            return t

        if isinstance(node, ast.Block):
            self.scopes.append({})
            try:
                result: Optional[int] = None
                for index, entry in enumerate(node.body):
                    value = self.lower(entry)
                    if index == len(node.body) - 1 and not isinstance(
                        entry, ast.LetBind
                    ):
                        result = value
                return result if result is not None else self.const(UNIT)
            finally:
                self.scopes.pop()

        if isinstance(node, ast.LetBind):
            value = self.lower(node.init)
            slot = self.fn.new_slot()
            self.scopes[-1][node.name] = slot
            self.emit("mov", slot, value)
            return self.const(UNIT)

        if isinstance(node, ast.LetSome):
            scrutinee = self.lower(node.scrutinee)
            cond = self.fn.new_slot()
            self.emit("isnone", cond, scrutinee)
            then_block = BasicBlock(self.fn.new_label())
            else_block = BasicBlock(self.fn.new_label())
            join = BasicBlock(self.fn.new_label())
            result = self.fn.new_slot()
            self.terminate("br", cond, else_block.label, then_block.label)

            self.fn.blocks.append(then_block)
            self.start_block(then_block)
            self.scopes.append({})
            slot = self.fn.new_slot()
            self.scopes[-1][node.name] = slot
            self.emit("mov", slot, scrutinee)
            value = self.lower(node.then_block)
            self.scopes.pop()
            self.emit("mov", result, value)
            self.terminate("jmp", join.label)

            self.fn.blocks.append(else_block)
            self.start_block(else_block)
            if node.else_block is None:
                self.emit("const", result, UNIT)
            else:
                value = self.lower(node.else_block)
                self.emit("mov", result, value)
            self.terminate("jmp", join.label)

            self.fn.blocks.append(join)
            self.start_block(join)
            return result

        if isinstance(node, ast.Assign):
            return self.lower_assign(node)

        if isinstance(node, ast.FieldRef):
            base = self.lower(node.base)
            self.emit("asloc", None, base)
            self.guard(base)
            t = self.fn.new_slot()
            self.emit("load", t, base, node.fieldname)
            self.guard(t)
            return t

        if isinstance(node, ast.If):
            cond = self.lower(node.cond)
            return self.lower_branches(
                cond, node.then_block, node.else_block, swap=False
            )

        if isinstance(node, ast.While):
            header = BasicBlock(self.fn.new_label())
            self.terminate("jmp", header.label)
            self.fn.blocks.append(header)
            self.start_block(header)
            cond = self.lower(node.cond)
            body = BasicBlock(self.fn.new_label())
            exit_block = BasicBlock(self.fn.new_label())
            self.terminate("br", cond, body.label, exit_block.label)
            self.fn.blocks.append(body)
            self.start_block(body)
            self.lower(node.body)
            self.terminate("jmp", header.label)
            self.fn.blocks.append(exit_block)
            self.start_block(exit_block)
            return self.const(UNIT)

        if isinstance(node, ast.IfDisconnected):
            left = self.lower(node.left)
            right = self.lower(node.right)
            self.emit("asloc", None, left)
            self.emit("asloc", None, right)
            self.guard(left)
            self.guard(right)
            cond = self.fn.new_slot()
            self.emit("disc", cond, left, right)
            return self.lower_branches(
                cond, node.then_block, node.else_block, swap=False
            )

        if isinstance(node, ast.Unop):
            s = self.lower(node.inner)
            t = self.fn.new_slot()
            self.emit("unop", t, node.op, s)
            return t

        if isinstance(node, ast.Binop):
            left = self.lower(node.left)
            right = self.lower(node.right)
            t = self.fn.new_slot()
            self.emit("binop", t, node.op, left, right)
            return t

        if isinstance(node, ast.New):
            names: List[str] = []
            slots: List[int] = []
            for fieldname, init in node.inits.items():
                names.append(fieldname)
                slots.append(self.lower(init))
            # Validate the struct exists at compile time (the interpreter
            # would raise the same KeyError at run time).
            self.program.struct(node.struct)
            t = self.fn.new_slot()
            self.emit("new", t, node.struct, tuple(names), tuple(slots))
            return t

        if isinstance(node, ast.Call):
            slots = [self.lower(arg) for arg in node.args]
            fdef = self.program.func(node.func)
            if len(slots) != len(fdef.params):
                raise MachineError(
                    f"{node.func} expects {len(fdef.params)} arguments, "
                    f"got {len(slots)}"
                )
            t = self.fn.new_slot()
            self.emit("call", t, node.func, tuple(slots))
            return t

        if isinstance(node, ast.Send):
            value = self.lower(node.value)
            self.emit("asloc", None, value)
            if not self.checked:
                # The live-set containment check the checked opcode performs.
                self.checks_erased += 1
            t = self.fn.new_slot()
            self.emit("send", t, value)
            return t

        if isinstance(node, ast.Recv):
            t = self.fn.new_slot()
            self.emit("recv", t, ast.strip_maybe(node.ty).name)
            return t

        raise MachineError(f"cannot evaluate {type(node).__name__}")

    def lower_branches(
        self,
        cond: int,
        then_ast: ast.Block,
        else_ast: Optional[ast.Block],
        swap: bool,
    ) -> int:
        then_block = BasicBlock(self.fn.new_label())
        else_block = BasicBlock(self.fn.new_label())
        join = BasicBlock(self.fn.new_label())
        result = self.fn.new_slot()
        if swap:
            self.terminate("br", cond, else_block.label, then_block.label)
        else:
            self.terminate("br", cond, then_block.label, else_block.label)

        self.fn.blocks.append(then_block)
        self.start_block(then_block)
        value = self.lower(then_ast)
        self.emit("mov", result, value)
        self.terminate("jmp", join.label)

        self.fn.blocks.append(else_block)
        self.start_block(else_block)
        if else_ast is None:
            self.emit("const", result, UNIT)
        else:
            value = self.lower(else_ast)
            self.emit("mov", result, value)
        self.terminate("jmp", join.label)

        self.fn.blocks.append(join)
        self.start_block(join)
        return result

    def lower_assign(self, node: ast.Assign) -> int:
        if isinstance(node.target, ast.VarRef):
            value = self.lower(node.value)
            slot = self.lookup_assign(node.target.name)
            self.emit("mov", slot, value)
            return self.const(UNIT)
        target: ast.FieldRef = node.target
        base = self.lower(target.base)
        # The interpreter coerces the base to a location *before* evaluating
        # the right-hand side, so the as-loc error must preempt any value
        # side effects here too.
        self.emit("asloc", None, base)
        value = self.lower(node.value)
        self.guard(base)
        self.guard(value)
        self.emit("store", None, base, target.fieldname, value)
        return self.const(UNIT)


def lower_function(
    program: ast.Program, fdef: ast.FuncDef, checked: bool
) -> Tuple[IRFunction, int]:
    """Lower one function.  Returns (ir_function, checks_erased)."""
    return FunctionLowerer(program, fdef, checked).run()
