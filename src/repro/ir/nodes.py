"""Basic-block IR for checked FCL functions.

The IR sits between the AST (``lang/ast.py``) and the flat bytecode the
dispatch loop executes (``ir/bytecode.py``).  A function is a list of
:class:`BasicBlock`; each block is straight-line :class:`Instr` list ended
by a single terminator (``jmp``/``br``/``ret``).  Values live in numbered
*slots* (virtual registers): parameters occupy slots ``0..nparams-1`` and
every sub-expression result gets a fresh slot, so passes can reason about
defs/uses without an environment model.

The representation is deliberately SSA-*style*, not strict SSA: a surface
variable keeps one slot for its whole scope (FCL has no closures, so a
compile-time scope map is exact), and loops re-assign slots instead of
introducing phi nodes.  The pass pipeline (``ir/passes.py``) only needs
per-block value numbering plus a global liveness analysis, both of which
work fine on this form.

Instruction set (``dest`` is a slot or ``None``; ``args`` is per-op):

======== =================================== ================================
op       args                                meaning
======== =================================== ================================
const    (value,)                            dest := literal (int/bool/unit/none)
mov      (src,)                              dest := slot src
unop     (op, src)                           dest := !src / -src
binop    (op, l, r)                          dest := l OP r (both pre-evaluated)
isnone   (src,)                              dest := src is none
issome   (src,)                              dest := src is not none
check    (src,)                              reservation guard on slot src
asloc    (src,)                              runtime object-reference assertion
load     (base, field)                       dest := heap[base].field
store    (base, field, value)                heap[base].field := value
new      (struct, fieldnames, valueslots)    dest := fresh object
call     (fname, argslots)                   dest := fname(args)
send     (src,)                              dest := unit; yields to scheduler
recv     (tyname,)                           dest := received root
disc     (l, r)                              dest := disconnected(l, r)
tload    (base, field, src)                  dest := slot src, emitting the
                                             read trace event the replaced
                                             ``load`` would have emitted
tstore   (base, field, src)                  dest := slot src, emitting the
                                             write trace event; dest is
                                             read *before* the write (it
                                             holds the event's old value)
sload    (base, field)                       dest := heap[base].field with
                                             NO trace event (hoisted-load
                                             priming read in a preheader)
jmp      (label,)                            terminator
br       (cond, tlabel, flabel)              terminator
ret      (src,)                              terminator
======== =================================== ================================

``check`` instructions exist only in checked compilations: erased mode
never emits them (guard erasure happens at lowering time, not dispatch
time), which is what makes the erased bytecode genuinely check-free.

``tload``/``tstore``/``sload`` exist only in *observable* full-tier
compilations (erased mode with a tracer attached): they are how the
optimizer eliminates heap traffic while still emitting every heap event
at its original position, keeping ``--trace-json`` byte-identical with
the tree interpreter.  Lowering never creates them; only the passes do.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

TERMINATOR_OPS = ("jmp", "br", "ret")


class Instr:
    """One IR instruction (or terminator)."""

    __slots__ = ("op", "dest", "args")

    def __init__(self, op: str, dest: Optional[int] = None, *args):
        self.op = op
        self.dest = dest
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return render_instr(self)


def instr_uses(ins: Instr) -> Tuple[int, ...]:
    """The slots an instruction reads, in evaluation order."""
    op = ins.op
    args = ins.args
    if op in ("mov", "isnone", "issome", "check", "asloc", "send", "load",
              "sload"):
        return (args[0],)
    if op == "unop":
        return (args[1],)
    if op == "binop":
        return (args[1], args[2])
    if op == "store":
        return (args[0], args[2])
    if op == "tload":
        return (args[0], args[2])
    if op == "tstore":
        # dest is read before it is written: it carries the replaced
        # store's old field value into the write trace event.
        return (args[0], args[2], ins.dest)
    if op == "new":
        return tuple(args[2])
    if op == "call":
        return tuple(args[1])
    if op == "disc":
        return (args[0], args[1])
    if op == "br":
        return (args[0],)
    if op == "ret":
        return (args[0],)
    return ()  # const, recv, jmp


def rewrite_uses(ins: Instr, mapping: Dict[int, int]) -> None:
    """Replace slot reads according to ``mapping`` (in place)."""
    op = ins.op
    args = ins.args
    get = mapping.get
    if op in ("mov", "isnone", "issome", "check", "asloc", "send"):
        ins.args = (get(args[0], args[0]),)
    elif op == "sload":
        ins.args = (get(args[0], args[0]), args[1])
    elif op in ("tload", "tstore"):
        ins.args = (get(args[0], args[0]), args[1], get(args[2], args[2]))
    elif op == "unop":
        ins.args = (args[0], get(args[1], args[1]))
    elif op == "binop":
        ins.args = (args[0], get(args[1], args[1]), get(args[2], args[2]))
    elif op == "load":
        ins.args = (get(args[0], args[0]), args[1])
    elif op == "store":
        ins.args = (get(args[0], args[0]), args[1], get(args[2], args[2]))
    elif op == "new":
        ins.args = (args[0], args[1], tuple(get(s, s) for s in args[2]))
    elif op == "call":
        ins.args = (args[0], tuple(get(s, s) for s in args[1]))
    elif op == "disc":
        ins.args = (get(args[0], args[0]), get(args[1], args[1]))
    elif op == "br":
        ins.args = (get(args[0], args[0]), args[1], args[2])
    elif op == "ret":
        ins.args = (get(args[0], args[0]),)


class BasicBlock:
    """A straight-line instruction run ended by one terminator."""

    __slots__ = ("label", "instrs", "term")

    def __init__(self, label: int, instrs: Optional[List[Instr]] = None,
                 term: Optional[Instr] = None):
        self.label = label
        self.instrs: List[Instr] = instrs if instrs is not None else []
        self.term = term


class IRFunction:
    """A lowered FCL function: parameters in slots 0..nparams-1, entry at
    ``blocks[0]``."""

    def __init__(self, name: str, nparams: int):
        self.name = name
        self.nparams = nparams
        self.nslots = nparams
        self.blocks: List[BasicBlock] = []
        self._next_label = 0
        #: Pool slots pre-initialized in the frame prototype (ConstPoolPass).
        self.const_slots: Dict[int, object] = {}

    def new_slot(self) -> int:
        slot = self.nslots
        self.nslots += 1
        return slot

    def new_label(self) -> int:
        label = self._next_label
        self._next_label += 1
        return label

    def new_block(self) -> BasicBlock:
        block = BasicBlock(self.new_label())
        self.blocks.append(block)
        return block

    def block_map(self) -> Dict[int, BasicBlock]:
        return {b.label: b for b in self.blocks}

    def size(self) -> int:
        """Instruction count including terminators."""
        return sum(len(b.instrs) + 1 for b in self.blocks)

    def instructions(self) -> Iterable[Instr]:
        for block in self.blocks:
            yield from block.instrs
            if block.term is not None:
                yield block.term


def render_instr(ins: Instr) -> str:
    head = f"%{ins.dest} = " if ins.dest is not None else ""
    return f"{head}{ins.op} {', '.join(map(repr, ins.args))}"


def render_function(fn: IRFunction) -> str:
    """Human-readable IR dump (tests and debugging)."""
    lines = [f"func {fn.name}(%0..%{fn.nparams - 1}) slots={fn.nslots}"
             if fn.nparams else f"func {fn.name}() slots={fn.nslots}"]
    for block in fn.blocks:
        lines.append(f"L{block.label}:")
        for ins in block.instrs:
            lines.append(f"  {render_instr(ins)}")
        if block.term is not None:
            lines.append(f"  {render_instr(block.term)}")
    return "\n".join(lines)
