"""Flattening the block IR into linear bytecode, and the compile cache.

Each function becomes a list of plain tuples ``(opcode, ...)`` with
branch targets resolved to instruction indices and call targets linked to
:class:`BytecodeFunc` objects directly (so recursion works and dispatch
never does a name lookup).  Generic ``unop``/``binop`` instructions are
specialized into per-operator opcodes here, which keeps the dispatch loop
an integer-compare ladder with trivial bodies.

Compiled modules are cached per ``(checked, observable)`` on the Program
object itself: the fuzzer and the bench harness compile each program at
most four times no matter how many runs they do.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import hashlib
import threading
from collections import OrderedDict

from ..lang import ast
from ..lang.pretty import pretty_program
from ..runtime.machine import MachineError
from ..telemetry import registry as _telemetry
from .cfg import liveness
from .lower import lower_function
from .nodes import Instr, IRFunction
from .passes import IRModule, default_pipeline

# Opcodes, roughly ordered by expected dynamic frequency.
OP_MOV = 0
OP_CONST = 1
OP_LOAD = 2
OP_BR = 3
OP_JMP = 4
OP_ADD = 5
OP_SUB = 6
OP_MUL = 7
OP_DIV = 8
OP_MOD = 9
OP_LT = 10
OP_GT = 11
OP_LE = 12
OP_GE = 13
OP_EQ = 14
OP_NE = 15
OP_AND = 16
OP_OR = 17
OP_NOT = 18
OP_NEG = 19
OP_ISNONE = 20
OP_ISSOME = 21
OP_CHECK = 22
OP_ASLOC = 23
OP_STORE = 24
OP_NEW = 25
OP_CALL = 26
OP_RET = 27
OP_SEND = 28
OP_SENDC = 29
OP_RECV = 30
OP_DISC = 31
# Observable full-tier ops: emit the trace event of an optimized-away heap
# access at its original position (tload/tstore), or read the heap without
# any event (sload, the preheader priming read).  These must stay below
# OP_BRLT — the dispatch loop routes every opcode >= OP_BRLT into the
# fused-branch family.
OP_TLOAD = 32
OP_TSTORE = 33
OP_SLOAD = 34
# Checked heap access: an ``asloc`` fused into the load/store it guards
# (flatten-time peephole).  One dispatch, identical check, identical
# error.  Must also stay below OP_BRLT.
OP_LOADV = 35
OP_STOREV = 36
# Fused compare-and-branch superinstructions (flatten-time fusion of a
# comparison feeding the block's br terminator whose result is dead at
# both targets).
OP_BRLT = 37
OP_BRGT = 38
OP_BRLE = 39
OP_BRGE = 40
OP_BREQ = 41
OP_BRNE = 42
OP_BRNONE = 43
OP_BRSOME = 44
# Calls with exactly one / two arguments: skip the generic copy loop.
OP_CALL1 = 45
OP_CALL2 = 46

_BINOPS = {
    "+": OP_ADD, "-": OP_SUB, "*": OP_MUL, "/": OP_DIV, "%": OP_MOD,
    "<": OP_LT, ">": OP_GT, "<=": OP_LE, ">=": OP_GE,
    "==": OP_EQ, "!=": OP_NE, "&&": OP_AND, "||": OP_OR,
}

_CMP_FUSE = {
    "<": OP_BRLT, ">": OP_BRGT, "<=": OP_BRLE, ">=": OP_BRGE,
    "==": OP_BREQ, "!=": OP_BRNE,
}

# Planning marker: a `!cond` feeding a br becomes a plain BR with swapped
# targets rather than a new opcode.
_BR_SWAPPED = -1

OPCODE_NAMES = {
    value: name[3:].lower()
    for name, value in sorted(globals().items())
    if name.startswith("OP_")
}


class BytecodeFunc:
    """One flattened function: executable code plus a frame prototype."""

    __slots__ = ("name", "nparams", "nslots", "code", "blank")

    def __init__(self, name: str, nparams: int, nslots: int):
        self.name = name
        self.nparams = nparams
        self.nslots = nslots
        self.code: List[Tuple] = []
        self.blank: List = [None] * nslots


class CompiledModule:
    """All functions of one program compiled for one (checked, observable)
    configuration, plus the compile-time counters."""

    def __init__(self, checked: bool, observable: bool):
        self.checked = checked
        self.observable = observable
        self.funcs: Dict[str, BytecodeFunc] = {}
        self.counters: Dict[str, int] = {}


def flatten(fn: IRFunction, program: ast.Program, checked: bool) -> BytecodeFunc:
    out = BytecodeFunc(fn.name, fn.nparams, fn.nslots)
    for slot, value in fn.const_slots.items():
        out.blank[slot] = value
    code = out.code
    blocks = fn.block_map()
    # Fusion legality: the comparison's destination must be dead at both
    # branch targets, because the fused opcode never writes it.  (A plain
    # use count is not enough after register allocation — unrelated values
    # may share the slot, but sharing is only legal when this value is
    # dead, which is exactly what liveness reports.)
    live_in, _live_out = liveness(fn)

    # Planning pass: per block, decide whether the final comparison fuses
    # into the br (skipping the compare), whether a jmp to an instruction-
    # free ret block becomes the ret itself, or whether a fall-through jmp
    # is elided entirely.  Only forward fall-throughs are ever elided, so
    # every loop back-edge still crosses a budget-checking control op.
    fused: Dict[int, Tuple] = {}
    ret_dup: Dict[int, "BasicBlock"] = {}
    elided: Dict[int, bool] = {}
    for idx, block in enumerate(fn.blocks):
        term = block.term
        elided[block.label] = False
        if term is None:
            continue
        if term.op == "br" and block.instrs:
            last = block.instrs[-1]
            cond = term.args[0]
            if (
                last.dest == cond
                and cond not in live_in.get(term.args[1], ())
                and cond not in live_in.get(term.args[2], ())
            ):
                if last.op == "binop" and last.args[0] in _CMP_FUSE:
                    fused[block.label] = (
                        _CMP_FUSE[last.args[0]], last.args[1], last.args[2]
                    )
                elif last.op == "isnone":
                    fused[block.label] = (OP_BRNONE, last.args[0])
                elif last.op == "issome":
                    fused[block.label] = (OP_BRSOME, last.args[0])
                elif last.op == "unop" and last.args[0] == "!":
                    fused[block.label] = (_BR_SWAPPED, last.args[1])
        elif term.op == "jmp":
            target = blocks.get(term.args[0])
            if (
                target is not None
                and len(target.instrs) <= 2
                and target.term is not None
                and target.term.op == "ret"
            ):
                # Duplicate the tiny returning tail in place of the jmp.
                # A ret-terminated target cannot be a loop back-edge, so no
                # budget-checking control op is lost.
                ret_dup[block.label] = target
            else:
                elided[block.label] = (
                    idx + 1 < len(fn.blocks)
                    and fn.blocks[idx + 1].label == term.args[0]
                )

    # Peephole: fuse each ``asloc`` into the load/store of the same base
    # immediately following it.  Done before the offsets pass so branch
    # targets account for the shorter blocks.
    emits: Dict[int, List] = {}
    for block in fn.blocks:
        instrs = block.instrs
        if block.label in fused:
            instrs = instrs[:-1]
        emits[block.label] = _peephole(instrs)

    # First pass: block label → starting pc.
    offsets: Dict[int, int] = {}
    pc = 0
    for block in fn.blocks:
        offsets[block.label] = pc
        pc += len(emits[block.label])
        dup = ret_dup.get(block.label)
        if dup is not None:
            pc += len(emits[dup.label])
        if not elided[block.label] and block.term is not None:
            pc += 1
    # Second pass: emit.
    for block in fn.blocks:
        for ins in emits[block.label]:
            code.append(_encode(ins, program, checked))
        term = block.term
        if term is None or elided[block.label]:
            continue
        fuse = fused.get(block.label)
        if fuse is not None:
            t, f = offsets[term.args[1]], offsets[term.args[2]]
            if fuse[0] == _BR_SWAPPED:
                code.append((OP_BR, fuse[1], f, t))
            else:
                code.append(fuse + (t, f))
        elif term.op == "jmp":
            dup = ret_dup.get(block.label)
            if dup is not None:
                for ins in emits[dup.label]:
                    code.append(_encode(ins, program, checked))
                code.append((OP_RET, dup.term.args[0]))
            else:
                code.append((OP_JMP, offsets[term.args[0]]))
        elif term.op == "br":
            code.append(
                (OP_BR, term.args[0], offsets[term.args[1]],
                 offsets[term.args[2]])
            )
        else:  # ret
            code.append((OP_RET, term.args[0]))
    return out


def _peephole(instrs: List[Instr]) -> List[Instr]:
    """Fuse ``asloc s`` into an immediately following load/store based on
    ``s``.  The fused opcode performs the identical reference check before
    touching the heap, so errors and their messages are unchanged."""
    out: List[Instr] = []
    i = 0
    n = len(instrs)
    while i < n:
        ins = instrs[i]
        if ins.op == "asloc" and i + 1 < n:
            nxt = instrs[i + 1]
            if nxt.op == "load" and nxt.args[0] == ins.args[0]:
                out.append(Instr("loadv", nxt.dest, nxt.args[0], nxt.args[1]))
                i += 2
                continue
            if nxt.op == "store" and nxt.args[0] == ins.args[0]:
                out.append(Instr("storev", None, *nxt.args))
                i += 2
                continue
        out.append(ins)
        i += 1
    return out


def _encode(ins, program: ast.Program, checked: bool) -> Tuple:
    op = ins.op
    if op == "mov":
        return (OP_MOV, ins.dest, ins.args[0])
    if op == "const":
        return (OP_CONST, ins.dest, ins.args[0])
    if op == "load":
        return (OP_LOAD, ins.dest, ins.args[0], ins.args[1])
    if op == "loadv":
        return (OP_LOADV, ins.dest, ins.args[0], ins.args[1])
    if op == "storev":
        return (OP_STOREV, ins.args[0], ins.args[1], ins.args[2])
    if op == "tload":
        return (OP_TLOAD, ins.dest, ins.args[0], ins.args[1], ins.args[2])
    if op == "tstore":
        return (OP_TSTORE, ins.dest, ins.args[0], ins.args[1], ins.args[2])
    if op == "sload":
        return (OP_SLOAD, ins.dest, ins.args[0], ins.args[1])
    if op == "binop":
        bop, l, r = ins.args
        return (_BINOPS[bop], ins.dest, l, r)
    if op == "unop":
        uop, s = ins.args
        return (OP_NOT if uop == "!" else OP_NEG, ins.dest, s)
    if op == "isnone":
        return (OP_ISNONE, ins.dest, ins.args[0])
    if op == "issome":
        return (OP_ISSOME, ins.dest, ins.args[0])
    if op == "check":
        return (OP_CHECK, ins.args[0])
    if op == "asloc":
        return (OP_ASLOC, ins.args[0])
    if op == "store":
        return (OP_STORE, ins.args[0], ins.args[1], ins.args[2])
    if op == "new":
        sdef = program.struct(ins.args[0])
        return (OP_NEW, ins.dest, sdef, ins.args[1], ins.args[2])
    if op == "call":
        # The callee name is patched to the BytecodeFunc object in _link.
        if len(ins.args[1]) == 1:
            return (OP_CALL1, ins.dest, ins.args[0], ins.args[1][0])
        if len(ins.args[1]) == 2:
            return (OP_CALL2, ins.dest, ins.args[0],
                    ins.args[1][0], ins.args[1][1])
        return (OP_CALL, ins.dest, ins.args[0], ins.args[1])
    if op == "send":
        return (OP_SENDC if checked else OP_SEND, ins.dest, ins.args[0])
    if op == "recv":
        return (OP_RECV, ins.dest, ins.args[0])
    if op == "disc":
        return (OP_DISC, ins.dest, ins.args[0], ins.args[1])
    raise MachineError(f"cannot flatten IR op {op!r}")


def _link(module: CompiledModule) -> None:
    for func in module.funcs.values():
        for idx, ins in enumerate(func.code):
            if ins[0] in (OP_CALL, OP_CALL1, OP_CALL2):
                func.code[idx] = (
                    ins[:2] + (module.funcs[ins[2]],) + ins[3:]
                )


def build_module(
    program: ast.Program, checked: bool, observable: bool,
    optimize: bool = True,
) -> IRModule:
    """Lower every function and run the pass pipeline, bypassing caches.

    The block-IR entry point ``repro disasm`` and the tests use directly;
    :func:`compile_program` builds on it.  ``optimize=False`` stops after
    lowering (the ``--no-opt`` baseline).
    """
    full = not checked
    funcs: Dict[str, IRFunction] = {}
    checks_erased = 0
    for name, fdef in program.funcs.items():
        fn, erased = lower_function(program, fdef, checked)
        funcs[name] = fn
        checks_erased += erased
    module = IRModule(program, funcs, full, observable)
    module.counters["checks_erased"] = checks_erased
    if optimize:
        default_pipeline(full, observable).run(module)
    return module


# Compiled modules shared across Program objects (and therefore across
# server sessions): two programs with the same canonical source produce
# byte-equal bytecode, so fleet workers stop recompiling per request.
# Keyed like the Service memo — a source fingerprint — plus the compile
# configuration.  Bounded LRU, guarded for the daemon's worker threads.
_SHARED_CACHE: "OrderedDict[Tuple[str, bool, bool], CompiledModule]" = (
    OrderedDict()
)
_SHARED_LOCK = threading.Lock()
_SHARED_LIMIT = 64


def set_compile_cache_limit(limit: int) -> None:
    """Resize the shared compile cache (evicting oldest entries first).
    ``0`` disables cross-program sharing entirely."""
    global _SHARED_LIMIT
    tel = _telemetry()
    with _SHARED_LOCK:
        _SHARED_LIMIT = max(0, limit)
        while len(_SHARED_CACHE) > _SHARED_LIMIT:
            _SHARED_CACHE.popitem(last=False)
            if tel.enabled:
                tel.inc("machine.engine.compile_cache.evictions")
        if tel.enabled:
            tel.set_gauge(
                "machine.engine.compile_cache.entries", len(_SHARED_CACHE)
            )


def clear_compile_cache() -> None:
    with _SHARED_LOCK:
        _SHARED_CACHE.clear()
        tel = _telemetry()
        if tel.enabled:
            tel.set_gauge("machine.engine.compile_cache.entries", 0)


def compile_cache_entries() -> int:
    with _SHARED_LOCK:
        return len(_SHARED_CACHE)


def _fingerprint(program: ast.Program) -> str:
    """Canonical source hash, cached on the program object.  Pretty-printed
    rather than raw source so structurally identical programs share."""
    fp = getattr(program, "_ir_fingerprint", None)
    if fp is None:
        fp = hashlib.sha256(
            pretty_program(program).encode("utf-8")
        ).hexdigest()
        program._ir_fingerprint = fp  # type: ignore[attr-defined]
    return fp


def compile_program(
    program: ast.Program, checked: bool, observable: bool
) -> CompiledModule:
    """Compile (or fetch from the caches) every function.

    ``observable`` means a tracer is attached: the full tier still runs
    (when ``checked`` is off) but heap-eliminating rewrites take their
    event-preserving forms, so traces stay byte-comparable with the tree
    interpreter.  Two cache layers: a per-program dict (same Program
    object re-run, e.g. fuzz oracles) and a shared fingerprint-keyed LRU
    (distinct Program objects from the same source, e.g. serve-fleet
    requests without a session).
    """
    try:
        cache = program._ir_cache  # type: ignore[attr-defined]
    except AttributeError:
        cache = program._ir_cache = {}  # type: ignore[attr-defined]
    key = (checked, observable)
    cached = cache.get(key)
    if cached is not None:
        return cached

    tel = _telemetry()
    shared_key = (_fingerprint(program), checked, observable)
    with _SHARED_LOCK:
        hit = _SHARED_CACHE.get(shared_key)
        if hit is not None:
            _SHARED_CACHE.move_to_end(shared_key)
    if hit is not None:
        if tel.enabled:
            tel.inc("machine.engine.compile_cache.hits")
        cache[key] = hit
        return hit

    module = build_module(program, checked, observable)
    compiled = CompiledModule(checked, observable)
    for name, fn in module.funcs.items():
        compiled.funcs[name] = flatten(fn, program, checked)
    _link(compiled)
    compiled.counters = dict(module.counters)
    compiled.counters["instructions_emitted"] = sum(
        len(f.code) for f in compiled.funcs.values()
    )

    if tel.enabled:
        tel.inc("machine.engine.compiles")
        tel.inc("machine.engine.compile_cache.misses")
        tel.inc("machine.engine.inlined_calls",
                compiled.counters["inlined_calls"])
        tel.inc("machine.engine.loads_eliminated",
                compiled.counters["loads_eliminated"])
        tel.inc("machine.engine.checks_erased",
                compiled.counters["checks_erased"])
        tel.inc("machine.engine.fields_promoted",
                compiled.counters["fields_promoted"])
        tel.inc("machine.engine.licm_hoisted",
                compiled.counters["licm_hoisted"])
        tel.inc("machine.engine.tail_calls_looped",
                compiled.counters["tail_calls_looped"])
        tel.inc("machine.engine.slots_coalesced",
                compiled.counters["slots_coalesced"])
    with _SHARED_LOCK:
        if _SHARED_LIMIT > 0:
            while len(_SHARED_CACHE) >= _SHARED_LIMIT:
                _SHARED_CACHE.popitem(last=False)
                if tel.enabled:
                    tel.inc("machine.engine.compile_cache.evictions")
            _SHARED_CACHE[shared_key] = compiled
        if tel.enabled:
            tel.set_gauge(
                "machine.engine.compile_cache.entries", len(_SHARED_CACHE)
            )
    cache[key] = compiled
    return compiled
