"""Flattening the block IR into linear bytecode, and the compile cache.

Each function becomes a list of plain tuples ``(opcode, ...)`` with
branch targets resolved to instruction indices and call targets linked to
:class:`BytecodeFunc` objects directly (so recursion works and dispatch
never does a name lookup).  Generic ``unop``/``binop`` instructions are
specialized into per-operator opcodes here, which keeps the dispatch loop
an integer-compare ladder with trivial bodies.

Compiled modules are cached per ``(checked, observable)`` on the Program
object itself: the fuzzer and the bench harness compile each program at
most four times no matter how many runs they do.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..lang import ast
from ..runtime.machine import MachineError
from ..telemetry import registry as _telemetry
from .lower import lower_function
from .nodes import IRFunction, instr_uses
from .passes import IRModule, default_pipeline

# Opcodes, roughly ordered by expected dynamic frequency.
OP_MOV = 0
OP_CONST = 1
OP_LOAD = 2
OP_BR = 3
OP_JMP = 4
OP_ADD = 5
OP_SUB = 6
OP_MUL = 7
OP_DIV = 8
OP_MOD = 9
OP_LT = 10
OP_GT = 11
OP_LE = 12
OP_GE = 13
OP_EQ = 14
OP_NE = 15
OP_AND = 16
OP_OR = 17
OP_NOT = 18
OP_NEG = 19
OP_ISNONE = 20
OP_ISSOME = 21
OP_CHECK = 22
OP_ASLOC = 23
OP_STORE = 24
OP_NEW = 25
OP_CALL = 26
OP_RET = 27
OP_SEND = 28
OP_SENDC = 29
OP_RECV = 30
OP_DISC = 31
# Fused compare-and-branch superinstructions (flatten-time fusion of a
# single-use comparison feeding the block's br terminator).
OP_BRLT = 32
OP_BRGT = 33
OP_BRLE = 34
OP_BRGE = 35
OP_BREQ = 36
OP_BRNE = 37
OP_BRNONE = 38
OP_BRSOME = 39
# Call with exactly one argument: skips the generic argument-copy loop.
OP_CALL1 = 40

_BINOPS = {
    "+": OP_ADD, "-": OP_SUB, "*": OP_MUL, "/": OP_DIV, "%": OP_MOD,
    "<": OP_LT, ">": OP_GT, "<=": OP_LE, ">=": OP_GE,
    "==": OP_EQ, "!=": OP_NE, "&&": OP_AND, "||": OP_OR,
}

_CMP_FUSE = {
    "<": OP_BRLT, ">": OP_BRGT, "<=": OP_BRLE, ">=": OP_BRGE,
    "==": OP_BREQ, "!=": OP_BRNE,
}

# Planning marker: a `!cond` feeding a br becomes a plain BR with swapped
# targets rather than a new opcode.
_BR_SWAPPED = -1

OPCODE_NAMES = {
    value: name[3:].lower()
    for name, value in sorted(globals().items())
    if name.startswith("OP_")
}


class BytecodeFunc:
    """One flattened function: executable code plus a frame prototype."""

    __slots__ = ("name", "nparams", "nslots", "code", "blank")

    def __init__(self, name: str, nparams: int, nslots: int):
        self.name = name
        self.nparams = nparams
        self.nslots = nslots
        self.code: List[Tuple] = []
        self.blank: List = [None] * nslots


class CompiledModule:
    """All functions of one program compiled for one (checked, observable)
    configuration, plus the compile-time counters."""

    def __init__(self, checked: bool, observable: bool):
        self.checked = checked
        self.observable = observable
        self.funcs: Dict[str, BytecodeFunc] = {}
        self.counters: Dict[str, int] = {}


def flatten(fn: IRFunction, program: ast.Program, checked: bool) -> BytecodeFunc:
    out = BytecodeFunc(fn.name, fn.nparams, fn.nslots)
    for slot, value in fn.const_slots.items():
        out.blank[slot] = value
    code = out.code
    blocks = fn.block_map()
    use_count: Dict[int, int] = {}
    for ins in fn.instructions():
        for slot in instr_uses(ins):
            use_count[slot] = use_count.get(slot, 0) + 1

    # Planning pass: per block, decide whether the final comparison fuses
    # into the br (skipping the compare), whether a jmp to an instruction-
    # free ret block becomes the ret itself, or whether a fall-through jmp
    # is elided entirely.  Only forward fall-throughs are ever elided, so
    # every loop back-edge still crosses a budget-checking control op.
    fused: Dict[int, Tuple] = {}
    ret_dup: Dict[int, "BasicBlock"] = {}
    elided: Dict[int, bool] = {}
    for idx, block in enumerate(fn.blocks):
        term = block.term
        elided[block.label] = False
        if term is None:
            continue
        if term.op == "br" and block.instrs:
            last = block.instrs[-1]
            cond = term.args[0]
            if last.dest == cond and use_count.get(cond, 0) == 1:
                if last.op == "binop" and last.args[0] in _CMP_FUSE:
                    fused[block.label] = (
                        _CMP_FUSE[last.args[0]], last.args[1], last.args[2]
                    )
                elif last.op == "isnone":
                    fused[block.label] = (OP_BRNONE, last.args[0])
                elif last.op == "issome":
                    fused[block.label] = (OP_BRSOME, last.args[0])
                elif last.op == "unop" and last.args[0] == "!":
                    fused[block.label] = (_BR_SWAPPED, last.args[1])
        elif term.op == "jmp":
            target = blocks.get(term.args[0])
            if (
                target is not None
                and len(target.instrs) <= 2
                and target.term is not None
                and target.term.op == "ret"
            ):
                # Duplicate the tiny returning tail in place of the jmp.
                # A ret-terminated target cannot be a loop back-edge, so no
                # budget-checking control op is lost.
                ret_dup[block.label] = target
            else:
                elided[block.label] = (
                    idx + 1 < len(fn.blocks)
                    and fn.blocks[idx + 1].label == term.args[0]
                )

    # First pass: block label → starting pc.
    offsets: Dict[int, int] = {}
    pc = 0
    for block in fn.blocks:
        offsets[block.label] = pc
        pc += len(block.instrs)
        if block.label in fused:
            pc -= 1
        dup = ret_dup.get(block.label)
        if dup is not None:
            pc += len(dup.instrs)
        if not elided[block.label] and block.term is not None:
            pc += 1
    # Second pass: emit.
    for block in fn.blocks:
        instrs = block.instrs
        fuse = fused.get(block.label)
        if fuse is not None:
            instrs = instrs[:-1]
        for ins in instrs:
            code.append(_encode(ins, program, checked))
        term = block.term
        if term is None or elided[block.label]:
            continue
        if fuse is not None:
            t, f = offsets[term.args[1]], offsets[term.args[2]]
            if fuse[0] == _BR_SWAPPED:
                code.append((OP_BR, fuse[1], f, t))
            else:
                code.append(fuse + (t, f))
        elif term.op == "jmp":
            dup = ret_dup.get(block.label)
            if dup is not None:
                for ins in dup.instrs:
                    code.append(_encode(ins, program, checked))
                code.append((OP_RET, dup.term.args[0]))
            else:
                code.append((OP_JMP, offsets[term.args[0]]))
        elif term.op == "br":
            code.append(
                (OP_BR, term.args[0], offsets[term.args[1]],
                 offsets[term.args[2]])
            )
        else:  # ret
            code.append((OP_RET, term.args[0]))
    return out


def _encode(ins, program: ast.Program, checked: bool) -> Tuple:
    op = ins.op
    if op == "mov":
        return (OP_MOV, ins.dest, ins.args[0])
    if op == "const":
        return (OP_CONST, ins.dest, ins.args[0])
    if op == "load":
        return (OP_LOAD, ins.dest, ins.args[0], ins.args[1])
    if op == "binop":
        bop, l, r = ins.args
        return (_BINOPS[bop], ins.dest, l, r)
    if op == "unop":
        uop, s = ins.args
        return (OP_NOT if uop == "!" else OP_NEG, ins.dest, s)
    if op == "isnone":
        return (OP_ISNONE, ins.dest, ins.args[0])
    if op == "issome":
        return (OP_ISSOME, ins.dest, ins.args[0])
    if op == "check":
        return (OP_CHECK, ins.args[0])
    if op == "asloc":
        return (OP_ASLOC, ins.args[0])
    if op == "store":
        return (OP_STORE, ins.args[0], ins.args[1], ins.args[2])
    if op == "new":
        sdef = program.struct(ins.args[0])
        return (OP_NEW, ins.dest, sdef, ins.args[1], ins.args[2])
    if op == "call":
        # The callee name is patched to the BytecodeFunc object in _link.
        if len(ins.args[1]) == 1:
            return (OP_CALL1, ins.dest, ins.args[0], ins.args[1][0])
        return (OP_CALL, ins.dest, ins.args[0], ins.args[1])
    if op == "send":
        return (OP_SENDC if checked else OP_SEND, ins.dest, ins.args[0])
    if op == "recv":
        return (OP_RECV, ins.dest, ins.args[0])
    if op == "disc":
        return (OP_DISC, ins.dest, ins.args[0], ins.args[1])
    raise MachineError(f"cannot flatten IR op {op!r}")


def _link(module: CompiledModule) -> None:
    for func in module.funcs.values():
        for idx, ins in enumerate(func.code):
            if ins[0] == OP_CALL or ins[0] == OP_CALL1:
                func.code[idx] = (
                    ins[0], ins[1], module.funcs[ins[2]], ins[3]
                )


def compile_program(
    program: ast.Program, checked: bool, observable: bool
) -> CompiledModule:
    """Compile (or fetch from the per-program cache) every function.

    ``observable`` means a tracer is attached: only heap-event-preserving
    passes run, so traces stay byte-comparable with the tree interpreter.
    The full optimization tier requires ``not checked and not observable``.
    """
    try:
        cache = program._ir_cache  # type: ignore[attr-defined]
    except AttributeError:
        cache = program._ir_cache = {}  # type: ignore[attr-defined]
    key = (checked, observable)
    cached = cache.get(key)
    if cached is not None:
        return cached

    full = not checked and not observable
    funcs: Dict[str, IRFunction] = {}
    checks_erased = 0
    for name, fdef in program.funcs.items():
        fn, erased = lower_function(program, fdef, checked)
        funcs[name] = fn
        checks_erased += erased
    module = IRModule(program, funcs, full)
    module.counters["checks_erased"] = checks_erased
    default_pipeline(full).run(module)

    compiled = CompiledModule(checked, observable)
    for name, fn in funcs.items():
        compiled.funcs[name] = flatten(fn, program, checked)
    _link(compiled)
    compiled.counters = dict(module.counters)
    compiled.counters["instructions_emitted"] = sum(
        len(f.code) for f in compiled.funcs.values()
    )

    tel = _telemetry()
    if tel.enabled:
        tel.inc("machine.engine.compiles")
        tel.inc("machine.engine.inlined_calls",
                compiled.counters["inlined_calls"])
        tel.inc("machine.engine.loads_eliminated",
                compiled.counters["loads_eliminated"])
        tel.inc("machine.engine.checks_erased",
                compiled.counters["checks_erased"])
        tel.inc("machine.engine.fields_promoted",
                compiled.counters["fields_promoted"])
    cache[key] = compiled
    return compiled
