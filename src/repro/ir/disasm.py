"""Human-readable dumps of the compiled bytecode — ``repro disasm``.

The disassembly is the linear, post-flatten form: exactly the tuples the
engine dispatches, before call-target linking (so calls print function
names, not object ids).  Above the code, the dump reports what the
optimizer did to get there — one line per pass that changed a counter,
straight from :attr:`IRModule.pass_log` — which is the fastest way to
answer "why is this load gone?" or "did the tail call become a loop?".

``optimize=False`` dumps the lowering output untouched (the ``--no-opt``
baseline); diffing the two dumps for one function is the intended
workflow.
"""

from __future__ import annotations

from typing import List, Optional

from ..lang import ast
from .bytecode import OPCODE_NAMES, BytecodeFunc, build_module, flatten


def disassemble(
    program: ast.Program,
    checked: bool = True,
    observable: bool = False,
    optimize: bool = True,
    function: Optional[str] = None,
) -> str:
    """Render the program's bytecode as text.

    ``function`` restricts the dump to one function (the pass summary
    always covers the whole module — passes run module-wide).  Raises
    :class:`KeyError` when ``function`` names nothing in the program.
    """
    module = build_module(program, checked, observable, optimize=optimize)
    names = [function] if function is not None else sorted(module.funcs)
    if function is not None and function not in module.funcs:
        raise KeyError(function)

    lines: List[str] = []
    tier = "full" if module.full else "checked"
    if module.observable:
        tier += "+traced"
    lines.append(
        f"; tier={tier} optimize={'on' if optimize else 'off'}"
    )
    if optimize:
        for name, delta in module.pass_log:
            changed = " ".join(
                f"{key}+{value}" for key, value in sorted(delta.items())
            ) or "(no effect)"
            lines.append(f"; pass {name}: {changed}")
    for name in names:
        fn = module.funcs[name]
        compiled = flatten(fn, program, checked)
        lines.append("")
        lines.extend(_render_func(compiled))
    return "\n".join(lines) + "\n"


def _render_func(func: BytecodeFunc) -> List[str]:
    lines = [
        f"func {func.name} (params={func.nparams} slots={func.nslots} "
        f"code={len(func.code)})"
    ]
    pooled = [
        (slot, value)
        for slot, value in enumerate(func.blank)
        if value is not None
    ]
    for slot, value in pooled:
        lines.append(f"  pool  s{slot} = {value!r}")
    for offset, ins in enumerate(func.code):
        name = OPCODE_NAMES.get(ins[0], f"op{ins[0]}")
        operands = " ".join(_operand(part) for part in ins[1:])
        lines.append(f"  {offset:4d}  {name:<8s} {operands}".rstrip())
    return lines


def _operand(part) -> str:
    if isinstance(part, (tuple, list)):
        return "(" + " ".join(_operand(p) for p in part) + ")"
    if isinstance(part, str):
        return part
    return repr(part)


__all__ = ["disassemble"]
