"""The optimizing pass pipeline over the basic-block IR.

Two tiers exist because optimization must not outrun observability:

* **observable tier** (a tracer is attached, or checks are on): only
  passes that preserve the exact heap-event sequence and reservation-check
  count run — inlining, constant folding / branch simplification, local
  copy propagation, dead *pure* code elimination.  This is what
  ``--paranoid`` and the fuzzer's tree≡ir oracle compare byte-for-byte
  against the tree interpreter.
* **full tier** (erased mode, no tracer): adds redundant-load elimination
  and mem2var promotion of region-local primitive fields, which change
  *how often* the heap is read but never the values computed.

The aliasing facts that license the full tier come from the checker:
reservations are disjoint and only rendezvous transfers move locations
between them (§3.2/fig 15), so between two instructions of one thread no
*other* thread can write a field the thread may read — a cached field
value stays valid until this thread itself stores to that field name or
reaches a call/send/recv.  Mem2var additionally uses the region discipline:
an allocation whose reference never escapes the frame (never stored,
passed, sent, returned, or compared for disconnection) is invisible to
``if disconnected`` traversals and to other threads, so its primitive
fields can live in registers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..lang import ast
from ..runtime.machine import Interpreter
from ..runtime.values import NONE, UNIT
from .cfg import liveness, predecessors, remove_unreachable, successors
from .nodes import BasicBlock, Instr, IRFunction, instr_uses, rewrite_uses


class IRModule:
    """All lowered functions of one program plus compile counters."""

    def __init__(self, program: ast.Program, funcs: Dict[str, IRFunction],
                 full: bool):
        self.program = program
        self.funcs = funcs
        #: Full tier: erased mode with no tracer attached (see module doc).
        self.full = full
        self.counters = {
            "inlined_calls": 0,
            "loads_eliminated": 0,
            "checks_erased": 0,
            "fields_promoted": 0,
            "consts_pooled": 0,
            "dests_sunk": 0,
        }


class Pass:
    name = "pass"

    def run(self, module: IRModule) -> None:
        raise NotImplementedError


class PassManager:
    """Runs a fixed pass sequence over a module."""

    def __init__(self, passes: List[Pass]):
        self.passes = passes

    def run(self, module: IRModule) -> None:
        for p in self.passes:
            p.run(module)


def default_pipeline(full: bool) -> "PassManager":
    passes: List[Pass] = [InlinePass(), SimplifyPass()]
    if full:
        # DCE + dest sinking first, so mem2var's escape analysis sees the
        # canonical base slot instead of dead copy chains of it.
        passes += [DeadCodePass(), SinkDestPass(), RedundantLoadPass(),
                   Mem2VarPass(), SimplifyPass()]
    passes += [DeadCodePass(), SimplifyPass(), ConstPoolPass(), SinkDestPass()]
    return PassManager(passes)


# ---------------------------------------------------------------------------
# Function inlining
# ---------------------------------------------------------------------------


class InlinePass(Pass):
    """Inline small leaf functions into their callers.

    Sound for any FCL function: calls are by-value over slots, the callee's
    parameter-guard ``check`` instructions travel with its body, and
    ``send``/``recv`` yields work identically from spliced code.  Rounds
    iterate so that a function whose calls were all inlined away becomes a
    leaf itself (rbtree's rotation helpers chain into ``balance`` this
    way), bounded by a caller-size cap.
    """

    name = "inline"

    def __init__(self, max_callee: int = 120, max_caller: int = 2500,
                 rounds: int = 4):
        self.max_callee = max_callee
        self.max_caller = max_caller
        self.rounds = rounds

    def run(self, module: IRModule) -> None:
        for _ in range(self.rounds):
            leaves = {
                name: fn
                for name, fn in module.funcs.items()
                if self._is_leaf(fn) and fn.size() <= self.max_callee
            }
            changed = False
            for fn in module.funcs.values():
                while fn.size() < self.max_caller:
                    site = self._find_site(fn, leaves)
                    if site is None:
                        break
                    bidx, iidx = site
                    callee = leaves[fn.blocks[bidx].instrs[iidx].args[0]]
                    self._splice(fn, bidx, iidx, callee)
                    module.counters["inlined_calls"] += 1
                    changed = True
            if not changed:
                break

    @staticmethod
    def _is_leaf(fn: IRFunction) -> bool:
        return all(ins.op != "call" for ins in fn.instructions())

    @staticmethod
    def _find_site(
        fn: IRFunction, leaves: Dict[str, IRFunction]
    ) -> Optional[Tuple[int, int]]:
        for bidx, block in enumerate(fn.blocks):
            for iidx, ins in enumerate(block.instrs):
                if ins.op == "call" and ins.args[0] in leaves:
                    if ins.args[0] != fn.name:
                        return bidx, iidx
        return None

    @staticmethod
    def _splice(caller: IRFunction, bidx: int, iidx: int,
                callee: IRFunction) -> None:
        block = caller.blocks[bidx]
        call_ins = block.instrs[iidx]
        _fname, argslots = call_ins.args
        dest = call_ins.dest
        offset = caller.nslots
        caller.nslots += callee.nslots
        slot_map = {s: s + offset for s in range(callee.nslots)}
        label_map = {b.label: caller.new_label() for b in callee.blocks}
        cont = BasicBlock(caller.new_label(), block.instrs[iidx + 1:],
                          block.term)
        new_blocks: List[BasicBlock] = []
        for cb in callee.blocks:
            nb = BasicBlock(label_map[cb.label])
            for ins in cb.instrs:
                copy = Instr(
                    ins.op,
                    None if ins.dest is None else ins.dest + offset,
                    *ins.args,
                )
                rewrite_uses(copy, slot_map)
                nb.instrs.append(copy)
            term = cb.term
            if term.op == "ret":
                nb.instrs.append(Instr("mov", dest, term.args[0] + offset))
                nb.term = Instr("jmp", None, cont.label)
            elif term.op == "jmp":
                nb.term = Instr("jmp", None, label_map[term.args[0]])
            else:  # br
                nb.term = Instr(
                    "br",
                    None,
                    term.args[0] + offset,
                    label_map[term.args[1]],
                    label_map[term.args[2]],
                )
            new_blocks.append(nb)
        # Redirect the call site: bind arguments into the callee's
        # parameter slots, jump into the spliced body, resume at `cont`.
        pre = block.instrs[:iidx]
        for i, s in enumerate(argslots):
            pre.append(Instr("mov", offset + i, s))
        block.instrs = pre
        block.term = Instr("jmp", None, label_map[callee.blocks[0].label])
        caller.blocks[bidx + 1:bidx + 1] = new_blocks + [cont]


# ---------------------------------------------------------------------------
# Simplification: constant folding, copy propagation, branch/jump cleanup
# ---------------------------------------------------------------------------

_FOLDABLE = (int, bool)


class SimplifyPass(Pass):
    """Trace-preserving cleanups: per-block constant folding and copy
    propagation, constant-branch conversion, jump threading, unreachable
    block removal, and straight-line block merging."""

    name = "simplify"

    def run(self, module: IRModule) -> None:
        for fn in module.funcs.values():
            for _ in range(10):
                changed = self._local(fn)
                changed |= self._branches(fn)
                changed |= self._thread_jumps(fn)
                changed |= remove_unreachable(fn)
                changed |= self._merge_chains(fn)
                if not changed:
                    break

    # -- per-block value numbering -----------------------------------------

    @staticmethod
    def _local(fn: IRFunction) -> bool:
        changed = False
        for block in fn.blocks:
            consts: Dict[int, object] = {}
            copies: Dict[int, int] = {}
            asloced: Set[int] = set()

            def invalidate(slot: int) -> None:
                consts.pop(slot, None)
                copies.pop(slot, None)
                asloced.discard(slot)
                for d in [d for d, s in copies.items() if s == slot]:
                    del copies[d]

            new_instrs: List[Instr] = []
            for ins in block.instrs:
                if copies:
                    rewrite_uses(ins, copies)
                folded = SimplifyPass._fold(ins, consts)
                if folded is not None:
                    ins = folded
                    changed = True
                if ins.op == "asloc":
                    # A repeated assertion on an unmodified slot is a no-op
                    # (asloc has no counter, unlike check).
                    slot = ins.args[0]
                    if slot in asloced:
                        changed = True
                        continue
                    asloced.add(slot)
                dest = ins.dest
                if dest is not None:
                    invalidate(dest)
                    if ins.op == "const":
                        consts[dest] = ins.args[0]
                    elif ins.op == "mov":
                        src = ins.args[0]
                        if src in consts:
                            ins = Instr("const", dest, consts[src])
                            consts[dest] = ins.args[0]
                            changed = True
                        elif src != dest:
                            copies[dest] = copies.get(src, src)
                new_instrs.append(ins)
            block.instrs = new_instrs
            if block.term is not None and copies:
                rewrite_uses(block.term, copies)
            # Constant branch condition → unconditional jump.
            term = block.term
            if (
                term is not None
                and term.op == "br"
                and term.args[0] in consts
            ):
                taken = term.args[1] if consts[term.args[0]] else term.args[2]
                block.term = Instr("jmp", None, taken)
                changed = True
        return changed

    @staticmethod
    def _fold(ins: Instr, consts: Dict[int, object]) -> Optional[Instr]:
        op = ins.op
        if op == "binop":
            bop, l, r = ins.args
            if l in consts and r in consts:
                lv, rv = consts[l], consts[r]
                if type(lv) in _FOLDABLE and type(rv) in _FOLDABLE:
                    try:
                        return Instr("const", ins.dest,
                                     Interpreter._binop(bop, lv, rv))
                    except Exception:
                        return None  # e.g. division by zero: fold nothing
            return None
        if op == "unop":
            uop, s = ins.args
            if s in consts and type(consts[s]) in _FOLDABLE:
                value = consts[s]
                return Instr("const", ins.dest,
                             (not value) if uop == "!" else -value)
            return None
        if op == "isnone" and ins.args[0] in consts:
            return Instr("const", ins.dest, consts[ins.args[0]] is NONE)
        if op == "issome" and ins.args[0] in consts:
            return Instr("const", ins.dest, consts[ins.args[0]] is not NONE)
        return None

    # -- CFG cleanups ------------------------------------------------------

    @staticmethod
    def _branches(fn: IRFunction) -> bool:
        changed = False
        for block in fn.blocks:
            term = block.term
            if term is not None and term.op == "br" and term.args[1] == term.args[2]:
                block.term = Instr("jmp", None, term.args[1])
                changed = True
        return changed

    @staticmethod
    def _thread_jumps(fn: IRFunction) -> bool:
        blocks = fn.block_map()

        def final_target(label: int) -> int:
            seen = set()
            while label not in seen:
                seen.add(label)
                block = blocks.get(label)
                if (
                    block is None
                    or block.instrs
                    or block.term is None
                    or block.term.op != "jmp"
                ):
                    return label
                label = block.term.args[0]
            return label

        changed = False
        for block in fn.blocks:
            term = block.term
            if term is None:
                continue
            if term.op == "jmp":
                target = final_target(term.args[0])
                if target != term.args[0]:
                    term.args = (target,)
                    changed = True
            elif term.op == "br":
                t = final_target(term.args[1])
                f = final_target(term.args[2])
                if (t, f) != (term.args[1], term.args[2]):
                    term.args = (term.args[0], t, f)
                    changed = True
        return changed

    @staticmethod
    def _merge_chains(fn: IRFunction) -> bool:
        """Splice a block into its unique predecessor when that predecessor
        jumps straight to it — fewer jumps means fewer dispatch-loop
        iterations at run time."""
        changed = False
        while True:
            preds = predecessors(fn)
            blocks = fn.block_map()
            merged = False
            for block in fn.blocks:
                term = block.term
                if term is None or term.op != "jmp":
                    continue
                target_label = term.args[0]
                target = blocks.get(target_label)
                if (
                    target is None
                    or target is block
                    or target is fn.blocks[0]
                    or len(preds[target_label]) != 1
                ):
                    continue
                block.instrs.extend(target.instrs)
                block.term = target.term
                fn.blocks.remove(target)
                merged = True
                changed = True
                break
            if not merged:
                return changed


# ---------------------------------------------------------------------------
# Redundant load elimination (full tier)
# ---------------------------------------------------------------------------


class RedundantLoadPass(Pass):
    """Forward per-block available-load analysis.

    A ``load base.f`` whose value is already in a slot (from an earlier
    load or store of ``base.f`` with no intervening clobber) becomes a
    ``mov``.  Clobbers are conservative: any store to field name ``f``
    kills every cached ``·.f`` (two live slots may alias one object), and
    calls/sends/recvs kill everything (a callee may write; a rendezvous
    hands the subgraph to a thread that may write).  No *other* clobbers
    exist precisely because the checker keeps reservations disjoint
    between rendezvous points.
    """

    name = "rle"

    def run(self, module: IRModule) -> None:
        for fn in module.funcs.values():
            for block in fn.blocks:
                module.counters["loads_eliminated"] += self._block(block)

    @staticmethod
    def _block(block: BasicBlock) -> int:
        avail: Dict[Tuple[int, str], int] = {}
        eliminated = 0
        for idx, ins in enumerate(block.instrs):
            op = ins.op
            if op == "load":
                base, fieldname = ins.args
                key = (base, fieldname)
                cached = avail.get(key)
                if cached is not None:
                    ins = Instr("mov", ins.dest, cached)
                    block.instrs[idx] = ins
                    eliminated += 1
            elif op == "store":
                base, fieldname, value = ins.args
                for key in [k for k in avail if k[1] == fieldname]:
                    del avail[key]
            elif op in ("call", "send", "recv"):
                avail.clear()
            dest = ins.dest
            if dest is not None:
                for key in [
                    k for k, v in avail.items() if v == dest or k[0] == dest
                ]:
                    del avail[key]
            if ins.op == "load":
                avail[(ins.args[0], ins.args[1])] = ins.dest
            elif ins.op == "store":
                avail[(ins.args[0], ins.args[1])] = ins.args[2]
        return eliminated


# ---------------------------------------------------------------------------
# Mem2var promotion (full tier)
# ---------------------------------------------------------------------------

_PRIMS = (ast.INT, ast.BOOL, ast.UNIT)


def _promotable_field(decl: ast.FieldDecl) -> bool:
    """Primitive or maybe-of-primitive fields only: their values are never
    locations, so skipping ``write_field`` can never desynchronize the
    stored reference counts ``if disconnected`` relies on (§5.2)."""
    ty = decl.ty
    if ty in _PRIMS:
        return True
    return isinstance(ty, ast.MaybeType) and ty.inner in _PRIMS


_FIELD_DEFAULTS = {ast.INT: 0, ast.BOOL: False, ast.UNIT: UNIT}


class Mem2VarPass(Pass):
    """Promote primitive fields of non-escaping allocations to slots.

    A candidate is a slot defined exactly once, by a ``new``, and used only
    as the base of loads/stores — never stored into another object, passed
    to a call, sent, returned, branched on, or compared by ``disc``.  Such
    an object is unreachable from any other slot or heap object, so
    nothing (including disconnect traversals in other parts of the heap)
    can observe its fields; reads and writes of its primitive fields become
    register moves.  The allocation itself stays, keeping object counts,
    allocation telemetry, and reservation contents identical.
    """

    name = "mem2var"

    def run(self, module: IRModule) -> None:
        for fn in module.funcs.values():
            self._function(module, fn)

    @staticmethod
    def _function(module: IRModule, fn: IRFunction) -> None:
        def_count: Dict[int, int] = {}
        new_defs: Dict[int, Instr] = {}
        escaped: Set[int] = set()
        for ins in fn.instructions():
            if ins.dest is not None:
                def_count[ins.dest] = def_count.get(ins.dest, 0) + 1
                if ins.op == "new":
                    new_defs[ins.dest] = ins
            if ins.op == "load":
                continue  # base use is fine
            if ins.op == "asloc":
                continue  # asserts the base is a location; nothing leaks
            if ins.op == "store":
                escaped.add(ins.args[2])  # the stored value escapes
                continue  # base use is fine
            for slot in instr_uses(ins):
                escaped.add(slot)

        for slot, new_ins in new_defs.items():
            if def_count.get(slot) != 1 or slot in escaped:
                continue
            sdef = module.program.struct(new_ins.args[0])
            promoted = {
                decl.name: decl
                for decl in sdef.fields
                if _promotable_field(decl)
            }
            if not promoted:
                continue
            regs = {name: fn.new_slot() for name in promoted}
            module.counters["fields_promoted"] += len(regs)
            init_names, init_slots = new_ins.args[1], new_ins.args[2]
            inits = dict(zip(init_names, init_slots))
            seed: List[Instr] = []
            for name, decl in promoted.items():
                if name in inits:
                    seed.append(Instr("mov", regs[name], inits[name]))
                elif isinstance(decl.ty, ast.MaybeType):
                    seed.append(Instr("const", regs[name], NONE))
                else:
                    seed.append(Instr("const", regs[name],
                                      _FIELD_DEFAULTS[decl.ty]))
            for block in fn.blocks:
                out: List[Instr] = []
                for ins in block.instrs:
                    if ins is new_ins:
                        out.append(ins)
                        out.extend(seed)
                        continue
                    if (
                        ins.op == "load"
                        and ins.args[0] == slot
                        and ins.args[1] in regs
                    ):
                        out.append(Instr("mov", ins.dest, regs[ins.args[1]]))
                        module.counters["loads_eliminated"] += 1
                        continue
                    if (
                        ins.op == "store"
                        and ins.args[0] == slot
                        and ins.args[1] in regs
                    ):
                        out.append(Instr("mov", regs[ins.args[1]],
                                         ins.args[2]))
                        continue
                    out.append(ins)
                block.instrs = out


# ---------------------------------------------------------------------------
# Constant pooling and destination sinking (dispatch-count reduction)
# ---------------------------------------------------------------------------


class ConstPoolPass(Pass):
    """Move single-def constants into the frame prototype.

    A ``const`` whose destination is defined exactly once always produces
    the same value, so the value can live in a dedicated pool slot that the
    frame prototype (``BytecodeFunc.blank``) pre-initializes — the
    instruction then never executes at run time.  Constants inside loop
    bodies stop costing one dispatch per iteration.  Multi-def slots
    (surface variables reassigned to literals) are left alone.
    """

    name = "constpool"

    def run(self, module: IRModule) -> None:
        for fn in module.funcs.values():
            module.counters["consts_pooled"] += self._function(fn)

    @staticmethod
    def _function(fn: IRFunction) -> int:
        def_count: Dict[int, int] = {}
        const_defs: Dict[int, Instr] = {}
        for ins in fn.instructions():
            if ins.dest is not None:
                def_count[ins.dest] = def_count.get(ins.dest, 0) + 1
                if ins.op == "const":
                    const_defs[ins.dest] = ins
        pool: Dict[Tuple[type, object], int] = {}
        mapping: Dict[int, int] = {}
        for slot, ins in const_defs.items():
            if def_count[slot] != 1:
                continue
            value = ins.args[0]
            # Key by type too: True == 1 but bool and int pool separately.
            key = (value.__class__, value)
            p = pool.get(key)
            if p is None:
                p = pool[key] = fn.new_slot()
                fn.const_slots[p] = value
            mapping[slot] = p
        if not mapping:
            return 0
        for block in fn.blocks:
            block.instrs = [
                ins for ins in block.instrs
                if not (ins.op == "const" and ins.dest in mapping)
            ]
            for ins in block.instrs:
                rewrite_uses(ins, mapping)
            if block.term is not None:
                rewrite_uses(block.term, mapping)
        return len(mapping)


class SinkDestPass(Pass):
    """Merge ``X %t, ...; mov %v, %t`` into ``X %v, ...``.

    Lowering materializes every sub-expression into a fresh temporary and
    then moves it into the surface variable's slot; when the temporary has
    no other reader the move is pure dispatch overhead.  The producing
    instruction writes its destination after reading its operands, so the
    rewrite is safe even when ``%v`` appears among them.
    """

    name = "sinkdest"

    def run(self, module: IRModule) -> None:
        for fn in module.funcs.values():
            while self._function(module, fn):
                pass

    @staticmethod
    def _function(module: IRModule, fn: IRFunction) -> bool:
        use_count: Dict[int, int] = {}
        for ins in fn.instructions():
            for slot in instr_uses(ins):
                use_count[slot] = use_count.get(slot, 0) + 1
        changed = False
        for block in fn.blocks:
            instrs = block.instrs
            out: List[Instr] = []
            i = 0
            n = len(instrs)
            while i < n:
                ins = instrs[i]
                if (
                    i + 1 < n
                    and ins.dest is not None
                    and instrs[i + 1].op == "mov"
                    and instrs[i + 1].args[0] == ins.dest
                    and instrs[i + 1].dest != ins.dest
                    and use_count.get(ins.dest, 0) == 1
                ):
                    ins.dest = instrs[i + 1].dest
                    out.append(ins)
                    module.counters["dests_sunk"] += 1
                    changed = True
                    i += 2
                    continue
                out.append(ins)
                i += 1
            block.instrs = out
        return changed


# ---------------------------------------------------------------------------
# Dead code elimination
# ---------------------------------------------------------------------------

_PURE_OPS = ("const", "mov", "unop", "binop", "isnone", "issome")


class DeadCodePass(Pass):
    """Remove pure instructions whose result is never used (global slot
    liveness).  Loads join the pure set only in the full tier — in the
    observable tier every load is a trace event and a heap-read counter
    tick, so it must execute."""

    name = "dce"

    def run(self, module: IRModule) -> None:
        removable = _PURE_OPS + (("load",) if module.full else ())
        for fn in module.funcs.values():
            while self._sweep(fn, removable):
                pass

    @staticmethod
    def _sweep(fn: IRFunction, removable: Tuple[str, ...]) -> bool:
        _live_in, live_out = liveness(fn)
        changed = False
        for block in fn.blocks:
            live = set(live_out[block.label])
            if block.term is not None:
                live.update(instr_uses(block.term))
            kept: List[Instr] = []
            for ins in reversed(block.instrs):
                dest = ins.dest
                if (
                    dest is not None
                    and dest not in live
                    and ins.op in removable
                ):
                    changed = True
                    continue
                if dest is not None:
                    live.discard(dest)
                live.update(instr_uses(ins))
                kept.append(ins)
            kept.reverse()
            block.instrs = kept
        return changed
