"""The optimizing pass pipeline over the basic-block IR.

Two tiers exist because optimization must not outrun observability:

* **checked tier** (reservation checks on): only passes that preserve the
  exact heap-event sequence *and* the reservation-check count run —
  inlining, constant folding / branch simplification, local copy
  propagation, dead *pure* code elimination, pure-op loop optimization,
  register allocation.
* **full tier** (erased mode): adds mem2var promotion of region-local
  primitive fields, loop-invariant load motion, and global redundant-load
  elimination, which change *how often* the heap is read but never the
  values computed.  Since PR 9 the full tier also serves **traced** runs:
  when a tracer is attached (``module.observable``), the heap-eliminating
  rewrites take event-preserving forms — ``tload``/``tstore`` emit the
  original read/write events from registers at their original positions,
  ``sload`` primes a preheader cache without any event — so
  ``--trace-json`` stays byte-identical with the tree interpreter, which
  is exactly what ``--paranoid`` and the fuzzer's tree≡ir oracle verify.

The aliasing facts that license the full tier come from the checker:
reservations are disjoint and only rendezvous transfers move locations
between them (§3.2/fig 15), so between two instructions of one thread no
*other* thread can write a field the thread may read — a cached field
value stays valid until this thread itself stores to that field name or
reaches a call/send/recv.  Mem2var additionally uses the region discipline:
an allocation whose reference never escapes the frame (never stored,
passed, sent, returned, or compared for disconnection) is invisible to
``if disconnected`` traversals and to other threads, so its primitive
fields can live in registers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..lang import ast
from ..runtime.machine import Interpreter
from ..runtime.values import NONE, UNIT
from .cfg import (
    dominators,
    liveness,
    natural_loops,
    predecessors,
    remove_unreachable,
    successors,
)
from .nodes import BasicBlock, Instr, IRFunction, instr_uses, rewrite_uses


class IRModule:
    """All lowered functions of one program plus compile counters."""

    def __init__(self, program: ast.Program, funcs: Dict[str, IRFunction],
                 full: bool, observable: bool = False):
        self.program = program
        self.funcs = funcs
        #: Full tier: erased mode (see module doc).  Since PR 9 the full
        #: tier also runs under a tracer; ``observable`` selects the
        #: event-preserving rewrites (tload/tstore/sload) instead of
        #: refusing the optimizations outright.
        self.full = full
        #: A tracer is attached: every heap event must be emitted at its
        #: original position, byte-identical with the tree interpreter.
        self.observable = observable
        self.counters = {
            "inlined_calls": 0,
            "loads_eliminated": 0,
            "checks_erased": 0,
            "fields_promoted": 0,
            "consts_pooled": 0,
            "dests_sunk": 0,
            "loops_found": 0,
            "licm_hoisted": 0,
            "strength_reduced": 0,
            "tail_calls_looped": 0,
            "slots_coalesced": 0,
        }
        #: Per-pass counter deltas in execution order, recorded by
        #: :class:`PassManager` — the ``repro disasm`` attribution table.
        self.pass_log: List[Tuple[str, Dict[str, int]]] = []


class Pass:
    name = "pass"

    def run(self, module: IRModule) -> None:
        raise NotImplementedError


class PassManager:
    """Runs a fixed pass sequence over a module, logging what each pass
    contributed (counter deltas) into ``module.pass_log``."""

    def __init__(self, passes: List[Pass]):
        self.passes = passes

    def run(self, module: IRModule) -> None:
        for p in self.passes:
            before = dict(module.counters)
            p.run(module)
            delta = {
                key: value - before.get(key, 0)
                for key, value in module.counters.items()
                if value != before.get(key, 0)
            }
            module.pass_log.append((p.name, delta))


def default_pipeline(full: bool, observable: bool = False) -> "PassManager":
    passes: List[Pass] = [InlinePass(), SimplifyPass()]
    if full:
        # DCE + dest sinking first, so mem2var's escape analysis sees the
        # canonical base slot instead of dead copy chains of it.  Mem2var
        # runs before the loop pass so promoted fields are already plain
        # register movs by LICM time; the global load eliminator runs last
        # so it sees hoisted preheader loads as availability sources.
        passes += [DeadCodePass(), SinkDestPass(), Mem2VarPass(),
                   LoopOptPass(), RedundantLoadPass(), SimplifyPass()]
    else:
        # Pure-op LICM and strength reduction touch no heap event and no
        # guard, so they are sound in the observable/checked tier too.
        passes += [LoopOptPass()]
    passes += [DeadCodePass(), SimplifyPass(), ConstPoolPass(),
               SinkDestPass()]
    if full:
        # After dest sinking (so the call's result slot IS the returned
        # slot) and before register allocation (so the parallel-move
        # temporaries get coalesced away).
        passes.append(TailCallPass())
    passes.append(RegAllocPass())
    return PassManager(passes)


# ---------------------------------------------------------------------------
# Function inlining
# ---------------------------------------------------------------------------


class InlinePass(Pass):
    """Inline small leaf functions into their callers.

    Sound for any FCL function: calls are by-value over slots, the callee's
    parameter-guard ``check`` instructions travel with its body, and
    ``send``/``recv`` yields work identically from spliced code.  Rounds
    iterate so that a function whose calls were all inlined away becomes a
    leaf itself (rbtree's rotation helpers chain into ``balance`` this
    way), bounded by a caller-size cap.
    """

    name = "inline"

    def __init__(self, max_callee: int = 120, max_caller: int = 2500,
                 rounds: int = 4):
        self.max_callee = max_callee
        self.max_caller = max_caller
        self.rounds = rounds

    def run(self, module: IRModule) -> None:
        for _ in range(self.rounds):
            leaves = {
                name: fn
                for name, fn in module.funcs.items()
                if self._is_leaf(fn) and fn.size() <= self.max_callee
            }
            changed = False
            for fn in module.funcs.values():
                while fn.size() < self.max_caller:
                    site = self._find_site(fn, leaves)
                    if site is None:
                        break
                    bidx, iidx = site
                    callee = leaves[fn.blocks[bidx].instrs[iidx].args[0]]
                    self._splice(fn, bidx, iidx, callee)
                    module.counters["inlined_calls"] += 1
                    changed = True
            if not changed:
                break

    @staticmethod
    def _is_leaf(fn: IRFunction) -> bool:
        return all(ins.op != "call" for ins in fn.instructions())

    @staticmethod
    def _find_site(
        fn: IRFunction, leaves: Dict[str, IRFunction]
    ) -> Optional[Tuple[int, int]]:
        for bidx, block in enumerate(fn.blocks):
            for iidx, ins in enumerate(block.instrs):
                if ins.op == "call" and ins.args[0] in leaves:
                    if ins.args[0] != fn.name:
                        return bidx, iidx
        return None

    @staticmethod
    def _splice(caller: IRFunction, bidx: int, iidx: int,
                callee: IRFunction) -> None:
        block = caller.blocks[bidx]
        call_ins = block.instrs[iidx]
        _fname, argslots = call_ins.args
        dest = call_ins.dest
        offset = caller.nslots
        caller.nslots += callee.nslots
        slot_map = {s: s + offset for s in range(callee.nslots)}
        label_map = {b.label: caller.new_label() for b in callee.blocks}
        cont = BasicBlock(caller.new_label(), block.instrs[iidx + 1:],
                          block.term)
        new_blocks: List[BasicBlock] = []
        for cb in callee.blocks:
            nb = BasicBlock(label_map[cb.label])
            for ins in cb.instrs:
                copy = Instr(
                    ins.op,
                    None if ins.dest is None else ins.dest + offset,
                    *ins.args,
                )
                rewrite_uses(copy, slot_map)
                nb.instrs.append(copy)
            term = cb.term
            if term.op == "ret":
                nb.instrs.append(Instr("mov", dest, term.args[0] + offset))
                nb.term = Instr("jmp", None, cont.label)
            elif term.op == "jmp":
                nb.term = Instr("jmp", None, label_map[term.args[0]])
            else:  # br
                nb.term = Instr(
                    "br",
                    None,
                    term.args[0] + offset,
                    label_map[term.args[1]],
                    label_map[term.args[2]],
                )
            new_blocks.append(nb)
        # Redirect the call site: bind arguments into the callee's
        # parameter slots, jump into the spliced body, resume at `cont`.
        pre = block.instrs[:iidx]
        for i, s in enumerate(argslots):
            pre.append(Instr("mov", offset + i, s))
        block.instrs = pre
        block.term = Instr("jmp", None, label_map[callee.blocks[0].label])
        caller.blocks[bidx + 1:bidx + 1] = new_blocks + [cont]


# ---------------------------------------------------------------------------
# Simplification: constant folding, copy propagation, branch/jump cleanup
# ---------------------------------------------------------------------------

_FOLDABLE = (int, bool)


class SimplifyPass(Pass):
    """Trace-preserving cleanups: per-block constant folding and copy
    propagation, constant-branch conversion, jump threading, unreachable
    block removal, and straight-line block merging."""

    name = "simplify"

    def run(self, module: IRModule) -> None:
        for fn in module.funcs.values():
            for _ in range(10):
                changed = self._local(fn)
                changed |= self._branches(fn)
                changed |= self._thread_jumps(fn)
                changed |= remove_unreachable(fn)
                changed |= self._merge_chains(fn)
                if not changed:
                    break

    # -- per-block value numbering -----------------------------------------

    @staticmethod
    def _local(fn: IRFunction) -> bool:
        changed = False
        for block in fn.blocks:
            consts: Dict[int, object] = {}
            copies: Dict[int, int] = {}
            asloced: Set[int] = set()

            def invalidate(slot: int) -> None:
                consts.pop(slot, None)
                copies.pop(slot, None)
                asloced.discard(slot)
                for d in [d for d, s in copies.items() if s == slot]:
                    del copies[d]

            new_instrs: List[Instr] = []
            for ins in block.instrs:
                if copies:
                    rewrite_uses(ins, copies)
                folded = SimplifyPass._fold(ins, consts)
                if folded is not None:
                    ins = folded
                    changed = True
                if ins.op == "asloc":
                    # A repeated assertion on an unmodified slot is a no-op
                    # (asloc has no counter, unlike check).
                    slot = ins.args[0]
                    if slot in asloced:
                        changed = True
                        continue
                    asloced.add(slot)
                dest = ins.dest
                if dest is not None:
                    invalidate(dest)
                    if ins.op == "const":
                        consts[dest] = ins.args[0]
                    elif ins.op == "mov":
                        src = ins.args[0]
                        if src in consts:
                            ins = Instr("const", dest, consts[src])
                            consts[dest] = ins.args[0]
                            changed = True
                        elif src != dest:
                            copies[dest] = copies.get(src, src)
                new_instrs.append(ins)
            block.instrs = new_instrs
            if block.term is not None and copies:
                rewrite_uses(block.term, copies)
            # Constant branch condition → unconditional jump.
            term = block.term
            if (
                term is not None
                and term.op == "br"
                and term.args[0] in consts
            ):
                taken = term.args[1] if consts[term.args[0]] else term.args[2]
                block.term = Instr("jmp", None, taken)
                changed = True
        return changed

    @staticmethod
    def _fold(ins: Instr, consts: Dict[int, object]) -> Optional[Instr]:
        op = ins.op
        if op == "binop":
            bop, l, r = ins.args
            if l in consts and r in consts:
                lv, rv = consts[l], consts[r]
                if type(lv) in _FOLDABLE and type(rv) in _FOLDABLE:
                    try:
                        return Instr("const", ins.dest,
                                     Interpreter._binop(bop, lv, rv))
                    except Exception:
                        return None  # e.g. division by zero: fold nothing
            return None
        if op == "unop":
            uop, s = ins.args
            if s in consts and type(consts[s]) in _FOLDABLE:
                value = consts[s]
                return Instr("const", ins.dest,
                             (not value) if uop == "!" else -value)
            return None
        if op == "isnone" and ins.args[0] in consts:
            return Instr("const", ins.dest, consts[ins.args[0]] is NONE)
        if op == "issome" and ins.args[0] in consts:
            return Instr("const", ins.dest, consts[ins.args[0]] is not NONE)
        return None

    # -- CFG cleanups ------------------------------------------------------

    @staticmethod
    def _branches(fn: IRFunction) -> bool:
        changed = False
        for block in fn.blocks:
            term = block.term
            if term is not None and term.op == "br" and term.args[1] == term.args[2]:
                block.term = Instr("jmp", None, term.args[1])
                changed = True
        return changed

    @staticmethod
    def _thread_jumps(fn: IRFunction) -> bool:
        blocks = fn.block_map()

        def final_target(label: int) -> int:
            seen = set()
            while label not in seen:
                seen.add(label)
                block = blocks.get(label)
                if (
                    block is None
                    or block.instrs
                    or block.term is None
                    or block.term.op != "jmp"
                ):
                    return label
                label = block.term.args[0]
            return label

        changed = False
        for block in fn.blocks:
            term = block.term
            if term is None:
                continue
            if term.op == "jmp":
                target = final_target(term.args[0])
                if target != term.args[0]:
                    term.args = (target,)
                    changed = True
            elif term.op == "br":
                t = final_target(term.args[1])
                f = final_target(term.args[2])
                if (t, f) != (term.args[1], term.args[2]):
                    term.args = (term.args[0], t, f)
                    changed = True
        return changed

    @staticmethod
    def _merge_chains(fn: IRFunction) -> bool:
        """Splice a block into its unique predecessor when that predecessor
        jumps straight to it — fewer jumps means fewer dispatch-loop
        iterations at run time."""
        changed = False
        while True:
            preds = predecessors(fn)
            blocks = fn.block_map()
            merged = False
            for block in fn.blocks:
                term = block.term
                if term is None or term.op != "jmp":
                    continue
                target_label = term.args[0]
                target = blocks.get(target_label)
                if (
                    target is None
                    or target is block
                    or target is fn.blocks[0]
                    or len(preds[target_label]) != 1
                ):
                    continue
                block.instrs.extend(target.instrs)
                block.term = target.term
                fn.blocks.remove(target)
                merged = True
                changed = True
                break
            if not merged:
                return changed


# ---------------------------------------------------------------------------
# Redundant load elimination (full tier)
# ---------------------------------------------------------------------------


def _effect_summaries(
    module: IRModule,
) -> Dict[str, Tuple[Optional[Set[str]], bool]]:
    """Per-function heap effects ``name → (may_store, may_sync)``.

    ``may_store`` is the set of field names the function (or anything it
    transitively calls) may write — ``None`` means unknown/everything.
    ``may_sync`` is True when the function may reach a ``send``/``recv``
    rendezvous, after which *other* threads may write fields too.  A
    call-graph fixpoint, so recursion converges to a sound overestimate.
    """
    effects: Dict[str, Tuple[Optional[Set[str]], bool]] = {}
    calls: Dict[str, Set[str]] = {}
    for name, fn in module.funcs.items():
        stores: Optional[Set[str]] = set()
        sync = False
        callees: Set[str] = set()
        for ins in fn.instructions():
            op = ins.op
            if op in ("store", "tstore"):
                stores.add(ins.args[1])
            elif op in ("send", "recv"):
                sync = True
            elif op == "call":
                callees.add(ins.args[0])
        effects[name] = (stores, sync)
        calls[name] = callees
    changed = True
    while changed:
        changed = False
        for name in module.funcs:
            stores, sync = effects[name]
            for callee in calls[name]:
                cstores, csync = effects.get(callee, (None, True))
                if cstores is None:
                    if stores is not None:
                        stores = None
                        changed = True
                elif stores is not None and not cstores <= stores:
                    stores = stores | cstores
                    changed = True
                if csync and not sync:
                    sync = True
                    changed = True
            effects[name] = (stores, sync)
    return effects


class RedundantLoadPass(Pass):
    """Global forward available-load analysis (full tier only).

    A ``load base.f`` whose value is already in a slot (from an earlier
    load or store of ``base.f`` on every path, with no intervening
    clobber) becomes a ``mov`` — or, under a tracer, a ``tload`` that
    emits the read event at the original position without touching the
    heap.  Clobbers are conservative: any store to field name ``f`` kills
    every cached ``·.f`` (two live slots may alias one object), a call
    kills the fields its effect summary says the callee may write, and
    sends/recvs kill everything (a rendezvous hands the subgraph to a
    thread that may write).  No *other* clobbers exist precisely because
    the checker keeps reservations disjoint between rendezvous points.
    """

    name = "rle"

    def run(self, module: IRModule) -> None:
        effects = _effect_summaries(module)
        for fn in module.funcs.values():
            module.counters["loads_eliminated"] += self._function(
                module, fn, effects
            )

    @classmethod
    def _function(
        cls,
        module: IRModule,
        fn: IRFunction,
        effects: Dict[str, Tuple[Optional[Set[str]], bool]],
    ) -> int:
        if not fn.blocks:
            return 0
        preds = predecessors(fn)
        entry = fn.blocks[0].label
        # Forward dataflow, meet = intersection, optimistic TOP start
        # (absent from in_states/out_states means "not yet computed").
        in_states: Dict[int, Dict[Tuple[int, str], int]] = {}
        out_states: Dict[int, Dict[Tuple[int, str], int]] = {}
        changed = True
        while changed:
            changed = False
            for block in fn.blocks:
                label = block.label
                if label == entry:
                    in_state: Dict[Tuple[int, str], int] = {}
                else:
                    met: Optional[Dict[Tuple[int, str], int]] = None
                    for p in preds[label]:
                        prev = out_states.get(p)
                        if prev is None:
                            continue
                        if met is None:
                            met = dict(prev)
                        else:
                            met = {
                                k: v for k, v in met.items()
                                if prev.get(k) == v
                            }
                    if met is None:
                        continue  # no processed predecessor yet
                    in_state = met
                in_states[label] = in_state
                out = dict(in_state)
                for ins in block.instrs:
                    cls._step(out, ins, effects)
                if out_states.get(label) != out:
                    out_states[label] = out
                    changed = True
        eliminated = 0
        for block in fn.blocks:
            avail = dict(in_states.get(block.label, {}))
            for idx, ins in enumerate(block.instrs):
                if ins.op in ("load", "sload"):
                    cached = avail.get((ins.args[0], ins.args[1]))
                    if cached is not None:
                        if ins.op == "load" and module.observable:
                            block.instrs[idx] = Instr(
                                "tload", ins.dest, ins.args[0], ins.args[1],
                                cached,
                            )
                        else:
                            block.instrs[idx] = Instr("mov", ins.dest, cached)
                        eliminated += 1
                cls._step(avail, ins, effects)
        return eliminated

    @staticmethod
    def _step(
        avail: Dict[Tuple[int, str], int],
        ins: Instr,
        effects: Dict[str, Tuple[Optional[Set[str]], bool]],
    ) -> None:
        """Transfer one instruction over the availability map (original
        pre-rewrite semantics: a rewritten load leaves its dest holding the
        field's value just the same)."""
        op = ins.op
        if op in ("store", "tstore"):
            fieldname = ins.args[1]
            for key in [k for k in avail if k[1] == fieldname]:
                del avail[key]
        elif op == "call":
            stores, sync = effects.get(ins.args[0], (None, True))
            if stores is None or sync:
                avail.clear()
            elif stores:
                for key in [k for k in avail if k[1] in stores]:
                    del avail[key]
        elif op in ("send", "recv"):
            avail.clear()
        dest = ins.dest
        if dest is not None:
            for key in [
                k for k, v in avail.items() if v == dest or k[0] == dest
            ]:
                del avail[key]
        if op in ("load", "sload"):
            avail[(ins.args[0], ins.args[1])] = ins.dest
        elif op == "store":
            avail[(ins.args[0], ins.args[1])] = ins.args[2]


# ---------------------------------------------------------------------------
# Mem2var promotion (full tier)
# ---------------------------------------------------------------------------

_PRIMS = (ast.INT, ast.BOOL, ast.UNIT)


def _promotable_field(decl: ast.FieldDecl) -> bool:
    """Primitive or maybe-of-primitive fields only: their values are never
    locations, so skipping ``write_field`` can never desynchronize the
    stored reference counts ``if disconnected`` relies on (§5.2)."""
    ty = decl.ty
    if ty in _PRIMS:
        return True
    return isinstance(ty, ast.MaybeType) and ty.inner in _PRIMS


_FIELD_DEFAULTS = {ast.INT: 0, ast.BOOL: False, ast.UNIT: UNIT}


class Mem2VarPass(Pass):
    """Promote primitive fields of non-escaping allocations to slots.

    A candidate is a slot defined exactly once, by a ``new``, and used only
    as the base of loads/stores — never stored into another object, passed
    to a call, sent, returned, branched on, or compared by ``disc``.  Such
    an object is unreachable from any other slot or heap object, so
    nothing (including disconnect traversals in other parts of the heap)
    can observe its fields; reads and writes of its primitive fields become
    register moves.  The allocation itself stays, keeping object counts,
    allocation telemetry, and reservation contents identical.

    Under a tracer the rewrites become ``tload``/``tstore`` instead of
    ``mov``: the promoted register carries exactly the value sequence the
    heap field would have held, so emitting the read/write events from the
    register at the original positions keeps the trace byte-identical (the
    heap field itself goes stale, but the object never escapes, so no
    traversal or rendered result can observe the staleness).
    """

    name = "mem2var"

    def run(self, module: IRModule) -> None:
        for fn in module.funcs.values():
            self._function(module, fn)

    @staticmethod
    def _function(module: IRModule, fn: IRFunction) -> None:
        def_count: Dict[int, int] = {}
        new_defs: Dict[int, Instr] = {}
        escaped: Set[int] = set()
        for ins in fn.instructions():
            if ins.dest is not None:
                def_count[ins.dest] = def_count.get(ins.dest, 0) + 1
                if ins.op == "new":
                    new_defs[ins.dest] = ins
            if ins.op == "load":
                continue  # base use is fine
            if ins.op == "asloc":
                continue  # asserts the base is a location; nothing leaks
            if ins.op == "store":
                escaped.add(ins.args[2])  # the stored value escapes
                continue  # base use is fine
            for slot in instr_uses(ins):
                escaped.add(slot)

        for slot, new_ins in new_defs.items():
            if def_count.get(slot) != 1 or slot in escaped:
                continue
            sdef = module.program.struct(new_ins.args[0])
            promoted = {
                decl.name: decl
                for decl in sdef.fields
                if _promotable_field(decl)
            }
            if not promoted:
                continue
            regs = {name: fn.new_slot() for name in promoted}
            module.counters["fields_promoted"] += len(regs)
            init_names, init_slots = new_ins.args[1], new_ins.args[2]
            inits = dict(zip(init_names, init_slots))
            seed: List[Instr] = []
            for name, decl in promoted.items():
                if name in inits:
                    seed.append(Instr("mov", regs[name], inits[name]))
                elif isinstance(decl.ty, ast.MaybeType):
                    seed.append(Instr("const", regs[name], NONE))
                else:
                    seed.append(Instr("const", regs[name],
                                      _FIELD_DEFAULTS[decl.ty]))
            for block in fn.blocks:
                out: List[Instr] = []
                for ins in block.instrs:
                    if ins is new_ins:
                        out.append(ins)
                        out.extend(seed)
                        continue
                    if (
                        ins.op == "load"
                        and ins.args[0] == slot
                        and ins.args[1] in regs
                    ):
                        if module.observable:
                            out.append(Instr("tload", ins.dest, slot,
                                             ins.args[1], regs[ins.args[1]]))
                        else:
                            out.append(Instr("mov", ins.dest,
                                             regs[ins.args[1]]))
                        module.counters["loads_eliminated"] += 1
                        continue
                    if (
                        ins.op == "store"
                        and ins.args[0] == slot
                        and ins.args[1] in regs
                    ):
                        if module.observable:
                            out.append(Instr("tstore", regs[ins.args[1]],
                                             slot, ins.args[1], ins.args[2]))
                        else:
                            out.append(Instr("mov", regs[ins.args[1]],
                                             ins.args[2]))
                        continue
                    out.append(ins)
                block.instrs = out


# ---------------------------------------------------------------------------
# Loop-invariant code motion and strength reduction
# ---------------------------------------------------------------------------

#: Pure ops that cannot fault at run time in a type-checked program, so
#: executing them speculatively in a preheader is safe even when the loop
#: body would have skipped them.  Division/modulo are the only excluded
#: operators (divide-by-zero).
_SPECULATABLE = ("const", "mov", "isnone", "issome", "unop")


class LoopOptPass(Pass):
    """Loop-invariant code motion plus induction-variable strength
    reduction over the natural loops of the block CFG.

    Pure invariant ops are *moved* into a fresh preheader — sound in every
    tier because they emit no heap event and no guard.  Invariant *loads*
    hoist only in the full tier, only when the loop (including everything
    it calls, per the effect summaries) stores neither the field nor
    reaches a rendezvous, and only from blocks guaranteed to execute every
    time the loop is entered (blocks dominating every exit and back edge —
    otherwise the speculated read could fault where the original program
    did not).  Under a tracer the load stays put as a ``tload`` fed by a
    silent ``sload`` in the preheader, preserving the event position.

    Strength reduction rewrites ``j = i * k`` (``i`` a basic induction
    variable ``i = i ± c``, ``k`` and ``c`` invariant) into an
    accumulator updated by ``k*c`` right after each increment — the
    multiply inside the loop becomes a register move.
    """

    name = "loopopt"

    def run(self, module: IRModule) -> None:
        effects = _effect_summaries(module) if module.full else None
        for fn in module.funcs.values():
            self._function(module, fn, effects)

    def _function(self, module: IRModule, fn: IRFunction, effects) -> None:
        module.counters["loops_found"] += len(natural_loops(fn))
        # Each successful transformation rewires the CFG (a new preheader),
        # so rediscover loops from scratch after every change.
        for _ in range(24):
            changed = False
            for loop in natural_loops(fn):
                if self._optimize_loop(module, fn, loop, effects):
                    changed = True
                    break
            if not changed:
                return

    def _optimize_loop(self, module, fn: IRFunction, loop, effects) -> bool:
        if not fn.blocks or loop.header == fn.blocks[0].label:
            return False  # no spot for a preheader before the entry block
        blocks = fn.block_map()
        body = [blocks[label] for label in sorted(loop.body)]

        defs_in_loop: Dict[int, int] = {}
        stored_fields: Set[str] = set()
        stores_unknown = False
        sync = False
        for block in body:
            for ins in block.instrs:
                if ins.dest is not None:
                    defs_in_loop[ins.dest] = defs_in_loop.get(ins.dest, 0) + 1
                op = ins.op
                if op in ("store", "tstore"):
                    stored_fields.add(ins.args[1])
                elif op in ("send", "recv"):
                    sync = True
                elif op == "call":
                    cstores, csync = (effects or {}).get(
                        ins.args[0], (None, True)
                    )
                    if cstores is None:
                        stores_unknown = True
                    else:
                        stored_fields |= cstores
                    sync = sync or csync
        loads_ok = bool(effects) and not sync and not stores_unknown

        live_in, _live_out = liveness(fn)
        banned: Set[int] = set(live_in.get(loop.header, ()))
        exit_or_tail: Set[int] = set(loop.tails)
        for block in body:
            for succ in successors(block):
                if succ not in loop.body:
                    banned |= live_in.get(succ, set())
                    exit_or_tail.add(block.label)
        dom = dominators(fn)
        # Blocks that execute on *every* entry of the loop: they dominate
        # every block that can leave the loop body (exit or back edge).
        guaranteed = {
            label for label in loop.body
            if all(label in dom.get(x, ()) for x in exit_or_tail)
        }

        hoisted: List[Instr] = []
        hoisted_dests: Set[int] = set()

        def invariant(slot: int) -> bool:
            return defs_in_loop.get(slot, 0) == 0 or slot in hoisted_dests

        scanning = True
        while scanning:
            scanning = False
            for block in body:
                kept: List[Instr] = []
                for ins in block.instrs:
                    op = ins.op
                    movable = False
                    if op in ("load", "sload"):
                        if (
                            loads_ok
                            and block.label in guaranteed
                            and ins.args[1] not in stored_fields
                            and invariant(ins.args[0])
                        ):
                            if op == "load" and module.observable:
                                # Keep the event in place; prime a silent
                                # preheader read into a fresh cache slot.
                                cache = fn.new_slot()
                                hoisted.append(Instr(
                                    "sload", cache, ins.args[0], ins.args[1]
                                ))
                                kept.append(Instr(
                                    "tload", ins.dest, ins.args[0],
                                    ins.args[1], cache,
                                ))
                                module.counters["licm_hoisted"] += 1
                                scanning = True
                                continue
                            movable = (
                                defs_in_loop.get(ins.dest, 0) == 1
                                and ins.dest not in banned
                            )
                    elif op in _SPECULATABLE or (
                        op == "binop" and ins.args[0] not in ("/", "%")
                    ):
                        movable = (
                            all(invariant(s) for s in instr_uses(ins))
                            and defs_in_loop.get(ins.dest, 0) == 1
                            and ins.dest not in banned
                        )
                    if movable:
                        hoisted.append(ins)
                        hoisted_dests.add(ins.dest)
                        module.counters["licm_hoisted"] += 1
                        scanning = True
                    else:
                        kept.append(ins)
                block.instrs = kept

        if not hoisted:
            hoisted = self._strength_reduce(module, fn, loop, body,
                                            defs_in_loop)
        if not hoisted:
            return False
        self._add_preheader(fn, loop, hoisted)
        return True

    @staticmethod
    def _strength_reduce(module, fn: IRFunction, loop, body,
                         defs_in_loop) -> List[Instr]:
        """``j = i * k`` with a basic IV ``i`` → accumulator + additions.
        Returns the preheader initializers (empty when nothing applied)."""

        def invariant(slot: int) -> bool:
            return defs_in_loop.get(slot, 0) == 0

        # slot → ("+"|"-", step-slot) for each basic induction variable.
        ivs: Dict[int, Tuple[str, int]] = {}
        increments: Dict[int, Tuple[BasicBlock, Instr]] = {}
        for block in body:
            for ins in block.instrs:
                if (
                    ins.op == "binop"
                    and ins.dest is not None
                    and defs_in_loop.get(ins.dest) == 1
                ):
                    bop, l, r = ins.args
                    i = ins.dest
                    if bop == "+" and l == i and invariant(r):
                        ivs[i] = ("+", r)
                    elif bop == "+" and r == i and invariant(l):
                        ivs[i] = ("+", l)
                    elif bop == "-" and l == i and invariant(r):
                        ivs[i] = ("-", r)
                    else:
                        continue
                    increments[i] = (block, ins)

        inits: List[Instr] = []
        for block in body:
            for idx, ins in enumerate(list(block.instrs)):
                if ins.op != "binop" or ins.args[0] != "*":
                    continue
                j = ins.dest
                if j is None or defs_in_loop.get(j) != 1 or j in ivs:
                    continue
                _bop, l, r = ins.args
                if l in ivs and invariant(r):
                    i, k = l, r
                elif r in ivs and invariant(l):
                    i, k = r, l
                else:
                    continue
                inc_op, c = ivs[i]
                acc = fn.new_slot()
                step = fn.new_slot()
                # Preheader: acc = i*k (entry value), step = c*k.
                inits.append(Instr("binop", acc, "*", l, r))
                inits.append(Instr("binop", step, "*", c, k))
                # Keep acc ≡ i*k by bumping it right after the increment.
                inc_block, inc_ins = increments[i]
                pos = inc_block.instrs.index(inc_ins)
                inc_block.instrs.insert(
                    pos + 1, Instr("binop", acc, inc_op, acc, step)
                )
                # The in-loop multiply becomes a register move.
                where = block.instrs.index(ins)
                block.instrs[where] = Instr("mov", j, acc)
                module.counters["strength_reduced"] += 1
        return inits

    @staticmethod
    def _add_preheader(fn: IRFunction, loop, instrs: List[Instr]) -> None:
        pre = BasicBlock(fn.new_label(), instrs,
                         Instr("jmp", None, loop.header))
        for block in fn.blocks:
            if block.label in loop.body:
                continue  # back-edge predecessors keep targeting the header
            term = block.term
            if term is None:
                continue
            if term.op == "jmp" and term.args[0] == loop.header:
                term.args = (pre.label,)
            elif term.op == "br":
                t = pre.label if term.args[1] == loop.header else term.args[1]
                f = pre.label if term.args[2] == loop.header else term.args[2]
                term.args = (term.args[0], t, f)
        index = next(
            i for i, b in enumerate(fn.blocks) if b.label == loop.header
        )
        fn.blocks.insert(index, pre)


# ---------------------------------------------------------------------------
# Constant pooling and destination sinking (dispatch-count reduction)
# ---------------------------------------------------------------------------


class ConstPoolPass(Pass):
    """Move single-def constants into the frame prototype.

    A ``const`` whose destination is defined exactly once always produces
    the same value, so the value can live in a dedicated pool slot that the
    frame prototype (``BytecodeFunc.blank``) pre-initializes — the
    instruction then never executes at run time.  Constants inside loop
    bodies stop costing one dispatch per iteration.  Multi-def slots
    (surface variables reassigned to literals) are left alone.
    """

    name = "constpool"

    def run(self, module: IRModule) -> None:
        for fn in module.funcs.values():
            module.counters["consts_pooled"] += self._function(fn)

    @staticmethod
    def _function(fn: IRFunction) -> int:
        def_count: Dict[int, int] = {}
        const_defs: Dict[int, Instr] = {}
        for ins in fn.instructions():
            if ins.dest is not None:
                def_count[ins.dest] = def_count.get(ins.dest, 0) + 1
                if ins.op == "const":
                    const_defs[ins.dest] = ins
        pool: Dict[Tuple[type, object], int] = {}
        mapping: Dict[int, int] = {}
        for slot, ins in const_defs.items():
            if def_count[slot] != 1:
                continue
            value = ins.args[0]
            # Key by type too: True == 1 but bool and int pool separately.
            key = (value.__class__, value)
            p = pool.get(key)
            if p is None:
                p = pool[key] = fn.new_slot()
                fn.const_slots[p] = value
            mapping[slot] = p
        if not mapping:
            return 0
        for block in fn.blocks:
            block.instrs = [
                ins for ins in block.instrs
                if not (ins.op == "const" and ins.dest in mapping)
            ]
            for ins in block.instrs:
                rewrite_uses(ins, mapping)
            if block.term is not None:
                rewrite_uses(block.term, mapping)
        return len(mapping)


class SinkDestPass(Pass):
    """Merge ``X %t, ...; mov %v, %t`` into ``X %v, ...``.

    Lowering materializes every sub-expression into a fresh temporary and
    then moves it into the surface variable's slot; when the temporary has
    no other reader the move is pure dispatch overhead.  The producing
    instruction writes its destination after reading its operands, so the
    rewrite is safe even when ``%v`` appears among them.
    """

    name = "sinkdest"

    def run(self, module: IRModule) -> None:
        for fn in module.funcs.values():
            while self._function(module, fn):
                pass

    @staticmethod
    def _function(module: IRModule, fn: IRFunction) -> bool:
        use_count: Dict[int, int] = {}
        for ins in fn.instructions():
            for slot in instr_uses(ins):
                use_count[slot] = use_count.get(slot, 0) + 1
        changed = False
        for block in fn.blocks:
            instrs = block.instrs
            out: List[Instr] = []
            i = 0
            n = len(instrs)
            while i < n:
                ins = instrs[i]
                if (
                    i + 1 < n
                    and ins.dest is not None
                    and instrs[i + 1].op == "mov"
                    and instrs[i + 1].args[0] == ins.dest
                    and instrs[i + 1].dest != ins.dest
                    and use_count.get(ins.dest, 0) == 1
                ):
                    ins.dest = instrs[i + 1].dest
                    out.append(ins)
                    module.counters["dests_sunk"] += 1
                    changed = True
                    i += 2
                    continue
                out.append(ins)
                i += 1
            block.instrs = out
        return changed


# ---------------------------------------------------------------------------
# Self-tail-call elimination
# ---------------------------------------------------------------------------


class TailCallPass(Pass):
    """Rewrite self-recursive tail calls into parameter moves plus a jump
    back to the entry block, turning the recursion into a loop.

    A tail call is a block whose last instruction calls the enclosing
    function and whose terminator returns the call's destination —
    possibly through a chain of ``jmp`` join blocks whose only
    instructions are ``mov``s forwarding the result, which is how
    lowering shapes ``if``-expression results.  Skipping those movs on
    the looping path is sound: every slot use stays dominated by a def
    on every path from entry, so the slots they would have written are
    re-defined before any use the loop can reach.  The rewrite
    copies the argument slots into fresh temporaries and the temporaries
    into the parameter slots (the two-step dance is the parallel-move
    problem: an argument may itself live in a parameter slot); register
    allocation afterwards coalesces almost every one of these moves away,
    typically leaving a bare ``jmp``.

    Sound because lowering guarantees every slot use is dominated by a
    def (FCL variables are initialized at declaration), so re-entering
    the entry block with stale non-parameter slots can never expose an
    uninitialized read; and calls emit no heap event, so traces are
    unchanged.  Runs in the full tier only, and right before register
    allocation so liveness sees the loop (pool and parameter slots pick
    up the back-edge interference automatically).
    """

    name = "tailcall"

    def run(self, module: IRModule) -> None:
        if not module.full:
            return
        for fn in module.funcs.values():
            module.counters["tail_calls_looped"] += self._function(fn)

    @staticmethod
    def _returns_dest(blocks, term, dest) -> bool:
        """Does ``term`` reach a ``ret`` of ``dest``, crossing only jmp
        blocks made of result-forwarding movs?"""
        current = dest
        seen: Set[int] = set()
        while term is not None and term.op == "jmp":
            label = term.args[0]
            if label in seen:
                return False
            seen.add(label)
            block = blocks.get(label)
            if block is None:
                return False
            for ins in block.instrs:
                if ins.op != "mov":
                    return False
                if ins.args[0] == current:
                    current = ins.dest
                elif ins.dest == current:
                    return False
            term = block.term
        return (
            term is not None and term.op == "ret" and term.args[0] == current
        )

    @staticmethod
    def _function(fn: IRFunction) -> int:
        if not fn.blocks:
            return 0
        entry = fn.blocks[0].label
        blocks = fn.block_map()
        converted = 0
        for block in fn.blocks:
            if not block.instrs:
                continue
            last = block.instrs[-1]
            if last.op != "call" or last.args[0] != fn.name:
                continue
            if not TailCallPass._returns_dest(blocks, block.term, last.dest):
                continue
            argslots = last.args[1]
            block.instrs.pop()
            temps = [fn.new_slot() for _ in argslots]
            for temp, slot in zip(temps, argslots):
                block.instrs.append(Instr("mov", temp, slot))
            for param, temp in enumerate(temps):
                block.instrs.append(Instr("mov", param, temp))
            block.term = Instr("jmp", None, entry)
            converted += 1
        return converted


# ---------------------------------------------------------------------------
# Dead code elimination
# ---------------------------------------------------------------------------

_PURE_OPS = ("const", "mov", "unop", "binop", "isnone", "issome")


class DeadCodePass(Pass):
    """Remove pure instructions whose result is never used (global slot
    liveness).  Loads join the pure set only in the *unobserved* full tier
    — under a tracer every load is a trace event, so it must execute
    (``sload`` is the exception: it is silent by definition, so a dead one
    can always go)."""

    name = "dce"

    def run(self, module: IRModule) -> None:
        removable = _PURE_OPS + (("sload",) if module.full else ())
        if module.full and not module.observable:
            removable += ("load",)
        for fn in module.funcs.values():
            while self._sweep(fn, removable):
                pass

    @staticmethod
    def _sweep(fn: IRFunction, removable: Tuple[str, ...]) -> bool:
        _live_in, live_out = liveness(fn)
        changed = False
        for block in fn.blocks:
            live = set(live_out[block.label])
            if block.term is not None:
                live.update(instr_uses(block.term))
            kept: List[Instr] = []
            for ins in reversed(block.instrs):
                dest = ins.dest
                if (
                    dest is not None
                    and dest not in live
                    and ins.op in removable
                ):
                    changed = True
                    continue
                if dest is not None:
                    live.discard(dest)
                live.update(instr_uses(ins))
                kept.append(ins)
            kept.reverse()
            block.instrs = kept
        return changed


# ---------------------------------------------------------------------------
# Register allocation (frame-slot coalescing)
# ---------------------------------------------------------------------------


class RegAllocPass(Pass):
    """Collapse the append-only slot space via liveness-based coloring.

    Lowering and inlining only ever append slots, so by the end of the
    pipeline a frame can be several times larger than the number of values
    ever simultaneously live — and every call pays for it in the
    ``blank[:]`` frame copy.  This pass builds the slot interference graph
    (two slots interfere when one is defined while the other is live),
    aggressively coalesces ``mov``-related slots that do not interfere
    (Chaitin-style, which also deletes the mov), and greedily recolors
    everything into a dense range.

    Precoloring: parameters keep slots ``0..nparams-1`` (the call protocol
    writes arguments there before the first instruction).  Constant-pool
    slots have no def, so they get explicit mutual edges plus edges to
    everything valid at entry (parameters and entry-live slots) — after
    their last use their color is reusable, the pre-initialized value
    having served its purpose.  Runs last: every later pass would have to
    reason about slot sharing.
    """

    name = "regalloc"

    def run(self, module: IRModule) -> None:
        for fn in module.funcs.values():
            module.counters["slots_coalesced"] += self._function(fn)

    @staticmethod
    def _function(fn: IRFunction) -> int:
        if not fn.blocks:
            return 0
        nparams = fn.nparams
        old_nslots = fn.nslots
        pool = set(fn.const_slots)
        live_in, live_out = liveness(fn)

        adj: Dict[int, Set[int]] = {}

        def node(s: int) -> None:
            if s not in adj:
                adj[s] = set()

        def edge(a: int, b: int) -> None:
            if a != b:
                adj.setdefault(a, set()).add(b)
                adj.setdefault(b, set()).add(a)

        for p in range(nparams):
            node(p)
        for s in pool:
            node(s)
        # Everything holding a value at function entry must stay distinct.
        entry_atoms = sorted(
            set(range(nparams)) | pool | live_in.get(fn.blocks[0].label, set())
        )
        for i, a in enumerate(entry_atoms):
            for b in entry_atoms[i + 1:]:
                edge(a, b)

        for block in fn.blocks:
            live = set(live_out[block.label])
            seq = list(block.instrs)
            if block.term is not None:
                seq.append(block.term)
            for ins in reversed(seq):
                uses = instr_uses(ins)
                for s in uses:
                    node(s)
                dest = ins.dest
                if dest is not None:
                    node(dest)
                    # A def interferes with everything live after it —
                    # except a mov's own source, whose value it carries
                    # (the coalescing opportunity).
                    skip = ins.args[0] if ins.op == "mov" else None
                    for s in live:
                        if s != skip:
                            edge(dest, s)
                    live.discard(dest)
                live.update(uses)

        # Union-find with class-level adjacency and precolor tracking.
        parent = {s: s for s in adj}

        def find(s: int) -> int:
            while parent[s] != s:
                parent[s] = parent[parent[s]]
                s = parent[s]
            return s

        members: Dict[int, Set[int]] = {s: {s} for s in adj}
        cadj: Dict[int, Set[int]] = {s: set(neigh) for s, neigh in adj.items()}
        precolor: Dict[int, Optional[int]] = {
            s: (s if s < nparams else None) for s in adj
        }

        for ins in fn.instructions():
            if ins.op != "mov":
                continue
            d, s = ins.dest, ins.args[0]
            if d is None or d not in parent or s not in parent:
                continue
            rd, rs = find(d), find(s)
            if rd == rs:
                continue
            if precolor[rd] is not None and precolor[rs] is not None:
                continue  # two different parameters can never merge
            if cadj[rd] & members[rs]:
                continue  # the classes interfere somewhere
            winner, loser = (
                (rd, rs) if precolor[rd] is not None else (rs, rd)
            )
            parent[loser] = winner
            members[winner] |= members.pop(loser)
            cadj[winner] |= cadj.pop(loser)

        # Greedy coloring: parameters keep their index; everything else
        # takes the smallest color its neighbors have not claimed.
        color: Dict[int, int] = {}
        roots = {find(s) for s in adj}
        free_roots = []
        for r in roots:
            if precolor[r] is not None:
                color[r] = precolor[r]
            else:
                free_roots.append(r)
        for r in sorted(free_roots, key=lambda root: min(members[root])):
            used = set()
            for n in cadj[r]:
                c = color.get(find(n))
                if c is not None:
                    used.add(c)
            c = 0
            while c in used:
                c += 1
            color[r] = c

        mapping = {s: color[find(s)] for s in adj}
        for block in fn.blocks:
            out: List[Instr] = []
            for ins in block.instrs:
                rewrite_uses(ins, mapping)
                if ins.dest is not None:
                    ins.dest = mapping.get(ins.dest, ins.dest)
                if ins.op == "mov" and ins.dest == ins.args[0]:
                    continue  # the coalescing payoff
                out.append(ins)
            block.instrs = out
            if block.term is not None:
                rewrite_uses(block.term, mapping)
        fn.const_slots = {
            mapping.get(s, s): value for s, value in fn.const_slots.items()
        }
        fn.nslots = max(
            nparams, max(mapping.values(), default=nparams - 1) + 1
        )
        return max(0, old_nslots - fn.nslots)
