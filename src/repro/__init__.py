"""repro — a reproduction of "A Flexible Type System for Fearless
Concurrency" (Milano, Turcotti, Myers; PLDI 2022).

The package implements the paper's language (FCL), its tempered-domination
region type system with the focus mechanism and virtual transformations,
the prover–verifier checking architecture, the dynamic reservation-safe
runtime with the efficient ``if disconnected`` primitive, message-passing
concurrency, and the Table 1 baseline models.

Quickstart (the stable facade — see docs/API.md)::

    from repro import api

    src = open("examples/list.fcl").read()
    result = api.check(src)                 # CheckResult, never raises
    if result.ok:
        print(api.run(src, "main").value)

For warm reuse (many calls against one program) hold an
:class:`api.Session <repro.api.Session>`; for per-function parallelism
pass ``jobs=``/``mode=`` to ``api.check``/``api.verify``.

The legacy exception-raising ``*_source`` entry points at the package
root were removed after their deprecation period; use
:func:`repro.api.check` / :func:`repro.api.verify` (see the deprecation
table in docs/API.md).
"""

from . import api
from .api import (
    CheckResult,
    Diagnostic,
    ExitCode,
    RunResult,
    Session,
    VerifyResult,
)
from .core.checker import CheckProfile, Checker
from .core.errors import TypeError_
from .lang import ParseError, parse_program, pretty_program
from .runtime.machine import (
    DeadlockError,
    Machine,
    ReservationViolation,
    run_function,
)
from .verifier.verifier import VerificationError, Verifier

__version__ = "1.2.0"


__all__ = [
    "api",
    "CheckResult",
    "Checker",
    "CheckProfile",
    "Diagnostic",
    "ExitCode",
    "RunResult",
    "Session",
    "VerifyResult",
    "TypeError_",
    "ParseError",
    "parse_program",
    "pretty_program",
    "Machine",
    "run_function",
    "ReservationViolation",
    "DeadlockError",
    "Verifier",
    "VerificationError",
    "__version__",
]
