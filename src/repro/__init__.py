"""repro — a reproduction of "A Flexible Type System for Fearless
Concurrency" (Milano, Turcotti, Myers; PLDI 2022).

The package implements the paper's language (FCL), its tempered-domination
region type system with the focus mechanism and virtual transformations,
the prover–verifier checking architecture, the dynamic reservation-safe
runtime with the efficient ``if disconnected`` primitive, message-passing
concurrency, and the Table 1 baseline models.

Quickstart::

    from repro import check_source, parse_program, run_function

    src = open("examples/list.fcl").read()
    program = parse_program(src)
    check_source(src)                       # raises on type errors
    result, interp = run_function(program, "main")
"""

from .core.checker import CheckProfile, Checker, check_source
from .core.errors import TypeError_
from .lang import ParseError, parse_program, pretty_program
from .runtime.machine import (
    DeadlockError,
    Machine,
    ReservationViolation,
    run_function,
)
from .verifier.verifier import VerificationError, Verifier, verify_source

__version__ = "1.0.0"

__all__ = [
    "Checker",
    "CheckProfile",
    "check_source",
    "TypeError_",
    "ParseError",
    "parse_program",
    "pretty_program",
    "Machine",
    "run_function",
    "ReservationViolation",
    "DeadlockError",
    "Verifier",
    "VerificationError",
    "verify_source",
    "__version__",
]
