"""repro — a reproduction of "A Flexible Type System for Fearless
Concurrency" (Milano, Turcotti, Myers; PLDI 2022).

The package implements the paper's language (FCL), its tempered-domination
region type system with the focus mechanism and virtual transformations,
the prover–verifier checking architecture, the dynamic reservation-safe
runtime with the efficient ``if disconnected`` primitive, message-passing
concurrency, and the Table 1 baseline models.

Quickstart (the stable facade — see docs/API.md)::

    from repro import api

    src = open("examples/list.fcl").read()
    result = api.check(src)                 # CheckResult, never raises
    if result.ok:
        print(api.run(src, "main").value)

``check_source``/``verify_source`` are the legacy exception-raising entry
points; they still work but are deprecated in favor of :mod:`repro.api`.
"""

import warnings as _warnings

from . import api
from .api import (
    CheckResult,
    Diagnostic,
    ExitCode,
    RunResult,
    VerifyResult,
)
from .core.checker import CheckProfile, Checker
from .core.checker import check_source as _check_source_impl
from .core.errors import TypeError_
from .lang import ParseError, parse_program, pretty_program
from .runtime.machine import (
    DeadlockError,
    Machine,
    ReservationViolation,
    run_function,
)
from .verifier.verifier import VerificationError, Verifier
from .verifier.verifier import verify_source as _verify_source_impl

__version__ = "1.1.0"


def check_source(*args, **kwargs):
    """Deprecated: use :func:`repro.api.check` (typed result, no raise)."""
    _warnings.warn(
        "repro.check_source is deprecated; use repro.api.check(), which "
        "returns a CheckResult instead of raising",
        DeprecationWarning,
        stacklevel=2,
    )
    return _check_source_impl(*args, **kwargs)


def verify_source(*args, **kwargs):
    """Deprecated: use :func:`repro.api.verify` (typed result, no raise)."""
    _warnings.warn(
        "repro.verify_source is deprecated; use repro.api.verify(), which "
        "returns a VerifyResult instead of raising",
        DeprecationWarning,
        stacklevel=2,
    )
    return _verify_source_impl(*args, **kwargs)


__all__ = [
    "api",
    "CheckResult",
    "Checker",
    "CheckProfile",
    "Diagnostic",
    "ExitCode",
    "RunResult",
    "VerifyResult",
    "check_source",
    "TypeError_",
    "ParseError",
    "parse_program",
    "pretty_program",
    "Machine",
    "run_function",
    "ReservationViolation",
    "DeadlockError",
    "Verifier",
    "VerificationError",
    "verify_source",
    "__version__",
]
