"""The FCL type checker — the "prover" of the paper's prover–verifier
architecture (§4, §5.1).

The checker walks each function body with a mutable :class:`StaticContext`,
applying the syntax-directed T rules and *greedily deferring* virtual
transformations (TS1) until a rule's precondition fails, exactly as §4.6
prescribes.  Branch joins, loop invariants, and function exits go through
:mod:`repro.core.unify`, whose liveness oracle implements the §5.1
heuristic; a bounded backtracking search is the completeness fallback.

Every accepted expression yields a :class:`~repro.core.derivation.Derivation`
node recording the rule and full context snapshots, so the independent
verifier can re-validate the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..lang import ast, pretty
from ..telemetry import registry as _telemetry
from .contexts import StaticContext
from .derivation import Derivation, FuncDerivation, ProgramDerivation
from .errors import (
    ArityError,
    InferenceError,
    InvalidatedField,
    IsoFieldNotTrackable,
    SendError,
    SeparationError,
    TypeError_,
    TypeMismatch,
    UnboundVariable,
    UnificationError,
    UnknownName,
)
from .functypes import FuncType, elaborate
from .analysis import ProgramAnalysis
from .regions import Region, RegionSupply
from .unify import Step, apply_step, match_contexts, prune, search_unify
from .validate import validate_program

RESULT = "$result"  # pseudo-variable anchoring result regions during joins

#: Version tag of the checker's certificate semantics.  The pipeline's
#: content-addressed certificate cache folds this into every cache key and
#: stamps it into every stored entry, so certificates minted by an older
#: (or newer) checker are never replayed: bump it whenever a change to the
#: checker, the derivation format, or the unifier could alter what a
#: derivation means.
CHECKER_VERSION = "repro-checker/4"


@dataclass(frozen=True)
class CheckProfile:
    """Feature switches.  The default profile is the paper's type system;
    restricted profiles model the related systems of Table 1 (see
    ``repro.baselines``)."""

    name: str = "fearless"
    #: V1 Focus available (False models global-domination systems such as
    #: LaCasa/OwnerJ/M#, which lack a focus mechanism, §9.1).
    allow_focus: bool = True
    #: Non-iso references between objects allowed (False models affine /
    #: tree-of-objects systems such as Rust-without-unsafe and classic
    #: unique-pointer systems, §9.2).
    allow_intra_region_refs: bool = True
    #: The ``if disconnected`` primitive available.
    allow_if_disconnected: bool = True
    #: Use the greedy + liveness-oracle unifier; when False, every join goes
    #: through the exponential backtracking search (benchmark E4).
    use_liveness_oracle: bool = True
    #: FAULT INJECTION — fuzzer self-test only.  When True, T16-Send keeps
    #: the sent region in the context (no alias invalidation, no region
    #: consumption), i.e. the checker wrongly accepts use-after-send.  The
    #: differential fuzzer (`repro fuzz --inject-bug`) must catch the
    #: resulting prover/verifier/runtime disagreement; never enable this
    #: outside that self-test.
    unsound_send_keeps_region: bool = False


DEFAULT_PROFILE = CheckProfile()


@dataclass
class Value:
    """The checked type and region of an expression (region None = primitive)."""

    ty: ast.Type
    region: Optional[Region]


def types_equal(a: ast.Type, b: ast.Type) -> bool:
    return str(a) == str(b)


class Checker:
    """Type checker for a whole program."""

    def __init__(
        self,
        program: ast.Program,
        profile: CheckProfile = DEFAULT_PROFILE,
        record: bool = True,
        functypes: Optional[Dict[str, FuncType]] = None,
        analysis: Optional[ProgramAnalysis] = None,
    ):
        self.program = program
        self.profile = profile
        self.record = record
        validate_program(program, profile)
        # Batch callers (repro.pipeline) elaborate once per program and
        # share the table between the checker and the verifier.
        self.functypes: Dict[str, FuncType] = (
            functypes
            if functypes is not None
            else {
                name: elaborate(fdef, program)
                for name, fdef in program.funcs.items()
            }
        )
        # Per-function liveness/CFG facts, built once and shared across
        # repeated checks (and checker threads) of a warm session.
        self.analysis = (
            analysis if analysis is not None else ProgramAnalysis(program)
        )

    def check_program(self) -> ProgramDerivation:
        """Check every function; raises the first type error found."""
        tel = _telemetry()
        if not tel.enabled:
            funcs = {
                name: self.check_function(name)
                for name in sorted(self.program.funcs)
            }
            return ProgramDerivation(funcs=funcs)
        with tel.span("check.program"):
            funcs = {
                name: self.check_function(name)
                for name in sorted(self.program.funcs)
            }
            tel.inc("checker.functions", len(funcs))
        return ProgramDerivation(funcs=funcs)

    def check_function(self, name: str) -> FuncDerivation:
        fdef = self.program.func(name)
        tel = _telemetry()
        try:
            if not tel.enabled:
                return _FuncChecker(self, fdef).check()
            with tel.span(f"check.fn.{name}"):
                return _FuncChecker(self, fdef).check()
        except TypeError_ as exc:
            # Every rejection gets a stable line:col anchor: errors raised
            # without a source position (function-exit unification, tracking
            # side conditions deep in the context machinery) are re-anchored
            # at the offending function's header.
            if exc.span is None or not exc.span.line:
                raise type(exc)(
                    f"{name}: {exc.message}"
                    if not exc.message.startswith(f"{name}:")
                    else exc.message,
                    fdef.span,
                ) from exc
            raise

    # Convenience predicates used by examples/baselines.

    def accepts(self) -> bool:
        try:
            self.check_program()
            return True
        except TypeError_:
            return False


class _FuncChecker:
    """Checks a single function body."""

    def __init__(self, checker: Checker, fdef: ast.FuncDef):
        self.checker = checker
        self.program = checker.program
        self.profile = checker.profile
        self.record = checker.record
        self.fdef = fdef
        self.ftype = checker.functypes[fdef.name]
        self.analysis = checker.analysis.for_function(fdef)
        self.liveness = self.analysis.liveness
        self.supply = RegionSupply()
        self._ghost_counter = 0
        self._tel = _telemetry()

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def _note(self, rule: str, *step_seqs: Sequence[Step]) -> None:
        """Account one rule application and every step it recorded.
        Virtual transformations (V1–V5) get their own counter family."""
        tel = self._tel
        if not tel.enabled:
            return
        tel.inc(f"checker.rule.{rule}")
        for steps in step_seqs:
            for step in steps:
                prefix = "checker.vt." if step.rule.startswith("V") else "checker.step."
                tel.inc(prefix + step.rule)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def check(self) -> FuncDerivation:
        ctx = StaticContext(self.supply)
        region_of_var: Dict[int, Region] = {
            rv: ctx.fresh_region() for rv in self.ftype.input_region_vars
        }
        pinned_rvs = {
            self.ftype.input_region[p]
            for p in self.ftype.pinned
        }
        for rv in pinned_rvs:
            ctx.set_region_pinned(region_of_var[rv], True)
        for pname, pty in self.ftype.params:
            rv = self.ftype.input_region[pname]
            ctx.bind(pname, pty, None if rv is None else region_of_var[rv])
        input_snap = ctx.snapshot()

        value, body_deriv = self.check_expr(self.fdef.body, ctx, self.fdef.return_type)
        if not types_equal(value.ty, self.fdef.return_type):
            raise TypeMismatch(
                f"{self.fdef.name}: body has type {value.ty}, declared "
                f"{self.fdef.return_type}",
                self.fdef.span,
            )

        # Build the declared output context and unify the body's final
        # context onto it.
        target = StaticContext(self.supply)
        out_map: Dict[int, Region] = {}
        for rv in self.ftype.output_region_vars:
            if rv in region_of_var and rv in self.ftype.input_region_vars:
                region = region_of_var[rv]
            else:
                region = self.supply.fresh()
            out_map[rv] = region
            target.add_region(region, pinned=rv in pinned_rvs)
        for pname, pty in self.ftype.params:
            if pname in self.ftype.consumes:
                continue
            rv = self.ftype.output_region.get(pname)
            target.bind(pname, pty, None if rv is None else out_map[rv])
        result_region = (
            None
            if self.ftype.result_region is None
            else out_map[self.ftype.result_region]
        )
        target.bind(RESULT, self.fdef.return_type, result_region)
        for entry in self.ftype.output_tracking:
            if target.tracked_region_of(entry.var) is None:
                target.focus(entry.var)
            assert target.tracked_var(entry.var) is not None
            target.install_tracked_field(
                entry.var, entry.fieldname, out_map[entry.target]
            )

        ctx.bind(RESULT, value.ty, value.region)
        live = frozenset(
            pname
            for pname, _ in self.ftype.params
            if pname not in self.ftype.consumes
        ) | {RESULT}
        steps = self._unify_onto(target, ctx, live)
        self._note("T0-Function-Definition", steps)

        output_snap = target.snapshot()
        deriv = Derivation(
            rule="T0-Function-Definition",
            expr=f"def {self.fdef.name}",
            pre=input_snap,
            post=output_snap,
            type_=str(self.fdef.return_type),
            region=None if result_region is None else result_region.ident,
            steps=tuple(steps),
            children=[body_deriv],
            meta={"function": self.fdef.name},
        )
        return FuncDerivation(
            name=self.fdef.name,
            input_snap=input_snap,
            output_snap=output_snap,
            result_type=str(self.fdef.return_type),
            result_region=None if result_region is None else result_region.ident,
            body=deriv,
        )

    def _unify_onto(
        self,
        target: StaticContext,
        ctx: StaticContext,
        live: FrozenSet[str],
    ) -> List[Step]:
        """Unify ``ctx`` onto the fixed ``target`` (function exit)."""
        declared = target.snapshot()
        tel = self._tel
        if self.profile.use_liveness_oracle:
            try:
                _renaming, _steps_t, steps_c = match_contexts(target, ctx, live)
                if target.snapshot() == declared:
                    if tel.enabled:
                        tel.inc("checker.oracle.hits")
                    return steps_c
            except UnificationError:
                pass
            if tel.enabled:
                tel.inc("checker.oracle.misses")
        try:
            if tel.enabled:
                tel.inc("checker.join.search_fallbacks")
            unified_t, _unified_c, _pa, steps_c = search_unify(target, ctx, live)
            if unified_t.snapshot() == declared:
                return steps_c
        except UnificationError:
            pass
        raise UnificationError(
            f"{self.fdef.name}: the body's final context cannot be "
            "transformed into the declared output context (is the result "
            "still reachable from a parameter?  declare the relationship "
            "with 'after: x.f ~ result', or consume the parameter)\n"
            f"  declared: {target}\n  body    : {ctx}"
        )

    # ------------------------------------------------------------------
    # Expression dispatch
    # ------------------------------------------------------------------

    def check_expr(
        self,
        node: ast.Expr,
        ctx: StaticContext,
        expected: Optional[ast.Type] = None,
    ) -> Tuple[Value, Derivation]:
        pre = ctx.snapshot() if self.record else ((), ())
        handler = self._HANDLERS.get(type(node))
        if handler is None:
            raise TypeError_(f"cannot type expression {type(node).__name__}", node.span)
        value, rule, steps, children, meta = handler(self, node, ctx, expected)
        if self._tel.enabled:
            self._note(
                rule,
                steps,
                meta.get("intro_steps", ()),
                meta.get("join_then", ()),
                meta.get("join_else", ()),
                meta.get("loop_steps", ()),
            )
        deriv = Derivation(
            rule=rule,
            expr=_short(node),
            pre=pre,
            post=ctx.snapshot() if self.record else ((), ()),
            type_=str(value.ty),
            region=None if value.region is None else value.region.ident,
            steps=tuple(steps),
            children=children,
            meta=meta,
        )
        return value, deriv

    # Each handler returns (value, rule, steps, children, meta).

    def _check_int(self, node: ast.IntLit, ctx, expected):
        return Value(ast.INT, None), "T1-Literal", [], [], {"literal": node.value}

    def _check_bool(self, node: ast.BoolLit, ctx, expected):
        return Value(ast.BOOL, None), "T1-Literal", [], [], {"literal": node.value}

    def _check_unit(self, node: ast.UnitLit, ctx, expected):
        return Value(ast.UNIT, None), "T1-Literal", [], [], {"literal": "unit"}

    def _check_none(self, node: ast.NoneLit, ctx, expected):
        if expected is None or not isinstance(expected, ast.MaybeType):
            raise InferenceError(
                "cannot infer the type of 'none' here; no maybe type expected",
                node.span,
            )
        steps: List[Step] = []
        region = None
        if ast.strip_maybe(expected).is_struct():
            region = ctx.fresh_region()
            steps.append(Step("W-FreshRegion", (region,)))
        return Value(expected, region), "T12-None", steps, [], {}

    def _check_var(self, node: ast.VarRef, ctx, expected):
        if not ctx.has_var(node.name):
            raise UnboundVariable(
                f"variable {node.name!r} is not bound (out of scope, consumed, "
                "or invalidated)",
                node.span,
            )
        binding = ctx.lookup(node.name)
        if binding.region is not None and not ctx.has_region(binding.region):
            raise UnboundVariable(
                f"variable {node.name!r}'s region was consumed", node.span
            )
        return (
            Value(binding.ty, binding.region),
            "T2-Variable-Ref",
            [],
            [],
            {"var": node.name},
        )

    def _check_some(self, node: ast.SomeExpr, ctx, expected):
        inner_expected = (
            ast.strip_maybe(expected) if isinstance(expected, ast.MaybeType) else None
        )
        value, child = self.check_expr(node.inner, ctx, inner_expected)
        if isinstance(value.ty, ast.MaybeType):
            raise TypeMismatch("some(e) of a maybe value is not allowed", node.span)
        return (
            Value(ast.MaybeType(value.ty), value.region),
            "T11-Some",
            [],
            [child],
            {},
        )

    def _check_is_none(self, node: ast.IsNone, ctx, expected):
        value, child = self.check_expr(node.inner, ctx, None)
        if not isinstance(value.ty, ast.MaybeType):
            raise TypeMismatch(
                f"is_none expects a maybe value, got {value.ty}", node.span
            )
        return Value(ast.BOOL, None), "T-IsNone", [], [child], {}

    def _check_is_some(self, node: ast.IsSome, ctx, expected):
        value, child = self.check_expr(node.inner, ctx, None)
        if not isinstance(value.ty, ast.MaybeType):
            raise TypeMismatch(
                f"is_some expects a maybe value, got {value.ty}", node.span
            )
        return Value(ast.BOOL, None), "T-IsSome", [], [child], {}

    def _check_unop(self, node: ast.Unop, ctx, expected):
        value, child = self.check_expr(node.inner, ctx, None)
        want = ast.BOOL if node.op == "!" else ast.INT
        if not types_equal(value.ty, want):
            raise TypeMismatch(
                f"operator {node.op!r} expects {want}, got {value.ty}", node.span
            )
        return Value(want, None), "T-Unop", [], [child], {"op": node.op}

    _ARITH = {"+", "-", "*", "/", "%"}
    _CMP = {"<", ">", "<=", ">="}
    _LOGIC = {"&&", "||"}

    def _check_binop(self, node: ast.Binop, ctx, expected):
        left, lchild = self.check_expr(node.left, ctx, None)
        right, rchild = self.check_expr(node.right, ctx, None)
        children = [lchild, rchild]
        if node.op in self._ARITH:
            self._want(left, ast.INT, node)
            self._want(right, ast.INT, node)
            return Value(ast.INT, None), "T-Binop", [], children, {"op": node.op}
        if node.op in self._CMP:
            self._want(left, ast.INT, node)
            self._want(right, ast.INT, node)
            return Value(ast.BOOL, None), "T-Binop", [], children, {"op": node.op}
        if node.op in self._LOGIC:
            self._want(left, ast.BOOL, node)
            self._want(right, ast.BOOL, node)
            return Value(ast.BOOL, None), "T-Binop", [], children, {"op": node.op}
        # == / != : primitives of equal type, or references of equal type.
        if not types_equal(left.ty, right.ty):
            raise TypeMismatch(
                f"cannot compare {left.ty} with {right.ty}", node.span
            )
        return Value(ast.BOOL, None), "T-Binop", [], children, {"op": node.op}

    @staticmethod
    def _want(value: Value, ty: ast.Type, node: ast.Expr) -> None:
        if not types_equal(value.ty, ty):
            raise TypeMismatch(f"expected {ty}, got {value.ty}", node.span)

    # -- blocks and bindings -------------------------------------------------

    def _check_block(self, node: ast.Block, ctx, expected):
        entry_vars = set(ctx.gamma)
        children: List[Derivation] = []
        steps: List[Step] = []
        value = Value(ast.UNIT, None)
        for index, entry in enumerate(node.body):
            is_last = index == len(node.body) - 1
            value, child = self.check_expr(entry, ctx, expected if is_last else None)
            children.append(child)
            if not is_last:
                value = Value(ast.UNIT, None)  # intermediate values are dropped
        # Close the block scope: locals disappear.
        for name in sorted(set(ctx.gamma) - entry_vars):
            steps.extend(self._release_var(ctx, name))
        if not node.body:
            value = Value(ast.UNIT, None)
        if isinstance(node.body[-1], (ast.LetBind,)) if node.body else False:
            value = Value(ast.UNIT, None)
        return value, "T3-Sequence", steps, children, {}

    def _release_var(self, ctx: StaticContext, name: str) -> List[Step]:
        """Drop a variable going out of scope, cleaning its tracking entry
        when cheaply possible (otherwise it remains a prunable ghost)."""
        steps: List[Step] = []
        if name == RESULT:
            return steps
        tracked_region = ctx.tracked_region_of(name)
        if tracked_region is not None:
            tv = ctx.heap[tracked_region].vars[name]
            if not tv.fields and not tv.pinned:
                ctx.unfocus(name)
                steps.append(Step("V2-Unfocus", (name,)))
        if ctx.has_var(name):
            ctx.drop_var(name)
            steps.append(Step("W-DropVar", (name,)))
        return steps

    def _check_let(self, node: ast.LetBind, ctx, expected):
        if ctx.has_var(node.name):
            raise TypeError_(
                f"variable {node.name!r} is already bound (shadowing is not "
                "supported)",
                node.span,
            )
        steps: List[Step] = []
        children: List[Derivation] = []
        if isinstance(node.init, ast.New):
            value, child, new_steps = self._check_new_binding(
                node.name, node.init, ctx
            )
            children.append(child)
            steps.extend(new_steps)
        else:
            value, child = self.check_expr(node.init, ctx, None)
            children.append(child)
            ctx.bind(node.name, value.ty, value.region)
            steps.append(Step("W-Bind", (node.name, str(value.ty), value.region)))
        return (
            Value(ast.UNIT, None),
            "T-Let",
            steps,
            children,
            {"var": node.name},
        )

    def _check_let_some(self, node: ast.LetSome, ctx, expected):
        value, scrut_child = self.check_expr(node.scrutinee, ctx, None)
        if not isinstance(value.ty, ast.MaybeType):
            raise TypeMismatch(
                f"let some(..) scrutinee must be a maybe value, got {value.ty}",
                node.span,
            )
        inner_ty = value.ty.inner
        then_ctx = ctx.clone()
        if then_ctx.has_var(node.name):
            raise TypeError_(
                f"variable {node.name!r} is already bound (shadowing is not "
                "supported)",
                node.span,
            )
        intro = Step("W-Bind", (node.name, str(inner_ty), value.region))
        apply_step(then_ctx, intro)

        live = self.liveness.live_after(node)
        then_value, then_deriv, then_ctx, then_steps = self._check_branch_block(
            node.then_block, then_ctx, expected, extra_drop=[node.name]
        )
        else_ctx = ctx.clone()
        if node.else_block is not None:
            else_value, else_deriv, else_ctx, else_steps = self._check_branch_block(
                node.else_block, else_ctx, expected
            )
        else:
            else_value = Value(ast.UNIT, None)
            then_value = Value(ast.UNIT, None)
            else_deriv = None
            else_steps = []

        result, ctx2, per_branch = self._join_branches(
            node,
            [
                (then_value, then_ctx, then_steps),
                (else_value, else_ctx, else_steps),
            ],
            live,
        )
        self._replace_ctx(ctx, ctx2)
        children = [scrut_child, then_deriv] + ([else_deriv] if else_deriv else [])
        return (
            result,
            "T-LetSome",
            [],
            children,
            {
                "var": node.name,
                "intro_steps": (intro,),
                "join_then": tuple(per_branch[0]),
                "join_else": tuple(per_branch[1]),
                "has_else": node.else_block is not None,
            },
        )

    def _check_branch_block(
        self,
        block: ast.Block,
        ctx: StaticContext,
        expected: Optional[ast.Type],
        extra_drop: Sequence[str] = (),
    ) -> Tuple[Value, Derivation, StaticContext, List[Step]]:
        value, deriv = self.check_expr(block, ctx, expected)
        steps: List[Step] = []
        for name in extra_drop:
            steps.extend(self._release_var(ctx, name))
        return value, deriv, ctx, steps

    def _join_branches(
        self,
        node: ast.Expr,
        branches: List[Tuple[Value, StaticContext, List[Step]]],
        live: FrozenSet[str],
    ) -> Tuple[Value, StaticContext, List[List[Step]]]:
        """Unify the (at most two) branch outputs into one context (the
        T13/T15/T-LetSome join).  Returns the result value, the unified
        context, and — per branch — the complete step sequence that carries
        that branch's final context to the unified one (replayable by the
        verifier)."""
        first_ty = branches[0][0].ty
        for value, _, _ in branches[1:]:
            if not types_equal(value.ty, first_ty):
                raise TypeMismatch(
                    f"branches produce {first_ty} vs {value.ty}", node.span
                )
        per_branch: List[List[Step]] = []
        for value, bctx, prefix in branches:
            bctx.bind(RESULT, value.ty, value.region)
            bind_step = Step(
                "W-Bind",
                (
                    RESULT,
                    str(value.ty),
                    value.region,
                ),
            )
            per_branch.append(list(prefix) + [bind_step])
        live_all = live | {RESULT}

        base_ctx = branches[0][1]
        tel = self._tel
        if len(branches) == 2:
            other_ctx = branches[1][1]
            done = False
            if self.profile.use_liveness_oracle:
                try:
                    _ren, sa, sb = match_contexts(base_ctx, other_ctx, live_all)
                    per_branch[0].extend(sa)
                    per_branch[1].extend(sb)
                    done = True
                    if tel.enabled:
                        tel.inc("checker.oracle.hits")
                except UnificationError:
                    if tel.enabled:
                        tel.inc("checker.oracle.misses")
            if not done:
                if tel.enabled:
                    tel.inc("checker.join.search_fallbacks")
                base_ctx, _other, sa, sb = search_unify(
                    base_ctx, other_ctx, live_all
                )
                per_branch[0].extend(sa)
                per_branch[1].extend(sb)
        elif len(branches) > 2:
            raise AssertionError("joins are at most binary")

        result_binding = base_ctx.lookup(RESULT)
        result = Value(result_binding.ty, result_binding.region)
        base_ctx.drop_var(RESULT)
        for steps in per_branch:
            steps.append(Step("W-DropVar", (RESULT,)))
        return result, base_ctx, per_branch

    @staticmethod
    def _replace_ctx(ctx: StaticContext, other: StaticContext) -> None:
        """Overwrite ``ctx`` in place with ``other``'s contents."""
        ctx.take_from(other)

    # -- control flow ----------------------------------------------------------

    def _check_if(self, node: ast.If, ctx, expected):
        cond, cond_child = self.check_expr(node.cond, ctx, None)
        self._want(cond, ast.BOOL, node)
        has_else = node.else_block is not None
        branch_expected = expected if has_else else None

        then_ctx = ctx.clone()
        then_value, then_deriv, then_ctx, ts = self._check_branch_block(
            node.then_block, then_ctx, branch_expected
        )
        else_ctx = ctx.clone()
        if has_else:
            else_value, else_deriv, else_ctx, es = self._check_branch_block(
                node.else_block, else_ctx, branch_expected
            )
        else:
            else_value, else_deriv, es = Value(ast.UNIT, None), None, []
        if not has_else:
            # Without an else branch the conditional's value is unit.
            then_value = Value(ast.UNIT, None)

        live = self.liveness.live_after(node)
        result, joined, per_branch = self._join_branches(
            node,
            [(then_value, then_ctx, ts), (else_value, else_ctx, es)],
            live,
        )
        self._replace_ctx(ctx, joined)
        children = [cond_child, then_deriv] + ([else_deriv] if else_deriv else [])
        return (
            result,
            "T13-If-Statement",
            [],
            children,
            {
                "join_then": tuple(per_branch[0]),
                "join_else": tuple(per_branch[1]),
                "has_else": has_else,
            },
        )

    def _check_while(self, node: ast.While, ctx, expected):
        live_loop = frozenset(
            self.liveness.live_after(node)
            | self.analysis.uses(node.cond)
            | self.analysis.uses(node.body)
        ) & set(ctx.gamma)
        steps = prune(ctx, live_loop)

        cond_deriv = body_deriv = None
        for _ in range(4):
            entry_snap = ctx.snapshot()
            trial = ctx.clone()
            cond, cond_deriv = self.check_expr(node.cond, trial, None)
            self._want(cond, ast.BOOL, node)
            body_ctx = trial.clone()
            _val, body_deriv = self.check_expr(node.body, body_ctx, None)
            # The body's final context must re-establish the entry context.
            loop_steps: List[Step] = []
            tel = self._tel
            if self.profile.use_liveness_oracle:
                try:
                    _ren, sa, sb = match_contexts(ctx, body_ctx, live_loop)
                    steps.extend(sa)
                    loop_steps = sb
                    if tel.enabled:
                        tel.inc("checker.oracle.hits")
                except UnificationError:
                    if tel.enabled:
                        tel.inc("checker.oracle.misses")
                        tel.inc("checker.join.search_fallbacks")
                    unified_a, _b, sa, sb = search_unify(ctx, body_ctx, live_loop)
                    self._replace_ctx(ctx, unified_a)
                    steps.extend(sa)
                    loop_steps = sb
            else:
                if tel.enabled:
                    tel.inc("checker.join.search_fallbacks")
                unified_a, _b, sa, sb = search_unify(ctx, body_ctx, live_loop)
                self._replace_ctx(ctx, unified_a)
                steps.extend(sa)
                loop_steps = sb
            if ctx.snapshot() == entry_snap:
                # Invariant stable: the exit context is the post-condition one.
                exit_ctx = ctx.clone()
                _cond2, cond_deriv = self.check_expr(node.cond, exit_ctx, None)
                self._replace_ctx(ctx, exit_ctx)
                return (
                    Value(ast.UNIT, None),
                    "T14-While",
                    steps,
                    [cond_deriv, body_deriv],
                    {"loop_steps": tuple(loop_steps)},
                )
        raise UnificationError(
            f"while loop at {node.span}: could not find a stable loop invariant"
        )

    def _check_if_disconnected(self, node: ast.IfDisconnected, ctx, expected):
        if not self.profile.allow_if_disconnected:
            raise TypeError_(
                f"profile {self.profile.name!r} has no 'if disconnected' primitive",
                node.span,
            )
        if not isinstance(node.left, ast.VarRef) or not isinstance(
            node.right, ast.VarRef
        ):
            raise TypeError_(
                "if disconnected arguments must be variables", node.span
            )
        left, lchild = self.check_expr(node.left, ctx, None)
        right, rchild = self.check_expr(node.right, ctx, None)
        for val, arg in ((left, node.left), (right, node.right)):
            if not ast.strip_maybe(val.ty).is_struct():
                raise TypeMismatch(
                    "if disconnected arguments must be struct references",
                    arg.span,
                )
        if left.region != right.region or left.region is None:
            raise SeparationError(
                "if disconnected arguments must come from the same region "
                f"(got {left.region} and {right.region})",
                node.span,
            )
        region = left.region
        steps = self._empty_region_tracking(ctx, region, self.liveness.live_after(node))
        if ctx.heap[region].pinned:
            raise TypeError_("if disconnected on a pinned region", node.span)

        lname, rname = node.left.name, node.right.name

        # THEN branch: the left argument's reachable subgraph forms a fresh
        # region; every other reference into the old region is unreliable —
        # aliases are dropped and inbound tracked fields invalidated (⊥),
        # reproducing "l.hd invalid at branch start" from fig 5.
        then_ctx = ctx.clone()
        fresh = then_ctx.supply.fresh()
        split_steps = [
            Step("W-FreshRegion", (fresh,)),
            Step("W-Bind", (lname, str(left.ty), fresh)),
        ]
        then_ctx.add_region(fresh)
        then_ctx.set_binding(lname, then_ctx.gamma[lname].ty, fresh)
        for name in sorted(then_ctx.vars_in_region(region)):
            if name != rname:
                then_ctx.drop_var(name)
                split_steps.append(Step("W-DropVar", (name,)))
        for _owner_region, owner, fieldname in then_ctx.inbound_refs(region):
            then_ctx.invalidate_field(owner, fieldname)
            split_steps.append(Step("W-InvalidateField", (owner, fieldname)))

        live = self.liveness.live_after(node)
        then_value, then_deriv, then_ctx, ts = self._check_branch_block(
            node.then_block, then_ctx, expected
        )
        else_ctx = ctx.clone()
        if node.else_block is not None:
            else_value, else_deriv, else_ctx, es = self._check_branch_block(
                node.else_block, else_ctx, expected
            )
        else:
            else_value, else_deriv, es = Value(ast.UNIT, None), None, []
            then_value = Value(ast.UNIT, None)

        result, joined, per_branch = self._join_branches(
            node,
            [(then_value, then_ctx, ts), (else_value, else_ctx, es)],
            live,
        )
        self._replace_ctx(ctx, joined)
        children = [lchild, rchild, then_deriv] + ([else_deriv] if else_deriv else [])
        return (
            result,
            "T15-If-Disconnected",
            steps,
            children,
            {
                "left": lname,
                "right": rname,
                "region": region,
                "split_region": fresh,
                "intro_steps": tuple(split_steps),
                "join_then": tuple(per_branch[0]),
                "join_else": tuple(per_branch[1]),
                "has_else": node.else_block is not None,
            },
        )

    # -- fields ---------------------------------------------------------------

    def _field_decl(
        self, base_ty: ast.Type, fieldname: str, node: ast.Expr
    ) -> Tuple[ast.StructDef, ast.FieldDecl]:
        stripped = ast.strip_maybe(base_ty)
        if isinstance(base_ty, ast.MaybeType):
            raise TypeMismatch(
                f"cannot access field {fieldname!r} of a maybe value; "
                "use let some(..) first",
                node.span,
            )
        if not stripped.is_struct():
            raise TypeMismatch(
                f"cannot access field {fieldname!r} of non-struct {base_ty}",
                node.span,
            )
        try:
            sdef = self.program.struct(stripped.name)
        except KeyError:
            raise UnknownName(f"unknown struct {stripped.name!r}", node.span) from None
        if not sdef.has_field(fieldname):
            raise UnknownName(
                f"struct {sdef.name} has no field {fieldname!r}", node.span
            )
        return sdef, sdef.field_decl(fieldname)

    def _ensure_tracked(
        self,
        ctx: StaticContext,
        name: str,
        fieldname: str,
        node: ast.Expr,
        live: FrozenSet[str],
    ) -> Tuple[Region, List[Step]]:
        """Make ``name.fieldname`` tracked, inserting Focus/Explore virtual
        transformations (TS1) greedily.  Returns the target region."""
        steps: List[Step] = []
        binding = ctx.lookup(name)
        assert binding.region is not None
        region = binding.region
        tracked_at = ctx.tracked_region_of(name)
        if tracked_at is not None and tracked_at != region:
            raise IsoFieldNotTrackable(
                f"{name!r} has a stale tracking entry", node.span
            )
        if tracked_at is None:
            if not self.profile.allow_focus:
                raise IsoFieldNotTrackable(
                    f"profile {self.profile.name!r} has no focus mechanism: "
                    f"cannot access iso field {name}.{fieldname} without a "
                    "destructive read or swap",
                    node.span,
                )
            tc = ctx.heap[region]
            if not tc.is_empty:
                # Try to clear other tracked variables out of the way.
                steps.extend(
                    self._empty_region_tracking(ctx, region, live, keep=name)
                )
            if not ctx.heap[region].is_empty:
                raise IsoFieldNotTrackable(
                    f"cannot focus {name!r}: region {region} already tracks "
                    f"{sorted(ctx.heap[region].vars)} (potential aliases)",
                    node.span,
                )
            ctx.focus(name)
            steps.append(Step("V1-Focus", (name,)))
        tv = ctx.tracked_var(name)
        assert tv is not None
        if fieldname not in tv.fields:
            target = self.supply.fresh()
            step = Step("V3-Explore", (name, fieldname, target))
            apply_step(ctx, step)
            steps.append(step)
            return target, steps
        target = tv.fields[fieldname]
        if target is None:
            raise InvalidatedField(
                f"iso field {name}.{fieldname} was invalidated and must be "
                "reassigned before use",
                node.span,
            )
        return target, steps

    def _empty_region_tracking(
        self,
        ctx: StaticContext,
        region: Region,
        live: FrozenSet[str],
        keep: Optional[str] = None,
    ) -> List[Step]:
        """Greedily clear a region's tracking context (unfocus/retract every
        tracked variable) — required by T15/T16/T9.  Raises when a tracked
        field's target region is still needed."""
        steps: List[Step] = []
        tc = ctx.heap[region]
        if tc.pinned:
            raise TypeError_(f"region {region} is pinned")
        for name in sorted(tc.vars):
            if name == keep:
                continue
            tv = tc.vars[name]
            if tv.pinned:
                raise TypeError_(f"tracked variable {name!r} is pinned")
            for fieldname in sorted(tv.fields):
                target = tv.fields[fieldname]
                if target is None:
                    raise InvalidatedField(
                        f"cannot release {name!r}: field {fieldname!r} is "
                        "invalidated and must be reassigned first"
                    )
                live_in_target = [
                    v for v in ctx.vars_in_region(target) if v in live
                ]
                if live_in_target:
                    raise IsoFieldNotTrackable(
                        f"cannot untrack {name}.{fieldname}: its target region "
                        f"holds live variables {live_in_target}"
                    )
                target_tc = ctx.heap[target]
                if not target_tc.is_empty:
                    steps.extend(
                        self._empty_region_tracking(ctx, target, live)
                    )
                ctx.retract(name, fieldname)
                steps.append(Step("V4-Retract", (name, fieldname)))
            ctx.unfocus(name)
            steps.append(Step("V2-Unfocus", (name,)))
        return steps

    def _check_field(self, node: ast.FieldRef, ctx, expected):
        base_value, base_child = self.check_expr(node.base, ctx, None)
        sdef, decl = self._field_decl(base_value.ty, node.fieldname, node)
        if not decl.is_iso:
            region = base_value.region if ast.strip_maybe(decl.ty).is_struct() else None
            return (
                Value(decl.ty, region),
                "T4-Field-Reference",
                [],
                [base_child],
                {"field": node.fieldname},
            )
        if not isinstance(node.base, ast.VarRef):
            raise IsoFieldNotTrackable(
                f"iso field {node.fieldname!r} may only be read from a named "
                "variable; bind the base with let first",
                node.span,
            )
        live = self.liveness.live_after(node) | self.analysis.uses(node)
        target, steps = self._ensure_tracked(
            ctx, node.base.name, node.fieldname, node, frozenset(live)
        )
        region = target if ast.strip_maybe(decl.ty).is_struct() else None
        return (
            Value(decl.ty, region),
            "T5-Isolated-Field-Reference",
            steps,
            [base_child],
            {"var": node.base.name, "field": node.fieldname},
        )

    def _check_assign(self, node: ast.Assign, ctx, expected):
        if isinstance(node.target, ast.VarRef):
            return self._check_assign_var(node, ctx)
        assert isinstance(node.target, ast.FieldRef)
        return self._check_assign_field(node, ctx)

    def _check_assign_var(self, node: ast.Assign, ctx):
        name = node.target.name
        declared_ty = ctx.lookup(name).ty
        value, child = self.check_expr(node.value, ctx, declared_ty)
        if not types_equal(value.ty, declared_ty):
            raise TypeMismatch(
                f"cannot assign {value.ty} to {name} : {declared_ty}", node.span
            )
        steps: List[Step] = []
        # Re-binding invalidates any tracking of the old referent.  (The
        # old binding may already be gone: a join inside the RHS prunes the
        # target variable, which is dead at that point — the assignment is
        # about to overwrite it.)
        tracked_at = ctx.tracked_region_of(name)
        if tracked_at is not None:
            tv = ctx.heap[tracked_at].vars[name]
            if not tv.fields:
                ctx.unfocus(name)
                steps.append(Step("V2-Unfocus", (name,)))
            else:
                ghost = self._ghost_name(name)
                ctx.rename_tracked(tracked_at, name, ghost)
                steps.append(Step("W-GhostRename", (name, ghost)))
        ctx.set_binding(name, value.ty, value.region)
        steps.append(Step("W-Bind", (name, str(value.ty), value.region)))
        return (
            Value(ast.UNIT, None),
            "T8-Assign-Var",
            steps,
            [child],
            {"var": name},
        )

    def _ghost_name(self, name: str) -> str:
        self._ghost_counter += 1
        return f"{name}$ghost{self._ghost_counter}"

    def _check_assign_field(self, node: ast.Assign, ctx):
        target: ast.FieldRef = node.target
        base_value, base_child = self.check_expr(target.base, ctx, None)
        sdef, decl = self._field_decl(base_value.ty, target.fieldname, node)
        value, value_child = self.check_expr(node.value, ctx, decl.ty)
        if not types_equal(value.ty, decl.ty):
            raise TypeMismatch(
                f"cannot assign {value.ty} to field {target.fieldname} : {decl.ty}",
                node.span,
            )
        children = [base_child, value_child]
        steps: List[Step] = []
        if not decl.is_iso:
            # T6: intra-region reference — value must live in the same region
            # (V5 Attach merges regions when needed).
            if ast.strip_maybe(decl.ty).is_struct() and value.region is not None:
                base_region = base_value.region
                if base_region is None:
                    raise TypeMismatch("field write on primitive", node.span)
                if value.region != base_region:
                    if not self.profile.allow_intra_region_refs:
                        raise SeparationError(
                            f"profile {self.profile.name!r} forbids merging "
                            "regions via non-iso references",
                            node.span,
                        )
                    ctx.attach(value.region, base_region)
                    steps.append(Step("V5-Attach", (value.region, base_region)))
            return (
                Value(ast.UNIT, None),
                "T6-Field-Assignment",
                steps,
                children,
                {"field": target.fieldname},
            )
        # T7: isolated field assignment.
        if not isinstance(target.base, ast.VarRef):
            raise IsoFieldNotTrackable(
                f"iso field {target.fieldname!r} may only be assigned through "
                "a named variable",
                node.span,
            )
        name = target.base.name
        live = self.liveness.live_after(node) | self.analysis.uses(node)
        _old_target, track_steps = self._ensure_tracked_for_write(
            ctx, name, target.fieldname, node, frozenset(live)
        )
        steps.extend(track_steps)
        if value.region is None:
            raise TypeMismatch(
                f"iso field {target.fieldname!r} cannot hold a primitive",
                node.span,
            )
        ctx.set_field_target(name, target.fieldname, value.region)
        steps.append(Step("T7-SetField", (name, target.fieldname, value.region)))
        return (
            Value(ast.UNIT, None),
            "T7-Isolated-Field-Assignment",
            steps,
            children,
            {"var": name, "field": target.fieldname},
        )

    def _ensure_tracked_for_write(
        self,
        ctx: StaticContext,
        name: str,
        fieldname: str,
        node: ast.Expr,
        live: FrozenSet[str],
    ) -> Tuple[Optional[Region], List[Step]]:
        """Like :meth:`_ensure_tracked` but tolerates an invalidated (⊥)
        field, since assignment is exactly how ⊥ fields are repaired."""
        tv = ctx.tracked_var(name)
        if tv is not None and fieldname in tv.fields and tv.fields[fieldname] is None:
            return None, []
        return self._ensure_tracked(ctx, name, fieldname, node, live)

    # -- allocation -------------------------------------------------------------

    def _check_new(self, node: ast.New, ctx, expected):
        value, children, steps = self._new_value(node, ctx, allow_iso=False)
        return value, "T10-New-Loc", steps, children, {"struct": node.struct}

    def _check_new_binding(
        self, name: str, node: ast.New, ctx: StaticContext
    ) -> Tuple[Value, Derivation, List[Step]]:
        pre = ctx.snapshot() if self.record else ((), ())
        value, children, steps, iso_inits = self._new_value_full(node, ctx)
        ctx.bind(name, value.ty, value.region)
        steps.append(Step("W-Bind", (name, str(value.ty), value.region)))
        if iso_inits:
            ctx.focus(name)
            steps.append(Step("V1-Focus", (name,)))
            assert ctx.tracked_var(name) is not None
            for fieldname, region in iso_inits:
                ctx.install_tracked_field(name, fieldname, region)
                steps.append(Step("T7-SetField", (name, fieldname, region)))
        self._note("T10-New-Loc", steps)
        deriv = Derivation(
            rule="T10-New-Loc",
            expr=_short(node),
            pre=pre,
            post=ctx.snapshot() if self.record else ((), ()),
            type_=str(value.ty),
            region=None if value.region is None else value.region.ident,
            steps=tuple(steps),
            children=children,
            meta={"struct": node.struct, "bound": name},
        )
        return value, deriv, []

    def _new_value(self, node: ast.New, ctx: StaticContext, allow_iso: bool):
        value, children, steps, iso_inits = self._new_value_full(node, ctx)
        if iso_inits and not allow_iso:
            raise TypeError_(
                "new with iso-field initializers must appear directly in a "
                "let binding (the object must be focused to track them)",
                node.span,
            )
        return value, children, steps

    def _new_value_full(self, node: ast.New, ctx: StaticContext):
        try:
            sdef = self.program.struct(node.struct)
        except KeyError:
            raise UnknownName(f"unknown struct {node.struct!r}", node.span) from None
        for fieldname in node.inits:
            if not sdef.has_field(fieldname):
                raise UnknownName(
                    f"struct {sdef.name} has no field {fieldname!r}", node.span
                )
        children: List[Derivation] = []
        steps: List[Step] = []
        init_values: Dict[str, Value] = {}
        for fieldname, init in node.inits.items():
            decl = sdef.field_decl(fieldname)
            value, child = self.check_expr(init, ctx, decl.ty)
            if not types_equal(value.ty, decl.ty):
                raise TypeMismatch(
                    f"initializer for {sdef.name}.{fieldname} has type "
                    f"{value.ty}, field is {decl.ty}",
                    node.span,
                )
            init_values[fieldname] = value
            children.append(child)
        # Defaults for uninitialized fields.
        for decl in sdef.fields:
            if decl.name in init_values:
                continue
            if isinstance(decl.ty, ast.MaybeType) or decl.ty.is_prim():
                continue  # defaults: none / 0 / false / unit
            if decl.is_iso:
                raise TypeError_(
                    f"new {sdef.name}: non-nullable iso field {decl.name!r} "
                    "must be initialized",
                    node.span,
                )
            if isinstance(decl.ty, ast.StructType) and decl.ty.name == sdef.name:
                continue  # self-reference default (the size-1 circular dll)
            raise TypeError_(
                f"new {sdef.name}: non-nullable field {decl.name!r} must be "
                "initialized",
                node.span,
            )
        region = ctx.fresh_region()
        steps.append(Step("W-FreshRegion", (region,)))
        iso_inits: List[Tuple[str, Region]] = []
        for fieldname, value in init_values.items():
            decl = sdef.field_decl(fieldname)
            if not ast.strip_maybe(decl.ty).is_struct() or value.region is None:
                continue
            if decl.is_iso:
                iso_inits.append((fieldname, value.region))
            else:
                if not self.profile.allow_intra_region_refs:
                    raise SeparationError(
                        f"profile {self.profile.name!r} forbids intra-region "
                        "references",
                        node.span,
                    )
                if value.region != region:
                    ctx.attach(value.region, region)
                    steps.append(Step("V5-Attach", (value.region, region)))
        return (
            Value(ast.StructType(sdef.name), region),
            children,
            steps,
            iso_inits,
        )

    # -- concurrency --------------------------------------------------------------

    def _check_send(self, node: ast.Send, ctx, expected):
        value, child = self.check_expr(node.value, ctx, None)
        if value.region is None:
            raise SendError(
                "send requires a struct (or maybe-of-struct) value", node.span
            )
        live = self.liveness.live_after(node)
        steps = self._empty_region_tracking(ctx, value.region, frozenset(live))
        if self.profile.unsound_send_keeps_region:
            # Seeded soundness bug (see CheckProfile): treat send as a
            # non-consuming read.  The emitted T16-Send node lacks its
            # consume step and every alias survives, so the independent
            # verifier and the guarded runtime must both disagree with us.
            return (
                Value(ast.UNIT, None),
                "T16-Send",
                steps,
                [child],
                {"region": value.region.ident, "type": str(value.ty)},
            )
        inbound = ctx.inbound_refs(value.region)
        for _owner_region, owner, fieldname in inbound:
            ctx.invalidate_field(owner, fieldname)
            steps.append(Step("W-InvalidateField", (owner, fieldname)))
        dropped = sorted(ctx.vars_in_region(value.region))
        for name in dropped:
            if name in live:
                raise SendError(
                    f"cannot send: variable {name!r} (aliasing the sent region) "
                    "is still used afterwards",
                    node.span,
                )
        ctx.consume_region_for_send(value.region)
        steps.append(Step("T16-ConsumeRegion", (value.region,)))
        return (
            Value(ast.UNIT, None),
            "T16-Send",
            steps,
            [child],
            {"region": value.region.ident, "type": str(value.ty)},
        )

    def _check_recv(self, node: ast.Recv, ctx, expected):
        if not ast.strip_maybe(node.ty).is_struct():
            raise TypeMismatch("recv type must be a struct type", node.span)
        base = ast.strip_maybe(node.ty)
        if base.name not in self.program.structs:
            raise UnknownName(f"unknown struct {base.name!r}", node.span)
        region = ctx.fresh_region()
        return (
            Value(node.ty, region),
            "T17-Receive",
            [Step("W-FreshRegion", (region,))],
            [],
            {"type": str(node.ty)},
        )

    # -- calls ----------------------------------------------------------------------

    def _check_call(self, node: ast.Call, ctx, expected):
        try:
            ftype = self.checker.functypes[node.func]
        except KeyError:
            raise UnknownName(f"unknown function {node.func!r}", node.span) from None
        if len(node.args) != len(ftype.params):
            raise ArityError(
                f"{node.func} expects {len(ftype.params)} arguments, got "
                f"{len(node.args)}",
                node.span,
            )
        children: List[Derivation] = []
        steps: List[Step] = []
        arg_values: Dict[str, Value] = {}
        arg_exprs: Dict[str, ast.Expr] = {}
        for (pname, pty), arg in zip(ftype.params, node.args):
            value, child = self.check_expr(arg, ctx, pty)
            if not types_equal(value.ty, pty):
                raise TypeMismatch(
                    f"{node.func}: argument {pname!r} expects {pty}, got {value.ty}",
                    node.span,
                )
            arg_values[pname] = value
            arg_exprs[pname] = arg
            children.append(child)

        live = frozenset(self.liveness.live_after(node))

        # Group arguments by input region variable; all members of a group
        # must share one region (attach if needed); distinct groups must be
        # provably separate (distinct regions).
        group_region: Dict[int, Region] = {}
        for pname, _ in ftype.params:
            rv = ftype.input_region[pname]
            value = arg_values[pname]
            if rv is None:
                continue
            if value.region is None:
                raise TypeMismatch(
                    f"{node.func}: argument {pname!r} must be a struct value",
                    node.span,
                )
            if rv not in group_region:
                group_region[rv] = value.region
            elif group_region[rv] != value.region:
                ctx.attach(value.region, group_region[rv])
                steps.append(Step("V5-Attach", (value.region, group_region[rv])))
        regions = list(group_region.values())
        if len(set(regions)) != len(regions):
            raise SeparationError(
                f"{node.func}: arguments in distinct parameter regions must "
                "occupy provably disjoint regions (aliasing arguments?)",
                node.span,
            )

        # Each argument region must present an empty tracking context —
        # except regions for pinned parameters: the callee takes a partial
        # (pinned) view, so the call site's tracking stays in place (TS2).
        pinned_rvs = {
            ftype.input_region[p] for p in ftype.pinned
        }
        for rv, region in group_region.items():
            if rv in pinned_rvs:
                continue
            steps.extend(self._empty_region_tracking(ctx, region, live))

        # Consumed parameters: their region capability disappears.
        for pname in sorted(ftype.consumes):
            rv = ftype.input_region[pname]
            assert rv is not None
            region = group_region[rv]
            if region in ctx.heap:
                for name in ctx.vars_in_region(region):
                    if name in live:
                        raise SeparationError(
                            f"{node.func} consumes {pname!r}, but variable "
                            f"{name!r} in the same region is used afterwards",
                            node.span,
                        )
                ctx.drop_region(region)
                steps.append(Step("W-DropRegion", (region,)))

        # Output merges: parameters whose output regions coincide force
        # attaches at the call site.
        out_region_map: Dict[int, Region] = {}
        for pname, _ in ftype.params:
            if pname in ftype.consumes:
                continue
            rv_out = ftype.output_region.get(pname)
            rv_in = ftype.input_region[pname]
            if rv_out is None or rv_in is None:
                continue
            region = group_region[rv_in]
            if rv_out in out_region_map:
                if out_region_map[rv_out] != region and region in ctx.heap:
                    ctx.attach(region, out_region_map[rv_out])
                    steps.append(
                        Step("V5-Attach", (region, out_region_map[rv_out]))
                    )
            else:
                out_region_map[rv_out] = region

        # Fresh output regions (e.g. the default result region).
        for rv in ftype.output_region_vars:
            if rv not in out_region_map:
                region = ctx.fresh_region()
                out_region_map[rv] = region
                steps.append(Step("W-FreshRegion", (region,)))

        # Declared output tracking: install onto call-site variables.
        for entry in ftype.output_tracking:
            arg = arg_exprs[entry.var]
            target = out_region_map[entry.target]
            if not isinstance(arg, ast.VarRef) or not ctx.has_var(arg.name):
                continue  # information about a temporary: weaken it away
            name = arg.name
            if ctx.tracked_region_of(name) is None:
                binding = ctx.lookup(name)
                if binding.region is not None and ctx.heap[binding.region].is_empty:
                    ctx.focus(name)
                    steps.append(Step("V1-Focus", (name,)))
            if ctx.tracked_var(name) is not None:
                ctx.install_tracked_field(name, entry.fieldname, target)
                steps.append(Step("T7-SetField", (name, entry.fieldname, target)))

        result_region = (
            None
            if ftype.result_region is None
            else out_region_map[ftype.result_region]
        )
        return (
            Value(ftype.return_type, result_region),
            "T9-Function-Application",
            steps,
            children,
            {"function": node.func},
        )

    _HANDLERS = {
        ast.IntLit: _check_int,
        ast.BoolLit: _check_bool,
        ast.UnitLit: _check_unit,
        ast.NoneLit: _check_none,
        ast.VarRef: _check_var,
        ast.SomeExpr: _check_some,
        ast.IsNone: _check_is_none,
        ast.IsSome: _check_is_some,
        ast.Unop: _check_unop,
        ast.Binop: _check_binop,
        ast.Block: _check_block,
        ast.LetBind: _check_let,
        ast.LetSome: _check_let_some,
        ast.If: _check_if,
        ast.While: _check_while,
        ast.IfDisconnected: _check_if_disconnected,
        ast.FieldRef: _check_field,
        ast.Assign: _check_assign,
        ast.New: _check_new,
        ast.Send: _check_send,
        ast.Recv: _check_recv,
        ast.Call: _check_call,
    }


def _short(node: ast.Expr, limit: int = 60) -> str:
    text = pretty.pretty_expr(node).replace("\n", " ")
    if len(text) > limit:
        text = text[: limit - 1] + "…"
    return text


def check_source(
    source: str,
    profile: CheckProfile = DEFAULT_PROFILE,
    record: bool = True,
) -> ProgramDerivation:
    """Parse and type-check an FCL program from source text."""
    from ..lang import parse_program

    return Checker(parse_program(source), profile, record).check_program()
