"""Type errors raised by the FCL checker.

Every rejection the checker can produce is a distinct exception class so
tests (and the Table 1 capability matrix) can assert on the *reason* a
program is rejected, not just that it is rejected.
"""

from __future__ import annotations

from typing import Optional

from ..lang.tokens import SourceSpan


class TypeError_(Exception):
    """Base class of all FCL type errors.

    Named with a trailing underscore to avoid shadowing the builtin.
    """

    def __init__(self, message: str, span: Optional[SourceSpan] = None):
        location = f"{span}: " if span is not None and span.line else ""
        super().__init__(f"{location}{message}")
        self.message = message
        self.span = span


class UnboundVariable(TypeError_):
    """Use of a variable that is not bound (or was invalidated)."""


class RegionConsumed(TypeError_):
    """Use of a variable whose region capability has been consumed."""


class TypeMismatch(TypeError_):
    """Expression type differs from what the context requires."""


class UnknownName(TypeError_):
    """Reference to an undeclared struct, field, or function."""


class IsoFieldNotTrackable(TypeError_):
    """An iso field access could not be focused/explored (e.g. the base is
    not a variable, or its region already has a different tracked variable
    that cannot be unfocused)."""


class InvalidatedField(TypeError_):
    """Use of a tracked iso field that was invalidated (⊥) — e.g. by an
    ``if disconnected`` split — before being reassigned (fig 5)."""


class PinnedViolation(TypeError_):
    """An operation requires an unpinned region or variable."""


class SeparationError(TypeError_):
    """The checker could not establish that two values occupy disjoint
    regions (e.g. passing the same region to two distinct parameters)."""


class SendError(TypeError_):
    """A ``send`` whose argument region cannot be isolated: non-empty
    tracking context or inbound tracked references."""


class UnificationError(TypeError_):
    """Branch join / loop invariant could not be unified even with search."""


class ArityError(TypeError_):
    """Function called with the wrong number of arguments."""


class AnnotationError(TypeError_):
    """Malformed function annotation (consumes/before/after paths)."""


class InferenceError(TypeError_):
    """A type that must be inferred from context (e.g. bare ``none``) had
    no expected type available."""


class DominationError(TypeError_):
    """An operation would break tempered domination (e.g. making an iso
    field a non-dominating untracked reference)."""
