"""The paper's primary contribution: the tempered-domination type system."""

from .checker import CheckProfile, Checker, check_source
from .contexts import StaticContext
from .framing import Frame, frame_away, restore
from .derivation import Derivation, FuncDerivation, ProgramDerivation
from .regions import Region, RegionSupply

__all__ = [
    "Checker",
    "CheckProfile",
    "check_source",
    "StaticContext",
    "Frame",
    "frame_away",
    "restore",
    "Derivation",
    "FuncDerivation",
    "ProgramDerivation",
    "Region",
    "RegionSupply",
]
