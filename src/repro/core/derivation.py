"""Typing derivations — the prover/verifier interface (§5).

The paper implements the type system as a prover–verifier architecture: an
OCaml prover searches for typing derivations, and a small Coq verifier
re-checks them.  We mirror this split: :mod:`repro.core.checker` (the
prover) emits :class:`Derivation` trees whose every node records the rule
applied and full before/after context snapshots; :mod:`repro.verifier`
validates each node independently, without trusting the prover's search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .contexts import ContextSnap
from .unify import Step


@dataclass
class Derivation:
    """One node of a typing derivation.

    ``rule`` names the typing rule (``T1``–``T17``), a virtual
    transformation bundle (``TS1``), a framing application (``TS2``), or a
    weakening (``W``).  ``pre``/``post`` are full (H; Γ) snapshots.  For TS1
    and W nodes, ``steps`` lists the individual transformations; the
    verifier replays them.  ``meta`` carries rule-specific data the verifier
    needs (e.g. the variable/field/region an access touched).
    """

    rule: str
    expr: str  # pretty-printed expression (for reporting)
    pre: ContextSnap
    post: ContextSnap
    type_: str = ""
    region: Optional[int] = None  # region id of the result (None = primitive)
    steps: Tuple[Step, ...] = ()
    meta: Dict[str, object] = field(default_factory=dict)
    children: List["Derivation"] = field(default_factory=list)

    def node_count(self) -> int:
        return 1 + sum(child.node_count() for child in self.children)

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        head = f"{pad}{self.rule}: {self.expr}"
        if self.type_:
            head += f" : {self.region if self.region is not None else '·'} {self.type_}"
        lines = [head]
        for step in self.steps:
            lines.append(f"{pad}  · {step}")
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


@dataclass
class FuncDerivation:
    """Derivation for one function: declared interface + body derivation."""

    name: str
    input_snap: ContextSnap
    output_snap: ContextSnap
    result_type: str
    result_region: Optional[int]
    body: Derivation


@dataclass
class ProgramDerivation:
    """Derivations for every function of a program."""

    funcs: Dict[str, FuncDerivation]

    def node_count(self) -> int:
        return sum(fd.body.node_count() for fd in self.funcs.values())
