"""Derivation (de)serialization.

The prover–verifier split of §5 is only as strong as the interface between
them: the OCaml prover *prints* derivations that the Coq verifier parses.
This module gives our derivations the same property — they round-trip
through plain JSON, so a derivation can be produced in one process and
verified in another with no shared in-memory state.

Steps encode region arguments as ``{"r": ident}`` objects to keep them
distinguishable from strings/ints; ``None`` (⊥ / no region) passes through.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from .derivation import Derivation, FuncDerivation, ProgramDerivation
from .regions import Region
from .unify import Step


def _encode_value(value: Any) -> Any:
    if isinstance(value, Region):
        return {"r": value.ident}
    if isinstance(value, tuple):
        return {"t": [_encode_value(v) for v in value]}
    if isinstance(value, Step):
        return {"step": _encode_step(value)}
    if value is None or isinstance(value, (bool, int, str)):
        return value
    raise TypeError(f"cannot serialize {type(value).__name__} in a derivation")


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if "r" in value and len(value) == 1:
            return Region(value["r"])
        if "t" in value and len(value) == 1:
            return tuple(_decode_value(v) for v in value["t"])
        if "step" in value and len(value) == 1:
            return _decode_step(value["step"])
    return value


def _encode_step(step: Step) -> Dict[str, Any]:
    return {"rule": step.rule, "args": [_encode_value(a) for a in step.args]}


def _decode_step(data: Dict[str, Any]) -> Step:
    return Step(data["rule"], tuple(_decode_value(a) for a in data["args"]))


def _encode_meta(meta: Dict[str, object]) -> Dict[str, Any]:
    return {key: _encode_value(value) for key, value in meta.items()}


def _decode_meta(data: Dict[str, Any]) -> Dict[str, object]:
    return {key: _decode_value(value) for key, value in data.items()}


def _snap_to_lists(snap) -> Any:
    # Snapshots are nested tuples of primitives: JSON lists round-trip them.
    return snap


def _lists_to_snap(data) -> Any:
    def fix(node):
        if isinstance(node, list):
            return tuple(fix(x) for x in node)
        return node

    return fix(data)


def derivation_to_dict(node: Derivation) -> Dict[str, Any]:
    return {
        "rule": node.rule,
        "expr": node.expr,
        "pre": _snap_to_lists(node.pre),
        "post": _snap_to_lists(node.post),
        "type": node.type_,
        "region": node.region,
        "steps": [_encode_step(s) for s in node.steps],
        "meta": _encode_meta(node.meta),
        "children": [derivation_to_dict(c) for c in node.children],
    }


def derivation_from_dict(data: Dict[str, Any]) -> Derivation:
    return Derivation(
        rule=data["rule"],
        expr=data["expr"],
        pre=_lists_to_snap(data["pre"]),
        post=_lists_to_snap(data["post"]),
        type_=data["type"],
        region=data["region"],
        steps=tuple(_decode_step(s) for s in data["steps"]),
        meta=_decode_meta(data["meta"]),
        children=[derivation_from_dict(c) for c in data["children"]],
    )


def func_derivation_to_dict(fd: FuncDerivation) -> Dict[str, Any]:
    """One function's certificate: the unit the pipeline cache stores."""
    return {
        "input": _snap_to_lists(fd.input_snap),
        "output": _snap_to_lists(fd.output_snap),
        "result_type": fd.result_type,
        "result_region": fd.result_region,
        "body": derivation_to_dict(fd.body),
    }


def func_derivation_from_dict(name: str, data: Dict[str, Any]) -> FuncDerivation:
    return FuncDerivation(
        name=name,
        input_snap=_lists_to_snap(data["input"]),
        output_snap=_lists_to_snap(data["output"]),
        result_type=data["result_type"],
        result_region=data["result_region"],
        body=derivation_from_dict(data["body"]),
    )


def func_derivation_to_json(fd: FuncDerivation, indent: Optional[int] = None) -> str:
    return json.dumps(func_derivation_to_dict(fd), indent=indent)


def func_derivation_from_json(name: str, text: str) -> FuncDerivation:
    return func_derivation_from_dict(name, json.loads(text))


def program_derivation_to_json(pd: ProgramDerivation, indent: Optional[int] = None) -> str:
    payload = {
        name: func_derivation_to_dict(fd) for name, fd in pd.funcs.items()
    }
    return json.dumps(payload, indent=indent)


def program_derivation_from_json(text: str) -> ProgramDerivation:
    payload = json.loads(text)
    funcs = {
        name: func_derivation_from_dict(name, data)
        for name, data in payload.items()
    }
    return ProgramDerivation(funcs=funcs)
