"""Liveness analysis of variables — the unification oracle of §5.1.

Branch unification is "the problem of inferring which linear resources must
be preserved to type-check a given program suffix" (§5.1).  This module
computes, for every expression node, the set of variables live *after* it;
the checker uses these sets to prune tracking contexts down to what the
continuation actually needs before unifying branches, loop bodies, and
function exits.

Node identity is ``id(node)`` — AST nodes are unique objects per parse.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from ..lang import ast


def uses(expr: ast.Expr) -> Set[str]:
    """All variable names read anywhere inside ``expr``."""
    names: Set[str] = set()
    bound: Set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.VarRef):
            names.add(node.name)
        elif isinstance(node, (ast.LetBind, ast.LetSome)):
            bound.add(node.name)
    # Over-approximate: bound names may shadow outer uses; keeping them live
    # is sound (liveness is used only to *preserve* resources).
    return names


class Liveness:
    """Backward liveness over a function body.

    ``live_after(node)`` is the set of variables whose values the program
    may still read after ``node`` finishes evaluating (within the function).
    """

    def __init__(self, fdef: ast.FuncDef):
        self._after: Dict[int, FrozenSet[str]] = {}
        # Non-consumed parameters must survive to the function's output
        # context (§4.9 defaults), so they are live throughout the body.
        # Consumed parameters get true liveness so branches may consume them.
        exit_live = frozenset(
            p.name for p in fdef.params if p.name not in fdef.consumes
        )
        self._analyze(fdef.body, exit_live)

    def live_after(self, node: ast.Expr) -> FrozenSet[str]:
        """Variables live after ``node``; empty if the node was never seen
        (synthesized nodes default to nothing-live, which is conservative
        for pruning since the checker additionally protects its own state)."""
        return self._after.get(id(node), frozenset())

    # -- backward transfer functions ----------------------------------------

    def _analyze(self, node: ast.Expr, live_out: FrozenSet[str]) -> FrozenSet[str]:
        """Record live_out for ``node`` and return its live_in."""
        self._after[id(node)] = live_out

        if isinstance(node, ast.Block):
            live = live_out
            # Statements run in order; process backward.
            for entry in reversed(node.body):
                live = self._analyze(entry, live)
            return live

        if isinstance(node, ast.LetBind):
            body_live = live_out - {node.name}
            return self._analyze(node.init, body_live)

        if isinstance(node, ast.LetSome):
            then_in = self._analyze(node.then_block, live_out) - {node.name}
            else_in = (
                self._analyze(node.else_block, live_out)
                if node.else_block is not None
                else live_out
            )
            return self._analyze(node.scrutinee, then_in | else_in)

        if isinstance(node, ast.If):
            then_in = self._analyze(node.then_block, live_out)
            else_in = (
                self._analyze(node.else_block, live_out)
                if node.else_block is not None
                else live_out
            )
            return self._analyze(node.cond, then_in | else_in)

        if isinstance(node, ast.IfDisconnected):
            then_in = self._analyze(node.then_block, live_out)
            else_in = (
                self._analyze(node.else_block, live_out)
                if node.else_block is not None
                else live_out
            )
            branch_in = then_in | else_in
            right_in = self._analyze(node.right, branch_in)
            return self._analyze(node.left, right_in)

        if isinstance(node, ast.While):
            # Fixpoint: body may run zero or more times.
            live = live_out
            for _ in range(3):
                body_in = self._analyze(node.body, self._analyze(node.cond, live) | live_out)
                new_live = live | body_in | uses(node.cond)
                if new_live == live:
                    break
                live = new_live
            cond_in = self._analyze(node.cond, live | live_out)
            self._after[id(node)] = live_out
            return cond_in

        if isinstance(node, ast.Assign):
            if isinstance(node.target, ast.VarRef):
                value_out = (live_out - {node.target.name}) | set()
                value_in = self._analyze(node.value, frozenset(value_out))
                self._after[id(node.target)] = live_out
                return value_in
            # Field assignment: base is read.
            value_in = self._analyze(node.value, live_out)
            return self._analyze(node.target, value_in)

        if isinstance(node, ast.FieldRef):
            return self._analyze(node.base, live_out)

        if isinstance(node, ast.VarRef):
            return live_out | {node.name}

        if isinstance(node, (ast.SomeExpr, ast.IsNone, ast.IsSome, ast.Unop)):
            return self._analyze(node.inner, live_out)

        if isinstance(node, ast.Send):
            return self._analyze(node.value, live_out)

        if isinstance(node, ast.Binop):
            right_in = self._analyze(node.right, live_out)
            return self._analyze(node.left, right_in)

        if isinstance(node, ast.Call):
            live = live_out
            for arg in reversed(node.args):
                live = self._analyze(arg, live)
            return live

        if isinstance(node, ast.New):
            live = live_out
            for init in reversed(list(node.inits.values())):
                live = self._analyze(init, live)
            return live

        # Leaves: IntLit, BoolLit, UnitLit, NoneLit, Recv.
        return live_out
